#![allow(missing_docs)]
//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * packet batching on vs off (§2.3's packet buffers);
//! * packed binary codec throughput (the "high-bandwidth
//!   communication" claim);
//! * synchronization filter modes under identical traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrnet_bench::{experiment_topology, BenchTree};
use mrnet_packet::{
    decode_batch, decode_packet, encode_batch, encode_packet, BatchPolicy, PacketBuilder,
};

fn batching_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batching_100waves");
    group.sample_size(10);
    const WAVES: usize = 100;
    group.throughput(Throughput::Elements(WAVES as u64));
    for (label, policy) in [
        ("batched", BatchPolicy::default()),
        ("unbatched", BatchPolicy::unbatched()),
    ] {
        let tree = BenchTree::new(experiment_topology(Some(4), 16), policy);
        group.bench_function(label, |b| b.iter(|| tree.reduction_waves(WAVES)));
        tree.shutdown();
    }
    group.finish();
}

fn codec_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_codec");
    let small = PacketBuilder::new(1, 7).push(42i32).push(1.5f32).build();
    let large = PacketBuilder::new(1, 7)
        .push(vec![0i64; 512])
        .push("a".repeat(256))
        .build();
    group.throughput(Throughput::Bytes(encode_packet(&small).len() as u64));
    group.bench_function("encode_small", |b| b.iter(|| encode_packet(&small)));
    group.throughput(Throughput::Bytes(encode_packet(&large).len() as u64));
    group.bench_function("encode_large", |b| b.iter(|| encode_packet(&large)));
    let small_wire = encode_packet(&small);
    group.bench_function("decode_small", |b| {
        b.iter(|| decode_packet(small_wire.clone()).unwrap())
    });
    let batch: Vec<_> = (0..64).map(|_| small.clone()).collect();
    let batch_wire = encode_batch(&batch);
    group.throughput(Throughput::Bytes(batch_wire.len() as u64));
    group.bench_function("encode_batch_64", |b| b.iter(|| encode_batch(&batch)));
    group.bench_function("decode_batch_64", |b| {
        b.iter(|| decode_batch(batch_wire.clone()).unwrap())
    });
    group.finish();
}

fn sync_modes(c: &mut Criterion) {
    use mrnet_filters::{SyncFilter, SyncMode};
    let mut group = c.benchmark_group("ablation_sync_modes");
    const CHILDREN: usize = 16;
    const WAVES: usize = 100;
    group.throughput(Throughput::Elements((CHILDREN * WAVES) as u64));
    for (label, mode) in [
        ("wait_for_all", SyncMode::WaitForAll),
        ("timeout_10ms", SyncMode::TimeOut(0.010)),
        ("do_not_wait", SyncMode::DoNotWait),
    ] {
        group.bench_with_input(BenchmarkId::new("mode", label), &mode, |b, &mode| {
            let pkt = PacketBuilder::new(1, 0).push(1i32).build();
            b.iter(|| {
                let mut f = SyncFilter::new(mode, CHILDREN);
                let mut waves_out = 0;
                for w in 0..WAVES {
                    let now = w as f64 * 0.001;
                    for child in 0..CHILDREN {
                        waves_out += f.push(child, pkt.clone(), now).len();
                    }
                }
                waves_out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, batching_ablation, codec_throughput, sync_modes);
criterion_main!(benches);
