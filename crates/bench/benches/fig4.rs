#![allow(missing_docs)]
//! Criterion bench for the Figure 4 comparison, measured on *live*
//! thread trees: round-trip latency and pipelined reduction throughput
//! on the balanced 4-ary (Figure 4a) and binomial-rooted unbalanced
//! (Figure 4b) topologies, both reaching sixteen back-ends.

use criterion::{criterion_group, criterion_main, Criterion};
use mrnet_bench::BenchTree;
use mrnet_packet::BatchPolicy;
use mrnet_topology::{generator, HostPool};

fn fig4_topologies(c: &mut Criterion) {
    let balanced = BenchTree::new(
        generator::fig4_balanced(&mut HostPool::synthetic(64)).unwrap(),
        BatchPolicy::default(),
    );
    let unbalanced = BenchTree::new(
        generator::fig4_unbalanced(&mut HostPool::synthetic(64)).unwrap(),
        BatchPolicy::default(),
    );

    let mut group = c.benchmark_group("fig4_roundtrip");
    group.bench_function("balanced_4ary", |b| b.iter(|| balanced.roundtrip()));
    group.bench_function("unbalanced_binomial", |b| b.iter(|| unbalanced.roundtrip()));
    group.finish();

    let mut group = c.benchmark_group("fig4_pipelined_50waves");
    group.sample_size(10);
    group.bench_function("balanced_4ary", |b| b.iter(|| balanced.reduction_waves(50)));
    group.bench_function("unbalanced_binomial", |b| {
        b.iter(|| unbalanced.reduction_waves(50))
    });
    group.finish();

    balanced.shutdown();
    unbalanced.shutdown();
}

criterion_group!(benches, fig4_topologies);
criterion_main!(benches);
