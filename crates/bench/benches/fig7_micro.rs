#![allow(missing_docs)]
//! Criterion bench for the Figure 7 micro-benchmarks on the real
//! threaded implementation: instantiation latency (7a), round-trip
//! latency (7b), and pipelined reduction throughput (7c) across flat /
//! 4-way / 8-way topologies at laptop scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrnet_bench::{experiment_topology, fanout_label, BenchTree};
use mrnet_packet::BatchPolicy;

const FANOUTS: [Option<usize>; 3] = [None, Some(4), Some(8)];

fn fig7a_instantiation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_instantiation");
    group.sample_size(10);
    for fanout in FANOUTS {
        for backends in [16usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(fanout_label(fanout), backends),
                &backends,
                |b, &n| {
                    b.iter(|| {
                        let tree =
                            BenchTree::new(experiment_topology(fanout, n), BatchPolicy::default());
                        tree.shutdown();
                    });
                },
            );
        }
    }
    group.finish();
}

fn fig7b_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_roundtrip");
    for fanout in FANOUTS {
        for backends in [16usize, 64] {
            let tree = BenchTree::new(
                experiment_topology(fanout, backends),
                BatchPolicy::default(),
            );
            group.bench_with_input(
                BenchmarkId::new(fanout_label(fanout), backends),
                &backends,
                |b, _| b.iter(|| tree.roundtrip()),
            );
            tree.shutdown();
        }
    }
    group.finish();
}

fn fig7c_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7c_reduction_throughput");
    group.sample_size(10);
    const WAVES: usize = 100;
    group.throughput(Throughput::Elements(WAVES as u64));
    for fanout in FANOUTS {
        for backends in [16usize, 64] {
            let tree = BenchTree::new(
                experiment_topology(fanout, backends),
                BatchPolicy::default(),
            );
            group.bench_with_input(
                BenchmarkId::new(fanout_label(fanout), backends),
                &backends,
                |b, _| b.iter(|| tree.reduction_waves(WAVES)),
            );
            tree.shutdown();
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    fig7a_instantiation,
    fig7b_roundtrip,
    fig7c_throughput
);
criterion_main!(benches);
