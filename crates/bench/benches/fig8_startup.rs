#![allow(missing_docs)]
//! Criterion bench for the Figure 8 experiment on the real threaded
//! tool: the complete eleven-activity Paradyn start-up protocol over
//! live trees, flat vs 4-way, at laptop scale. Also benches the
//! simulated skew-detection algorithms (the §4.2.1 experiment).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrnet::NetworkBuilder;
use mrnet_bench::{experiment_topology, fanout_label};
use mrnet_topology::{generator, HostPool};
use paradyn::{app::Executable, mdl, paradyn_registry, run_startup, skew, Daemon};

/// Runs one full start-up protocol over a live tree, returning after
/// Report Done completes.
fn startup_once(fanout: Option<usize>, daemons: usize, mdl_doc: &str) {
    let dep = NetworkBuilder::new(experiment_topology(fanout, daemons))
        .registry(paradyn_registry())
        .launch()
        .expect("instantiate");
    let net = dep.network.clone();
    let exe = Executable::synthetic("bench_app", 64, 4, 5);
    let threads: Vec<_> = dep
        .backends
        .into_iter()
        .enumerate()
        .map(|(i, be)| {
            let exe = exe.clone();
            std::thread::spawn(move || {
                let d = Daemon::new(be, exe, format!("n{i}"), i as u32);
                let _ = d.serve_startup();
            })
        })
        .collect();
    run_startup(&net, mdl_doc, 3).expect("start-up");
    net.shutdown();
    for t in threads {
        let _ = t.join();
    }
}

fn fig8_startup_live(c: &mut Criterion) {
    let mdl_doc = mdl::to_mdl(&mdl::standard_metrics(8));
    let mut group = c.benchmark_group("fig8_startup_live");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    for fanout in [None, Some(4)] {
        for daemons in [8usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(fanout_label(fanout), daemons),
                &daemons,
                |b, &n| b.iter(|| startup_once(fanout, n, &mdl_doc)),
            );
        }
    }
    group.finish();
}

fn skew_detection(c: &mut Criterion) {
    let topo = generator::balanced(4, 3, &mut HostPool::synthetic(256)).unwrap();
    let params = skew::SkewParams::default();
    let mut group = c.benchmark_group("skew_detection_64x4way");
    group.bench_function("mrnet_cumulative", |b| {
        b.iter(|| skew::mrnet_skew(&topo, &params))
    });
    group.bench_function("direct_connection", |b| {
        b.iter(|| skew::direct_skew(&topo, &params))
    });
    group.finish();
}

criterion_group!(benches, fig8_startup_live, skew_detection);
criterion_main!(benches);
