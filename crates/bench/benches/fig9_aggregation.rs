#![allow(missing_docs)]
//! Criterion bench for the Figure 9 machinery: throughput of the
//! custom time-aligned Performance Data Aggregation filter (the
//! front-end's per-sample work that saturates in the paper's flat
//! configurations) and of the equivalence-class binning filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paradyn::aggregation::{AlignOp, OrdinalAggregator, TimeAlignedAggregator};
use paradyn::eqclass::{encode_classes, EqClass, EqClassFilter};
use paradyn::samples::{Sample, SampleGenerator};

/// Pushes `rounds` samples from each of `inputs` generators through a
/// fresh aggregator.
fn aligned_throughput(inputs: usize, rounds: usize) -> usize {
    let mut agg = TimeAlignedAggregator::new(inputs, 0.2, AlignOp::Sum);
    let mut gens: Vec<_> = (0..inputs)
        .map(|i| SampleGenerator::new(5.0, 0.01 * i as f64, 0.2, 1.0, i as u64))
        .collect();
    let mut out = 0;
    for _ in 0..rounds {
        for (i, g) in gens.iter_mut().enumerate() {
            out += agg.push(i, g.next_sample()).len();
        }
    }
    out
}

fn time_aligned_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_time_aligned_filter");
    const ROUNDS: usize = 200;
    for inputs in [4usize, 16, 64, 256] {
        group.throughput(Throughput::Elements((inputs * ROUNDS) as u64));
        group.bench_with_input(BenchmarkId::new("inputs", inputs), &inputs, |b, &n| {
            b.iter(|| aligned_throughput(n, ROUNDS));
        });
    }
    group.finish();
}

fn ordinal_vs_aligned(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_ordinal_baseline");
    const ROUNDS: usize = 200;
    const INPUTS: usize = 64;
    group.throughput(Throughput::Elements((INPUTS * ROUNDS) as u64));
    group.bench_function("ordinal_64_inputs", |b| {
        b.iter(|| {
            let mut agg = OrdinalAggregator::new(INPUTS, AlignOp::Sum);
            let mut out = 0;
            for r in 0..ROUNDS {
                for i in 0..INPUTS {
                    let t = r as f64 * 0.2;
                    out += agg.push(i, Sample::new(1.0, t, t + 0.2)).len();
                }
            }
            out
        })
    });
    group.finish();
}

fn eqclass_merging(c: &mut Criterion) {
    use mrnet::{FilterContext, Transform};
    let mut group = c.benchmark_group("eqclass_filter");
    for daemons in [64usize, 512] {
        group.throughput(Throughput::Elements(daemons as u64));
        group.bench_with_input(BenchmarkId::new("daemons", daemons), &daemons, |b, &n| {
            let wave: Vec<_> = (0..n as u32)
                .map(|r| encode_classes(1, 0, &[EqClass::singleton(u64::from(r % 4), r)]))
                .collect();
            let ctx = FilterContext::new(1, 0, n);
            b.iter(|| {
                let mut f = EqClassFilter::new();
                f.transform(wave.clone(), &ctx).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    time_aligned_aggregation,
    ordinal_vs_aligned,
    eqclass_merging
);
criterion_main!(benches);
