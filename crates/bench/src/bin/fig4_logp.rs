//! Figure 4: balanced vs unbalanced topologies under LogP.
//!
//! Reproduces the §2.6 analysis: for sixteen back-ends, the balanced
//! 4-ary tree (Figure 4a) completes one broadcast in `8g + 4o + 2L`
//! and can start a new operation every `4g`, while the binomial-rooted
//! unbalanced tree (Figure 4b) may finish a single broadcast sooner
//! but needs `6g` between operations. The table sweeps the g/L ratio
//! and prints latency and pipelined-interval for both topologies,
//! showing the crossover.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig4_logp`

use mrnet_bench::{print_header, print_row};
use mrnet_topology::{fig4_comparison, LogP};

fn main() {
    println!("Figure 4: balanced (4a) vs unbalanced (4b) topologies, 16 back-ends");
    println!("LogP units: o = 1, L and g swept; latencies in model cycles\n");
    print_header(
        "g/L",
        &[
            "bal.latency".into(),
            "unb.latency".into(),
            "bal.interval".into(),
            "unb.interval".into(),
            "latency win".into(),
        ],
    );
    for (gap, latency) in [
        (0.1, 10.0),
        (0.25, 4.0),
        (0.5, 2.0),
        (1.0, 1.0),
        (2.0, 0.5),
        (4.0, 0.25),
        (10.0, 0.1),
    ] {
        let params = LogP {
            latency,
            overhead: 1.0,
            gap,
            gap_per_byte: 0.0,
        };
        let row = fig4_comparison(&params);
        let winner = if row.balanced_latency <= row.unbalanced_latency {
            1.0 // balanced
        } else {
            -1.0 // unbalanced
        };
        print_row(
            format!("{:.2}", gap / latency),
            &[
                row.balanced_latency,
                row.unbalanced_latency,
                row.balanced_interval,
                row.unbalanced_interval,
                winner,
            ],
        );
    }
    println!("\n(latency win: 1 = balanced finishes a single broadcast first, -1 = unbalanced)");
    println!("The balanced tree's pipelined interval (4g) always beats the");
    println!("unbalanced tree's (6g): better throughput for pipelined operations,");
    println!("which is why the paper's experiments use balanced trees.");

    // The paper's symbolic check.
    let unit = LogP {
        latency: 1.0,
        overhead: 1.0,
        gap: 1.0,
        gap_per_byte: 0.0,
    };
    let row = fig4_comparison(&unit);
    assert!((row.balanced_latency - (8.0 + 4.0 + 2.0)).abs() < 1e-9);
    assert!((row.balanced_interval - 4.0).abs() < 1e-9);
    assert!((row.unbalanced_interval - 6.0).abs() < 1e-9);
    println!("\nsymbolic check passed: balanced latency = 8g+4o+2L, intervals 4g vs 6g");
}
