//! Figure 5 companion: ordinal vs time-aligned aggregation accuracy
//! under asynchronous sampling (the semantics the figure illustrates,
//! quantified as an ablation).
//!
//! Workload: N daemons sample a common square-wave signal at 5 Hz with
//! per-daemon phase shifts and interval jitter. The correct global sum
//! over any interval is N × signal(t). Ordinal aggregation pairs k-th
//! samples regardless of the intervals they cover; time-aligned
//! aggregation splits samples proportionally onto a common grid. The
//! table reports each scheme's RMS error against ground truth.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig5_alignment`

use paradyn::aggregation::{AlignOp, OrdinalAggregator, TimeAlignedAggregator};
use paradyn::samples::Sample;

/// The application signal each daemon measures: a square wave in time,
/// value-per-second units.
fn signal(t: f64) -> f64 {
    if (t / 2.0).fract() < 0.5 {
        1.0
    } else {
        3.0
    }
}

/// Integral of the signal over [a, b) — exact sample values.
fn integrate(a: f64, b: f64) -> f64 {
    // Numeric integration is fine at this resolution.
    let steps = ((b - a) / 1e-3).ceil().max(1.0) as usize;
    let dt = (b - a) / steps as f64;
    (0..steps)
        .map(|i| signal(a + (i as f64 + 0.5) * dt) * dt)
        .sum()
}

fn rms(errors: &[f64]) -> f64 {
    (errors.iter().map(|e| e * e).sum::<f64>() / errors.len().max(1) as f64).sqrt()
}

fn run(daemons: usize, phase_spread: f64, jitter: f64) -> (f64, f64) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(42);
    let interval = 0.2;
    let horizon = 40.0;

    // Per-daemon sample streams over the shared signal.
    let streams: Vec<Vec<Sample>> = (0..daemons)
        .map(|d| {
            let mut t = phase_spread * d as f64 / daemons.max(1) as f64;
            let mut out = Vec::new();
            while t < horizon {
                let len = interval * rng.gen_range(1.0 - jitter..1.0 + jitter + 1e-9);
                out.push(Sample::new(integrate(t, t + len), t, t + len));
                t += len;
            }
            out
        })
        .collect();

    // Time-aligned.
    let mut aligned = TimeAlignedAggregator::new(daemons, interval, AlignOp::Sum);
    let mut aligned_err = Vec::new();
    let max_len = streams.iter().map(Vec::len).min().unwrap();
    for k in 0..max_len {
        for (d, s) in streams.iter().enumerate() {
            for out in aligned.push(d, s[k]) {
                let truth = daemons as f64 * integrate(out.start, out.end);
                aligned_err.push(out.value - truth);
            }
        }
    }

    // Ordinal.
    let mut ordinal = OrdinalAggregator::new(daemons, AlignOp::Sum);
    let mut ordinal_err = Vec::new();
    for k in 0..max_len {
        for (d, s) in streams.iter().enumerate() {
            for out in ordinal.push(d, s[k]) {
                // Ground truth for the interval the output claims.
                let truth = daemons as f64 * integrate(out.start, out.end) * (interval / out.len());
                // Normalize both to per-interval scale for fairness.
                ordinal_err.push(out.value * (interval / out.len()) - truth);
            }
        }
    }
    (rms(&aligned_err), rms(&ordinal_err))
}

fn main() {
    println!("Figure 5 ablation: RMS error of global-sum samples (value units)");
    println!("signal: square wave 1↔3 val/s; 5 Hz sampling; 32 daemons\n");
    println!(
        "{:>12} {:>8} {:>16} {:>16} {:>8}",
        "phase spread", "jitter", "time-aligned", "ordinal", "ratio"
    );
    for (phase, jitter) in [
        (0.0, 0.0),
        (0.1, 0.0),
        (0.2, 0.0),
        (0.0, 0.2),
        (0.1, 0.2),
        (0.2, 0.4),
    ] {
        let (a, o) = run(32, phase, jitter);
        println!(
            "{phase:>12.2} {jitter:>8.2} {a:>16.4} {o:>16.4} {:>8.1}x",
            o / a.max(1e-9)
        );
    }
    println!("\ntime-aligned aggregation attributes sample values to the intervals");
    println!("they actually cover (Figure 6's proportional splitting); ordinal");
    println!("aggregation mixes data from different execution intervals as soon as");
    println!("daemons drift out of phase (Figure 5a).");
}
