//! Figure 7a: MRNet instantiation latency vs number of back-ends.
//!
//! Paper series: flat (single-level), 4-way fan-out, 8-way fan-out
//! balanced trees; back-ends up to 512 on ASCI Blue Pacific. The flat
//! topology serializes ~1.5 s `rsh` launches at the front-end and
//! climbs to ~800 s; the trees create branches concurrently and stay
//! nearly flat.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig7a_startup`

use mrnet::simulate::instantiation_latency;
use mrnet_bench::{experiment_topology, fanout_label, print_header, print_row};
use mrnet_sim::{LaunchParams, LogGpParams};

fn main() {
    println!("Figure 7a: tool instantiation latency (seconds) vs back-ends");
    println!("simulated Blue Pacific substrate: rsh ≈ 1.55 s serialized per launch\n");
    let fanouts = [None, Some(4), Some(8)];
    print_header(
        "backends",
        &fanouts.iter().map(|&f| fanout_label(f)).collect::<Vec<_>>(),
    );
    for backends in [4usize, 8, 16, 32, 64, 128, 256, 384, 512] {
        let row: Vec<f64> = fanouts
            .iter()
            .map(|&fanout| {
                let topo = experiment_topology(fanout, backends);
                instantiation_latency(
                    &topo,
                    LaunchParams::blue_pacific(),
                    LogGpParams::blue_pacific(),
                    0x000F_167A,
                )
            })
            .collect();
        print_row(backends, &row);
    }
    println!("\npaper shape: flat ≈ 800 s at 512 back-ends; 4/8-way grow quite slowly");
}
