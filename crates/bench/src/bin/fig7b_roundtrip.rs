//! Figure 7b: round-trip latency of one broadcast followed by one
//! reduction, vs number of back-ends.
//!
//! Paper series: flat, 4-way, 8-way; the flat topology's serialized
//! point-to-point transfers reach ~1.4 s at 512 back-ends while the
//! trees stay near-constant.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig7b_roundtrip`

use mrnet::obs::{trace, tracectx};
use mrnet::simulate::{roundtrip_latency, SMALL_PACKET};
use mrnet_bench::{
    experiment_topology, fanout_label, print_header, print_row, print_trace_latency_table,
    BenchTree,
};
use mrnet_packet::BatchPolicy;
use mrnet_sim::LogGpParams;

fn main() {
    println!("Figure 7b: broadcast+reduction round-trip latency (seconds) vs back-ends\n");
    let fanouts = [None, Some(4), Some(8)];
    print_header(
        "backends",
        &fanouts.iter().map(|&f| fanout_label(f)).collect::<Vec<_>>(),
    );
    for backends in [4usize, 8, 16, 32, 64, 128, 256, 384, 512] {
        let row: Vec<f64> = fanouts
            .iter()
            .map(|&fanout| {
                let topo = experiment_topology(fanout, backends);
                roundtrip_latency(&topo, LogGpParams::blue_pacific(), SMALL_PACKET)
            })
            .collect();
        print_row(backends, &row);
    }
    println!("\npaper shape: flat ≈ 1.4 s at 512 back-ends; trees well under 0.2 s");

    // Live-tree cross-check: run the same operation on a real threaded
    // tree with distributed tracing on (every wave sampled), then print
    // the per-hop latency table the front-end assembled from the trace
    // envelopes the waves carried.
    println!("\nper-hop latency, live 2-way tree with 4 back-ends (every wave traced):\n");
    trace::set_enabled(true);
    tracectx::set_sample_every(1);
    let tree = BenchTree::new(experiment_topology(Some(2), 4), BatchPolicy::default());
    for _ in 0..50 {
        tree.roundtrip();
    }
    // Let straggler down-wave TRACE_REPORTs drain before reading.
    std::thread::sleep(std::time::Duration::from_millis(200));
    print_trace_latency_table(&tree.net);
    tree.shutdown();
}
