//! Figure 7b: round-trip latency of one broadcast followed by one
//! reduction, vs number of back-ends.
//!
//! Paper series: flat, 4-way, 8-way; the flat topology's serialized
//! point-to-point transfers reach ~1.4 s at 512 back-ends while the
//! trees stay near-constant.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig7b_roundtrip`
//!
//! Quick bench mode — `--quick [path]` — skips the simulator tables and
//! instead measures live threaded trees at 2–3 small fan-outs, writing
//! the round-trip latency series as JSON (default `BENCH_fig7b.json`,
//! same shape as `BENCH_fig7c.json`) so the CI perf trajectory covers
//! latency as well as throughput.

use std::time::Instant;

use mrnet::obs::{trace, tracectx};
use mrnet::simulate::{roundtrip_latency, SMALL_PACKET};
use mrnet_bench::{
    experiment_topology, fanout_label, print_header, print_row, print_trace_latency_table,
    BenchTree,
};
use mrnet_packet::BatchPolicy;
use mrnet_sim::LogGpParams;

/// One `--quick` measurement: `rounds` sequential broadcast+reduction
/// round trips through a live threaded tree, reported as median and
/// p95 microseconds.
fn quick_case(fanout: Option<usize>, backends: usize, rounds: usize) -> (f64, f64) {
    let tree = BenchTree::new(
        experiment_topology(fanout, backends),
        BatchPolicy::default(),
    );
    for _ in 0..rounds / 10 {
        tree.roundtrip(); // warm-up
    }
    let mut samples_us = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        tree.roundtrip();
        samples_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    tree.shutdown();
    samples_us.sort_by(f64::total_cmp);
    let median = samples_us[rounds / 2];
    let p95 = samples_us[(rounds * 95) / 100];
    (median, p95)
}

/// `--quick [path]`: live-tree round-trip latency at small fan-outs,
/// printed and written as JSON for the CI perf-trajectory step.
fn quick_bench(path: &str) {
    const ROUNDS: usize = 200;
    let cases = [(Some(2), 4usize), (Some(4), 8), (None, 8)];
    let mut rows = Vec::new();
    println!("fig7b quick bench: {ROUNDS} broadcast+reduction round trips per live tree\n");
    println!(
        "{:>10} {:>10} {:>14} {:>14}",
        "topology", "backends", "rtt med (us)", "rtt p95 (us)"
    );
    for (fanout, backends) in cases {
        let (median, p95) = quick_case(fanout, backends, ROUNDS);
        println!(
            "{:>10} {backends:>10} {median:>14.1} {p95:>14.1}",
            fanout_label(fanout)
        );
        rows.push(format!(
            "    {{\"topology\": \"{}\", \"backends\": {backends}, \"rtt_us_median\": {median:.1}, \"rtt_us_p95\": {p95:.1}}}",
            fanout_label(fanout)
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fig7b_quick\",\n  \"rounds\": {ROUNDS},\n  \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--quick") {
        let path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_fig7b.json".to_owned());
        return quick_bench(&path);
    }
    println!("Figure 7b: broadcast+reduction round-trip latency (seconds) vs back-ends\n");
    let fanouts = [None, Some(4), Some(8)];
    print_header(
        "backends",
        &fanouts.iter().map(|&f| fanout_label(f)).collect::<Vec<_>>(),
    );
    for backends in [4usize, 8, 16, 32, 64, 128, 256, 384, 512] {
        let row: Vec<f64> = fanouts
            .iter()
            .map(|&fanout| {
                let topo = experiment_topology(fanout, backends);
                roundtrip_latency(&topo, LogGpParams::blue_pacific(), SMALL_PACKET)
            })
            .collect();
        print_row(backends, &row);
    }
    println!("\npaper shape: flat ≈ 1.4 s at 512 back-ends; trees well under 0.2 s");

    // Live-tree cross-check: run the same operation on a real threaded
    // tree with distributed tracing on (every wave sampled), then print
    // the per-hop latency table the front-end assembled from the trace
    // envelopes the waves carried.
    println!("\nper-hop latency, live 2-way tree with 4 back-ends (every wave traced):\n");
    trace::set_enabled(true);
    tracectx::set_sample_every(1);
    let tree = BenchTree::new(experiment_topology(Some(2), 4), BatchPolicy::default());
    for _ in 0..50 {
        tree.roundtrip();
    }
    // Let straggler down-wave TRACE_REPORTs drain before reading.
    std::thread::sleep(std::time::Duration::from_millis(200));
    print_trace_latency_table(&tree.net);
    tree.shutdown();
}
