//! Figure 7b: round-trip latency of one broadcast followed by one
//! reduction, vs number of back-ends.
//!
//! Paper series: flat, 4-way, 8-way; the flat topology's serialized
//! point-to-point transfers reach ~1.4 s at 512 back-ends while the
//! trees stay near-constant.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig7b_roundtrip`

use mrnet::obs::trace;
use mrnet::simulate::{roundtrip_latency, SMALL_PACKET};
use mrnet_bench::{
    experiment_topology, fanout_label, print_header, print_hop_breakdown, print_row, BenchTree,
};
use mrnet_packet::BatchPolicy;
use mrnet_sim::LogGpParams;

fn main() {
    println!("Figure 7b: broadcast+reduction round-trip latency (seconds) vs back-ends\n");
    let fanouts = [None, Some(4), Some(8)];
    print_header(
        "backends",
        &fanouts.iter().map(|&f| fanout_label(f)).collect::<Vec<_>>(),
    );
    for backends in [4usize, 8, 16, 32, 64, 128, 256, 384, 512] {
        let row: Vec<f64> = fanouts
            .iter()
            .map(|&fanout| {
                let topo = experiment_topology(fanout, backends);
                roundtrip_latency(&topo, LogGpParams::blue_pacific(), SMALL_PACKET)
            })
            .collect();
        print_row(backends, &row);
    }
    println!("\npaper shape: flat ≈ 1.4 s at 512 back-ends; trees well under 0.2 s");

    // Live-tree cross-check: run the same operation on a real threaded
    // tree with packet-path tracing on, then ask the tree itself (via
    // the in-band introspection stream) where the time went.
    println!("\ninternal per-hop breakdown, live 2-way tree with 4 back-ends (traced):\n");
    trace::set_enabled(true);
    let tree = BenchTree::new(experiment_topology(Some(2), 4), BatchPolicy::default());
    for _ in 0..50 {
        tree.roundtrip();
    }
    print_hop_breakdown(&tree.net);
    tree.shutdown();
}
