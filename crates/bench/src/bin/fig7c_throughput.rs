//! Figure 7c: sustained data-reduction throughput (operations/second)
//! vs number of back-ends.
//!
//! Paper series: flat, 4-way, 8-way; moderate fan-outs let reductions
//! pipeline through the tree ("keeping reduction throughput high as
//! application size increases") at ~70 ops/s, while the flat topology
//! collapses to single digits.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig7c_throughput`

use mrnet::obs::trace;
use mrnet::simulate::{reduction_throughput, SMALL_PACKET};
use mrnet_bench::{
    experiment_topology, fanout_label, print_header, print_hop_breakdown, print_row, BenchTree,
};
use mrnet_packet::BatchPolicy;
use mrnet_sim::LogGpParams;

fn main() {
    println!("Figure 7c: pipelined reduction throughput (ops/second) vs back-ends\n");
    let fanouts = [None, Some(4), Some(8)];
    print_header(
        "backends",
        &fanouts.iter().map(|&f| fanout_label(f)).collect::<Vec<_>>(),
    );
    for backends in [4usize, 8, 16, 32, 64, 128, 256, 384, 512] {
        let row: Vec<f64> = fanouts
            .iter()
            .map(|&fanout| {
                let topo = experiment_topology(fanout, backends);
                reduction_throughput(&topo, LogGpParams::blue_pacific(), SMALL_PACKET, 50)
            })
            .collect();
        print_row(backends, &row);
    }
    println!("\npaper shape: trees sustain ~70 ops/s out to 512 back-ends; flat collapses");

    // Live-tree cross-check: pipeline reduction waves through a real
    // threaded tree with tracing on and report the internal hop and
    // filter costs via the in-band introspection stream.
    println!("\ninternal per-hop breakdown, live 2-way tree with 4 back-ends (traced):\n");
    trace::set_enabled(true);
    let tree = BenchTree::new(experiment_topology(Some(2), 4), BatchPolicy::default());
    tree.reduction_waves(200);
    print_hop_breakdown(&tree.net);
    tree.shutdown();
}
