//! Figure 7c: sustained data-reduction throughput (operations/second)
//! vs number of back-ends.
//!
//! Paper series: flat, 4-way, 8-way; moderate fan-outs let reductions
//! pipeline through the tree ("keeping reduction throughput high as
//! application size increases") at ~70 ops/s, while the flat topology
//! collapses to single digits.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig7c_throughput`
//!
//! Quick bench mode — `--quick [path]` — skips the simulator tables and
//! instead measures live threaded trees at 2–3 small fan-outs, writing
//! the throughput series as JSON (default `BENCH_fig7c.json`) so CI can
//! track the perf trajectory of the real send pipeline over time.

use std::time::Instant;

use mrnet::obs::{trace, tracectx};
use mrnet::simulate::{reduction_throughput, SMALL_PACKET};
use mrnet_bench::{
    experiment_topology, fanout_label, print_header, print_hop_breakdown, print_row,
    print_trace_latency_table, BenchTree,
};
use mrnet_packet::BatchPolicy;
use mrnet_sim::LogGpParams;

/// One `--quick` measurement: pipelined reduction waves through a live
/// threaded tree, reported as waves/second and leaf-packets/second
/// (each wave aggregates one packet from every back-end).
fn quick_case(fanout: Option<usize>, backends: usize, waves: usize) -> (f64, f64) {
    let tree = BenchTree::new(
        experiment_topology(fanout, backends),
        BatchPolicy::default(),
    );
    tree.reduction_waves(waves / 10); // warm-up
    let start = Instant::now();
    tree.reduction_waves(waves);
    let secs = start.elapsed().as_secs_f64();
    tree.shutdown();
    let ops = waves as f64 / secs;
    (ops, ops * backends as f64)
}

/// `--quick [path]`: live-tree throughput at small fan-outs, printed
/// and written as JSON for the CI perf-trajectory step.
fn quick_bench(path: &str) {
    const WAVES: usize = 300;
    let cases = [(Some(2), 4usize), (Some(4), 8), (None, 8)];
    let mut rows = Vec::new();
    println!("fig7c quick bench: {WAVES} pipelined reduction waves per live tree\n");
    println!(
        "{:>10} {:>10} {:>14} {:>14}",
        "topology", "backends", "waves/s", "leaf pkts/s"
    );
    for (fanout, backends) in cases {
        let (ops, pkts) = quick_case(fanout, backends, WAVES);
        println!(
            "{:>10} {backends:>10} {ops:>14.1} {pkts:>14.1}",
            fanout_label(fanout)
        );
        rows.push(format!(
            "    {{\"topology\": \"{}\", \"backends\": {backends}, \"waves_per_sec\": {ops:.1}, \"leaf_pkts_per_sec\": {pkts:.1}}}",
            fanout_label(fanout)
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fig7c_quick\",\n  \"waves\": {WAVES},\n  \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");

    // With MRNET_TRACE=1 the quick run also produces the distributed-
    // tracing latency breakdown: every wave through one more live tree
    // is traced, the per-hop table is printed, and shutdown dumps the
    // full snapshot (trace histograms included) to MRNET_METRICS_FILE
    // for the CI perf-trajectory artifacts.
    if trace::enabled() {
        tracectx::set_sample_every(1);
        println!("\nper-hop latency, live 2-way tree with 4 back-ends (every wave traced):\n");
        let tree = BenchTree::new(experiment_topology(Some(2), 4), BatchPolicy::default());
        tree.reduction_waves(WAVES);
        // Let straggler down-wave TRACE_REPORTs drain before reading.
        std::thread::sleep(std::time::Duration::from_millis(200));
        print_trace_latency_table(&tree.net);
        tree.shutdown();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--quick") {
        let path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_fig7c.json".to_owned());
        return quick_bench(&path);
    }
    println!("Figure 7c: pipelined reduction throughput (ops/second) vs back-ends\n");
    let fanouts = [None, Some(4), Some(8)];
    print_header(
        "backends",
        &fanouts.iter().map(|&f| fanout_label(f)).collect::<Vec<_>>(),
    );
    for backends in [4usize, 8, 16, 32, 64, 128, 256, 384, 512] {
        let row: Vec<f64> = fanouts
            .iter()
            .map(|&fanout| {
                let topo = experiment_topology(fanout, backends);
                reduction_throughput(&topo, LogGpParams::blue_pacific(), SMALL_PACKET, 50)
            })
            .collect();
        print_row(backends, &row);
    }
    println!("\npaper shape: trees sustain ~70 ops/s out to 512 back-ends; flat collapses");

    // Live-tree cross-check: pipeline reduction waves through a real
    // threaded tree with tracing on and report the internal hop and
    // filter costs via the in-band introspection stream.
    println!("\ninternal per-hop breakdown, live 2-way tree with 4 back-ends (traced):\n");
    trace::set_enabled(true);
    tracectx::set_sample_every(1);
    let tree = BenchTree::new(experiment_topology(Some(2), 4), BatchPolicy::default());
    tree.reduction_waves(200);
    print_hop_breakdown(&tree.net);
    println!("\nassembled per-hop latency (from sampled trace envelopes):\n");
    std::thread::sleep(std::time::Duration::from_millis(200));
    print_trace_latency_table(&tree.net);
    tree.shutdown();
}
