//! Figure 8a: Paradyn start-up latency vs number of daemons.
//!
//! Paper series: No MRNet (serialized front-end/daemon communication),
//! and MRNet trees with 4-, 8-, and 16-way fan-outs, monitoring
//! smg2000. Without MRNet the latency rises steeply to ~70 s at 512
//! daemons; with moderate fan-outs the curves are "much flatter and
//! growth is nearly linear", 3.4× faster overall at 512.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig8a_paradyn_startup`

use mrnet_bench::{experiment_topology, fanout_label, print_header, print_row};
use paradyn::model::{startup_total, StartupModel};

fn main() {
    println!("Figure 8a: Paradyn start-up latency (seconds) vs daemons");
    println!("workload: smg2000-like executable (434 functions), simulated substrate\n");
    let fanouts = [None, Some(4), Some(8), Some(16)];
    print_header(
        "daemons",
        &fanouts
            .iter()
            .map(|&f| {
                if f.is_none() {
                    "No MRNet".to_owned()
                } else {
                    fanout_label(f)
                }
            })
            .collect::<Vec<_>>(),
    );
    let model = StartupModel::default();
    for daemons in [4usize, 8, 16, 32, 64, 128, 256, 384, 512] {
        let row: Vec<f64> = fanouts
            .iter()
            .map(|&fanout| startup_total(&experiment_topology(fanout, daemons), &model))
            .collect();
        print_row(daemons, &row);
    }
    let no = startup_total(&experiment_topology(None, 512), &model);
    let yes = startup_total(&experiment_topology(Some(8), 512), &model);
    println!(
        "\nspeedup at 512 daemons with 8-way fan-out: {:.2}x (paper: 3.4x)",
        no / yes
    );
}
