//! Figure 8b: Paradyn start-up latency by activity, 512 daemons,
//! No-MRNet vs 8-way fan-out.
//!
//! "Each activity that used MRNet to communicate with all daemons
//! showed a significant latency reduction … The activities that did
//! not show a significant improvement … consist either of work done
//! entirely in parallel by the daemons ('Parse Executable') or
//! point-to-point communication between a small number of daemons and
//! the front-end ('Report Code Resources', 'Report Callgraph')."
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig8b_activities`

use mrnet_bench::experiment_topology;
use paradyn::model::{startup_latencies, StartupModel};

fn main() {
    println!("Figure 8b: start-up latency by activity, 512 daemons (seconds)\n");
    let model = StartupModel::default();
    let no = startup_latencies(&experiment_topology(None, 512), &model);
    let yes = startup_latencies(&experiment_topology(Some(8), 512), &model);
    println!(
        "{:<30} {:>12} {:>12} {:>9}  MRNet aggregation?",
        "activity", "No MRNet", "8-way", "speedup"
    );
    let mut total_no = 0.0;
    let mut total_yes = 0.0;
    for ((act, t_no), (_, t_yes)) in no.iter().zip(&yes) {
        total_no += t_no;
        total_yes += t_yes;
        println!(
            "{:<30} {:>12.3} {:>12.3} {:>8.1}x  {}",
            act.name(),
            t_no,
            t_yes,
            t_no / t_yes.max(1e-9),
            if act.uses_aggregation() { "yes" } else { "no" }
        );
    }
    println!(
        "{:<30} {:>12.3} {:>12.3} {:>8.1}x",
        "TOTAL",
        total_no,
        total_yes,
        total_no / total_yes
    );
    println!("\npaper: overall 3.4x at 512 daemons; aggregation activities improve most,");
    println!("Parse Executable / Report Code Resources / Report Callgraph ~unchanged");
}
