//! Figure 9 (a–d): fraction of the offered performance-data load the
//! Paradyn front-end services, for 1/8/16/32 metrics.
//!
//! Workload: every daemon generates 5 samples/second/metric, so the
//! tool-wide offered rate is 5·D·M samples/second. Without MRNet the
//! front-end aligns and reduces every sample itself and degrades
//! ("about 60% at 64 daemons × 32 metrics; below 5% at 256 × 32");
//! with 4/8/16-way MRNet fan-outs internal processes absorb the
//! alignment work and the front-end services the full load everywhere.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin fig9_dataproc`

use mrnet_bench::{fanout_label, print_header, print_row};
use paradyn::model::LoadModel;

fn main() {
    let model = LoadModel::default();
    let fanouts = [None, Some(4), Some(8), Some(16)];
    for metrics in [1usize, 8, 16, 32] {
        println!(
            "Figure 9{}: fraction of offered load, {} metric(s)\n",
            match metrics {
                1 => "a",
                8 => "b",
                16 => "c",
                _ => "d",
            },
            metrics
        );
        print_header(
            "daemons",
            &fanouts
                .iter()
                .map(|&f| {
                    if f.is_none() {
                        "flat".to_owned()
                    } else {
                        fanout_label(f)
                    }
                })
                .collect::<Vec<_>>(),
        );
        for daemons in [4usize, 8, 16, 32, 64, 128, 256] {
            let row: Vec<f64> = fanouts
                .iter()
                .map(|&fanout| model.fraction_of_offered_load(daemons, metrics, fanout))
                .collect();
            print_row(daemons, &row);
        }
        println!();
    }
    println!("paper checkpoints: flat at 64×32 ≈ 0.6; flat at 256×32 < 0.05;");
    println!("all MRNet fan-outs service the entire offered load (1.0)");
}
