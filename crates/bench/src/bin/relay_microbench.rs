//! Passthrough-relay microbenchmark: how fast can the tree move
//! packets that no filter ever touches?
//!
//! A null-filter, no-alignment stream over a 2-way tree with 4
//! back-ends: every back-end packet crosses one internal node and the
//! front-end unmerged, so the measured rate is pure relay cost —
//! unbatch, demux, route, re-batch. With lazy payloads both hops
//! forward the original wire bytes (zero decodes, zero re-encodes);
//! this bench tracks that fast path the way fig7c tracks reductions.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin relay_microbench`

use std::time::Instant;

use mrnet::{Deployment, NetworkBuilder, SyncMode, Value};
use mrnet_bench::experiment_topology;
use mrnet_packet::BatchPolicy;

/// Tag for "reply with N packets" requests (distinct from the
/// aggregation GO tag so the two benches can't be confused in traces).
const GO: i32 = 901;

fn main() {
    const WARMUP: i32 = 200;
    const WAVES: i32 = 2000;

    let Deployment { network, backends } =
        NetworkBuilder::new(experiment_topology(Some(2), 4))
            .batch_policy(BatchPolicy::default())
            .launch()
            .expect("instantiate relay tree");
    let nbackends = backends.len();
    let threads: Vec<_> = backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || loop {
                match be.recv() {
                    Ok((pkt, sid)) => {
                        if pkt.tag() == GO {
                            let n = pkt.get(0).and_then(Value::as_i32).unwrap_or(0);
                            for w in 0..n {
                                if be.send(sid, GO, "%d", vec![Value::Int32(w)]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                    Err(_) => return,
                }
            })
        })
        .collect();

    let comm = network.broadcast_communicator();
    let null = network.registry().id_of("null").expect("built-in");
    let stream = network
        .new_stream(&comm, null, SyncMode::DoNotWait)
        .expect("relay stream");
    let drain = |n: i32| {
        stream.send(GO, "%d", vec![Value::Int32(n)]).expect("go");
        for _ in 0..n as usize * nbackends {
            stream
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("relayed packet");
        }
    };

    drain(WARMUP);
    let start = Instant::now();
    drain(WAVES);
    let secs = start.elapsed().as_secs_f64();
    let pkts = (WAVES as usize * nbackends) as f64;
    println!(
        "relay microbench: 2-way tree, {nbackends} back-ends, {pkts} packets \
         in {secs:.3}s = {:.1} pkts/s through the internal hop",
        pkts / secs
    );

    network.shutdown();
    for t in threads {
        let _ = t.join();
    }
}
