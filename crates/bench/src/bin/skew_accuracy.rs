//! §4.2.1 clock-skew accuracy table: MRNet-based cumulative skew
//! detection vs the direct-communication scheme, 64 daemons with
//! four-way fan-out (a three-level topology), errors measured against
//! the globally-synchronous clock (the simulator's virtual time,
//! standing in for Blue Pacific's SP switch clock).
//!
//! Paper: MRNet average error 10.5% (stddev 80.4) vs direct 17.5%
//! (stddev 78.9) — comparable accuracy, far better scalability.
//!
//! Run with: `cargo run -p mrnet-bench --release --bin skew_accuracy`

use mrnet_topology::{generator, HostPool};
use paradyn::skew::{direct_skew, mrnet_skew, SkewParams};

fn main() {
    println!("Clock skew detection accuracy: 64 daemons, 4-way fan-out (3 levels)");
    println!("100 probes per link/daemon; exponential one-way jitter\n");
    let topo = generator::balanced(4, 3, &mut HostPool::synthetic(256)).expect("topology");
    assert_eq!(topo.num_backends(), 64);

    println!(
        "{:<22} {:>12} {:>12} {:>16}",
        "scheme", "avg err %", "stddev %", "mean |err| (µs)"
    );
    let mut avg = (0.0, 0.0);
    for seed in 0..5u64 {
        let params = SkewParams {
            seed,
            ..SkewParams::default()
        };
        let m = mrnet_skew(&topo, &params);
        let d = direct_skew(&topo, &params);
        avg.0 += m.average_error_percent() / 5.0;
        avg.1 += d.average_error_percent() / 5.0;
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>16.1}   (seed {seed})",
            "MRNet cumulative",
            m.average_error_percent(),
            m.error_stddev_percent(),
            m.mean_abs_error() * 1e6
        );
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>16.1}   (seed {seed})",
            "direct connection",
            d.average_error_percent(),
            d.error_stddev_percent(),
            d.mean_abs_error() * 1e6
        );
    }
    println!(
        "\nmean over seeds: MRNet {:.1}% vs direct {:.1}% (paper: 10.5% vs 17.5%)",
        avg.0, avg.1
    );
    println!("paper conclusion reproduced: comparable accuracy, MRNet scheme");
    println!("needs O(depth) rounds instead of O(daemons) front-end probes");
}
