//! Shared machinery for the MRNet benchmark harness.
//!
//! Two kinds of measurement live in this crate:
//!
//! * **Generator binaries** (`src/bin/fig*.rs`) regenerate every table
//!   and figure of the paper's evaluation section on the simulated
//!   Blue Pacific substrate, printing the same series the paper plots.
//! * **Criterion benches** (`benches/*.rs`) measure the *real*
//!   threaded implementation at laptop scale — live trees of threads
//!   exchanging real frames.
//!
//! [`BenchTree`] stands up a live tree whose back-ends answer
//! reduction requests on demand, the workload shape of the Figure 7
//! micro-benchmarks.

#![forbid(unsafe_code)]

use std::time::Duration;

use mrnet::{Deployment, Network, NetworkBuilder, Stream, SyncMode, Value};
use mrnet_packet::BatchPolicy;
use mrnet_topology::{generator, HostPool, Topology};

/// Builds the standard experiment topologies: `None` = flat,
/// `Some(k)` = balanced k-way tree, both with exactly `backends`
/// leaves.
pub fn experiment_topology(fanout: Option<usize>, backends: usize) -> Topology {
    let mut pool = HostPool::synthetic((backends * 3).max(64));
    match fanout {
        None => generator::flat(backends, &mut pool).expect("flat topology"),
        Some(k) => generator::balanced_for(k, backends, &mut pool).expect("balanced topology"),
    }
}

/// Label used in tables for a topology choice.
pub fn fanout_label(fanout: Option<usize>) -> String {
    match fanout {
        None => "flat".to_owned(),
        Some(k) => format!("{k}-way"),
    }
}

/// Tag understood by [`BenchTree`] back-end threads: reply with
/// `payload` waves of one `%d` packet each.
const GO: i32 = 900;

/// A live MRNet tree whose back-ends answer reduction requests; used
/// by the Criterion benches to measure real round-trip latency and
/// reduction throughput.
pub struct BenchTree {
    /// The front-end handle.
    pub net: Network,
    stream: Stream,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl BenchTree {
    /// Stands up the tree with an integer-sum reduction stream.
    pub fn new(topology: Topology, batch: BatchPolicy) -> BenchTree {
        let Deployment { network, backends } = NetworkBuilder::new(topology)
            .batch_policy(batch)
            .launch()
            .expect("instantiate bench tree");
        let threads: Vec<_> = backends
            .into_iter()
            .map(|be| {
                std::thread::spawn(move || loop {
                    match be.recv() {
                        Ok((pkt, sid)) => {
                            if pkt.tag() == GO {
                                let waves = pkt.get(0).and_then(Value::as_i32).unwrap_or(1);
                                for w in 0..waves {
                                    if be.send(sid, GO, "%d", vec![Value::Int32(w)]).is_err() {
                                        return;
                                    }
                                }
                            }
                        }
                        Err(_) => return,
                    }
                })
            })
            .collect();
        let comm = network.broadcast_communicator();
        let sum = network.registry().id_of("d_sum").expect("built-in");
        let stream = network
            .new_stream(&comm, sum, SyncMode::WaitForAll)
            .expect("bench stream");
        BenchTree {
            net: network,
            stream,
            threads,
        }
    }

    /// One broadcast + one reduction (the Figure 7b operation).
    pub fn roundtrip(&self) {
        self.stream
            .send(GO, "%d", vec![Value::Int32(1)])
            .expect("broadcast");
        self.stream
            .recv_timeout(Duration::from_secs(60))
            .expect("reduction");
    }

    /// One broadcast triggering `waves` pipelined reductions; blocks
    /// until all have arrived (the Figure 7c workload).
    pub fn reduction_waves(&self, waves: usize) {
        self.stream
            .send(GO, "%d", vec![Value::Int32(waves as i32)])
            .expect("broadcast");
        for _ in 0..waves {
            self.stream
                .recv_timeout(Duration::from_secs(60))
                .expect("reduction wave");
        }
    }

    /// Tears the tree down.
    pub fn shutdown(self) {
        self.net.shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Collects an in-band metrics snapshot from a live tree and prints
/// the internal per-hop breakdown: per node, packets moved in each
/// direction and the mean in-node hop latencies, plus per-filter
/// synchronization-wait and execution times (the paper's §3.2 internal
/// costs). Hop columns are populated only while tracing is on
/// (`MRNET_TRACE=1` or `mrnet::obs::trace::set_enabled(true)`).
pub fn print_hop_breakdown(net: &Network) {
    let snap = match net.metrics_snapshot(Duration::from_secs(5)) {
        Ok(s) => s,
        Err(e) => {
            println!("(metrics snapshot unavailable: {e})");
            return;
        }
    };
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "rank", "up.recv", "up.sent", "down.recv", "down.sent", "hop.up(us)", "hop.down(us)"
    );
    for rank in snap.ranks() {
        let Some(node) = snap.node(rank) else {
            continue;
        };
        let count = |name: &str| node.get(name).unwrap_or(0);
        let mean = |name: &str| node.hist_mean_us(name).unwrap_or(0.0);
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12.1} {:>12.1}",
            rank,
            count("up.pkts.recv"),
            count("up.pkts.sent"),
            count("down.pkts.recv"),
            count("down.pkts.sent"),
            mean("hop_up_us"),
            mean("hop_down_us"),
        );
    }
    for rank in snap.ranks() {
        let Some(node) = snap.node(rank) else {
            continue;
        };
        for (name, waves) in node
            .entries()
            .filter(|(n, _)| n.starts_with("filter.") && n.ends_with(".waves"))
            .map(|(n, v)| (n.to_owned(), v))
            .collect::<Vec<_>>()
        {
            let base = name.trim_end_matches(".waves");
            let wait = node.hist_mean_us(&format!("{base}.wait_us")).unwrap_or(0.0);
            let exec = node.hist_mean_us(&format!("{base}.exec_us")).unwrap_or(0.0);
            println!(
                "  node {rank}: {base}: {waves} waves, mean wait {wait:.1} us, mean exec {exec:.1} us"
            );
        }
    }
}

/// Renders a bucketed quantile for display: the catch-all bucket has
/// no finite upper bound.
fn fmt_quantile(us: u64) -> String {
    if us == u64::MAX {
        ">max".to_owned()
    } else {
        us.to_string()
    }
}

/// Prints the per-hop latency table reconstructed by the front-end's
/// [`TraceAssembler`] from sampled trace envelopes: per-rank dwell and
/// per-edge transit percentiles (skew-corrected), plus the clock
/// offset/RTT estimates behind the correction. This is the
/// trace-driven replacement for the ad-hoc per-node breakdown — it
/// answers "which hop made this wave slow?" directly. Requires
/// tracing on (`MRNET_TRACE=1` or `trace::set_enabled(true)`) while
/// the waves ran.
pub fn print_trace_latency_table(net: &Network) {
    let asm = net.trace_assembler();
    let hops = asm.hop_histograms();
    if hops.is_empty() {
        println!("(no traced waves assembled — enable tracing with MRNET_TRACE=1)");
        return;
    }
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "rank", "waves", "p50(us)", "p95(us)", "p99(us)", "mean(us)"
    );
    for (rank, h) in hops {
        let s = h.snapshot();
        println!(
            "{:>6} {:>8} {:>10} {:>10} {:>10} {:>10.1}",
            rank,
            s.count,
            fmt_quantile(s.quantile_le_us(0.50)),
            fmt_quantile(s.quantile_le_us(0.95)),
            fmt_quantile(s.quantile_le_us(0.99)),
            s.mean_us(),
        );
    }
    println!("\nper-edge transit latency (skew-corrected):");
    println!(
        "{:>12} {:>8} {:>10} {:>10} {:>10}",
        "edge", "waves", "p50(us)", "p95(us)", "p99(us)"
    );
    for ((from, to), h) in asm.edge_histograms() {
        let s = h.snapshot();
        println!(
            "{:>12} {:>8} {:>10} {:>10} {:>10}",
            format!("{from}->{to}"),
            s.count,
            fmt_quantile(s.quantile_le_us(0.50)),
            fmt_quantile(s.quantile_le_us(0.95)),
            fmt_quantile(s.quantile_le_us(0.99)),
        );
    }
    let synced = asm.synced_ranks();
    if !synced.is_empty() {
        println!("\nclock estimates (vs front-end):");
        for rank in synced {
            let c = asm.clock_of(rank);
            println!(
                "  rank {rank}: offset {:+} us, ping rtt {} us",
                c.offset_us, c.rtt_us
            );
        }
    }
}

/// Prints a table header: first column plus one column per series.
pub fn print_header(xlabel: &str, series: &[String]) {
    print!("{xlabel:>10}");
    for s in series {
        print!(" {s:>14}");
    }
    println!();
}

/// Prints one table row.
pub fn print_row(x: impl std::fmt::Display, values: &[f64]) {
    print!("{x:>10}");
    for v in values {
        print!(" {v:>14.4}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_have_requested_backends() {
        assert_eq!(experiment_topology(None, 10).num_backends(), 10);
        assert_eq!(experiment_topology(Some(4), 64).num_backends(), 64);
        assert_eq!(experiment_topology(Some(8), 512).num_backends(), 512);
    }

    #[test]
    fn labels() {
        assert_eq!(fanout_label(None), "flat");
        assert_eq!(fanout_label(Some(8)), "8-way");
    }

    #[test]
    fn bench_tree_round_trips() {
        let tree = BenchTree::new(experiment_topology(Some(2), 4), BatchPolicy::default());
        tree.roundtrip();
        tree.reduction_waves(5);
        tree.shutdown();
    }
}
