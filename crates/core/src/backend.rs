//! The tool back-end API.
//!
//! Mirrors the back-end side of the paper's Figure 2: a back-end joins
//! the network (`MR_Network::init_backend`), performs stream-anonymous
//! receives that yield both the data and the stream it arrived on, and
//! sends scalar values upstream on those streams.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mrnet_obs::tracectx::{self, TraceEnvelope, TraceSampler};
use mrnet_obs::{log_warn, NodeMetrics};
use mrnet_packet::{Packet, PacketBuilder, Rank, StreamId, Value};
use mrnet_transport::{LocalFabric, RetryPolicy, SharedConnection};

use crate::error::{MrnetError, Result};
use crate::event::TopologyEvent;
use crate::introspect::{self, METRICS_REQUEST, METRICS_STREAM};
use crate::proto::{decode_frame, encode_data_frame, encode_traced_data_frame, Control, Frame};
use crate::streams::StreamDef;

/// A tool back-end (daemon) endpoint of the MRNet network.
pub struct Backend {
    rank: Rank,
    conn: SharedConnection,
    streams: Mutex<HashMap<StreamId, StreamDef>>,
    pending: Mutex<VecDeque<Packet>>,
    down: Mutex<bool>,
    metrics: Arc<NodeMetrics>,
    /// Topology events relayed down the tree, queued until the tool
    /// polls [`Backend::try_next_event`].
    events: Mutex<VecDeque<TopologyEvent>>,
    /// Cumulative set of ranks reported failed.
    failed: Mutex<BTreeSet<Rank>>,
    /// Decides which upstream sends originate a sampled trace wave.
    sampler: TraceSampler,
}

impl Backend {
    /// Joins the network over an established connection to the parent
    /// process, announcing this back-end's rank via a subtree report
    /// (§2.5). Used by mode-1 instantiation.
    pub(crate) fn new(rank: Rank, conn: SharedConnection) -> Result<Backend> {
        conn.send(
            Control::SubtreeReport {
                endpoints: vec![rank],
            }
            .to_frame(),
        )?;
        Ok(Backend {
            rank,
            conn,
            streams: Mutex::new(HashMap::new()),
            pending: Mutex::new(VecDeque::new()),
            down: Mutex::new(false),
            metrics: Arc::new(NodeMetrics::new()),
            events: Mutex::new(VecDeque::new()),
            failed: Mutex::new(BTreeSet::new()),
            sampler: TraceSampler::new(),
        })
    }

    /// Mode-2 instantiation: an externally created back-end connects
    /// to a waiting leaf process through the in-process rendezvous
    /// fabric (the analogue of "the leaf processes' host names and
    /// connection port numbers … provided via the environment", §2.5).
    pub fn attach(fabric: &LocalFabric, endpoint: &str, rank: Rank) -> Result<Backend> {
        let conn = fabric.connect(endpoint, &format!("backend-{rank}"))?;
        let conn: SharedConnection = std::sync::Arc::from(conn);
        conn.send(Control::Attach { rank }.to_frame())?;
        Backend::new(rank, conn)
    }

    /// Mode-2 instantiation over TCP: connect to a leaf process's
    /// published address, retrying transient refusals (the §2.5
    /// connect-back race) per `MRNET_CONNECT_RETRIES`.
    pub fn attach_tcp(addr: &str, rank: Rank) -> Result<Backend> {
        let (conn, retries) = RetryPolicy::from_env()
            .connect(addr)
            .map_err(MrnetError::Transport)?;
        let conn: SharedConnection = std::sync::Arc::new(conn);
        conn.send(Control::Attach { rank }.to_frame())?;
        let be = Backend::new(rank, conn)?;
        be.metrics.connect_retries.add(u64::from(retries));
        Ok(be)
    }

    /// This back-end's rank (its end-point identity).
    pub fn rank(&self) -> Rank {
        self.rank
    }

    fn note_shutdown(&self) {
        *self.down.lock() = true;
    }

    /// This back-end's metrics instruments. Updated as the tool thread
    /// pumps the connection; reported upstream automatically whenever
    /// an introspection request reaches this leaf.
    pub fn metrics(&self) -> Arc<NodeMetrics> {
        self.metrics.clone()
    }

    /// Answers an in-band metrics request with this back-end's own
    /// section. The reply bypasses [`Backend::send_packet`]'s stream
    /// checks and counters: introspection traffic reports the network,
    /// it is not part of it.
    fn answer_metrics(&self, request: &Packet) {
        let Ok((req_id, _timeout)) = introspect::decode_request(request) else {
            log_warn!(self.rank, "dropping malformed metrics request");
            return;
        };
        let section = self.metrics.snapshot(self.rank);
        let reply = introspect::encode_reply(req_id, std::slice::from_ref(&section));
        let _ = self
            .conn
            .send(encode_data_frame(std::slice::from_ref(&reply)));
    }

    /// Queues a frame's data packets for [`Backend::recv`], answering
    /// any in-band metrics requests among them.
    fn ingest_packets(&self, packets: Vec<Packet>) {
        let mut requests = Vec::new();
        let mut pending = self.pending.lock();
        for p in packets {
            if p.stream_id() == METRICS_STREAM {
                if p.tag() == METRICS_REQUEST {
                    requests.push(p);
                }
                continue;
            }
            self.metrics.down_pkts_recv.inc();
            self.metrics.stream_counters(p.stream_id()).down_pkts.inc();
            pending.push_back(p);
        }
        drop(pending);
        for request in &requests {
            self.answer_metrics(request);
        }
    }

    fn handle_frame(&self, frame: bytes::Bytes) -> Result<()> {
        match decode_frame(frame)? {
            Frame::Data(packets) => self.ingest_packets(packets),
            Frame::Traced(packets, envelopes) => {
                // A sampled down-wave ends here: stamp the terminal hop
                // and report the completed envelope back up the tree so
                // the front-end's assembler can reconstruct the wave.
                let recv_us = tracectx::wall_us();
                self.metrics.trace_frames.inc();
                self.ingest_packets(packets);
                for mut env in envelopes {
                    env.add_hop(self.rank, recv_us, tracectx::wall_us());
                    self.metrics.trace_hops.inc();
                    let report = introspect::encode_trace_report(&env);
                    let _ = self
                        .conn
                        .send(encode_data_frame(std::slice::from_ref(&report)));
                }
            }
            Frame::Control(pkt) => {
                let control = Control::from_packet(&pkt)?;
                match control {
                    Control::NewStream { .. } => {
                        let def = StreamDef::from_control(&control).expect("NewStream parses");
                        self.streams.lock().insert(def.id, def);
                    }
                    Control::DeleteStream { stream_id } => {
                        self.streams.lock().remove(&stream_id);
                    }
                    Control::RankFailed { rank, subtree } => {
                        // A failure elsewhere in the tree, relayed down
                        // so this back-end can adapt (e.g. note that a
                        // sibling will never contribute again).
                        self.metrics.events_delivered.inc();
                        let mut failed = self.failed.lock();
                        failed.insert(rank);
                        failed.extend(subtree.iter().copied());
                        drop(failed);
                        self.events
                            .lock()
                            .push_back(TopologyEvent::RankFailed { rank, subtree });
                    }
                    Control::ClockPing { t0_us } => {
                        // NTP-style echo: timestamp arrival and
                        // departure so the parent can estimate this
                        // leaf's clock offset and the link RTT.
                        let t1_us = tracectx::wall_us();
                        let _ = self.conn.send(
                            Control::ClockPong {
                                t0_us,
                                t1_us,
                                t2_us: tracectx::wall_us(),
                            }
                            .to_frame(),
                        );
                    }
                    Control::Shutdown => {
                        self.note_shutdown();
                        return Err(MrnetError::Shutdown);
                    }
                    other => {
                        return Err(MrnetError::Protocol(format!(
                            "unexpected control at back-end: {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Stream-anonymous blocking receive: the next data packet and the
    /// id of the stream it arrived on (Figure 2's
    /// `MR_Stream::recv(&val, &stream)`).
    pub fn recv(&self) -> Result<(Packet, StreamId)> {
        loop {
            if let Some(p) = self.pending.lock().pop_front() {
                let sid = p.stream_id();
                return Ok((p, sid));
            }
            if *self.down.lock() {
                return Err(MrnetError::Shutdown);
            }
            let frame = self.conn.recv().map_err(|_| {
                self.note_shutdown();
                MrnetError::Shutdown
            })?;
            self.handle_frame(frame)?;
        }
    }

    /// Like [`Backend::recv`] but gives up after `timeout`, returning
    /// `Ok(None)`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Packet, StreamId)>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(p) = self.pending.lock().pop_front() {
                let sid = p.stream_id();
                return Ok(Some((p, sid)));
            }
            if *self.down.lock() {
                return Err(MrnetError::Shutdown);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.conn.recv_timeout(deadline - now) {
                Ok(Some(frame)) => self.handle_frame(frame)?,
                Ok(None) => return Ok(None),
                Err(_) => {
                    self.note_shutdown();
                    return Err(MrnetError::Shutdown);
                }
            }
        }
    }

    /// Sends values upstream on `stream` (Figure 2's
    /// `stream->send("%f", value)`).
    pub fn send(&self, stream: StreamId, tag: i32, fmt: &str, values: Vec<Value>) -> Result<()> {
        let packet = Packet::with_fmt_str(stream, tag, fmt, values)?.with_src(self.rank);
        self.send_packet(packet)
    }

    /// Sends a pre-built packet upstream.
    pub fn send_packet(&self, packet: Packet) -> Result<()> {
        if *self.down.lock() {
            return Err(MrnetError::Shutdown);
        }
        let sid = packet.stream_id();
        if !self.streams.lock().contains_key(&sid) {
            return Err(MrnetError::UnknownStream(sid));
        }
        let packet = packet.with_src(self.rank);
        self.metrics.up_pkts_sent.inc();
        self.metrics.stream_counters(sid).up_pkts.inc();
        self.metrics
            .local_up_bytes
            .add(packet.encoded_size_hint() as u64);
        // One in `MRNET_TRACE_SAMPLE` sends originates a traced
        // up-wave; the rest pay zero trailer bytes on the wire.
        let frame = if self.sampler.sample() {
            let env = TraceEnvelope::originate(self.rank, sid);
            self.metrics.trace_frames.inc();
            self.metrics.trace_hops.inc();
            encode_traced_data_frame(std::slice::from_ref(&packet), &[env])
        } else {
            encode_data_frame(std::slice::from_ref(&packet))
        };
        self.conn.send(frame).map_err(MrnetError::Transport)
    }

    /// Convenience: build and send a packet from Rust values.
    pub fn send_values(
        &self,
        stream: StreamId,
        tag: i32,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<()> {
        let mut builder = PacketBuilder::new(stream, tag).src(self.rank);
        for v in values {
            builder = builder.push(v);
        }
        self.send_packet(builder.build())
    }

    /// The definition of a stream this back-end has learned about.
    pub fn stream_def(&self, stream: StreamId) -> Option<StreamDef> {
        self.streams.lock().get(&stream).cloned()
    }

    /// Ids of all streams known to this back-end.
    pub fn known_streams(&self) -> Vec<StreamId> {
        let mut v: Vec<StreamId> = self.streams.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// True once the network has shut down.
    pub fn is_down(&self) -> bool {
        *self.down.lock()
    }

    /// The next queued topology event, if any. Events are enqueued as
    /// the tool thread pumps the connection (via [`Backend::recv`] /
    /// [`Backend::recv_timeout`]); a back-end that never receives will
    /// not observe events.
    pub fn try_next_event(&self) -> Option<TopologyEvent> {
        self.events.lock().pop_front()
    }

    /// Every rank this back-end has heard reported failed, sorted.
    pub fn failed_ranks(&self) -> Vec<Rank> {
        self.failed.lock().iter().copied().collect()
    }
}
