//! `mrnet_commnode` — the standalone MRNet internal-process program.
//!
//! "MRNet has two main components: libmrnet, a library that is linked
//! into a tool's front-end and back-end components, and
//! mrnet_commnode, a program that runs on intermediate nodes
//! interposed between the front-end and back-ends" (§2).
//!
//! This binary carries the built-in filter set; tools with custom
//! filters ship their own wrapper around [`mrnet::commnode::run`]
//! (see `paradyn_commnode` in the paradyn crate).
//!
//! Usage: `mrnet_commnode --parent HOST:PORT --rank N`

use std::process::ExitCode;

use mrnet::commnode;
use mrnet::FilterRegistry;
use mrnet_obs::log_error;

fn main() -> ExitCode {
    let result = commnode::parse_args(std::env::args().skip(1)).and_then(|(parent, rank)| {
        let exe = std::env::current_exe().map_err(|e| e.to_string())?;
        commnode::run(&parent, rank, FilterRegistry::with_builtins(), &exe)
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            log_error!("commnode", "{msg}");
            ExitCode::FAILURE
        }
    }
}
