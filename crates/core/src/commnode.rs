//! The reusable `mrnet_commnode` implementation.
//!
//! The binary in `src/bin/mrnet_commnode.rs` wraps [`run`] with the
//! built-in filter registry; tools that deploy custom filters build
//! their own commnode binary wrapping [`run`] with an extended
//! registry — the process-mode analogue of installing a filter shared
//! object on every host (§2.4).

use std::sync::Arc;

use mrnet_filters::FilterRegistry;
use mrnet_packet::BatchPolicy;
use mrnet_transport::{Listener, RetryPolicy, SharedConnection, TcpTransportListener};

use crate::internal::process::NodeLoop;
use crate::procspawn::{accept_children, plan_children, spawn_internal_children};
use crate::proto::{decode_frame, Control, Frame};
use crate::slice::SubtreeSlice;

/// Parses `--parent HOST:PORT --rank N` style arguments.
pub fn parse_args(args: impl Iterator<Item = String>) -> Result<(String, u32), String> {
    let mut parent = None;
    let mut rank = None;
    let mut args = args;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--parent" => parent = args.next(),
            "--rank" => rank = args.next(),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let parent = parent.ok_or("missing --parent HOST:PORT")?;
    let rank = rank
        .ok_or("missing --rank N")?
        .parse::<u32>()
        .map_err(|e| format!("bad rank: {e}"))?;
    Ok((parent, rank))
}

/// Runs one internal process to completion: connect to the parent,
/// receive the configuration slice, instantiate the subtree (spawning
/// `commnode_exe` for internal children), then run the event loop
/// until shutdown.
pub fn run(
    parent_addr: &str,
    rank: u32,
    registry: FilterRegistry,
    commnode_exe: &std::path::Path,
) -> Result<(), String> {
    // The connect-back race (§2.5): the parent may not be accepting
    // yet when this child starts dialing; retry with backoff per
    // `MRNET_CONNECT_RETRIES` before declaring the parent unreachable.
    let (conn, retries) = RetryPolicy::from_env()
        .connect(parent_addr)
        .map_err(|e| format!("cannot reach parent {parent_addr}: {e}"))?;
    let parent: SharedConnection = Arc::new(conn);
    parent
        .send(Control::Attach { rank }.to_frame())
        .map_err(|e| format!("attach handshake failed: {e}"))?;

    let frame = parent
        .recv()
        .map_err(|e| format!("no Launch message: {e}"))?;
    let view = match decode_frame(frame).map_err(|e| e.to_string())? {
        Frame::Control(pkt) => match Control::from_packet(&pkt).map_err(|e| e.to_string())? {
            Control::Launch { ranks, parents } => {
                SubtreeSlice::from_wire(ranks, parents).map_err(|e| e.to_string())?
            }
            other => return Err(format!("expected Launch, got {other:?}")),
        },
        Frame::Data(_) | Frame::Traced(..) => return Err("data frame before Launch".into()),
    };
    if view.my_rank() != rank {
        return Err(format!(
            "launched as rank {rank} but slice is rooted at {}",
            view.my_rank()
        ));
    }

    let listener = TcpTransportListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let plan = plan_children(&view, &listener.addr());
    let mut spawned = spawn_internal_children(&plan, commnode_exe, &listener.addr())
        .map_err(|e| e.to_string())?;
    if !plan.advertise.is_empty() {
        let (ranks, endpoints): (Vec<_>, Vec<_>) = plan.advertise.iter().cloned().unzip();
        parent
            .send(Control::AttachInfo { ranks, endpoints }.to_frame())
            .map_err(|e| format!("cannot advertise attach points: {e}"))?;
    }
    let children = accept_children(&listener, &view, &plan).map_err(|e| e.to_string())?;

    let mut node = NodeLoop::new(
        rank,
        registry,
        Some(parent),
        children,
        None,
        BatchPolicy::default(),
        None,
        NodeLoop::inbox(),
    );
    node.set_child_ranks(plan.order.clone());
    node.metrics().connect_retries.add(u64::from(retries));
    node.setup().map_err(|e| format!("setup failed: {e}"))?;
    node.run();

    for child in &mut spawned {
        let _ = child.wait();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_owned)
    }

    #[test]
    fn parses_valid_args() {
        let (parent, rank) = parse_args(argv("--parent 10.0.0.1:5000 --rank 12")).unwrap();
        assert_eq!(parent, "10.0.0.1:5000");
        assert_eq!(rank, 12);
        // Order-independent.
        let (parent, rank) = parse_args(argv("--rank 3 --parent h:1")).unwrap();
        assert_eq!(parent, "h:1");
        assert_eq!(rank, 3);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(parse_args(argv("--parent h:1")).is_err());
        assert!(parse_args(argv("--rank 4")).is_err());
        assert!(parse_args(argv("--rank nope --parent h:1")).is_err());
        assert!(parse_args(argv("--bogus x")).is_err());
    }

    #[test]
    fn wrong_first_message_errors() {
        use crate::proto::Control;
        use mrnet_transport::{Listener, TcpTransportListener};
        // A fake parent that sends Shutdown instead of Launch.
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let child = std::thread::spawn(move || {
            run(
                &addr,
                4,
                FilterRegistry::with_builtins(),
                std::path::Path::new("/bin/true"),
            )
        });
        let conn = listener.accept().unwrap();
        let _attach = conn.recv().unwrap();
        conn.send(Control::Shutdown.to_frame()).unwrap();
        let err = child.join().unwrap().expect_err("must fail");
        assert!(err.contains("expected Launch"), "{err}");
    }

    #[test]
    fn rank_mismatch_errors() {
        use crate::proto::Control;
        use mrnet_transport::{Listener, TcpTransportListener};
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let child = std::thread::spawn(move || {
            run(
                &addr,
                4,
                FilterRegistry::with_builtins(),
                std::path::Path::new("/bin/true"),
            )
        });
        let conn = listener.accept().unwrap();
        let _attach = conn.recv().unwrap();
        // Slice rooted at a different rank.
        conn.send(
            Control::Launch {
                ranks: vec![9, 10],
                parents: vec![u32::MAX, 0],
            }
            .to_frame(),
        )
        .unwrap();
        let err = child.join().unwrap().expect_err("must fail");
        assert!(err.contains("rooted at 9"), "{err}");
    }

    #[test]
    fn unreachable_parent_errors() {
        let err = run(
            "127.0.0.1:1", // almost certainly nothing listening
            5,
            FilterRegistry::with_builtins(),
            std::path::Path::new("/bin/true"),
        )
        .expect_err("must fail");
        assert!(err.contains("cannot reach parent"));
    }
}
