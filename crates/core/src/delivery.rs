//! Delivery of upstream packets to the front-end's user threads.
//!
//! The root node loop pushes fully-aggregated packets here; user
//! threads block in [`Delivery::recv_on`] (per-stream receive, the
//! paper's `stream->recv`) or [`Delivery::recv_any`] (stream-anonymous
//! receive). Supports multiple concurrent receivers via condvar
//! wake-ups.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use mrnet_packet::{Packet, StreamId};

use crate::error::{MrnetError, Result};

#[derive(Default)]
struct State {
    per_stream: HashMap<StreamId, VecDeque<Packet>>,
    /// Arrival order of stream ids, for fair any-stream receives.
    /// Entries may be stale (their packet already taken by a
    /// per-stream receive); stale entries are skipped.
    order: VecDeque<StreamId>,
    /// Lifetime count of packets delivered per stream (not reduced by
    /// consumption) — the front-end's receive counters.
    received: HashMap<StreamId, u64>,
    /// Streams whose every end-point has failed: once drained, receives
    /// on them return [`MrnetError::AllEndpointsFailed`] instead of
    /// blocking forever for packets that can never come.
    failed: HashSet<StreamId>,
    closed: bool,
}

/// Thread-safe packet mailbox for the front-end.
#[derive(Default)]
pub struct Delivery {
    state: Mutex<State>,
    cv: Condvar,
}

/// A point-in-time view of one stream's standing in the mailbox,
/// letting callers distinguish "no packet yet" from "this stream has
/// never delivered anything" and from "the network is down".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStreamStats {
    /// Packets currently queued (deposited but not yet consumed).
    pub queued: usize,
    /// Lifetime packets delivered, including consumed ones.
    pub received: u64,
    /// True once at least one packet has ever arrived on the stream.
    pub seen: bool,
    /// True once the mailbox has been closed by shutdown. Queued
    /// packets remain receivable after close.
    pub closed: bool,
}

impl Delivery {
    /// Creates an empty mailbox.
    pub fn new() -> Delivery {
        Delivery::default()
    }

    /// Deposits a packet (called by the root node loop).
    pub fn push(&self, packet: Packet) {
        let mut st = self.state.lock();
        let sid = packet.stream_id();
        st.per_stream.entry(sid).or_default().push_back(packet);
        st.order.push_back(sid);
        *st.received.entry(sid).or_insert(0) += 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Deposits a whole wave of packets under one lock acquisition and
    /// one receiver wake-up — the root's counterpart of a batched
    /// frame. FIFO order within the wave is preserved.
    pub fn push_many(&self, packets: impl IntoIterator<Item = Packet>) {
        let mut st = self.state.lock();
        let mut any = false;
        for packet in packets {
            let sid = packet.stream_id();
            st.per_stream.entry(sid).or_default().push_back(packet);
            st.order.push_back(sid);
            *st.received.entry(sid).or_insert(0) += 1;
            any = true;
        }
        drop(st);
        if any {
            self.cv.notify_all();
        }
    }

    /// Lifetime count of packets delivered on `stream` (including ones
    /// already consumed by receives).
    pub fn received_on(&self, stream: StreamId) -> u64 {
        self.state
            .lock()
            .received
            .get(&stream)
            .copied()
            .unwrap_or(0)
    }

    /// Marks the network as shut down; blocked receivers return
    /// [`MrnetError::Shutdown`] once drained.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Marks `stream` as having lost its every end-point. Queued
    /// packets remain receivable; once the queue drains, blocked and
    /// future receives on the stream return
    /// [`MrnetError::AllEndpointsFailed`].
    pub fn fail_stream(&self, stream: StreamId) {
        self.state.lock().failed.insert(stream);
        self.cv.notify_all();
    }

    /// True once [`Delivery::fail_stream`] was called for `stream`.
    pub fn is_failed(&self, stream: StreamId) -> bool {
        self.state.lock().failed.contains(&stream)
    }

    /// One stream's mailbox standing. An all-default result with
    /// `seen == false` means the stream has never delivered a packet —
    /// distinct from a drained stream (`seen`, zero `queued`) and from
    /// a shut-down mailbox (`closed`).
    pub fn stream_stats(&self, stream: StreamId) -> DeliveryStreamStats {
        let st = self.state.lock();
        let received = st.received.get(&stream).copied().unwrap_or(0);
        DeliveryStreamStats {
            queued: st.per_stream.get(&stream).map_or(0, VecDeque::len),
            received,
            // `per_stream` keeps a (possibly empty) queue for every
            // stream that ever delivered, so either signal implies
            // the stream has been seen.
            seen: received > 0 || st.per_stream.contains_key(&stream),
            closed: st.closed,
        }
    }

    /// Mailbox-wide totals: `(packets currently queued, lifetime
    /// packets delivered)` across all streams.
    pub fn totals(&self) -> (usize, u64) {
        let st = self.state.lock();
        let queued = st.per_stream.values().map(VecDeque::len).sum();
        let received = st.received.values().sum();
        (queued, received)
    }

    /// Packets currently queued for `stream`.
    pub fn pending_on(&self, stream: StreamId) -> usize {
        self.state
            .lock()
            .per_stream
            .get(&stream)
            .map_or(0, VecDeque::len)
    }

    /// Receives the next packet on `stream`, blocking up to `timeout`
    /// (forever if `None`).
    pub fn recv_on(&self, stream: StreamId, timeout: Option<Duration>) -> Result<Packet> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut st = self.state.lock();
        loop {
            if let Some(q) = st.per_stream.get_mut(&stream) {
                if let Some(p) = q.pop_front() {
                    return Ok(p);
                }
            }
            if st.failed.contains(&stream) {
                return Err(MrnetError::AllEndpointsFailed);
            }
            if st.closed {
                return Err(MrnetError::Shutdown);
            }
            match deadline {
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d || self.cv.wait_until(&mut st, d).timed_out() {
                        return Err(MrnetError::Timeout);
                    }
                }
                None => self.cv.wait(&mut st),
            }
        }
    }

    /// Receives the next packet on any stream (arrival order),
    /// blocking up to `timeout` (forever if `None`).
    pub fn recv_any(&self, timeout: Option<Duration>) -> Result<Packet> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut st = self.state.lock();
        loop {
            while let Some(sid) = st.order.pop_front() {
                if let Some(p) = st.per_stream.get_mut(&sid).and_then(VecDeque::pop_front) {
                    return Ok(p);
                }
                // Stale entry (taken by a per-stream receive): skip.
            }
            if st.closed {
                return Err(MrnetError::Shutdown);
            }
            match deadline {
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d || self.cv.wait_until(&mut st, d).timed_out() {
                        return Err(MrnetError::Timeout);
                    }
                }
                None => self.cv.wait(&mut st),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_packet::PacketBuilder;
    use std::sync::Arc;

    fn pkt(sid: StreamId, v: i32) -> Packet {
        PacketBuilder::new(sid, 0).push(v).build()
    }

    #[test]
    fn per_stream_fifo() {
        let d = Delivery::new();
        d.push(pkt(1, 10));
        d.push(pkt(1, 11));
        d.push(pkt(2, 20));
        assert_eq!(
            d.recv_on(1, None).unwrap().get(0).unwrap().as_i32(),
            Some(10)
        );
        assert_eq!(
            d.recv_on(1, None).unwrap().get(0).unwrap().as_i32(),
            Some(11)
        );
        assert_eq!(
            d.recv_on(2, None).unwrap().get(0).unwrap().as_i32(),
            Some(20)
        );
    }

    #[test]
    fn push_many_preserves_order_and_counts() {
        let d = Delivery::new();
        d.push_many([pkt(1, 10), pkt(2, 20), pkt(1, 11)]);
        d.push_many(std::iter::empty()); // no-op, no spurious wake-up
        assert_eq!(d.totals(), (3, 3));
        assert_eq!(d.recv_any(None).unwrap().stream_id(), 1);
        assert_eq!(d.recv_any(None).unwrap().stream_id(), 2);
        assert_eq!(
            d.recv_on(1, None).unwrap().get(0).unwrap().as_i32(),
            Some(11)
        );
    }

    #[test]
    fn any_receives_in_arrival_order() {
        let d = Delivery::new();
        d.push(pkt(2, 20));
        d.push(pkt(1, 10));
        assert_eq!(d.recv_any(None).unwrap().stream_id(), 2);
        assert_eq!(d.recv_any(None).unwrap().stream_id(), 1);
    }

    #[test]
    fn any_skips_entries_taken_by_stream_recv() {
        let d = Delivery::new();
        d.push(pkt(1, 10));
        d.push(pkt(2, 20));
        assert_eq!(
            d.recv_on(1, None).unwrap().get(0).unwrap().as_i32(),
            Some(10)
        );
        // The order entry for stream 1 is stale; recv_any must deliver
        // stream 2's packet.
        assert_eq!(d.recv_any(None).unwrap().stream_id(), 2);
    }

    #[test]
    fn timeout_when_empty() {
        let d = Delivery::new();
        let r = d.recv_on(1, Some(Duration::from_millis(10)));
        assert_eq!(r, Err(MrnetError::Timeout));
        let r = d.recv_any(Some(Duration::from_millis(10)));
        assert_eq!(r, Err(MrnetError::Timeout));
    }

    #[test]
    fn close_wakes_blockers() {
        let d = Arc::new(Delivery::new());
        let d2 = d.clone();
        let h = std::thread::spawn(move || d2.recv_on(1, None));
        std::thread::sleep(Duration::from_millis(20));
        d.close();
        assert_eq!(h.join().unwrap(), Err(MrnetError::Shutdown));
        assert!(d.is_closed());
    }

    #[test]
    fn drain_after_close() {
        let d = Delivery::new();
        d.push(pkt(1, 5));
        d.close();
        assert!(d.recv_on(1, None).is_ok());
        assert_eq!(d.recv_on(1, None), Err(MrnetError::Shutdown));
    }

    #[test]
    fn blocked_receiver_wakes_on_push() {
        let d = Arc::new(Delivery::new());
        let d2 = d.clone();
        let h = std::thread::spawn(move || d2.recv_any(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(20));
        d.push(pkt(3, 1));
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.stream_id(), 3);
    }

    #[test]
    fn pending_count() {
        let d = Delivery::new();
        assert_eq!(d.pending_on(1), 0);
        d.push(pkt(1, 0));
        d.push(pkt(1, 1));
        assert_eq!(d.pending_on(1), 2);
    }

    #[test]
    fn received_counter_survives_consumption() {
        let d = Delivery::new();
        assert_eq!(d.received_on(1), 0);
        d.push(pkt(1, 0));
        d.push(pkt(1, 1));
        d.recv_on(1, None).unwrap();
        assert_eq!(d.received_on(1), 2);
        assert_eq!(d.pending_on(1), 1);
        assert_eq!(d.received_on(9), 0);
    }

    #[test]
    fn stream_stats_distinguish_unseen_from_drained() {
        let d = Delivery::new();
        // Never-seen stream: all-default, not merely "empty".
        assert_eq!(d.stream_stats(7), DeliveryStreamStats::default());
        d.push(pkt(7, 0));
        let st = d.stream_stats(7);
        assert!(st.seen);
        assert_eq!(st.queued, 1);
        assert_eq!(st.received, 1);
        assert!(!st.closed);
        d.recv_on(7, None).unwrap();
        // Drained: still seen, nothing queued, lifetime count intact.
        let st = d.stream_stats(7);
        assert!(st.seen);
        assert_eq!(st.queued, 0);
        assert_eq!(st.received, 1);
    }

    #[test]
    fn stream_stats_report_pending_after_close() {
        let d = Delivery::new();
        d.push(pkt(3, 1));
        d.close();
        let st = d.stream_stats(3);
        assert!(st.closed);
        assert_eq!(st.queued, 1);
        // The queued packet is still receivable despite the close...
        assert!(d.recv_on(3, None).is_ok());
        // ...and an unseen stream reports closed-but-unseen, so a
        // caller can tell "shut down" from "no data yet".
        let st = d.stream_stats(4);
        assert!(st.closed);
        assert!(!st.seen);
    }

    #[test]
    fn failed_stream_drains_then_errors() {
        let d = Delivery::new();
        d.push(pkt(1, 5));
        d.fail_stream(1);
        assert!(d.is_failed(1));
        // The survivor-produced packet is still receivable...
        assert!(d.recv_on(1, None).is_ok());
        // ...then the failure surfaces, distinct from Shutdown/Timeout.
        assert_eq!(d.recv_on(1, None), Err(MrnetError::AllEndpointsFailed));
        // Other streams are unaffected.
        d.push(pkt(2, 1));
        assert!(d.recv_on(2, None).is_ok());
    }

    #[test]
    fn fail_stream_wakes_blocked_receiver() {
        let d = Arc::new(Delivery::new());
        let d2 = d.clone();
        let h = std::thread::spawn(move || d2.recv_on(9, None));
        std::thread::sleep(Duration::from_millis(20));
        d.fail_stream(9);
        assert_eq!(h.join().unwrap(), Err(MrnetError::AllEndpointsFailed));
    }

    #[test]
    fn totals_aggregate_across_streams() {
        let d = Delivery::new();
        assert_eq!(d.totals(), (0, 0));
        d.push(pkt(1, 0));
        d.push(pkt(2, 0));
        d.push(pkt(2, 1));
        assert_eq!(d.totals(), (3, 3));
        d.recv_on(2, None).unwrap();
        assert_eq!(d.totals(), (2, 3));
    }
}
