//! Error types for the MRNet core library.

use std::fmt;

use mrnet_filters::FilterError;
use mrnet_packet::PacketError;
use mrnet_topology::TopologyError;
use mrnet_transport::TransportError;

/// Errors produced by the MRNet library.
#[derive(Debug, Clone, PartialEq)]
pub enum MrnetError {
    /// A packet-layer failure (encoding, format strings).
    Packet(PacketError),
    /// A topology-layer failure (parsing, validation).
    Topology(TopologyError),
    /// A transport-layer failure (I/O, closed connections).
    Transport(TransportError),
    /// A filter-layer failure (unknown filters, format mismatches).
    Filter(FilterError),
    /// An operation referenced an unknown stream id.
    UnknownStream(u32),
    /// An operation referenced an unknown end-point rank.
    UnknownEndpoint(u32),
    /// A communicator was created with no end-points.
    EmptyCommunicator,
    /// The network (or this process's view of it) has shut down.
    Shutdown,
    /// A protocol violation: an unexpected frame or control message.
    Protocol(String),
    /// A blocking receive timed out.
    Timeout,
    /// Instantiation failed.
    Instantiation(String),
    /// Every end-point of the stream being received from has failed;
    /// no further packets can ever arrive on it.
    AllEndpointsFailed,
}

impl fmt::Display for MrnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrnetError::Packet(e) => write!(f, "packet error: {e}"),
            MrnetError::Topology(e) => write!(f, "topology error: {e}"),
            MrnetError::Transport(e) => write!(f, "transport error: {e}"),
            MrnetError::Filter(e) => write!(f, "filter error: {e}"),
            MrnetError::UnknownStream(id) => write!(f, "unknown stream id {id}"),
            MrnetError::UnknownEndpoint(r) => write!(f, "unknown end-point rank {r}"),
            MrnetError::EmptyCommunicator => write!(f, "communicator has no end-points"),
            MrnetError::Shutdown => write!(f, "the MRNet network has shut down"),
            MrnetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            MrnetError::Timeout => write!(f, "receive timed out"),
            MrnetError::Instantiation(msg) => write!(f, "instantiation failed: {msg}"),
            MrnetError::AllEndpointsFailed => {
                write!(f, "every end-point of the stream has failed")
            }
        }
    }
}

impl std::error::Error for MrnetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrnetError::Packet(e) => Some(e),
            MrnetError::Topology(e) => Some(e),
            MrnetError::Transport(e) => Some(e),
            MrnetError::Filter(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PacketError> for MrnetError {
    fn from(e: PacketError) -> Self {
        MrnetError::Packet(e)
    }
}
impl From<TopologyError> for MrnetError {
    fn from(e: TopologyError) -> Self {
        MrnetError::Topology(e)
    }
}
impl From<TransportError> for MrnetError {
    fn from(e: TransportError) -> Self {
        MrnetError::Transport(e)
    }
}
impl From<FilterError> for MrnetError {
    fn from(e: FilterError) -> Self {
        MrnetError::Filter(e)
    }
}

/// Convenient result alias for MRNet operations.
pub type Result<T> = std::result::Result<T, MrnetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: MrnetError = PacketError::InvalidUtf8.into();
        assert!(e.to_string().contains("packet error"));
        assert!(std::error::Error::source(&e).is_some());
        let e: MrnetError = TransportError::Closed.into();
        assert!(e.to_string().contains("transport"));
        assert!(MrnetError::UnknownStream(7).to_string().contains('7'));
        assert!(std::error::Error::source(&MrnetError::Timeout).is_none());
    }
}
