//! Topology events: how a tool learns that part of its tree died.
//!
//! MRNet delivers failures as *events*, not errors: the front-end (and
//! each back-end) owns an event queue that the node loops feed as
//! rank-death reports propagate through the tree. Tools poll or block
//! on the queue ([`crate::Network::next_event_timeout`],
//! [`crate::Backend::try_next_event`]) and adapt — typically by
//! noting which streams shrank and continuing with the survivors.

use std::collections::BTreeSet;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use mrnet_packet::Rank;

/// A change in the shape of the overlay tree, observed from one
/// process's vantage point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyEvent {
    /// A tree node died. `rank` is the process whose connection was
    /// lost; `subtree` is every back-end end-point that became
    /// unreachable as a result (for a back-end death, just itself; for
    /// an internal node, its whole leaf set). Sorted, deduplicated.
    RankFailed {
        /// The rank whose connection died.
        rank: Rank,
        /// Every back-end rank lost with it (including `rank` itself
        /// when it is a back-end).
        subtree: Vec<Rank>,
    },
}

impl TopologyEvent {
    /// The back-end ranks this event removes from the tree.
    pub fn lost_ranks(&self) -> &[Rank] {
        match self {
            TopologyEvent::RankFailed { subtree, .. } => subtree,
        }
    }
}

/// The root node loop's record of confirmed failures, shared with the
/// [`crate::Network`] handle: an event queue tools consume plus the
/// cumulative set of failed back-end ranks (so late readers see deaths
/// that happened before they first asked).
#[derive(Debug)]
pub struct FailureLedger {
    tx: Sender<TopologyEvent>,
    rx: Receiver<TopologyEvent>,
    failed: Mutex<BTreeSet<Rank>>,
}

impl Default for FailureLedger {
    fn default() -> FailureLedger {
        FailureLedger::new()
    }
}

impl FailureLedger {
    /// An empty ledger.
    pub fn new() -> FailureLedger {
        let (tx, rx) = unbounded();
        FailureLedger {
            tx,
            rx,
            failed: Mutex::new(BTreeSet::new()),
        }
    }

    /// Records a confirmed failure and queues the event for the tool.
    /// Ranks already recorded are still re-announced (the event carries
    /// the reporter's view); the cumulative set deduplicates.
    pub fn report(&self, rank: Rank, subtree: Vec<Rank>) {
        {
            let mut failed = self.failed.lock();
            failed.insert(rank);
            failed.extend(subtree.iter().copied());
        }
        // Send can only fail if the receiver half is gone, which cannot
        // happen while `self` holds it.
        let _ = self.tx.send(TopologyEvent::RankFailed { rank, subtree });
    }

    /// The event queue's receiving half, for blocking/timeout reads.
    pub fn events(&self) -> &Receiver<TopologyEvent> {
        &self.rx
    }

    /// Every rank ever reported failed, sorted.
    pub fn failed_ranks(&self) -> Vec<Rank> {
        self.failed.lock().iter().copied().collect()
    }

    /// True if `rank` has been reported failed.
    pub fn is_failed(&self, rank: Rank) -> bool {
        self.failed.lock().contains(&rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn report_queues_event_and_accumulates() {
        let ledger = FailureLedger::new();
        assert!(ledger.failed_ranks().is_empty());
        ledger.report(3, vec![5, 6]);
        ledger.report(7, vec![7]);
        assert_eq!(ledger.failed_ranks(), vec![3, 5, 6, 7]);
        assert!(ledger.is_failed(5));
        assert!(!ledger.is_failed(4));
        let ev = ledger.events().try_recv().unwrap();
        assert_eq!(
            ev,
            TopologyEvent::RankFailed {
                rank: 3,
                subtree: vec![5, 6]
            }
        );
        assert_eq!(ev.lost_ranks(), &[5, 6]);
        assert!(ledger.events().try_recv().is_ok());
        assert!(ledger.events().try_recv().is_err());
    }

    #[test]
    fn events_support_timeout_reads() {
        let ledger = FailureLedger::new();
        assert!(ledger
            .events()
            .recv_timeout(Duration::from_millis(10))
            .is_err());
        ledger.report(1, vec![1]);
        assert!(ledger
            .events()
            .recv_timeout(Duration::from_millis(10))
            .is_ok());
    }
}
