//! Network instantiation (§2.5).
//!
//! Two modes, as in the paper:
//!
//! * **Mode 1** ([`NetworkBuilder::launch`]): MRNet creates the whole
//!   tree — internal processes *and* back-ends. Each parent creates its
//!   children (sequentially per parent, concurrently across branches),
//!   every new process connects back to its creator, and once a
//!   subtree is established its root reports the end-points reachable
//!   through it.
//! * **Mode 2** ([`NetworkBuilder::launch_internal`]): MRNet creates
//!   only the internal tree; tool back-ends are created externally (in
//!   the paper, by a job manager such as IBM POE) and attach to leaf
//!   processes using published rendezvous information.
//!
//! In this reproduction a "process" is a thread; the remote-creation
//! cost model lives in [`crate::simulate`]. Frames travel over
//! in-process channels or real TCP sockets, selected by
//! [`WireTransport`].

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};

use mrnet_filters::FilterRegistry;
use mrnet_obs::{log_error, TraceAssembler};
use mrnet_packet::{BatchPolicy, Rank};
use mrnet_topology::{Role, Topology};
use mrnet_transport::{
    Listener, LocalConnection, LocalFabric, RetryPolicy, SharedConnection, TcpTransportListener,
};

use crate::backend::Backend;
use crate::delivery::Delivery;
use crate::error::{MrnetError, Result};
use crate::event::FailureLedger;
use crate::internal::process::{Inbound, NodeLoop};
use crate::network::Network;
use crate::proto::{decode_frame, Control, Frame};

/// Which wire carries frames between the thread-processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireTransport {
    /// In-process channels (fastest; the default).
    #[default]
    Channels,
    /// Real TCP sockets on localhost, exercising the full framing
    /// stack.
    Tcp,
}

/// A fully instantiated mode-1 network: the front-end handle plus the
/// back-end handles (in topology BFS leaf order).
pub struct Deployment {
    /// The front-end's network handle.
    pub network: Network,
    /// Back-end handles, one per leaf, in topology BFS order.
    pub backends: Vec<Backend>,
}

/// Where a mode-2 back-end should attach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachPoint {
    /// The back-end rank this slot expects.
    pub rank: Rank,
    /// Rendezvous endpoint: a fabric name ([`WireTransport::Channels`])
    /// or a `host:port` address ([`WireTransport::Tcp`]).
    pub endpoint: String,
}

/// A mode-2 network whose internal tree is up but whose back-ends have
/// not all attached yet.
pub struct PendingNetwork {
    ready_rx: Receiver<Vec<Rank>>,
    cmd_tx: Sender<Inbound>,
    delivery: Arc<Delivery>,
    registry: FilterRegistry,
    ledger: Arc<FailureLedger>,
    assembler: Arc<TraceAssembler>,
    joins: Vec<JoinHandle<()>>,
    attach_points: Vec<AttachPoint>,
    fabric: LocalFabric,
    /// OS pids of the commnode processes spawned directly by the
    /// front-end ([`launch_processes`] deployments only), for tools and
    /// tests that exercise failure injection.
    commnode_pids: Vec<u32>,
    /// Rendezvous advertisements harvested from the tree during
    /// process instantiation ([`launch_processes`]); thread-based
    /// instantiation fills `attach_points` statically instead.
    attach_rx: Option<Receiver<(Rank, String)>>,
    expected_backends: usize,
}

impl PendingNetwork {
    /// The rendezvous points back-ends must attach to, in topology BFS
    /// leaf order (the paper's "leaf processes' host names and
    /// connection port numbers"). Empty for [`launch_processes`]
    /// deployments, whose advertisements arrive dynamically — use
    /// [`PendingNetwork::collect_attach_points`] there.
    pub fn attach_points(&self) -> &[AttachPoint] {
        &self.attach_points
    }

    /// Waits until every back-end slot's rendezvous advertisement has
    /// flowed up from the (still-instantiating) tree, then returns all
    /// attach points sorted by rank. Works for both instantiation
    /// styles.
    pub fn collect_attach_points(&self, timeout: Duration) -> Result<Vec<AttachPoint>> {
        let mut points: Vec<AttachPoint> = self.attach_points.clone();
        if let Some(rx) = &self.attach_rx {
            let deadline = std::time::Instant::now() + timeout;
            while points.len() < self.expected_backends {
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(MrnetError::Instantiation(format!(
                        "only {} of {} attach points advertised before timeout",
                        points.len(),
                        self.expected_backends
                    )));
                }
                match rx.recv_timeout(deadline - now) {
                    Ok((rank, endpoint)) => points.push(AttachPoint { rank, endpoint }),
                    Err(_) => {
                        return Err(MrnetError::Instantiation(
                            "attach-point channel closed during instantiation".into(),
                        ))
                    }
                }
            }
        }
        points.sort_by_key(|p| p.rank);
        Ok(points)
    }

    /// Incremental rendezvous advertisements for [`launch_processes`]
    /// deployments. In topologies where an internal process has both
    /// internal children and directly attached back-ends, later
    /// advertisements can only flow once earlier back-ends have
    /// attached — consume this stream and attach back-ends as their
    /// points appear instead of calling
    /// [`PendingNetwork::collect_attach_points`]. Use one or the
    /// other: both drain the same channel.
    pub fn attach_events(&self) -> Option<Receiver<(Rank, String)>> {
        self.attach_rx.clone()
    }

    /// The in-process rendezvous fabric (mode-2 channels transport).
    pub fn fabric(&self) -> &LocalFabric {
        &self.fabric
    }

    /// OS pids of the commnode processes the front-end spawned
    /// directly ([`launch_processes`] deployments; empty otherwise).
    /// Deeper commnodes are spawned by their own parents and are not
    /// listed. Intended for failure-injection tests and supervisors.
    pub fn commnode_pids(&self) -> &[u32] {
        &self.commnode_pids
    }

    /// Waits until every back-end has attached and subtree reports have
    /// propagated, then returns the operational network.
    pub fn wait(self, timeout: Duration) -> Result<Network> {
        let endpoints = self
            .ready_rx
            .recv_timeout(timeout)
            .map_err(|_| MrnetError::Instantiation("timed out waiting for back-ends".into()))?;
        Ok(Network::from_parts(
            self.cmd_tx,
            self.delivery,
            endpoints,
            self.registry,
            self.ledger,
            self.assembler,
            self.joins,
        ))
    }
}

/// One side of an edge handed to a node thread.
enum ChildSlot {
    /// Connection already established (mode 1).
    Ready(SharedConnection),
    /// Wait for a back-end to attach (mode 2); carries the expected
    /// rank and the listener.
    Accept(Rank, Box<dyn Listener>),
}

/// What `launch_inner` produced.
enum Launched {
    Full(Deployment),
    Pending(PendingNetwork),
}

/// Builds and launches MRNet networks from a topology.
pub struct NetworkBuilder {
    topology: Topology,
    registry: FilterRegistry,
    batch_policy: BatchPolicy,
    transport: WireTransport,
    ready_timeout: Duration,
}

impl NetworkBuilder {
    /// Starts a builder over `topology` with the built-in filter set,
    /// default batching, and channel transport.
    pub fn new(topology: Topology) -> NetworkBuilder {
        NetworkBuilder {
            topology,
            registry: FilterRegistry::with_builtins(),
            batch_policy: BatchPolicy::default(),
            transport: WireTransport::Channels,
            ready_timeout: Duration::from_secs(60),
        }
    }

    /// Uses a custom filter registry (it is shared with every process
    /// in the tree, mirroring a shared object visible on all hosts).
    pub fn registry(mut self, registry: FilterRegistry) -> NetworkBuilder {
        self.registry = registry;
        self
    }

    /// Overrides the packet-buffer batching policy.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> NetworkBuilder {
        self.batch_policy = policy;
        self
    }

    /// Selects the wire transport.
    pub fn transport(mut self, transport: WireTransport) -> NetworkBuilder {
        self.transport = transport;
        self
    }

    /// Overrides the instantiation timeout.
    pub fn ready_timeout(mut self, timeout: Duration) -> NetworkBuilder {
        self.ready_timeout = timeout;
        self
    }

    /// Mode-1 instantiation: create every process in the tree and
    /// return the front-end plus all back-end handles.
    pub fn launch(self) -> Result<Deployment> {
        match self.launch_inner(false)? {
            Launched::Full(d) => Ok(d),
            Launched::Pending(_) => unreachable!("mode 1 yields a full deployment"),
        }
    }

    /// Mode-2 instantiation: create only the internal tree; leaves of
    /// the topology become attach points for externally created
    /// back-ends.
    pub fn launch_internal(self) -> Result<PendingNetwork> {
        match self.launch_inner(true)? {
            Launched::Pending(p) => Ok(p),
            Launched::Full(_) => unreachable!("mode 2 yields a pending network"),
        }
    }

    fn make_edge(
        &self,
        parent_label: &str,
        child_label: &str,
    ) -> Result<(SharedConnection, SharedConnection)> {
        match self.transport {
            WireTransport::Channels => {
                let (p, c) = LocalConnection::pair(parent_label, child_label);
                Ok((Arc::new(p), Arc::new(c)))
            }
            WireTransport::Tcp => {
                let listener =
                    TcpTransportListener::bind("127.0.0.1:0").map_err(MrnetError::Transport)?;
                let addr = listener.addr();
                // Backoff-retried connect: tolerates the transient
                // refusals of a loaded host mid-instantiation.
                let (child, _retries) = RetryPolicy::from_env()
                    .connect(&addr)
                    .map_err(MrnetError::Transport)?;
                let parent = listener.accept().map_err(MrnetError::Transport)?;
                Ok((Arc::from(parent), Arc::new(child) as SharedConnection))
            }
        }
    }

    fn launch_inner(self, attach_mode: bool) -> Result<Launched> {
        let topo = &self.topology;
        if topo.num_backends() == 0 {
            return Err(MrnetError::Instantiation(
                "topology has no back-ends".into(),
            ));
        }
        let fabric = LocalFabric::new();
        let n = topo.len();
        let mut parent_side: Vec<Option<SharedConnection>> = (0..n).map(|_| None).collect();
        let mut child_side: Vec<Option<SharedConnection>> = (0..n).map(|_| None).collect();
        let mut leaf_listener: Vec<Option<Box<dyn Listener>>> = (0..n).map(|_| None).collect();
        let mut attach_points = Vec::new();

        for id in topo.bfs() {
            for &child in topo.children(id) {
                let is_backend = topo.role(child) == Role::BackEnd;
                if attach_mode && is_backend {
                    let rank = child.0 as Rank;
                    let (listener, endpoint): (Box<dyn Listener>, String) = match self.transport {
                        WireTransport::Channels => {
                            let name = format!("mrnet-be-{rank}");
                            (Box::new(fabric.listen(&name)), name)
                        }
                        WireTransport::Tcp => {
                            let l = TcpTransportListener::bind("127.0.0.1:0")
                                .map_err(MrnetError::Transport)?;
                            let addr = l.addr();
                            (Box::new(l), addr)
                        }
                    };
                    leaf_listener[child.0] = Some(listener);
                    attach_points.push(AttachPoint { rank, endpoint });
                } else {
                    let (p, c) = self.make_edge(&topo.label(id), &topo.label(child))?;
                    parent_side[child.0] = Some(p);
                    child_side[child.0] = Some(c);
                }
            }
        }

        let mut joins = Vec::new();
        let delivery = Arc::new(Delivery::new());
        let ledger = Arc::new(FailureLedger::new());
        let assembler = Arc::new(TraceAssembler::new());
        let (ready_tx, ready_rx) = bounded(1);
        let root_inbox = NodeLoop::inbox();
        let cmd_tx = root_inbox.0.clone();

        for id in topo.bfs() {
            let role = topo.role(id);
            if role == Role::BackEnd {
                continue;
            }
            let rank = id.0 as Rank;
            let registry = self.registry.clone();
            let batch = self.batch_policy;
            let child_ranks: Vec<Rank> = topo.children(id).iter().map(|c| c.0 as Rank).collect();
            let ledger_opt = (role == Role::FrontEnd).then(|| ledger.clone());
            let assembler_opt = (role == Role::FrontEnd).then(|| assembler.clone());
            let parent = if role == Role::FrontEnd {
                None
            } else {
                // This node's upward link is the child side of the
                // edge between it and its parent.
                Some(child_side[id.0].take().expect("edge created"))
            };
            let mut slots: Vec<ChildSlot> = Vec::new();
            for &child in topo.children(id) {
                if let Some(listener) = leaf_listener[child.0].take() {
                    slots.push(ChildSlot::Accept(child.0 as Rank, listener));
                } else {
                    slots.push(ChildSlot::Ready(
                        parent_side[child.0].take().expect("edge created"),
                    ));
                }
            }
            let (delivery_opt, ready_opt, inbox) = if role == Role::FrontEnd {
                (
                    Some(delivery.clone()),
                    Some(ready_tx.clone()),
                    root_inbox.clone(),
                )
            } else {
                (None, None, NodeLoop::inbox())
            };
            let label = topo.label(id);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("mrnet-{label}"))
                    .spawn(move || {
                        let children = match resolve_slots(slots) {
                            Ok(c) => c,
                            Err(e) => {
                                log_error!(rank, "attach failed: {e}");
                                return;
                            }
                        };
                        let mut node = NodeLoop::new(
                            rank,
                            registry,
                            parent,
                            children,
                            delivery_opt,
                            batch,
                            ready_opt,
                            inbox,
                        );
                        node.set_child_ranks(child_ranks);
                        if let Some(ledger) = ledger_opt {
                            node.set_failure_ledger(ledger);
                        }
                        if let Some(assembler) = assembler_opt {
                            node.set_trace_assembler(assembler);
                        }
                        if let Err(e) = node.setup() {
                            log_error!(rank, "setup failed: {e}");
                            return;
                        }
                        node.run();
                    })
                    .map_err(|e| MrnetError::Instantiation(e.to_string()))?,
            );
        }

        if attach_mode {
            return Ok(Launched::Pending(PendingNetwork {
                ready_rx,
                cmd_tx,
                delivery,
                registry: self.registry,
                ledger,
                assembler,
                joins,
                attach_points,
                fabric,
                commnode_pids: Vec::new(),
                attach_rx: None,
                expected_backends: 0,
            }));
        }

        // Mode 1: create the back-end handles (each announces itself
        // with a subtree report).
        let mut backends = Vec::new();
        for id in topo.bfs() {
            if topo.role(id) != Role::BackEnd {
                continue;
            }
            let conn = child_side[id.0].take().expect("edge created");
            backends.push(Backend::new(id.0 as Rank, conn)?);
        }

        let endpoints = ready_rx
            .recv_timeout(self.ready_timeout)
            .map_err(|_| MrnetError::Instantiation("instantiation timed out".into()))?;
        let network = Network::from_parts(
            cmd_tx,
            delivery,
            endpoints,
            self.registry,
            ledger,
            assembler,
            joins,
        );
        Ok(Launched::Full(Deployment { network, backends }))
    }
}

/// Resolves pending child slots: mode-2 slots block until their
/// back-end attaches and its `Attach` handshake is validated.
fn resolve_slots(slots: Vec<ChildSlot>) -> Result<Vec<SharedConnection>> {
    let mut conns = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            ChildSlot::Ready(c) => conns.push(c),
            ChildSlot::Accept(expected_rank, listener) => {
                let conn: SharedConnection =
                    Arc::from(listener.accept().map_err(MrnetError::Transport)?);
                let frame = conn.recv().map_err(MrnetError::Transport)?;
                match decode_frame(frame)? {
                    Frame::Control(pkt) => match Control::from_packet(&pkt)? {
                        Control::Attach { rank } if rank == expected_rank => {}
                        Control::Attach { rank } => {
                            return Err(MrnetError::Instantiation(format!(
                                "back-end rank {rank} attached to slot expecting {expected_rank}"
                            )))
                        }
                        other => {
                            return Err(MrnetError::Protocol(format!(
                                "expected Attach, got {other:?}"
                            )))
                        }
                    },
                    Frame::Data(_) | Frame::Traced(..) => {
                        return Err(MrnetError::Protocol(
                            "data frame before Attach handshake".into(),
                        ))
                    }
                }
                conns.push(conn);
            }
        }
    }
    Ok(conns)
}

/// Convenience: mode-1 instantiation over in-process channels with the
/// built-in filters — the common test/example path.
pub fn launch_local(topology: Topology) -> Result<Deployment> {
    NetworkBuilder::new(topology).launch()
}

/// Multi-process instantiation: internal nodes run as real
/// `mrnet_commnode` OS processes connected over TCP, created
/// recursively per §2.5 (each parent launches its children
/// sequentially; branches proceed concurrently in their own
/// processes). The front-end runs in the calling process; back-ends
/// attach afterwards with [`crate::Backend::attach_tcp`] at the points
/// returned by [`PendingNetwork::collect_attach_points`].
///
/// The commnode binary registers the built-in filter set; custom
/// filters require extending that binary (the analogue of installing a
/// filter shared object on every host).
pub fn launch_processes(
    topology: Topology,
    commnode_exe: &std::path::Path,
) -> Result<PendingNetwork> {
    launch_processes_with_registry(topology, commnode_exe, FilterRegistry::with_builtins())
}

/// [`launch_processes`] with a custom front-end filter registry. The
/// commnode binary must register the same filters (see
/// [`crate::commnode::run`]) — the analogue of installing the filter
/// shared object on every host.
pub fn launch_processes_with_registry(
    topology: Topology,
    commnode_exe: &std::path::Path,
    registry: FilterRegistry,
) -> Result<PendingNetwork> {
    use crate::procspawn::{accept_children, plan_children, spawn_internal_children};
    use crate::slice::SubtreeSlice;

    let expected_backends = topology.num_backends();
    if expected_backends == 0 {
        return Err(MrnetError::Instantiation(
            "topology has no back-ends".into(),
        ));
    }
    let delivery = Arc::new(Delivery::new());
    let ledger = Arc::new(FailureLedger::new());
    let assembler = Arc::new(TraceAssembler::new());
    let (ready_tx, ready_rx) = bounded(1);
    let (attach_tx, attach_rx) = crossbeam::channel::unbounded();
    let root_inbox = NodeLoop::inbox();
    let cmd_tx = root_inbox.0.clone();

    let listener = TcpTransportListener::bind("127.0.0.1:0")?;
    let view = SubtreeSlice::of(&topology, topology.root()).view()?;
    let plan = plan_children(&view, &listener.addr());
    // Back-ends attached directly to the front-end rendezvous here.
    for (rank, endpoint) in plan.advertise.clone() {
        let _ = attach_tx.send((rank, endpoint));
    }
    let mut spawned = spawn_internal_children(&plan, commnode_exe, &listener.addr())?;
    let commnode_pids: Vec<u32> = spawned.iter().map(std::process::Child::id).collect();

    let reg = registry.clone();
    let deliv = delivery.clone();
    let root_ledger = ledger.clone();
    let root_assembler = assembler.clone();
    let root_join = std::thread::Builder::new()
        .name("mrnet-fe-root".to_owned())
        .spawn(move || {
            let child_ranks = plan.order.clone();
            let children = match accept_children(&listener, &view, &plan) {
                Ok(c) => c,
                Err(e) => {
                    log_error!("fe", "child gather failed: {e}");
                    return;
                }
            };
            let mut node = NodeLoop::new(
                0,
                reg,
                None,
                children,
                Some(deliv),
                BatchPolicy::default(),
                Some(ready_tx),
                root_inbox,
            );
            node.set_attach_sink(attach_tx);
            node.set_child_ranks(child_ranks);
            node.set_failure_ledger(root_ledger);
            node.set_trace_assembler(root_assembler);
            if let Err(e) = node.setup() {
                log_error!("fe", "setup failed: {e}");
                return;
            }
            node.run();
            for child in &mut spawned {
                let _ = child.wait();
            }
        })
        .map_err(|e| MrnetError::Instantiation(e.to_string()))?;

    Ok(PendingNetwork {
        ready_rx,
        cmd_tx,
        delivery,
        registry,
        ledger,
        assembler,
        joins: vec![root_join],
        attach_points: Vec::new(),
        fabric: LocalFabric::new(),
        commnode_pids,
        attach_rx: Some(attach_rx),
        expected_backends,
    })
}
