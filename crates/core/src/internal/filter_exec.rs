//! Sharded upstream-filter execution.
//!
//! The node loop synchronizes waves (sync-filter state stays
//! single-owner on the loop thread), but running the transformation
//! filter inline serializes every stream's aggregation behind one
//! thread. The [`FilterExecutor`] moves that work onto a small worker
//! pool sharded by stream id: each stream's upstream filter instance
//! lives on exactly one shard (per-stream state stays single-owner,
//! per-stream wave order is the shard's FIFO), while waves of
//! *different* streams that hash to different shards overlap.
//!
//! Results return to the node loop through its inbox as
//! [`Inbound::Aggregated`], so forwarding, trace-envelope handling,
//! and delivery still happen in one place.
//!
//! Sizing comes from `MRNET_FILTER_SHARDS` (default
//! [`DEFAULT_FILTER_SHARDS`]); `0` disables the executor and restores
//! fully inline transformation. Null-filter (pure relay) streams never
//! use the executor regardless — their packets stay in raw wire form
//! on the node loop's zero-copy path.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use mrnet_filters::{BoxedTransform, FilterContext};
use mrnet_obs::{NodeMetrics, ShardExecStats};
use mrnet_packet::{Packet, StreamId};

use crate::internal::process::Inbound;

/// Worker threads when `MRNET_FILTER_SHARDS` is unset. Two shards
/// already overlap independent streams' aggregations while keeping the
/// thread count negligible next to the per-connection pumps.
pub const DEFAULT_FILTER_SHARDS: usize = 2;

/// Upper clamp for `MRNET_FILTER_SHARDS`.
pub const MAX_FILTER_SHARDS: usize = 64;

/// Parses an `MRNET_FILTER_SHARDS` value: trimmed decimal, clamped to
/// at most [`MAX_FILTER_SHARDS`]. `0` is valid and means "inline".
/// `None` (or garbage) means "no override".
pub fn parse_filter_shards(raw: Option<&str>) -> Option<usize> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    raw.parse::<usize>().ok().map(|n| n.min(MAX_FILTER_SHARDS))
}

/// The shard count for new node loops: the `MRNET_FILTER_SHARDS`
/// override, or [`DEFAULT_FILTER_SHARDS`]. Read per call (not cached)
/// so in-process trees in tests see the environment they set.
pub fn filter_shards_from_env() -> usize {
    parse_filter_shards(std::env::var("MRNET_FILTER_SHARDS").ok().as_deref())
        .unwrap_or(DEFAULT_FILTER_SHARDS)
}

/// One unit of work for a shard.
enum Job {
    /// Adopt a stream's upstream filter instance (stream creation).
    Install {
        stream: StreamId,
        filter: BoxedTransform,
        ctx: FilterContext,
    },
    /// Drop a stream's filter instance (stream deletion).
    Remove { stream: StreamId },
    /// Transform one synchronized wave.
    Exec { stream: StreamId, wave: Vec<Packet> },
    /// Echo [`Inbound::StreamDrained`] back through the results
    /// channel. The shard is a FIFO, so by the time the echo arrives
    /// every wave queued for `stream` before it has been delivered —
    /// an ordering barrier for teardown decisions that must not
    /// overtake in-flight aggregates.
    Drain { stream: StreamId },
}

/// The worker pool. Dropping it closes every shard's queue and joins
/// the workers (any wave already queued still completes first).
pub struct FilterExecutor {
    shards: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl FilterExecutor {
    /// Builds the executor configured by `MRNET_FILTER_SHARDS`, or
    /// `None` when sharding is disabled (`0`). `results` is the node
    /// loop's inbox sender; transformed waves come back through it.
    pub fn from_env(results: Sender<Inbound>, metrics: &Arc<NodeMetrics>) -> Option<FilterExecutor> {
        match filter_shards_from_env() {
            0 => None,
            n => Some(FilterExecutor::new(n, results, metrics)),
        }
    }

    /// Builds an executor with exactly `nshards` workers.
    pub fn new(
        nshards: usize,
        results: Sender<Inbound>,
        metrics: &Arc<NodeMetrics>,
    ) -> FilterExecutor {
        assert!(nshards > 0, "an executor needs at least one shard");
        let mut shards = Vec::with_capacity(nshards);
        let mut handles = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let (tx, rx) = unbounded();
            let stats = metrics.shard_stats(i);
            let metrics = Arc::clone(metrics);
            let results = results.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mrnet-filter-{i}"))
                    .spawn(move || worker(rx, results, metrics, stats))
                    .expect("spawn filter shard"),
            );
            shards.push(tx);
        }
        FilterExecutor { shards, handles }
    }

    fn shard(&self, stream: StreamId) -> &Sender<Job> {
        &self.shards[stream as usize % self.shards.len()]
    }

    /// Moves a stream's upstream filter onto its shard.
    pub fn install(&self, stream: StreamId, filter: BoxedTransform, ctx: FilterContext) {
        let _ = self.shard(stream).send(Job::Install {
            stream,
            filter,
            ctx,
        });
    }

    /// Discards a deleted stream's filter instance.
    pub fn remove(&self, stream: StreamId) {
        let _ = self.shard(stream).send(Job::Remove { stream });
    }

    /// Queues one synchronized wave for transformation. Waves of the
    /// same stream run in dispatch order (one shard, FIFO queue).
    pub fn exec(&self, stream: StreamId, wave: Vec<Packet>) {
        let _ = self.shard(stream).send(Job::Exec { stream, wave });
    }

    /// Requests a [`Inbound::StreamDrained`] echo once every wave
    /// queued for `stream` so far has been transformed and its result
    /// sent. Lets the node loop order teardown (e.g. failing a
    /// delivery queue) after in-flight aggregates.
    pub fn drain(&self, stream: StreamId) {
        let _ = self.shard(stream).send(Job::Drain { stream });
    }
}

impl Drop for FilterExecutor {
    fn drop(&mut self) {
        self.shards.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker(
    jobs: Receiver<Job>,
    results: Sender<Inbound>,
    metrics: Arc<NodeMetrics>,
    stats: Arc<ShardExecStats>,
) {
    let mut filters: HashMap<StreamId, (BoxedTransform, FilterContext)> = HashMap::new();
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Install {
                stream,
                filter,
                ctx,
            } => {
                filters.insert(stream, (filter, ctx));
            }
            Job::Remove { stream } => {
                filters.remove(&stream);
            }
            Job::Exec { stream, wave } => {
                let Some((filter, ctx)) = filters.get_mut(&stream) else {
                    // Racing a delete: the wave's stream is gone.
                    continue;
                };
                // Handles stay shared with the wave's packets, so
                // after the transform they reveal which raw payloads
                // the filter materialized.
                let handles: Vec<Packet> = wave.iter().filter(|p| p.is_lazy()).cloned().collect();
                let start = Instant::now();
                let result = filter
                    .transform(wave, ctx)
                    .map(|out| {
                        // Aggregates continue on the same stream.
                        out.into_iter()
                            .map(|p| p.with_stream(stream))
                            .collect::<Vec<Packet>>()
                    })
                    .map_err(crate::error::MrnetError::from);
                stats
                    .busy_us
                    .add(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                stats.waves.inc();
                let decoded = handles.iter().filter(|p| !p.is_lazy()).count();
                metrics.pkts_decoded.add(decoded as u64);
                if results.send(Inbound::Aggregated { stream, result }).is_err() {
                    // The node loop is gone; drain remaining installs
                    // and exit with the channel.
                    return;
                }
            }
            Job::Drain { stream } => {
                if results.send(Inbound::StreamDrained { stream }).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_filters::FilterRegistry;
    use mrnet_packet::PacketBuilder;

    #[test]
    fn parse_filter_shards_parses_and_clamps() {
        assert_eq!(parse_filter_shards(None), None);
        assert_eq!(parse_filter_shards(Some("")), None);
        assert_eq!(parse_filter_shards(Some("  ")), None);
        assert_eq!(parse_filter_shards(Some("garbage")), None);
        assert_eq!(parse_filter_shards(Some("-3")), None);
        assert_eq!(parse_filter_shards(Some("0")), Some(0));
        assert_eq!(parse_filter_shards(Some("4")), Some(4));
        assert_eq!(parse_filter_shards(Some(" 8 ")), Some(8));
        assert_eq!(parse_filter_shards(Some("10000")), Some(MAX_FILTER_SHARDS));
    }

    #[test]
    fn executor_transforms_waves_and_returns_results_in_order() {
        let reg = FilterRegistry::with_builtins();
        let metrics = Arc::new(NodeMetrics::new());
        let (tx, rx) = unbounded();
        let exec = FilterExecutor::new(2, tx, &metrics);
        let sum = reg.instantiate(reg.id_of("f_sum").unwrap()).unwrap();
        exec.install(7, sum, FilterContext::new(7, 0, 2));
        let mk = |v: f32| PacketBuilder::new(7, 1).push(v).build();
        exec.exec(7, vec![mk(1.0), mk(2.0)]);
        exec.exec(7, vec![mk(10.0), mk(20.0)]);
        for expect in [3.0f32, 30.0] {
            match rx.recv().unwrap() {
                Inbound::Aggregated { stream, result } => {
                    assert_eq!(stream, 7);
                    let out = result.unwrap();
                    assert_eq!(out.len(), 1);
                    assert_eq!(out[0].get(0).unwrap().as_f32(), Some(expect));
                    assert_eq!(out[0].stream_id(), 7);
                }
                other => panic!("unexpected inbox message: {other:?}"),
            }
        }
        assert_eq!(metrics.shard_stats(7 % 2).waves.get(), 2);
    }

    #[test]
    fn executor_reports_filter_errors_and_counts_decodes() {
        let reg = FilterRegistry::with_builtins();
        let metrics = Arc::new(NodeMetrics::new());
        let (tx, rx) = unbounded();
        let exec = FilterExecutor::new(1, tx, &metrics);
        let sum = reg.instantiate(reg.id_of("f_sum").unwrap()).unwrap();
        exec.install(3, sum, FilterContext::new(3, 0, 1));
        // A lazily-decoded wave: the sum filter must materialize it,
        // which the decoded counter records.
        let eager = PacketBuilder::new(3, 1).push(5.0f32).build();
        let batch = mrnet_packet::encode_batch(std::slice::from_ref(&eager));
        let lazy = mrnet_packet::decode_batch_lazy(batch).unwrap().remove(0);
        assert!(lazy.is_lazy());
        exec.exec(3, vec![lazy]);
        match rx.recv().unwrap() {
            Inbound::Aggregated { result, .. } => {
                assert_eq!(result.unwrap()[0].get(0).unwrap().as_f32(), Some(5.0));
            }
            other => panic!("unexpected inbox message: {other:?}"),
        }
        assert_eq!(metrics.pkts_decoded.get(), 1);
        // A wave of the wrong type is an error result, not a panic.
        let bad = PacketBuilder::new(3, 1).push("not a float").build();
        exec.exec(3, vec![bad]);
        match rx.recv().unwrap() {
            Inbound::Aggregated { stream, result } => {
                assert_eq!(stream, 3);
                assert!(result.is_err());
            }
            other => panic!("unexpected inbox message: {other:?}"),
        }
        // Waves for unknown (deleted) streams are dropped silently.
        exec.remove(3);
        exec.exec(3, vec![PacketBuilder::new(3, 1).push(1.0f32).build()]);
        drop(exec); // joins the worker: queue fully drained
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn drain_echo_arrives_after_all_prior_waves() {
        let reg = FilterRegistry::with_builtins();
        let metrics = Arc::new(NodeMetrics::new());
        let (tx, rx) = unbounded();
        let exec = FilterExecutor::new(1, tx, &metrics);
        let sum = reg.instantiate(reg.id_of("f_sum").unwrap()).unwrap();
        exec.install(5, sum, FilterContext::new(5, 0, 1));
        let mk = |v: f32| PacketBuilder::new(5, 1).push(v).build();
        for w in 0..3 {
            exec.exec(5, vec![mk(w as f32)]);
        }
        exec.drain(5);
        // The barrier must sort strictly after every wave queued
        // before it, even on a contended shard.
        for _ in 0..3 {
            assert!(matches!(
                rx.recv().unwrap(),
                Inbound::Aggregated { stream: 5, .. }
            ));
        }
        assert!(matches!(
            rx.recv().unwrap(),
            Inbound::StreamDrained { stream: 5 }
        ));
        // Draining a stream the shard never saw still echoes: the
        // caller's bookkeeping must never wait forever.
        exec.drain(99);
        assert!(matches!(
            rx.recv().unwrap(),
            Inbound::StreamDrained { stream: 99 }
        ));
    }
}
