//! MRNet internal-process machinery (the `mrnet_commnode` layers of
//! paper Figure 3).

pub mod filter_exec;
pub mod process;
pub mod stream_manager;
