//! The MRNet process event loop (`mrnet_commnode` and the front-end's
//! root router).
//!
//! Implements the functional layers of Figure 3: inbound packet
//! buffers are unbatched, packets demultiplexed by stream id to their
//! stream managers, synchronized and aggregated, then re-batched per
//! neighbor for transmission. Packets are manipulated by reference
//! throughout (cheap [`Packet`] handle clones), matching §2.3's
//! zero-copy paths.
//!
//! One [`NodeLoop`] drives one process. At the tree root (the
//! front-end) there is no parent; fully aggregated packets are
//! deposited into a delivery mailbox for user threads, and user
//! commands (stream creation, downstream sends, shutdown) arrive on
//! the same inbox as network traffic.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use mrnet_filters::FilterRegistry;
use mrnet_obs::tracectx::{self, TraceEnvelope, TraceSampler};
use mrnet_obs::{
    log_error, log_warn, trace, ConnSendStats, MetricsSection, NetworkSnapshot, NodeMetrics,
    TraceAssembler, TraceDir, TraceEvent,
};
use mrnet_packet::{BatchPolicy, Batcher, Packet, Rank, StreamId};
use mrnet_transport::{ClockEstimate, SharedConnection};

use crate::delivery::Delivery;
use crate::error::{MrnetError, Result};
use crate::event::FailureLedger;
use crate::internal::filter_exec::FilterExecutor;
use crate::internal::stream_manager::StreamManager;
use crate::introspect::{self, METRICS_REPLY, METRICS_REQUEST, METRICS_STREAM, TRACE_REPORT};
use crate::proto::{decode_frame, encode_data_frame, encode_traced_data_frame, Control, Frame};
use crate::route::RoutingTable;
use crate::streams::StreamDef;

/// How often pump threads re-check the stop flag while idle.
const PUMP_POLL: Duration = Duration::from_millis(50);

/// Ping exchanges each parent runs per child connection before
/// resolving the clock estimate (minimum-RTT sample wins). Pings are
/// sequential — the next fires as the previous pong lands — so queuing
/// behind one exchange never inflates the next one's RTT.
const CLOCK_PINGS: u8 = 4;

/// Up-wave envelopes held per stream while their wave synchronizes;
/// beyond this, the newest are dropped (sampling already made traced
/// waves rare — a backlog this deep means the stream is stuck).
const TRACE_PENDING_CAP: usize = 16;

/// Envelopes a neighbor's trace outbox may accumulate between
/// flushes.
const TRACE_OUTBOX_CAP: usize = 64;

/// Messages merged into a node's inbox.
#[derive(Debug)]
pub enum Inbound {
    /// A frame from the parent connection.
    Parent(bytes::Bytes),
    /// The parent connection closed.
    ParentClosed,
    /// A frame from child `usize`.
    Child(usize, bytes::Bytes),
    /// Child `usize`'s connection closed.
    ChildClosed(usize),
    /// A user command (root only).
    Cmd(Command),
    /// A wave transformed by the shard filter executor, ready to
    /// continue upstream. Per-stream order is preserved: one stream
    /// maps to one shard, and each shard is a FIFO.
    Aggregated {
        /// The stream the wave synchronized on.
        stream: StreamId,
        /// The filter's output, or its error (the wave is then
        /// dropped — an async filter failure cannot be attributed to
        /// one child the way an inline failure severs its sender).
        result: Result<Vec<Packet>>,
    },
    /// Echo of [`FilterExecutor::drain`]: every wave queued for
    /// `stream` before the drain request has already come back as
    /// [`Inbound::Aggregated`] (shard FIFO + per-sender channel
    /// order). Deferred teardown for the stream may proceed.
    StreamDrained {
        /// The drained stream.
        stream: StreamId,
    },
}

/// Front-end commands injected into the root loop.
#[derive(Debug)]
pub enum Command {
    /// Create a stream and announce it downstream.
    NewStream(StreamDef),
    /// Send a packet downstream on its stream.
    SendDown(Packet),
    /// Tear down a stream.
    DeleteStream(StreamId),
    /// Collect a metrics snapshot from every node in the tree
    /// (in-band introspection, root only).
    CollectMetrics {
        /// Correlates replies with this collection.
        req_id: u32,
        /// How long to wait for straggler subtrees before answering
        /// with whatever sections have arrived.
        timeout_secs: f64,
        /// Where the merged snapshot is delivered.
        reply: Sender<NetworkSnapshot>,
    },
    /// Shut the whole network down.
    Shutdown,
}

/// In-flight state of one metrics collection at this node: the
/// sections gathered so far and which children still owe a reply.
struct MetricsCollect {
    /// Sections accumulated so far (own section plus decoded child
    /// replies, in arrival order).
    sections: Vec<MetricsSection>,
    /// Child indices whose replies are still outstanding.
    outstanding: Vec<usize>,
    /// Epoch-relative time after which the collection completes with
    /// partial results.
    deadline: f64,
    /// Root only: channel back to the blocked front-end caller.
    /// `None` at interior nodes, which reply upstream instead.
    reply: Option<Sender<NetworkSnapshot>>,
}

/// Per-child state of the connect-time clock-sync handshake.
#[derive(Debug, Default)]
struct ClockSync {
    /// Best (minimum-RTT) estimate so far.
    best: Option<ClockEstimate>,
    /// Completed ping exchanges.
    exchanged: u8,
    /// True once the estimate is final and has been applied/relayed.
    resolved: bool,
    /// `ClockInfo` entries from this child's subtree, buffered until
    /// the child's own offset resolves (chaining needs it).
    buffered: Vec<(Rank, i64, u64)>,
}

/// One MRNet process's event loop.
pub struct NodeLoop {
    rank: Rank,
    registry: FilterRegistry,
    parent: Option<SharedConnection>,
    children: Vec<SharedConnection>,
    child_alive: Vec<bool>,
    routes: RoutingTable,
    managers: HashMap<StreamId, StreamManager>,
    inbox: Receiver<Inbound>,
    delivery: Option<Arc<Delivery>>,
    epoch: Instant,
    child_batchers: Vec<Batcher>,
    parent_batcher: Batcher,
    stop: Arc<AtomicBool>,
    ready_tx: Option<Sender<Vec<Rank>>>,
    /// Root only: receives `(backend rank, endpoint)` rendezvous
    /// advertisements harvested from AttachInfo messages during
    /// process instantiation.
    attach_tx: Option<Sender<(Rank, String)>>,
    metrics: Arc<NodeMetrics>,
    /// In-flight metrics collections keyed by request id.
    collects: HashMap<u32, MetricsCollect>,
    /// The tree rank of each direct child, in child order, so a dead
    /// connection can be named in [`crate::TopologyEvent::RankFailed`].
    child_ranks: Vec<Rank>,
    /// Whether each child's death has already been announced —
    /// EOF and a propagated report can both arrive for the same child.
    child_death_reported: Vec<bool>,
    /// Every rank this node has confirmed dead (end-points and
    /// internal nodes alike).
    known_dead: BTreeSet<Rank>,
    /// Root only: the failure record shared with the `Network` handle.
    ledger: Option<Arc<FailureLedger>>,
    /// Up-wave trace envelopes (with their local receive stamps) held
    /// per stream until the wave they rode synchronizes and forwards.
    trace_pending_up: HashMap<StreamId, Vec<(TraceEnvelope, u64)>>,
    /// Envelopes riding the next upstream data frame.
    parent_trace_outbox: Vec<(TraceEnvelope, u64)>,
    /// Envelopes riding each child's next downstream data frame.
    child_trace_outbox: Vec<Vec<(TraceEnvelope, u64)>>,
    /// Root only: down-wave sampling decisions.
    sampler: TraceSampler,
    /// Root only: the front-end's skew-correcting wave assembler.
    assembler: Option<Arc<TraceAssembler>>,
    /// Per-child clock-sync handshake state.
    clock_sync: Vec<ClockSync>,
    /// The sharded upstream-filter worker pool; `None` runs transform
    /// filters inline on the loop (`MRNET_FILTER_SHARDS=0`).
    filter_exec: Option<FilterExecutor>,
    /// Failure reports held back until the shards drain: a report must
    /// not overtake aggregates already in flight on a shard (the
    /// inline path ordered them implicitly by forwarding the wave
    /// before ever seeing the disconnect). FIFO; completed in order.
    pending_failures: Vec<PendingFailure>,
}

/// A confirmed failure whose propagation (and, at the root, whose
/// stream-failure side effects) waits on [`FilterExecutor::drain`]
/// echoes for every sharded stream that might still hold a wave.
struct PendingFailure {
    /// Streams whose drain echo hasn't arrived yet.
    waiting: BTreeSet<StreamId>,
    /// Streams (root only) whose receivers fail once drained.
    fail_sids: Vec<StreamId>,
    failed_rank: Rank,
    fresh: Vec<Rank>,
    origin: FailureOrigin,
}

/// Where a failure report entered this node, which determines where it
/// must be forwarded (everywhere except back toward the reporter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailureOrigin {
    /// Detected locally or reported by child `usize`.
    Child(usize),
    /// Reported by the parent (the failure is in a sibling subtree).
    Parent,
}

fn spawn_pump(
    conn: SharedConnection,
    stop: Arc<AtomicBool>,
    tx: Sender<Inbound>,
    wrap: impl Fn(bytes::Bytes) -> Inbound + Send + 'static,
    closed: Inbound,
) {
    std::thread::Builder::new()
        .name("mrnet-pump".to_owned())
        .spawn(move || loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match conn.recv_timeout(PUMP_POLL) {
                Ok(Some(frame)) => {
                    if tx.send(wrap(frame)).is_err() {
                        return;
                    }
                }
                Ok(None) => continue,
                Err(_) => {
                    let _ = tx.send(closed);
                    return;
                }
            }
        })
        .expect("spawn pump thread");
}

impl NodeLoop {
    /// Creates the inbox channel for a node loop. The sender side is
    /// how the front-end injects [`Command`]s into its root loop.
    pub fn inbox() -> (Sender<Inbound>, Receiver<Inbound>) {
        unbounded()
    }

    /// Builds a node loop and starts its connection pumps.
    ///
    /// `inbox` is the channel pair from [`NodeLoop::inbox`] (created by
    /// the caller so the front-end can keep a command sender before the
    /// loop thread starts). `delivery` is `Some` at the root;
    /// `ready_tx` (root only) receives the end-point set once subtree
    /// reports have been collected.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: Rank,
        registry: FilterRegistry,
        parent: Option<SharedConnection>,
        children: Vec<SharedConnection>,
        delivery: Option<Arc<Delivery>>,
        batch_policy: BatchPolicy,
        ready_tx: Option<Sender<Vec<Rank>>>,
        inbox: (Sender<Inbound>, Receiver<Inbound>),
    ) -> NodeLoop {
        let (tx, rx) = inbox;
        let stop = Arc::new(AtomicBool::new(false));
        if let Some(p) = &parent {
            spawn_pump(
                p.clone(),
                stop.clone(),
                tx.clone(),
                Inbound::Parent,
                Inbound::ParentClosed,
            );
        }
        for (i, c) in children.iter().enumerate() {
            spawn_pump(
                c.clone(),
                stop.clone(),
                tx.clone(),
                move |f| Inbound::Child(i, f),
                Inbound::ChildClosed(i),
            );
        }
        let n = children.len();
        let metrics = Arc::new(NodeMetrics::new());
        let filter_exec = FilterExecutor::from_env(tx.clone(), &metrics);
        NodeLoop {
            rank,
            registry,
            parent,
            child_alive: vec![true; n],
            child_ranks: Vec::new(),
            child_death_reported: vec![false; n],
            known_dead: BTreeSet::new(),
            ledger: None,
            children,
            routes: RoutingTable::new(),
            managers: HashMap::new(),
            inbox: rx,
            delivery,
            epoch: Instant::now(),
            child_batchers: (0..n).map(|_| Batcher::new(batch_policy)).collect(),
            parent_batcher: Batcher::new(batch_policy),
            stop,
            ready_tx,
            attach_tx: None,
            metrics,
            collects: HashMap::new(),
            trace_pending_up: HashMap::new(),
            parent_trace_outbox: Vec::new(),
            child_trace_outbox: (0..n).map(|_| Vec::new()).collect(),
            sampler: TraceSampler::new(),
            assembler: None,
            clock_sync: (0..n).map(|_| ClockSync::default()).collect(),
            filter_exec,
            pending_failures: Vec::new(),
        }
    }

    /// This node's metrics instruments. The loop owns and updates
    /// them; callers (the front-end, tests) keep a handle for local
    /// inspection without going through the introspection stream.
    pub fn metrics(&self) -> Arc<NodeMetrics> {
        self.metrics.clone()
    }

    /// Installs the root-side sink for AttachInfo advertisements
    /// (process instantiation). Must be called before
    /// [`NodeLoop::setup`].
    pub fn set_attach_sink(&mut self, tx: Sender<(Rank, String)>) {
        self.attach_tx = Some(tx);
    }

    /// Records the tree rank of each direct child (child order), so a
    /// dead connection can be attributed to a rank in failure events.
    pub fn set_child_ranks(&mut self, ranks: Vec<Rank>) {
        self.child_ranks = ranks;
    }

    /// Installs the root-side failure ledger shared with the
    /// [`crate::Network`] handle; confirmed deaths are reported there.
    pub fn set_failure_ledger(&mut self, ledger: Arc<FailureLedger>) {
        self.ledger = Some(ledger);
    }

    /// Installs the root-side trace assembler shared with the
    /// [`crate::Network`] handle. Completed waves and resolved clock
    /// estimates land there. Root only.
    pub fn set_trace_assembler(&mut self, assembler: Arc<TraceAssembler>) {
        self.assembler = Some(assembler);
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Routes an AttachInfo advertisement: deliver at the root, relay
    /// upstream elsewhere.
    fn relay_attach_info(&self, ranks: Vec<Rank>, endpoints: Vec<String>) -> Result<()> {
        if let Some(tx) = &self.attach_tx {
            for (rank, endpoint) in ranks.into_iter().zip(endpoints) {
                let _ = tx.send((rank, endpoint));
            }
            Ok(())
        } else if let Some(parent) = &self.parent {
            parent
                .send(Control::AttachInfo { ranks, endpoints }.to_frame())
                .map_err(MrnetError::Transport)
        } else {
            // Root without a sink: instantiation mode that doesn't use
            // advertisements; ignore.
            Ok(())
        }
    }

    /// Collects one subtree report per child, then reports upstream
    /// (§2.5). Must run before [`NodeLoop::run`].
    pub fn setup(&mut self) -> Result<()> {
        let mut reported: Vec<Option<Vec<Rank>>> = vec![None; self.children.len()];
        let mut missing = self.children.len();
        while missing > 0 {
            match self.inbox.recv() {
                Ok(Inbound::Child(i, frame)) => match decode_frame(frame)? {
                    Frame::Control(pkt) => match Control::from_packet(&pkt)? {
                        Control::SubtreeReport { endpoints } => {
                            if reported[i].replace(endpoints).is_none() {
                                missing -= 1;
                            }
                        }
                        Control::AttachInfo { ranks, endpoints } => {
                            self.relay_attach_info(ranks, endpoints)?;
                        }
                        // Clock sync runs bottom-up as each subtree
                        // enters its loop; a child's table can arrive
                        // while this node still awaits other reports.
                        // Buffered until our own estimate of the child
                        // exists.
                        Control::ClockPong {
                            t0_us,
                            t1_us,
                            t2_us,
                        } => self.on_clock_pong(i, t0_us, t1_us, t2_us),
                        Control::ClockInfo {
                            ranks,
                            offsets_us,
                            rtts_us,
                        } => self.on_clock_info(i, ranks, offsets_us, rtts_us),
                        other => {
                            return Err(MrnetError::Protocol(format!(
                                "unexpected control during setup: {other:?}"
                            )))
                        }
                    },
                    Frame::Data(_) | Frame::Traced(..) => {
                        return Err(MrnetError::Protocol(
                            "data frame before instantiation finished".into(),
                        ))
                    }
                },
                Ok(Inbound::ChildClosed(i)) => {
                    return Err(MrnetError::Instantiation(format!(
                        "child {i} of rank {} died during instantiation",
                        self.rank
                    )))
                }
                Ok(other) => {
                    return Err(MrnetError::Protocol(format!(
                        "unexpected inbox message during setup: {other:?}"
                    )))
                }
                Err(_) => return Err(MrnetError::Shutdown),
            }
        }
        for endpoints in reported.into_iter().map(Option::unwrap) {
            self.routes.add_child(endpoints);
        }
        let all = self.routes.all_endpoints();
        if let Some(parent) = &self.parent {
            parent.send(Control::SubtreeReport { endpoints: all }.to_frame())?;
        } else if let Some(tx) = self.ready_tx.take() {
            let _ = tx.send(all);
        }
        Ok(())
    }

    /// Folds the transport connections' send-pipeline counters (queue
    /// depth behind the writer threads, coalesced frames, enqueue
    /// stalls) into the node's gauges, so snapshots expose them — in
    /// aggregate, plus per child connection keyed by the child's rank
    /// so a snapshot can name which subtree is backed up.
    fn refresh_send_metrics(&self) {
        let (mut depth, mut coalesced, mut stalls) = (0u64, 0u64, 0u64);
        if let Some(p) = &self.parent {
            let s = p.stats();
            depth += s.queue_depth;
            coalesced += s.frames_coalesced;
            stalls += s.enqueue_stalls;
        }
        for (i, c) in self.children.iter().enumerate() {
            if !self.child_alive[i] {
                continue;
            }
            let s = c.stats();
            depth += s.queue_depth;
            coalesced += s.frames_coalesced;
            stalls += s.enqueue_stalls;
            if let Some(&rank) = self.child_ranks.get(i) {
                self.metrics.set_conn_send_stats(
                    rank,
                    ConnSendStats {
                        queue_depth: s.queue_depth,
                        coalesced: s.frames_coalesced,
                        stalls: s.enqueue_stalls,
                    },
                );
            }
        }
        self.metrics.send_queue_depth.set(depth as i64);
        self.metrics.send_coalesced.set(coalesced as i64);
        self.metrics.send_stalls.set(stalls as i64);
    }

    /// Runs the event loop until shutdown. Consumes the node.
    pub fn run(mut self) {
        self.start_clock_sync();
        loop {
            self.metrics.queue_depth.set(self.inbox.len() as i64);
            let deadline = self
                .managers
                .values()
                .filter_map(StreamManager::deadline)
                .chain(self.collects.values().map(|c| c.deadline))
                .fold(f64::INFINITY, f64::min);
            let msg = if deadline.is_finite() {
                let wait = (deadline - self.now()).max(0.0);
                match self.inbox.recv_timeout(Duration::from_secs_f64(wait)) {
                    Ok(m) => Some(m),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match self.inbox.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                }
            };
            let keep_going = match msg {
                Some(m) => self.dispatch(m),
                None => {
                    self.poll_timeouts();
                    true
                }
            };
            // Steady traffic can keep the loop off the timeout path
            // indefinitely; expire overdue collections here too.
            self.expire_collects(self.now());
            self.flush_all();
            if !keep_going {
                break;
            }
        }
        self.shutdown_cleanup();
    }

    fn shutdown_cleanup(&mut self) {
        // Tell the subtree, release pumps, close the mailbox.
        let frame = Control::Shutdown.to_frame();
        for (i, c) in self.children.iter().enumerate() {
            if self.child_alive[i] {
                let _ = c.send(frame.clone());
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(d) = &self.delivery {
            d.close();
        }
    }

    /// Returns false when the loop should exit.
    fn dispatch(&mut self, msg: Inbound) -> bool {
        match msg {
            Inbound::Child(i, frame) => {
                if !self.child_alive[i] {
                    // Late frames from a connection already declared
                    // dead (e.g. buffered before garbage): drop.
                    return true;
                }
                if let Err(e) = self.on_child_frame(i, frame) {
                    // A child speaking garbage (undecodable frame,
                    // protocol violation) is as gone as one that hung
                    // up: sever it and keep serving the others.
                    log_error!(self.rank, "child {i} frame error, declaring it failed: {e}");
                    self.handle_child_death(i);
                }
                true
            }
            Inbound::Parent(frame) => match self.on_parent_frame(frame) {
                Ok(keep) => keep,
                Err(e) => {
                    log_error!(self.rank, "parent frame error: {e}");
                    true
                }
            },
            Inbound::Cmd(cmd) => self.on_command(cmd),
            Inbound::Aggregated { stream, result } => {
                match result {
                    Ok(packets) => self.forward_up_wave(packets),
                    Err(e) => {
                        log_error!(self.rank, "filter error on stream {stream}, wave dropped: {e}");
                    }
                }
                true
            }
            Inbound::StreamDrained { stream } => {
                self.on_stream_drained(stream);
                true
            }
            Inbound::ChildClosed(i) => {
                self.handle_child_death(i);
                true
            }
            // Parent vanished: treat as shutdown so the subtree exits.
            Inbound::ParentClosed => false,
        }
    }

    /// Confirms child `child` dead: computes the lost subtree, prunes
    /// local state, and announces the failure through the tree.
    /// Idempotent — EOF, garbage, and a propagated report can all name
    /// the same child.
    fn handle_child_death(&mut self, child: usize) {
        self.child_alive[child] = false;
        self.forget_collect_child(child);
        self.child_trace_outbox[child].clear();
        self.clock_sync[child].buffered.clear();
        if self.child_death_reported[child] {
            return;
        }
        self.child_death_reported[child] = true;
        self.metrics.peer_deaths.inc();
        // Everything only reachable through this child dies with it,
        // minus ranks already declared dead by earlier reports.
        let lost: Vec<Rank> = if child < self.routes.num_children() {
            self.routes
                .reachable_via(child)
                .into_iter()
                .filter(|r| !self.known_dead.contains(r))
                .collect()
        } else {
            Vec::new()
        };
        let failed_rank = self
            .child_ranks
            .get(child)
            .copied()
            .unwrap_or_else(|| lost.first().copied().unwrap_or(self.rank));
        self.on_ranks_failed(failed_rank, lost, FailureOrigin::Child(child));
    }

    /// Applies a confirmed failure everywhere it matters at this node:
    /// routing shrinks, every stream prunes its membership (forwarding
    /// waves the shrinkage released), and the report is forwarded to
    /// every neighbor except the one it came from. At the root the
    /// report lands in the failure ledger as a tool-visible event.
    fn on_ranks_failed(&mut self, failed_rank: Rank, subtree: Vec<Rank>, origin: FailureOrigin) {
        let fresh: Vec<Rank> = subtree
            .into_iter()
            .filter(|r| self.known_dead.insert(*r))
            .collect();
        let node_is_new = self.known_dead.insert(failed_rank);
        if fresh.is_empty() && !node_is_new {
            return; // Duplicate report: fully processed already.
        }
        let now = self.now();
        self.routes.remove_endpoints(&fresh);
        // Prune every stream; a wave stuck waiting on the dead subtree
        // completes from the survivors right here.
        let mut fail_sids = Vec::new();
        let sids: Vec<StreamId> = self.managers.keys().copied().collect();
        for sid in &sids {
            let sid = *sid;
            let before = self
                .managers
                .get(&sid)
                .map_or(0, |m| m.live_endpoints().len());
            let (waves, all_dead) = self
                .managers
                .get_mut(&sid)
                .unwrap()
                .prune_sync(&fresh, now);
            let shrank = self
                .managers
                .get(&sid)
                .map_or(0, |m| m.live_endpoints().len())
                < before;
            if shrank {
                self.metrics.pruned_streams.inc();
            }
            match self.run_released(sid, waves) {
                Ok(packets) => self.forward_up_wave(packets),
                Err(e) => {
                    log_error!(self.rank, "prune error on stream {sid}: {e}");
                    continue;
                }
            }
            if all_dead && self.delivery.is_some() {
                // Root: no packet can ever arrive on this stream
                // again; its receivers must unblock with an error.
                fail_sids.push(sid);
            }
        }
        // Shard-held waves (released above, or synchronized just
        // before the disconnect surfaced) are still in flight: the
        // report — and the root-side stream failures — must not
        // overtake their aggregates, so both wait for a drain echo
        // from every sharded stream. The inline path forwarded waves
        // synchronously above, so with no executor (or no sharded
        // streams) nothing is in flight and the report goes out now.
        let waiting: BTreeSet<StreamId> = match &self.filter_exec {
            Some(exec) => sids
                .iter()
                .filter(|sid| {
                    self.managers
                        .get(sid)
                        .is_some_and(|m| !m.has_up_filter())
                })
                .inspect(|sid| exec.drain(**sid))
                .copied()
                .collect(),
            None => BTreeSet::new(),
        };
        if waiting.is_empty() {
            if let Some(delivery) = &self.delivery {
                for sid in fail_sids {
                    delivery.fail_stream(sid);
                }
            }
            self.forward_failure_report(failed_rank, &fresh, origin);
        } else {
            self.pending_failures.push(PendingFailure {
                waiting,
                fail_sids,
                failed_rank,
                fresh,
                origin,
            });
        }
    }

    /// Crosses a drain echo off every pending failure report, then
    /// releases completed reports front-first (drains are issued in
    /// report order, so reports complete in order too).
    fn on_stream_drained(&mut self, stream: StreamId) {
        if let Some(pf) = self
            .pending_failures
            .iter_mut()
            .find(|p| p.waiting.contains(&stream))
        {
            pf.waiting.remove(&stream);
        }
        while self
            .pending_failures
            .first()
            .is_some_and(|p| p.waiting.is_empty())
        {
            let pf = self.pending_failures.remove(0);
            if let Some(delivery) = &self.delivery {
                for sid in pf.fail_sids {
                    delivery.fail_stream(sid);
                }
            }
            self.forward_failure_report(pf.failed_rank, &pf.fresh, pf.origin);
        }
    }

    /// Sends a `RankFailed` report everywhere except whence it came;
    /// at the root it lands in the failure ledger instead of a parent.
    fn forward_failure_report(&mut self, failed_rank: Rank, fresh: &[Rank], origin: FailureOrigin) {
        let report = Control::RankFailed {
            rank: failed_rank,
            subtree: fresh.to_vec(),
        }
        .to_frame();
        match origin {
            FailureOrigin::Child(from) => {
                if let Some(parent) = &self.parent {
                    let _ = parent.send(report.clone());
                } else if let Some(ledger) = &self.ledger {
                    self.metrics.events_delivered.inc();
                    ledger.report(failed_rank, fresh.to_vec());
                }
                for i in 0..self.children.len() {
                    if i != from && self.child_alive[i] {
                        let _ = self.children[i].send(report.clone());
                    }
                }
            }
            FailureOrigin::Parent => {
                for i in 0..self.children.len() {
                    if self.child_alive[i] {
                        let _ = self.children[i].send(report.clone());
                    }
                }
            }
        }
    }

    /// Fires the first clock ping at every child. Runs once, as the
    /// event loop starts (the whole subtree is in its loop by then —
    /// setup completes bottom-up). The rest of the handshake is driven
    /// by the pong handlers, one exchange at a time.
    fn start_clock_sync(&mut self) {
        for child in 0..self.children.len() {
            if self.child_alive[child] {
                self.send_clock_ping(child);
            }
        }
    }

    fn send_clock_ping(&mut self, child: usize) {
        let ping = Control::ClockPing {
            t0_us: tracectx::wall_us(),
        }
        .to_frame();
        // A failed send just ends the handshake (the child's offset
        // stays unresolved, defaulting to zero skew). Declaring the
        // child dead here would jump ahead of its already-queued
        // inbound frames — death is only ever declared in frame order,
        // by EOF or garbage.
        let _ = self.children[child].send(ping);
    }

    /// One ping exchange completed: fold the estimate in (minimum RTT
    /// wins), then either ping again or resolve the child's clock.
    fn on_clock_pong(&mut self, child: usize, t0_us: u64, t1_us: u64, t2_us: u64) {
        let t3_us = tracectx::wall_us();
        let est = ClockEstimate::from_ping(t0_us, t1_us, t2_us, t3_us);
        let sync = &mut self.clock_sync[child];
        if sync.resolved {
            return; // Stray duplicate pong.
        }
        if sync.best.map_or(true, |best| est.better_than(&best)) {
            sync.best = Some(est);
        }
        sync.exchanged += 1;
        if sync.exchanged < CLOCK_PINGS {
            self.send_clock_ping(child);
        } else {
            self.resolve_child_clock(child);
        }
    }

    /// Finalizes a child's estimate: apply it (and any buffered
    /// subtree entries, chained through it) at the root, or relay the
    /// lot upstream.
    fn resolve_child_clock(&mut self, child: usize) {
        let Some(est) = self.clock_sync[child].best else {
            return;
        };
        let Some(&rank) = self.child_ranks.get(child) else {
            return;
        };
        self.clock_sync[child].resolved = true;
        let buffered = std::mem::take(&mut self.clock_sync[child].buffered);
        let mut entries = vec![(rank, est.offset_us, est.rtt_us)];
        entries.extend(buffered.into_iter().map(|(r, offset_us, rtt_us)| {
            let chained = est.chain(&ClockEstimate { offset_us, rtt_us });
            (r, chained.offset_us, chained.rtt_us)
        }));
        self.apply_clock_entries(entries);
    }

    /// A subtree clock table arrived from `child`. Its offsets are
    /// relative to the child's clock; chain them through our estimate
    /// of the child before applying — or buffer them until that
    /// estimate exists.
    fn on_clock_info(&mut self, child: usize, ranks: Vec<Rank>, offsets: Vec<i64>, rtts: Vec<u64>) {
        let sync = &mut self.clock_sync[child];
        let items = ranks.into_iter().zip(offsets).zip(rtts);
        if !sync.resolved {
            sync.buffered
                .extend(items.map(|((r, off), rtt)| (r, off, rtt)));
            return;
        }
        let est = sync.best.unwrap_or_default();
        let entries: Vec<(Rank, i64, u64)> = items
            .map(|((r, offset_us), rtt_us)| {
                let chained = est.chain(&ClockEstimate { offset_us, rtt_us });
                (r, chained.offset_us, chained.rtt_us)
            })
            .collect();
        self.apply_clock_entries(entries);
    }

    /// Entries are relative to *this* node's clock: feed the root's
    /// assembler directly, or relay them upstream for further
    /// chaining.
    fn apply_clock_entries(&mut self, entries: Vec<(Rank, i64, u64)>) {
        if entries.is_empty() {
            return;
        }
        if let Some(assembler) = &self.assembler {
            for (rank, offset_us, rtt_us) in entries {
                assembler.set_clock(rank, offset_us, rtt_us);
            }
        } else if let Some(parent) = &self.parent {
            let mut ranks = Vec::with_capacity(entries.len());
            let mut offsets_us = Vec::with_capacity(entries.len());
            let mut rtts_us = Vec::with_capacity(entries.len());
            for (r, off, rtt) in entries {
                ranks.push(r);
                offsets_us.push(off);
                rtts_us.push(rtt);
            }
            let _ = parent.send(
                Control::ClockInfo {
                    ranks,
                    offsets_us,
                    rtts_us,
                }
                .to_frame(),
            );
        }
    }

    fn poll_timeouts(&mut self) {
        let now = self.now();
        self.expire_collects(now);
        let released: Vec<(StreamId, Vec<Vec<Packet>>)> = self
            .managers
            .iter_mut()
            .filter_map(|(&sid, mgr)| {
                let waves = mgr.poll_sync(now);
                (!waves.is_empty()).then_some((sid, waves))
            })
            .collect();
        for (sid, waves) in released {
            match self.run_released(sid, waves) {
                Ok(pkts) => self.forward_up_wave(pkts),
                Err(e) => log_error!(self.rank, "filter error on stream {sid}, wave dropped: {e}"),
            }
        }
    }

    fn on_child_frame(&mut self, child: usize, frame: bytes::Bytes) -> Result<()> {
        match decode_frame(frame)? {
            Frame::Data(packets) => self.on_child_packets(child, packets)?,
            Frame::Traced(packets, envelopes) => {
                // Stamp arrival once per frame; the envelopes wait with
                // that stamp until their streams' waves forward.
                let recv_us = tracectx::wall_us();
                self.metrics.trace_frames.inc();
                for env in envelopes {
                    let pending = self.trace_pending_up.entry(env.stream).or_default();
                    if pending.len() < TRACE_PENDING_CAP {
                        pending.push((env, recv_us));
                    }
                }
                self.on_child_packets(child, packets)?;
            }
            Frame::Control(pkt) => match Control::from_packet(&pkt)? {
                // Late subtree reports / attaches are instantiation
                // artifacts; ignore outside setup.
                Control::SubtreeReport { .. }
                | Control::Attach { .. }
                | Control::AttachInfo { .. } => {}
                Control::RankFailed { rank, subtree } => {
                    // A descendant deeper in this child's subtree died;
                    // the child itself is alive (it told us).
                    self.on_ranks_failed(rank, subtree, FailureOrigin::Child(child));
                }
                Control::ClockPong {
                    t0_us,
                    t1_us,
                    t2_us,
                } => self.on_clock_pong(child, t0_us, t1_us, t2_us),
                Control::ClockInfo {
                    ranks,
                    offsets_us,
                    rtts_us,
                } => self.on_clock_info(child, ranks, offsets_us, rtts_us),
                other => {
                    return Err(MrnetError::Protocol(format!(
                        "unexpected upstream control: {other:?}"
                    )))
                }
            },
        }
        Ok(())
    }

    fn on_child_packets(&mut self, child: usize, packets: Vec<Packet>) -> Result<()> {
        let now = self.now();
        for packet in packets {
            let sid = packet.stream_id();
            if sid == METRICS_STREAM {
                // Introspection traffic: handled here, never
                // routed or counted.
                self.on_introspect_up(child, &packet);
                continue;
            }
            self.metrics.up_pkts_recv.inc();
            self.trace_hop(&packet, TraceDir::Up, now);
            let waves = match self.managers.get_mut(&sid) {
                Some(mgr) => mgr.up_sync(child, packet, now)?,
                // Stream unknown (deleted or never created):
                // drop, as the original does for stale data.
                None => continue,
            };
            if waves.is_empty() {
                continue;
            }
            let ready = self.run_released(sid, waves)?;
            self.forward_up_wave(ready);
        }
        Ok(())
    }

    /// Runs waves the sync filter released through the stream's
    /// upstream transformation filter: inline when the manager still
    /// owns it (null/relay streams, or `MRNET_FILTER_SHARDS=0`),
    /// otherwise by dispatching to the stream's shard — the
    /// transformed wave then returns through the inbox as
    /// [`Inbound::Aggregated`]. Returns whatever is ready to forward
    /// right now.
    fn run_released(&mut self, sid: StreamId, waves: Vec<Vec<Packet>>) -> Result<Vec<Packet>> {
        if waves.is_empty() {
            return Ok(Vec::new());
        }
        let Some(mgr) = self.managers.get_mut(&sid) else {
            return Ok(Vec::new());
        };
        if !mgr.has_up_filter() {
            let exec = self
                .filter_exec
                .as_ref()
                .expect("up filter only moves when the executor exists");
            for wave in waves {
                exec.exec(sid, wave);
            }
            return Ok(Vec::new());
        }
        if mgr.up_filter_is_null() {
            // Pure relay: the null filter cannot touch payloads, so
            // skip the materialization bookkeeping.
            return mgr.transform_waves(waves);
        }
        // Handles stay shared with the wave's packets; after the
        // transform they reveal which raw payloads were materialized.
        let handles: Vec<Packet> = waves
            .iter()
            .flatten()
            .filter(|p| p.is_lazy())
            .cloned()
            .collect();
        let ready = mgr.transform_waves(waves)?;
        let decoded = handles.iter().filter(|p| !p.is_lazy()).count();
        self.metrics.pkts_decoded.add(decoded as u64);
        Ok(ready)
    }

    /// Dispatches upstream introspection packets by tag.
    fn on_introspect_up(&mut self, child: usize, packet: &Packet) {
        match packet.tag() {
            METRICS_REPLY => self.on_metrics_reply(child, packet),
            TRACE_REPORT => self.on_trace_report(packet),
            _ => {}
        }
    }

    /// A completed down-wave envelope riding up from the back-end that
    /// terminated it: ingest at the root, forward verbatim (unbatched,
    /// like all introspection traffic) elsewhere.
    fn on_trace_report(&mut self, packet: &Packet) {
        if let Some(assembler) = &self.assembler {
            match introspect::decode_trace_report(packet) {
                Ok(env) => {
                    assembler.ingest(&env, TraceDir::Down);
                }
                Err(_) => log_warn!(self.rank, "dropping malformed trace report"),
            }
        } else if let Some(parent) = &self.parent {
            let _ = parent.send(encode_data_frame(std::slice::from_ref(packet)));
        }
    }

    /// Moves pending up-wave envelopes for the forwarded streams to
    /// their next station: completed (with this root hop appended) into
    /// the assembler at the root, into the parent's trace outbox
    /// elsewhere. An aggregated wave keeps its envelope even when the
    /// filter collapsed the packets — the envelope describes the wave,
    /// not one packet.
    fn take_pending_up(&mut self, packets: &[Packet]) {
        if self.trace_pending_up.is_empty() {
            return;
        }
        let mut streams: Vec<StreamId> = packets.iter().map(Packet::stream_id).collect();
        streams.sort_unstable();
        streams.dedup();
        for sid in streams {
            let Some(pending) = self.trace_pending_up.remove(&sid) else {
                continue;
            };
            if let Some(assembler) = &self.assembler {
                // Root: the wave terminates here.
                let now = tracectx::wall_us();
                for (mut env, recv_us) in pending {
                    env.add_hop(self.rank, recv_us, now);
                    self.metrics.trace_hops.inc();
                    assembler.ingest(&env, TraceDir::Up);
                }
            } else if self.parent.is_some() {
                for item in pending {
                    if self.parent_trace_outbox.len() < TRACE_OUTBOX_CAP {
                        self.parent_trace_outbox.push(item);
                    }
                }
            }
        }
    }

    fn forward_up_wave(&mut self, packets: Vec<Packet>) {
        if packets.is_empty() {
            return;
        }
        self.take_pending_up(&packets);
        self.metrics.up_pkts_sent.add(packets.len() as u64);
        for p in &packets {
            if p.is_lazy() {
                // The fast path: this packet moves on (or is
                // delivered) as the exact bytes it arrived in.
                self.metrics.pkts_lazy_relayed.inc();
            }
        }
        if let Some(delivery) = &self.delivery {
            // Root: "sent" upstream means delivered to user threads;
            // account the bytes here since no wire carries them. The
            // whole wave lands under one mailbox lock and one wake-up.
            for p in &packets {
                self.metrics
                    .local_up_bytes
                    .add(p.encoded_size_hint() as u64);
            }
            delivery.push_many(packets);
        } else {
            for p in packets {
                self.parent_batcher.push(p);
                if self.parent_batcher.should_flush() {
                    self.flush_parent();
                }
            }
        }
    }

    /// Returns false when the loop should exit (shutdown received).
    fn on_parent_frame(&mut self, frame: bytes::Bytes) -> Result<bool> {
        match decode_frame(frame)? {
            Frame::Data(packets) => {
                self.on_parent_packets(packets)?;
                Ok(true)
            }
            Frame::Traced(packets, envelopes) => {
                let recv_us = tracectx::wall_us();
                self.metrics.trace_frames.inc();
                // Spread the envelopes into child outboxes *before*
                // routing: a route-triggered flush then carries them on
                // the very frame their wave rides.
                for env in envelopes {
                    self.spread_down_envelope(env, recv_us);
                }
                self.on_parent_packets(packets)?;
                Ok(true)
            }
            Frame::Control(pkt) => {
                let control = Control::from_packet(&pkt)?;
                match &control {
                    Control::NewStream { .. } => {
                        let def =
                            StreamDef::from_control(&control).expect("NewStream parses to a def");
                        self.create_stream(def)?;
                        Ok(true)
                    }
                    Control::DeleteStream { stream_id } => {
                        self.delete_stream(*stream_id);
                        Ok(true)
                    }
                    Control::RankFailed { rank, subtree } => {
                        // A failure in a sibling subtree, relayed down.
                        self.on_ranks_failed(*rank, subtree.clone(), FailureOrigin::Parent);
                        Ok(true)
                    }
                    Control::ClockPing { t0_us } => {
                        let t1_us = tracectx::wall_us();
                        if let Some(parent) = &self.parent {
                            let _ = parent.send(
                                Control::ClockPong {
                                    t0_us: *t0_us,
                                    t1_us,
                                    t2_us: tracectx::wall_us(),
                                }
                                .to_frame(),
                            );
                        }
                        Ok(true)
                    }
                    Control::Shutdown => Ok(false),
                    other => Err(MrnetError::Protocol(format!(
                        "unexpected downstream control: {other:?}"
                    ))),
                }
            }
        }
    }

    fn on_parent_packets(&mut self, packets: Vec<Packet>) -> Result<()> {
        let now = self.now();
        for packet in packets {
            if packet.stream_id() == METRICS_STREAM {
                self.on_metrics_request(&packet);
                continue;
            }
            self.metrics.down_pkts_recv.inc();
            self.trace_hop(&packet, TraceDir::Down, now);
            self.route_down(packet)?;
        }
        Ok(())
    }

    /// Copies a down-wave envelope (with its arrival stamp) into the
    /// trace outbox of every live child on its stream's route; each
    /// child's next flushed frame carries it onward.
    fn spread_down_envelope(&mut self, env: TraceEnvelope, recv_us: u64) {
        let Some(mgr) = self.managers.get(&env.stream) else {
            return; // Stream gone (racing a delete): drop the trace.
        };
        let route = mgr.live_route().to_vec();
        for child in route {
            if self.child_alive[child] && self.child_trace_outbox[child].len() < TRACE_OUTBOX_CAP {
                self.child_trace_outbox[child].push((env.clone(), recv_us));
            }
        }
    }

    fn on_command(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::NewStream(def) => {
                if let Err(e) = self.create_stream(def) {
                    log_error!(self.rank, "stream creation error: {e}");
                }
                true
            }
            Command::SendDown(packet) => {
                // A sampled down-wave originates here: spread an
                // empty-hops envelope into the route's child outboxes
                // before routing so it rides the same flushed frame.
                // The root's own hop is stamped at flush time.
                if self.sampler.sample() {
                    let env = TraceEnvelope {
                        trace_id: tracectx::next_trace_id(self.rank),
                        stream: packet.stream_id(),
                        hops: Vec::new(),
                    };
                    self.spread_down_envelope(env, tracectx::wall_us());
                }
                if let Err(e) = self.route_down(packet) {
                    log_error!(self.rank, "downstream send error: {e}");
                }
                true
            }
            Command::DeleteStream(sid) => {
                self.delete_stream(sid);
                true
            }
            Command::CollectMetrics {
                req_id,
                timeout_secs,
                reply,
            } => {
                self.start_collect(req_id, timeout_secs, Some(reply));
                true
            }
            Command::Shutdown => false,
        }
    }

    fn create_stream(&mut self, mut def: StreamDef) -> Result<()> {
        // Streams are born onto the *surviving* tree: ranks that died
        // before creation never join the membership (otherwise the
        // first WaitForAll wave would stall on them).
        if !self.known_dead.is_empty() {
            def.endpoints.retain(|r| !self.known_dead.contains(r));
        }
        if def.endpoints.is_empty() {
            if let Some(delivery) = &self.delivery {
                delivery.fail_stream(def.id);
            }
            return Ok(());
        }
        let frame = def.to_control().to_frame();
        let mut mgr = StreamManager::with_metrics(
            def,
            &self.routes,
            &self.registry,
            self.rank,
            &self.metrics,
        )?;
        // Aggregating streams run their upstream filter on the shard
        // executor; null (pure relay) streams keep it inline, where
        // it costs nothing and packets stay in raw wire form.
        if let Some(exec) = &self.filter_exec {
            if !mgr.up_filter_is_null() {
                if let Some((filter, ctx)) = mgr.take_up_filter() {
                    exec.install(mgr.def().id, filter, ctx);
                }
            }
        }
        // Announce to participating children before any data can flow.
        // A child that died (possibly unnoticed until this send) must
        // not prevent the stream from existing for the survivors.
        for &child in mgr.participants() {
            if self.child_alive[child] && self.children[child].send(frame.clone()).is_err() {
                self.child_alive[child] = false;
            }
        }
        self.managers.insert(mgr.def().id, mgr);
        Ok(())
    }

    fn delete_stream(&mut self, sid: StreamId) {
        if let Some(mgr) = self.managers.remove(&sid) {
            if !mgr.has_up_filter() {
                if let Some(exec) = &self.filter_exec {
                    exec.remove(sid);
                }
            }
            let frame = Control::DeleteStream { stream_id: sid }.to_frame();
            for &child in mgr.participants() {
                if self.child_alive[child] {
                    let _ = self.children[child].send(frame.clone());
                }
            }
        }
    }

    fn route_down(&mut self, packet: Packet) -> Result<()> {
        let sid = packet.stream_id();
        let Some(mgr) = self.managers.get_mut(&sid) else {
            // Data for an unknown stream (e.g. racing a delete): drop.
            return Ok(());
        };
        let outs = mgr.down(packet)?;
        // The stream's fan-out is cached on its manager — no per-packet
        // end-point cloning or routing-table intersection.
        let route = mgr.live_route().to_vec();
        for out in &outs {
            if out.is_lazy() {
                // Counted once per packet, not per multicast replica:
                // the relay never opened this payload.
                self.metrics.pkts_lazy_relayed.inc();
            }
        }
        for out in outs {
            // "A data packet flowing downstream may be placed in
            // multiple output packet buffers because the packet may be
            // destined for multiple back-ends" (§2.3) — by reference.
            let mut flush = false;
            for &child in &route {
                if self.child_alive[child] {
                    self.metrics.down_pkts_sent.inc();
                    self.child_batchers[child].push(out.clone());
                    flush |= self.child_batchers[child].should_flush();
                }
            }
            // Flush only after every route member holds the packet:
            // children whose batches filled identically flush in the
            // same wave and share one encoded frame.
            if flush {
                for &child in &route {
                    if self.child_alive[child] && self.child_batchers[child].should_flush() {
                        self.flush_child(child);
                    }
                }
            }
        }
        Ok(())
    }

    fn flush_child(&mut self, child: usize) {
        let packets = self.child_batchers[child].drain();
        if !self.child_alive[child] {
            self.child_trace_outbox[child].clear();
            return;
        }
        if !self.child_trace_outbox[child].is_empty() {
            // Traced flush: stamp this node's hop (arrival stamp kept
            // from ingest, departure stamped now) onto every pending
            // envelope and ship them as the frame's trailer. Traced
            // frames differ per child, so they never enter the
            // encode-once sharing path below.
            let now = tracectx::wall_us();
            let mut envs = Vec::with_capacity(self.child_trace_outbox[child].len());
            for (mut env, recv_us) in self.child_trace_outbox[child].drain(..) {
                env.add_hop(self.rank, recv_us, now);
                envs.push(env);
            }
            self.metrics.trace_hops.add(envs.len() as u64);
            self.metrics.trace_frames.inc();
            if !packets.is_empty() {
                self.metrics.batch_pkts.record_us(packets.len() as u64);
            }
            let frame = encode_traced_data_frame(&packets, &envs);
            self.metrics.frames_encoded.inc();
            if self.children[child].send(frame).is_err() {
                self.child_alive[child] = false;
            }
            return;
        }
        if packets.is_empty() {
            return;
        }
        self.metrics.batch_pkts.record_us(packets.len() as u64);
        let frame = encode_data_frame(&packets);
        self.metrics.frames_encoded.inc();
        if self.children[child].send(frame.clone()).is_err() {
            self.child_alive[child] = false;
        }
        // Encode-once multicast: a sibling whose pending batch holds
        // these exact packet handles would produce a byte-identical
        // frame — hand it this one (a refcount bump) instead of
        // re-encoding. Divergent batches keep their own flush cycle.
        // A sibling with pending trace envelopes is excluded: its frame
        // must carry its own trailer.
        for sib in 0..self.children.len() {
            if sib == child
                || !self.child_alive[sib]
                || !self.child_trace_outbox[sib].is_empty()
                || !self.child_batchers[sib].pending_matches(&packets)
            {
                continue;
            }
            self.child_batchers[sib].drain();
            self.metrics.batch_pkts.record_us(packets.len() as u64);
            self.metrics.frames_shared.inc();
            if self.children[sib].send(frame.clone()).is_err() {
                self.child_alive[sib] = false;
            }
        }
    }

    fn flush_parent(&mut self) {
        let packets = self.parent_batcher.drain();
        let Some(parent) = &self.parent else {
            self.parent_trace_outbox.clear();
            return;
        };
        if !self.parent_trace_outbox.is_empty() {
            let now = tracectx::wall_us();
            let mut envs = Vec::with_capacity(self.parent_trace_outbox.len());
            for (mut env, recv_us) in self.parent_trace_outbox.drain(..) {
                env.add_hop(self.rank, recv_us, now);
                envs.push(env);
            }
            self.metrics.trace_hops.add(envs.len() as u64);
            self.metrics.trace_frames.inc();
            if !packets.is_empty() {
                self.metrics.batch_pkts.record_us(packets.len() as u64);
            }
            let frame = encode_traced_data_frame(&packets, &envs);
            self.metrics.frames_encoded.inc();
            let _ = parent.send(frame);
            return;
        }
        if packets.is_empty() {
            return;
        }
        self.metrics.batch_pkts.record_us(packets.len() as u64);
        let frame = encode_data_frame(&packets);
        self.metrics.frames_encoded.inc();
        let _ = parent.send(frame);
    }

    fn flush_all(&mut self) {
        for i in 0..self.children.len() {
            if !self.child_batchers[i].is_empty() || !self.child_trace_outbox[i].is_empty() {
                self.flush_child(i);
            }
        }
        if !self.parent_batcher.is_empty() || !self.parent_trace_outbox.is_empty() {
            self.flush_parent();
        }
    }

    /// Records a packet-path trace event (and the matching hop-latency
    /// sample) when tracing is on. `t0` is the epoch-relative arrival
    /// time of the frame carrying the packet, so `hop_us` measures
    /// in-node handling latency up to this point.
    fn trace_hop(&self, packet: &Packet, dir: TraceDir, t0: f64) {
        if !trace::enabled() {
            return;
        }
        let now = self.now();
        let hop_us = ((now - t0).max(0.0) * 1e6) as u64;
        let hist = match dir {
            TraceDir::Up => &self.metrics.hop_up_us,
            TraceDir::Down => &self.metrics.hop_down_us,
        };
        hist.record_us(hop_us);
        self.metrics.trace.record(TraceEvent {
            at_us: (now * 1e6) as u64,
            stream: packet.stream_id(),
            tag: packet.tag(),
            origin: packet.src(),
            dir,
            hop_us,
        });
    }

    /// Begins a metrics collection at this node: snapshot ourselves,
    /// forward the request to every live child, and wait for their
    /// replies (or the deadline). Introspection frames go directly to
    /// the connections — never through the batchers — so they stay
    /// invisible to the packet counters they report. `reply` is the
    /// front-end channel at the root; interior nodes pass `None` and
    /// answer upstream instead.
    fn start_collect(
        &mut self,
        req_id: u32,
        timeout_secs: f64,
        reply: Option<Sender<NetworkSnapshot>>,
    ) {
        let timeout = timeout_secs.max(0.0);
        // Children get a slightly tighter deadline than ours so their
        // (possibly partial) replies land before we give up waiting.
        let request = introspect::encode_request(req_id, timeout * 0.9);
        let frame = encode_data_frame(std::slice::from_ref(&request));
        let mut outstanding = Vec::new();
        for i in 0..self.children.len() {
            if !self.child_alive[i] {
                continue;
            }
            if self.children[i].send(frame.clone()).is_ok() {
                outstanding.push(i);
            } else {
                self.child_alive[i] = false;
            }
        }
        self.refresh_send_metrics();
        self.collects.insert(
            req_id,
            MetricsCollect {
                sections: vec![self.metrics.snapshot(self.rank)],
                outstanding,
                deadline: self.now() + timeout,
                reply,
            },
        );
        self.finish_if_complete(req_id);
    }

    /// Handles a metrics request arriving from the parent: collect
    /// from the subtree, replying upstream when done.
    fn on_metrics_request(&mut self, packet: &Packet) {
        if packet.tag() != METRICS_REQUEST {
            return;
        }
        let Ok((req_id, timeout)) = introspect::decode_request(packet) else {
            log_warn!(self.rank, "dropping malformed metrics request");
            return;
        };
        self.start_collect(req_id, timeout, None);
    }

    /// Merges a child's metrics reply into the matching collection.
    /// Replies for unknown request ids (stragglers past the deadline)
    /// are dropped.
    fn on_metrics_reply(&mut self, child: usize, packet: &Packet) {
        if packet.tag() != METRICS_REPLY {
            return;
        }
        let Ok((req_id, sections)) = introspect::decode_reply(packet) else {
            log_warn!(self.rank, "dropping malformed metrics reply");
            return;
        };
        let Some(collect) = self.collects.get_mut(&req_id) else {
            return;
        };
        collect.outstanding.retain(|&i| i != child);
        collect.sections.extend(sections);
        self.finish_if_complete(req_id);
    }

    fn finish_if_complete(&mut self, req_id: u32) {
        let done = self
            .collects
            .get(&req_id)
            .is_some_and(|c| c.outstanding.is_empty());
        if done {
            if let Some(collect) = self.collects.remove(&req_id) {
                self.finish_collect(req_id, collect);
            }
        }
    }

    /// Delivers a finished (or expired) collection: to the front-end
    /// channel at the root, upstream as a reply packet elsewhere.
    fn finish_collect(&mut self, req_id: u32, collect: MetricsCollect) {
        match collect.reply {
            Some(tx) => {
                let _ = tx.send(introspect::snapshot_from_sections(collect.sections));
            }
            None => {
                if let Some(parent) = &self.parent {
                    let reply = introspect::encode_reply(req_id, &collect.sections);
                    let _ = parent.send(encode_data_frame(std::slice::from_ref(&reply)));
                }
            }
        }
    }

    /// A child died: stop waiting for its reply in every in-flight
    /// collection.
    fn forget_collect_child(&mut self, child: usize) {
        if self.collects.is_empty() {
            return;
        }
        let ids: Vec<u32> = self.collects.keys().copied().collect();
        for req_id in ids {
            if let Some(collect) = self.collects.get_mut(&req_id) {
                collect.outstanding.retain(|&i| i != child);
            }
            self.finish_if_complete(req_id);
        }
    }

    /// Completes any collection whose deadline has passed with the
    /// sections gathered so far.
    fn expire_collects(&mut self, now: f64) {
        if self.collects.is_empty() {
            return;
        }
        let expired: Vec<u32> = self
            .collects
            .iter()
            .filter(|(_, c)| now >= c.deadline)
            .map(|(&id, _)| id)
            .collect();
        for req_id in expired {
            if let Some(collect) = self.collects.remove(&req_id) {
                log_warn!(
                    self.rank,
                    "metrics collection {req_id} timed out with {} children outstanding",
                    collect.outstanding.len()
                );
                self.finish_collect(req_id, collect);
            }
        }
    }
}
