//! Per-stream state inside one MRNet process.
//!
//! §2.3: "Internal processes use a stream manager object to manage
//! control flow and route packets. When a stream is established, an
//! internal process creates a new stream manager and initializes it
//! with the set of end-points to be associated with the stream and the
//! filter(s) to be used on data packets sent on the stream."
//!
//! A [`StreamManager`] owns the stream's synchronization filter and
//! its upstream/downstream transformation filter instances, and knows
//! which of the process's children participate in the stream.

use std::collections::HashMap;
use std::sync::Arc;

#[cfg(test)]
use mrnet_filters::SyncMode;
use mrnet_filters::{BoxedTransform, FilterContext, FilterRegistry, SyncFilter};
use mrnet_obs::{FilterStats, NodeMetrics, StreamCounters};
use mrnet_packet::{Packet, Rank};

use crate::error::{MrnetError, Result};
use crate::route::RoutingTable;
use crate::streams::StreamDef;

/// Stream state at one process.
pub struct StreamManager {
    def: StreamDef,
    ctx: FilterContext,
    sync: SyncFilter,
    /// The upstream transformation filter. `None` once the node loop
    /// has moved it onto a shard executor with
    /// [`StreamManager::take_up_filter`]; synchronization state always
    /// stays here, single-owner.
    up: Option<BoxedTransform>,
    down: BoxedTransform,
    /// Local child indices participating in this stream, in child
    /// order; the position within this vector is the sync-filter slot.
    participants: Vec<usize>,
    slot_of_child: HashMap<usize, usize>,
    /// Per-slot stream end-points served through that participant
    /// child, shrunk as failures are pruned; a slot whose target set
    /// empties is deactivated in the sync filter.
    slot_targets: Vec<Vec<Rank>>,
    /// The downstream fan-out route, cached: participant children that
    /// still serve at least one live end-point. Computed once at build
    /// and rebuilt on prune, so the per-packet downstream path never
    /// recomputes routing-table intersections.
    live_route: Vec<usize>,
    /// Per-stream packet counters (shared with the node's registry).
    counters: Option<Arc<StreamCounters>>,
    /// Upstream-filter timing; the synchronization-delay histogram
    /// (§3.2) is fed from here, the exec histogram from the
    /// `TimedTransform` wrapping `up`.
    up_stats: Option<Arc<FilterStats>>,
    /// When the oldest still-pending wave started accumulating.
    first_arrival: Option<f64>,
}

impl StreamManager {
    /// Creates the manager for `def` at a process whose children are
    /// described by `routes`.
    pub fn new(
        def: StreamDef,
        routes: &RoutingTable,
        registry: &FilterRegistry,
        local_rank: Rank,
    ) -> Result<StreamManager> {
        StreamManager::build(def, routes, registry, local_rank, None)
    }

    /// Like [`StreamManager::new`], but instrumented: per-stream packet
    /// counters and filter wait/exec histograms record into `metrics`.
    pub fn with_metrics(
        def: StreamDef,
        routes: &RoutingTable,
        registry: &FilterRegistry,
        local_rank: Rank,
        metrics: &NodeMetrics,
    ) -> Result<StreamManager> {
        StreamManager::build(def, routes, registry, local_rank, Some(metrics))
    }

    fn build(
        def: StreamDef,
        routes: &RoutingTable,
        registry: &FilterRegistry,
        local_rank: Rank,
        metrics: Option<&NodeMetrics>,
    ) -> Result<StreamManager> {
        let (participants, slot_targets): (Vec<usize>, Vec<Vec<Rank>>) = routes
            .children_with_targets(&def.endpoints)
            .into_iter()
            .unzip();
        let slot_of_child: HashMap<usize, usize> = participants
            .iter()
            .enumerate()
            .map(|(slot, &child)| (child, slot))
            .collect();
        let live_route = participants.clone();
        let up_id = registry.id_of(&def.up_filter)?;
        let (up, counters, up_stats) = match metrics {
            Some(m) => {
                let stats = m.filter_stats(&def.up_filter);
                (
                    registry.instantiate_timed(up_id, stats.clone())?,
                    Some(m.stream_counters(def.id)),
                    Some(stats),
                )
            }
            None => (registry.instantiate(up_id)?, None, None),
        };
        let down = registry.instantiate(registry.id_of(&def.down_filter)?)?;
        let sync = SyncFilter::new(def.sync, participants.len());
        let ctx = FilterContext::new(def.id, local_rank, participants.len());
        Ok(StreamManager {
            def,
            ctx,
            sync,
            up: Some(up),
            down,
            participants,
            slot_of_child,
            slot_targets,
            live_route,
            counters,
            up_stats,
            first_arrival: None,
        })
    }

    /// The stream definition.
    pub fn def(&self) -> &StreamDef {
        &self.def
    }

    /// Local child indices participating in this stream.
    pub fn participants(&self) -> &[usize] {
        &self.participants
    }

    /// The cached downstream route: participant children still serving
    /// at least one live end-point. Shrinks as failures are pruned.
    pub fn live_route(&self) -> &[usize] {
        &self.live_route
    }

    /// Handles an upstream packet arriving from local child `child` at
    /// time `now`; returns the aggregated packets ready to continue
    /// upstream.
    pub fn up(&mut self, child: usize, packet: Packet, now: f64) -> Result<Vec<Packet>> {
        let waves = self.up_sync(child, packet, now)?;
        self.transform_waves(waves)
    }

    /// The synchronization half of [`StreamManager::up`]: pushes the
    /// packet into the sync filter and returns the waves it released,
    /// untransformed, so the caller can run the upstream filter
    /// elsewhere (a shard executor) without blocking the node loop.
    pub fn up_sync(&mut self, child: usize, packet: Packet, now: f64) -> Result<Vec<Vec<Packet>>> {
        let slot = *self.slot_of_child.get(&child).ok_or_else(|| {
            MrnetError::Protocol(format!(
                "upstream packet for stream {} from non-participant child {child}",
                self.def.id
            ))
        })?;
        if let Some(c) = &self.counters {
            c.up_pkts.inc();
        }
        if self.first_arrival.is_none() {
            self.first_arrival = Some(now);
        }
        let waves = self.sync.push(slot, packet, now);
        self.note_released(&waves, now);
        Ok(waves)
    }

    /// Re-evaluates synchronization deadlines at `now` (for TimeOut
    /// streams); returns any packets released by a timeout.
    pub fn poll(&mut self, now: f64) -> Result<Vec<Packet>> {
        let waves = self.poll_sync(now);
        self.transform_waves(waves)
    }

    /// The synchronization half of [`StreamManager::poll`]: released
    /// waves, untransformed.
    pub fn poll_sync(&mut self, now: f64) -> Vec<Vec<Packet>> {
        let waves = self.sync.collect(now);
        self.note_released(&waves, now);
        waves
    }

    /// Records synchronization delay (first arrival of a wave → its
    /// release, the paper's §3.2 measure) for each released wave.
    fn note_released(&mut self, waves: &[Vec<Packet>], now: f64) {
        if waves.is_empty() {
            return;
        }
        if let Some(start) = self.first_arrival.take() {
            if let Some(stats) = &self.up_stats {
                for _ in waves {
                    stats.wait_us.record_secs(now - start);
                }
            }
        }
        if self.sync.has_pending() {
            // Packets for the next wave are already queued; the delay
            // clock for that wave starts now (its true first arrival
            // is unknowable once its predecessor flushed).
            self.first_arrival = Some(now);
        }
    }

    /// Runs released waves through the upstream transformation filter.
    /// Errors if the filter has been moved to a shard executor — the
    /// node loop must dispatch instead.
    pub fn transform_waves(&mut self, waves: Vec<Vec<Packet>>) -> Result<Vec<Packet>> {
        if waves.is_empty() {
            return Ok(Vec::new());
        }
        let up = self.up.as_mut().ok_or_else(|| {
            MrnetError::Protocol(format!(
                "stream {}'s upstream filter was moved to the shard executor",
                self.def.id
            ))
        })?;
        let mut out = Vec::new();
        for wave in waves {
            let produced = up.transform(wave, &self.ctx)?;
            // Aggregated packets continue on the same stream.
            out.extend(produced.into_iter().map(|p| p.with_stream(self.def.id)));
        }
        Ok(out)
    }

    /// Hands the upstream filter instance (with the context it runs
    /// under) to a shard executor. After this, released waves must be
    /// dispatched there; [`StreamManager::transform_waves`] errors.
    pub fn take_up_filter(&mut self) -> Option<(BoxedTransform, FilterContext)> {
        self.up.take().map(|f| (f, self.ctx.clone()))
    }

    /// True while the manager still owns its upstream filter (inline
    /// transformation mode).
    pub fn has_up_filter(&self) -> bool {
        self.up.is_some()
    }

    /// True when the stream's upstream filter is the null passthrough —
    /// such streams never need the shard executor, and their packets
    /// stay in raw wire form end to end.
    pub fn up_filter_is_null(&self) -> bool {
        self.def.up_filter == "null"
    }

    /// Applies the downstream transformation to a packet flowing
    /// toward the back-ends. "Synchronization filters are not
    /// supported for downstream data flows" (§2.3), so each packet is
    /// transformed as a singleton wave.
    pub fn down(&mut self, packet: Packet) -> Result<Vec<Packet>> {
        if let Some(c) = &self.counters {
            c.down_pkts.inc();
        }
        let produced = self.down.transform(vec![packet], &self.ctx)?;
        Ok(produced
            .into_iter()
            .map(|p| p.with_stream(self.def.id))
            .collect())
    }

    /// The next absolute time at which [`StreamManager::poll`] should
    /// run, if any.
    pub fn deadline(&self) -> Option<f64> {
        self.sync.deadline()
    }

    /// The stream's surviving end-points.
    pub fn live_endpoints(&self) -> &[Rank] {
        &self.def.endpoints
    }

    /// Shrinks the stream's membership after the ranks in `dead`
    /// failed: removes them from the end-point set, deactivates
    /// sync-filter slots whose every target died (so `WaitForAll`
    /// waves complete with the survivors), and runs any waves the
    /// shrinkage released through the upstream filter. Returns the
    /// released aggregate packets and whether the stream now has no
    /// end-points left at all.
    pub fn prune(&mut self, dead: &[Rank], now: f64) -> Result<(Vec<Packet>, bool)> {
        let (released, empty) = self.prune_sync(dead, now);
        Ok((self.transform_waves(released)?, empty))
    }

    /// The synchronization half of [`StreamManager::prune`]: shrinks
    /// membership and returns the released waves untransformed, plus
    /// whether the stream has no end-points left.
    pub fn prune_sync(&mut self, dead: &[Rank], now: f64) -> (Vec<Vec<Packet>>, bool) {
        self.def.endpoints.retain(|r| !dead.contains(r));
        let mut released = Vec::new();
        for slot in 0..self.slot_targets.len() {
            let targets = &mut self.slot_targets[slot];
            let before = targets.len();
            targets.retain(|r| !dead.contains(r));
            if before > 0 && targets.is_empty() {
                released.extend(self.sync.deactivate_slot(slot, now));
            }
        }
        self.note_released(&released, now);
        self.live_route = self
            .participants
            .iter()
            .enumerate()
            .filter(|&(slot, _)| !self.slot_targets[slot].is_empty())
            .map(|(_, &child)| child)
            .collect();
        (released, self.def.endpoints.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_packet::PacketBuilder;

    fn routes() -> RoutingTable {
        let mut r = RoutingTable::new();
        r.add_child([10, 11]);
        r.add_child([12]);
        r.add_child([13, 14]);
        r
    }

    fn def(endpoints: Vec<Rank>, up: &str, sync: SyncMode) -> StreamDef {
        StreamDef {
            id: 5,
            endpoints,
            up_filter: up.into(),
            down_filter: "null".into(),
            sync,
        }
    }

    fn fpkt(v: f32) -> Packet {
        PacketBuilder::new(5, 1).push(v).build()
    }

    #[test]
    fn aggregates_complete_waves() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12, 13], "f_max", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert_eq!(m.participants(), &[0, 1, 2]);
        assert!(m.up(0, fpkt(1.0), 0.0).unwrap().is_empty());
        assert!(m.up(1, fpkt(5.0), 0.1).unwrap().is_empty());
        let out = m.up(2, fpkt(3.0), 0.2).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(5.0));
        assert_eq!(out[0].stream_id(), 5);
    }

    #[test]
    fn only_participating_children_count() {
        let reg = FilterRegistry::with_builtins();
        // Endpoints only under children 0 and 2.
        let mut m = StreamManager::new(
            def(vec![11, 14], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert_eq!(m.participants(), &[0, 2]);
        assert!(m.up(0, fpkt(1.0), 0.0).unwrap().is_empty());
        // Wave completes with just the two participants.
        let out = m.up(2, fpkt(2.0), 0.1).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(3.0));
    }

    #[test]
    fn packet_from_non_participant_is_protocol_error() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![12], "f_max", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up(0, fpkt(1.0), 0.0).is_err());
    }

    #[test]
    fn timeout_streams_release_partial_waves_via_poll() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12, 13], "f_sum", SyncMode::TimeOut(1.0)),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up(0, fpkt(2.0), 0.0).unwrap().is_empty());
        assert_eq!(m.deadline(), Some(1.0));
        assert!(m.poll(0.5).unwrap().is_empty());
        let out = m.poll(1.0).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(2.0));
        assert_eq!(m.deadline(), None);
    }

    #[test]
    fn down_applies_downstream_filter() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10], "null", SyncMode::DoNotWait),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        let out = m.down(fpkt(9.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(9.0));
    }

    #[test]
    fn unknown_filter_fails_construction() {
        let reg = FilterRegistry::with_builtins();
        let err = StreamManager::new(
            def(vec![10], "no_such_filter", SyncMode::WaitForAll),
            &routes(),
            &reg,
            0,
        )
        .err()
        .expect("unknown filter");
        assert!(matches!(err, MrnetError::Filter(_)));
    }

    #[test]
    fn metrics_record_packets_and_sync_delay() {
        let reg = FilterRegistry::with_builtins();
        let metrics = NodeMetrics::new();
        let mut m = StreamManager::with_metrics(
            def(vec![10, 12, 13], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
            &metrics,
        )
        .unwrap();
        assert!(m.up(0, fpkt(1.0), 0.0).unwrap().is_empty());
        assert!(m.up(1, fpkt(2.0), 0.010).unwrap().is_empty());
        let out = m.up(2, fpkt(3.0), 0.025).unwrap();
        assert_eq!(out.len(), 1);
        m.down(fpkt(9.0)).unwrap();
        let counters = metrics.stream_counters(5);
        assert_eq!(counters.up_pkts.get(), 3);
        assert_eq!(counters.down_pkts.get(), 1);
        let stats = metrics.filter_stats("f_sum");
        assert_eq!(stats.waves.get(), 1);
        assert_eq!(stats.exec_us.count(), 1);
        // One wave waited 25 ms between first arrival and release.
        let wait = stats.wait_us.snapshot();
        assert_eq!(wait.count, 1);
        assert_eq!(wait.sum_us, 25_000);
    }

    #[test]
    fn prune_completes_wait_for_all_wave_with_survivors() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12, 13], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        // Two of three participants have reported; the wave is stuck
        // waiting on child 1 (serving rank 12).
        assert!(m.up(0, fpkt(1.0), 0.0).unwrap().is_empty());
        assert!(m.up(2, fpkt(2.0), 0.1).unwrap().is_empty());
        // Rank 12 dies: the wave must complete from the survivors.
        let (out, empty) = m.prune(&[12], 0.2).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(3.0));
        assert!(!empty);
        assert_eq!(m.live_endpoints(), &[10, 13]);
        // Subsequent waves need only the two survivors.
        assert!(m.up(0, fpkt(5.0), 0.3).unwrap().is_empty());
        let out = m.up(2, fpkt(7.0), 0.4).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(12.0));
    }

    #[test]
    fn prune_partial_slot_keeps_slot_active() {
        let reg = FilterRegistry::with_builtins();
        // Child 0 serves both 10 and 11; losing 11 alone must not
        // deactivate the slot.
        let mut m = StreamManager::new(
            def(vec![10, 11, 12], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up(1, fpkt(4.0), 0.0).unwrap().is_empty());
        let (out, empty) = m.prune(&[11], 0.1).unwrap();
        assert!(out.is_empty());
        assert!(!empty);
        // Child 0 still participates (rank 10 lives there); once it
        // reports, the wave held since before the prune completes.
        let waves = m.up(0, fpkt(1.0), 0.2).unwrap();
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].get(0).unwrap().as_f32(), Some(5.0));
    }

    #[test]
    fn live_route_shrinks_with_pruned_children() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 11, 12, 13], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert_eq!(m.live_route(), &[0, 1, 2]);
        // Losing 11 alone keeps child 0 on the route (10 survives).
        m.prune(&[11], 0.0).unwrap();
        assert_eq!(m.live_route(), &[0, 1, 2]);
        // Losing 12 empties child 1's targets: it leaves the route.
        m.prune(&[12], 0.1).unwrap();
        assert_eq!(m.live_route(), &[0, 2]);
        // Participants (sync slots) are unchanged by pruning.
        assert_eq!(m.participants(), &[0, 1, 2]);
    }

    #[test]
    fn prune_to_empty_reports_dead_stream() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        let (_, empty) = m.prune(&[10], 0.0).unwrap();
        assert!(!empty);
        let (_, empty) = m.prune(&[12], 0.1).unwrap();
        assert!(empty);
        assert!(m.live_endpoints().is_empty());
    }

    #[test]
    fn sync_half_releases_untransformed_waves() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up_sync(0, fpkt(1.0), 0.0).unwrap().is_empty());
        let waves = m.up_sync(1, fpkt(2.0), 0.1).unwrap();
        // One wave of two raw packets — the sum filter has not run.
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 2);
        let out = m.transform_waves(waves).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(3.0));
    }

    #[test]
    fn taking_the_up_filter_disables_inline_transformation() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![12], "f_sum", SyncMode::DoNotWait),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.has_up_filter());
        assert!(!m.up_filter_is_null());
        let (mut filter, ctx) = m.take_up_filter().expect("filter present");
        assert!(!m.has_up_filter());
        assert!(m.take_up_filter().is_none());
        // Sync still works; transformation must now happen elsewhere.
        let waves = m.up_sync(1, fpkt(4.0), 0.0).unwrap();
        assert_eq!(waves.len(), 1);
        let err = m.transform_waves(vec![vec![fpkt(1.0)]]).unwrap_err();
        assert!(matches!(err, MrnetError::Protocol(_)));
        // The extracted instance transforms the wave identically.
        let out = filter.transform(waves.into_iter().next().unwrap(), &ctx).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(4.0));
    }

    #[test]
    fn null_streams_are_identified_for_the_bypass() {
        let reg = FilterRegistry::with_builtins();
        let m = StreamManager::new(
            def(vec![12], "null", SyncMode::DoNotWait),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up_filter_is_null());
    }

    #[test]
    fn prune_sync_returns_raw_waves() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up_sync(0, fpkt(1.0), 0.0).unwrap().is_empty());
        let (waves, empty) = m.prune_sync(&[12], 0.1);
        assert_eq!(waves.len(), 1);
        assert!(!empty);
        let out = m.transform_waves(waves).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(1.0));
    }

    #[test]
    fn filter_state_is_private_per_manager() {
        let reg = FilterRegistry::with_builtins();
        let d = def(vec![12], "f_sum", SyncMode::DoNotWait);
        let mut a = StreamManager::new(d.clone(), &routes(), &reg, 0).unwrap();
        let mut b = StreamManager::new(d, &routes(), &reg, 0).unwrap();
        let oa = a.up(1, fpkt(1.0), 0.0).unwrap();
        let ob = b.up(1, fpkt(1.0), 0.0).unwrap();
        assert_eq!(oa, ob);
    }
}
