//! Per-stream state inside one MRNet process.
//!
//! §2.3: "Internal processes use a stream manager object to manage
//! control flow and route packets. When a stream is established, an
//! internal process creates a new stream manager and initializes it
//! with the set of end-points to be associated with the stream and the
//! filter(s) to be used on data packets sent on the stream."
//!
//! A [`StreamManager`] owns the stream's synchronization filter and
//! its upstream/downstream transformation filter instances, and knows
//! which of the process's children participate in the stream.

use std::collections::HashMap;

use mrnet_filters::{BoxedTransform, FilterContext, FilterRegistry, SyncFilter};
#[cfg(test)]
use mrnet_filters::SyncMode;
use mrnet_packet::{Packet, Rank};

use crate::error::{MrnetError, Result};
use crate::route::RoutingTable;
use crate::streams::StreamDef;

/// Stream state at one process.
pub struct StreamManager {
    def: StreamDef,
    ctx: FilterContext,
    sync: SyncFilter,
    up: BoxedTransform,
    down: BoxedTransform,
    /// Local child indices participating in this stream, in child
    /// order; the position within this vector is the sync-filter slot.
    participants: Vec<usize>,
    slot_of_child: HashMap<usize, usize>,
}

impl StreamManager {
    /// Creates the manager for `def` at a process whose children are
    /// described by `routes`.
    pub fn new(
        def: StreamDef,
        routes: &RoutingTable,
        registry: &FilterRegistry,
        local_rank: Rank,
    ) -> Result<StreamManager> {
        let participants = routes.children_for(&def.endpoints);
        let slot_of_child: HashMap<usize, usize> = participants
            .iter()
            .enumerate()
            .map(|(slot, &child)| (child, slot))
            .collect();
        let up = registry.instantiate(registry.id_of(&def.up_filter)?)?;
        let down = registry.instantiate(registry.id_of(&def.down_filter)?)?;
        let sync = SyncFilter::new(def.sync, participants.len());
        let ctx = FilterContext::new(def.id, local_rank, participants.len());
        Ok(StreamManager {
            def,
            ctx,
            sync,
            up,
            down,
            participants,
            slot_of_child,
        })
    }

    /// The stream definition.
    pub fn def(&self) -> &StreamDef {
        &self.def
    }

    /// Local child indices participating in this stream.
    pub fn participants(&self) -> &[usize] {
        &self.participants
    }

    /// Handles an upstream packet arriving from local child `child` at
    /// time `now`; returns the aggregated packets ready to continue
    /// upstream.
    pub fn up(&mut self, child: usize, packet: Packet, now: f64) -> Result<Vec<Packet>> {
        let slot = *self.slot_of_child.get(&child).ok_or_else(|| {
            MrnetError::Protocol(format!(
                "upstream packet for stream {} from non-participant child {child}",
                self.def.id
            ))
        })?;
        let waves = self.sync.push(slot, packet, now);
        self.run_waves(waves)
    }

    /// Re-evaluates synchronization deadlines at `now` (for TimeOut
    /// streams); returns any packets released by a timeout.
    pub fn poll(&mut self, now: f64) -> Result<Vec<Packet>> {
        let waves = self.sync.collect(now);
        self.run_waves(waves)
    }

    fn run_waves(&mut self, waves: Vec<Vec<Packet>>) -> Result<Vec<Packet>> {
        let mut out = Vec::new();
        for wave in waves {
            let produced = self.up.transform(wave, &self.ctx)?;
            // Aggregated packets continue on the same stream.
            out.extend(
                produced
                    .into_iter()
                    .map(|p| p.with_stream(self.def.id)),
            );
        }
        Ok(out)
    }

    /// Applies the downstream transformation to a packet flowing
    /// toward the back-ends. "Synchronization filters are not
    /// supported for downstream data flows" (§2.3), so each packet is
    /// transformed as a singleton wave.
    pub fn down(&mut self, packet: Packet) -> Result<Vec<Packet>> {
        let produced = self.down.transform(vec![packet], &self.ctx)?;
        Ok(produced
            .into_iter()
            .map(|p| p.with_stream(self.def.id))
            .collect())
    }

    /// The next absolute time at which [`StreamManager::poll`] should
    /// run, if any.
    pub fn deadline(&self) -> Option<f64> {
        self.sync.deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_packet::PacketBuilder;

    fn routes() -> RoutingTable {
        let mut r = RoutingTable::new();
        r.add_child([10, 11]);
        r.add_child([12]);
        r.add_child([13, 14]);
        r
    }

    fn def(endpoints: Vec<Rank>, up: &str, sync: SyncMode) -> StreamDef {
        StreamDef {
            id: 5,
            endpoints,
            up_filter: up.into(),
            down_filter: "null".into(),
            sync,
        }
    }

    fn fpkt(v: f32) -> Packet {
        PacketBuilder::new(5, 1).push(v).build()
    }

    #[test]
    fn aggregates_complete_waves() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12, 13], "f_max", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert_eq!(m.participants(), &[0, 1, 2]);
        assert!(m.up(0, fpkt(1.0), 0.0).unwrap().is_empty());
        assert!(m.up(1, fpkt(5.0), 0.1).unwrap().is_empty());
        let out = m.up(2, fpkt(3.0), 0.2).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(5.0));
        assert_eq!(out[0].stream_id(), 5);
    }

    #[test]
    fn only_participating_children_count() {
        let reg = FilterRegistry::with_builtins();
        // Endpoints only under children 0 and 2.
        let mut m = StreamManager::new(
            def(vec![11, 14], "f_sum", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert_eq!(m.participants(), &[0, 2]);
        assert!(m.up(0, fpkt(1.0), 0.0).unwrap().is_empty());
        // Wave completes with just the two participants.
        let out = m.up(2, fpkt(2.0), 0.1).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(3.0));
    }

    #[test]
    fn packet_from_non_participant_is_protocol_error() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![12], "f_max", SyncMode::WaitForAll),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up(0, fpkt(1.0), 0.0).is_err());
    }

    #[test]
    fn timeout_streams_release_partial_waves_via_poll() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10, 12, 13], "f_sum", SyncMode::TimeOut(1.0)),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        assert!(m.up(0, fpkt(2.0), 0.0).unwrap().is_empty());
        assert_eq!(m.deadline(), Some(1.0));
        assert!(m.poll(0.5).unwrap().is_empty());
        let out = m.poll(1.0).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(2.0));
        assert_eq!(m.deadline(), None);
    }

    #[test]
    fn down_applies_downstream_filter() {
        let reg = FilterRegistry::with_builtins();
        let mut m = StreamManager::new(
            def(vec![10], "null", SyncMode::DoNotWait),
            &routes(),
            &reg,
            3,
        )
        .unwrap();
        let out = m.down(fpkt(9.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(9.0));
    }

    #[test]
    fn unknown_filter_fails_construction() {
        let reg = FilterRegistry::with_builtins();
        let err = StreamManager::new(
            def(vec![10], "no_such_filter", SyncMode::WaitForAll),
            &routes(),
            &reg,
            0,
        )
        .err()
        .expect("unknown filter");
        assert!(matches!(err, MrnetError::Filter(_)));
    }

    #[test]
    fn filter_state_is_private_per_manager() {
        let reg = FilterRegistry::with_builtins();
        let d = def(vec![12], "f_sum", SyncMode::DoNotWait);
        let mut a = StreamManager::new(d.clone(), &routes(), &reg, 0).unwrap();
        let mut b = StreamManager::new(d, &routes(), &reg, 0).unwrap();
        let oa = a.up(1, fpkt(1.0), 0.0).unwrap();
        let ob = b.up(1, fpkt(1.0), 0.0).unwrap();
        assert_eq!(oa, ob);
    }
}
