//! The in-band introspection stream: metrics ride MRNet itself.
//!
//! The front-end multicasts a "dump metrics" request down the tree on
//! a reserved stream; every process appends its own flattened
//! [`MetricsSection`] and the sections reduce back up by concatenation
//! — the same multicast/reduction pattern the paper uses for tool
//! data, applied to the network's own health. Requests and replies are
//! ordinary data packets, so they traverse both thread-mode channel
//! trees and process-mode TCP trees unchanged, but they bypass the
//! stream-manager layer (the reserved id is intercepted in the node
//! loop) and are excluded from the packet counters they report.
//!
//! Wire shapes:
//!
//! * request: `[req_id: %ud, timeout_secs: %lf]`, tag
//!   [`METRICS_REQUEST`];
//! * reply: `[req_id: %ud, ranks: %aud, entry_counts: %aud,
//!   names: %as, values: %auld]`, tag [`METRICS_REPLY`] — parallel
//!   per-section arrays with `names`/`values` flattened across
//!   sections, so merging two replies is pure concatenation.

use mrnet_obs::{MetricsSection, NetworkSnapshot, TraceEnvelope};
use mrnet_packet::{Packet, PacketBuilder, Value};

use crate::error::{MrnetError, Result};

// The reserved stream id and introspection tags live with the rest of
// the protocol constants; re-exported here so existing callers keep
// their import paths.
pub use crate::proto::tags::{METRICS_REPLY, METRICS_REQUEST, TRACE_REPORT};
pub use crate::proto::METRICS_STREAM;

/// Builds a metrics-dump request packet.
pub fn encode_request(req_id: u32, timeout_secs: f64) -> Packet {
    PacketBuilder::new(METRICS_STREAM, METRICS_REQUEST)
        .push(req_id)
        .push(timeout_secs)
        .build()
}

/// Parses a request packet into `(req_id, timeout_secs)`.
pub fn decode_request(packet: &Packet) -> Result<(u32, f64)> {
    let bad = || MrnetError::Protocol("malformed metrics request".into());
    let req_id = packet.get(0).and_then(Value::as_u32).ok_or_else(bad)?;
    let timeout = packet.get(1).and_then(Value::as_f64).ok_or_else(bad)?;
    Ok((req_id, timeout))
}

/// Builds a metrics reply packet carrying `sections` (any number,
/// including zero — a node with nothing to report still replies so its
/// parent's collection can complete).
pub fn encode_reply(req_id: u32, sections: &[MetricsSection]) -> Packet {
    let mut ranks = Vec::with_capacity(sections.len());
    let mut entry_counts = Vec::with_capacity(sections.len());
    let mut names = Vec::new();
    let mut values = Vec::new();
    for s in sections {
        ranks.push(s.rank);
        entry_counts.push(s.names.len() as u32);
        names.extend(s.names.iter().cloned());
        values.extend(s.values.iter().copied());
    }
    PacketBuilder::new(METRICS_STREAM, METRICS_REPLY)
        .push(req_id)
        .push(ranks)
        .push(entry_counts)
        .push(names)
        .push(values)
        .build()
}

/// Parses a reply packet into `(req_id, sections)`.
pub fn decode_reply(packet: &Packet) -> Result<(u32, Vec<MetricsSection>)> {
    let bad = || MrnetError::Protocol("malformed metrics reply".into());
    let req_id = packet.get(0).and_then(Value::as_u32).ok_or_else(bad)?;
    let ranks = packet
        .get(1)
        .and_then(Value::as_u32_slice)
        .ok_or_else(bad)?;
    let counts = packet
        .get(2)
        .and_then(Value::as_u32_slice)
        .ok_or_else(bad)?;
    let names = packet
        .get(3)
        .and_then(Value::as_str_array)
        .ok_or_else(bad)?;
    let values = packet
        .get(4)
        .and_then(Value::as_u64_slice)
        .ok_or_else(bad)?;
    if ranks.len() != counts.len() {
        return Err(bad());
    }
    let total: usize = counts.iter().map(|&c| c as usize).sum();
    if names.len() != total || values.len() != total {
        return Err(bad());
    }
    let mut sections = Vec::with_capacity(ranks.len());
    let mut off = 0usize;
    for (i, &rank) in ranks.iter().enumerate() {
        let n = counts[i] as usize;
        sections.push(MetricsSection {
            rank,
            names: names[off..off + n].to_vec(),
            values: values[off..off + n].to_vec(),
        });
        off += n;
    }
    Ok((req_id, sections))
}

/// Folds sections into a [`NetworkSnapshot`].
pub fn snapshot_from_sections(sections: Vec<MetricsSection>) -> NetworkSnapshot {
    NetworkSnapshot { nodes: sections }
}

/// Builds a trace-report packet: a completed down-wave envelope a
/// back-end sends up the tree so the front-end's assembler can ingest
/// it. The envelope rides as its serialized byte form in a single
/// `%ac` field, so intermediate nodes forward it opaquely.
pub fn encode_trace_report(env: &TraceEnvelope) -> Packet {
    PacketBuilder::new(METRICS_STREAM, TRACE_REPORT)
        .push(mrnet_packet::trace::encode_envelope(env).to_vec())
        .build()
}

/// Parses a trace-report packet back into its envelope.
pub fn decode_trace_report(packet: &Packet) -> Result<TraceEnvelope> {
    let bad = || MrnetError::Protocol("malformed trace report".into());
    let bytes = packet.get(0).and_then(Value::as_bytes).ok_or_else(bad)?;
    mrnet_packet::trace::decode_envelope(bytes::Bytes::copy_from_slice(bytes)).map_err(|_| bad())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(rank: u32, base: u64, n: usize) -> MetricsSection {
        let mut s = MetricsSection::new(rank);
        for i in 0..n {
            s.push(&format!("m{i}"), base + i as u64);
        }
        s
    }

    #[test]
    fn request_round_trips() {
        let p = encode_request(42, 1.5);
        assert_eq!(p.stream_id(), METRICS_STREAM);
        assert_eq!(p.tag(), METRICS_REQUEST);
        let (req_id, timeout) = decode_request(&p).unwrap();
        assert_eq!(req_id, 42);
        assert!((timeout - 1.5).abs() < 1e-9);
    }

    #[test]
    fn reply_round_trips_multiple_sections() {
        let sections = vec![section(0, 100, 3), section(5, 200, 0), section(2, 300, 2)];
        let p = encode_reply(7, &sections);
        assert_eq!(p.tag(), METRICS_REPLY);
        let (req_id, got) = decode_reply(&p).unwrap();
        assert_eq!(req_id, 7);
        assert_eq!(got, sections);
    }

    #[test]
    fn empty_reply_round_trips() {
        let p = encode_reply(1, &[]);
        let (req_id, got) = decode_reply(&p).unwrap();
        assert_eq!(req_id, 1);
        assert!(got.is_empty());
    }

    #[test]
    fn merge_is_concatenation() {
        // A parent merges child replies by decoding each and chaining
        // the sections; re-encoding preserves everything.
        let a = vec![section(1, 0, 2)];
        let b = vec![section(2, 10, 1), section(3, 20, 2)];
        let (_, da) = decode_reply(&encode_reply(9, &a)).unwrap();
        let (_, db) = decode_reply(&encode_reply(9, &b)).unwrap();
        let merged: Vec<MetricsSection> = da.into_iter().chain(db).collect();
        let (_, out) = decode_reply(&encode_reply(9, &merged)).unwrap();
        assert_eq!(out.len(), 3);
        let snap = snapshot_from_sections(out);
        assert_eq!(snap.ranks(), vec![1, 2, 3]);
    }

    #[test]
    fn malformed_replies_rejected() {
        // Mismatched rank/count arrays.
        let p = PacketBuilder::new(METRICS_STREAM, METRICS_REPLY)
            .push(1u32)
            .push(vec![1u32, 2])
            .push(vec![1u32])
            .push(vec!["a".to_string()])
            .push(vec![1u64])
            .build();
        assert!(decode_reply(&p).is_err());
        // Counts that overrun the flattened arrays.
        let p = PacketBuilder::new(METRICS_STREAM, METRICS_REPLY)
            .push(1u32)
            .push(vec![1u32])
            .push(vec![5u32])
            .push(vec!["a".to_string()])
            .push(vec![1u64])
            .build();
        assert!(decode_reply(&p).is_err());
        // A request is not a reply.
        assert!(decode_reply(&encode_request(1, 0.1)).is_err());
    }

    #[test]
    fn trace_report_round_trips() {
        use mrnet_obs::HopRecord;
        let env = TraceEnvelope {
            trace_id: (3u64 << 32) | 7,
            stream: 11,
            hops: vec![
                HopRecord {
                    rank: 0,
                    recv_us: 10,
                    send_us: 20,
                },
                HopRecord {
                    rank: 3,
                    recv_us: 30,
                    send_us: 40,
                },
            ],
        };
        let p = encode_trace_report(&env);
        assert_eq!(p.stream_id(), METRICS_STREAM);
        assert_eq!(p.tag(), TRACE_REPORT);
        assert_eq!(decode_trace_report(&p).unwrap(), env);
        // A metrics request is not a trace report.
        assert!(decode_trace_report(&encode_request(1, 0.1)).is_err());
    }
}
