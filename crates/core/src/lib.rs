//! # mrnet
//!
//! A from-scratch Rust reproduction of **MRNet** (Roth, Arnold &
//! Miller, SC 2003): a software-based multicast/reduction overlay
//! network for scalable parallel tools.
//!
//! An MRNet-based tool interposes a tree of internal processes between
//! its front-end and its many back-ends. Logical [`Stream`]s carry
//! typed packets downstream (multicast) and upstream (reduction);
//! filters bound to each stream synchronize and aggregate data in
//! parallel as it flows through the tree.
//!
//! ```
//! use mrnet::{launch_local, SyncMode, Value};
//! use mrnet_topology::{generator, HostPool};
//!
//! // A 2-level 2-ary tree with four back-ends.
//! let topo = generator::balanced(2, 2, &mut HostPool::synthetic(16)).unwrap();
//! let deployment = launch_local(topo).unwrap();
//! let net = &deployment.network;
//!
//! // Figure 2: broadcast an init, reduce the float maximum.
//! let comm = net.broadcast_communicator();
//! let fmax = net.registry().id_of("f_max").unwrap();
//! let stream = net.new_stream(&comm, fmax, SyncMode::WaitForAll).unwrap();
//! stream.send(1, "%d", vec![Value::Int32(42)]).unwrap();
//!
//! // Each back-end answers with one float.
//! for (i, be) in deployment.backends.iter().enumerate() {
//!     let (pkt, sid) = be.recv().unwrap();
//!     assert_eq!(pkt.get(0).unwrap().as_i32(), Some(42));
//!     be.send(sid, 1, "%f", vec![Value::Float(i as f32)]).unwrap();
//! }
//!
//! // The front-end receives a single aggregated maximum.
//! let result = stream.recv().unwrap();
//! assert_eq!(result.get(0).unwrap().as_f32(), Some(3.0));
//! net.shutdown();
//! ```

#![forbid(unsafe_code)]

mod backend;
pub mod commnode;
mod delivery;
mod error;
mod event;
mod instantiate;
pub mod internal;
pub mod introspect;
mod network;
pub mod procspawn;
pub mod proto;
mod route;
pub mod simulate;
pub mod simulate_des;
pub mod slice;
mod streams;

pub use backend::Backend;
pub use delivery::DeliveryStreamStats;
pub use error::{MrnetError, Result};
pub use event::{FailureLedger, TopologyEvent};
pub use instantiate::{
    launch_local, launch_processes, launch_processes_with_registry, AttachPoint, Deployment,
    NetworkBuilder, PendingNetwork, WireTransport,
};
pub use network::{Communicator, MetricsExport, Network, Stream, StreamStats};
pub use route::RoutingTable;
pub use slice::{SubtreeSlice, SubtreeView};
pub use streams::StreamDef;

// Re-export the pieces tools use alongside the core API.
pub use mrnet_filters::{
    FilterContext, FilterId, FilterRegistry, FnFilter, MeanPairFilter, ScalarOp, SyncMode,
    Transform, FILTER_NULL,
};
/// The observability layer (metrics, tracing, logging), re-exported so
/// tools can read [`mrnet_obs::NetworkSnapshot`]s and tune
/// `MRNET_LOG`/`MRNET_TRACE` programmatically.
pub use mrnet_obs as obs;
pub use mrnet_obs::{MetricsSection, NetworkSnapshot, TraceAssembler, TraceEnvelope, WaveTimeline};
pub use mrnet_packet::{
    FormatString, Packet, PacketBuilder, Rank, StreamId, Tag, TypeCode, Unpack, Value,
};
