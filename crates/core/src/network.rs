//! The tool front-end API: [`Network`], [`Communicator`], [`Stream`].
//!
//! Mirrors the front-end side of the paper's Figure 2:
//!
//! ```text
//! net    = new MR_Network(config_file);
//! comm   = net->get_broadcast_communicator();
//! stream = new MR_Stream(comm, FMAX_FIL);
//! stream->send("%d", FLOAT_MAX_INIT);
//! stream->recv("%f", result);
//! ```
//!
//! Streams are created and managed by the front-end; communication is
//! only between the front-end and its back-ends (§2.1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use mrnet_filters::{FilterId, FilterRegistry, SyncMode, FILTER_NULL};
use mrnet_obs::{
    json_text, log_warn, prometheus_text, MetricsSection, NetworkSnapshot, TraceAssembler,
};
use mrnet_packet::{Packet, Rank, StreamId, Value};

use crate::delivery::Delivery;
use crate::error::{MrnetError, Result};
use crate::event::{FailureLedger, TopologyEvent};
use crate::internal::process::{Command, Inbound};
use crate::proto::FIRST_USER_STREAM;
use crate::streams::StreamDef;

pub(crate) struct NetInner {
    pub(crate) cmd_tx: Sender<Inbound>,
    pub(crate) delivery: Arc<Delivery>,
    pub(crate) endpoints: Vec<Rank>,
    pub(crate) registry: FilterRegistry,
    pub(crate) ledger: Arc<FailureLedger>,
    pub(crate) assembler: Arc<TraceAssembler>,
    next_stream: AtomicU32,
    next_metrics_req: AtomicU32,
    streams: Mutex<HashMap<StreamId, StreamDef>>,
    sent: Mutex<HashMap<StreamId, u64>>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    down: AtomicBool,
}

/// The front-end's handle on an instantiated MRNet network.
///
/// Created by [`crate::NetworkBuilder`]. Cloning shares the underlying
/// network. Dropping the last handle shuts the network down.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetInner>,
}

/// A group of end-points, the scope for stream communication (§2.1:
/// "MRNet uses communicators to represent groups of network
/// end-points").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communicator {
    endpoints: Vec<Rank>,
}

impl Communicator {
    /// The end-point ranks in this communicator, sorted.
    pub fn endpoints(&self) -> &[Rank] {
        &self.endpoints
    }

    /// Number of end-points.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Communicators are never empty.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }
}

/// A logical data channel between the front-end and the end-points of
/// a communicator.
#[derive(Clone)]
pub struct Stream {
    def: StreamDef,
    net: Arc<NetInner>,
}

/// Front-end traffic counters for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Packets multicast downstream by the front-end.
    pub sent: u64,
    /// Aggregated packets delivered to the front-end (whether or not
    /// they have been consumed by `recv` yet).
    pub received: u64,
    /// Delivered packets not yet consumed by `recv`.
    pub queued: usize,
    /// True once the network has shut down. `received`/`queued` stay
    /// meaningful after close, so a zeroed result with `closed` unset
    /// means "no data yet", not "network gone".
    pub closed: bool,
}

/// A full metrics export: the per-node snapshot, the front-end's
/// trace-assembly section, and both rendered as Prometheus text
/// exposition and JSON documents ready for scraping or archiving.
#[derive(Debug, Clone)]
pub struct MetricsExport {
    /// Per-node metric sections collected over the in-band
    /// introspection stream.
    pub snapshot: NetworkSnapshot,
    /// The front-end's distributed-tracing section: assembled wave
    /// counts, per-child clock offsets, and per-hop/per-edge latency
    /// histograms.
    pub trace: MetricsSection,
    /// Prometheus text exposition (metric names prefixed `mrnet_`,
    /// labelled by rank).
    pub prometheus: String,
    /// The same data as a JSON document.
    pub json: String,
}

impl Network {
    pub(crate) fn from_parts(
        cmd_tx: Sender<Inbound>,
        delivery: Arc<Delivery>,
        endpoints: Vec<Rank>,
        registry: FilterRegistry,
        ledger: Arc<FailureLedger>,
        assembler: Arc<TraceAssembler>,
        joins: Vec<JoinHandle<()>>,
    ) -> Network {
        Network {
            inner: Arc::new(NetInner {
                cmd_tx,
                delivery,
                endpoints,
                registry,
                ledger,
                assembler,
                next_stream: AtomicU32::new(FIRST_USER_STREAM),
                next_metrics_req: AtomicU32::new(0),
                streams: Mutex::new(HashMap::new()),
                sent: Mutex::new(HashMap::new()),
                joins: Mutex::new(joins),
                down: AtomicBool::new(false),
            }),
        }
    }

    /// All available end-points (back-end ranks), discovered from the
    /// instantiation subtree reports.
    pub fn endpoints(&self) -> &[Rank] {
        &self.inner.endpoints
    }

    /// Number of back-ends in the network.
    pub fn num_backends(&self) -> usize {
        self.inner.endpoints.len()
    }

    /// The auto-generated broadcast communicator containing every
    /// available end-point.
    pub fn broadcast_communicator(&self) -> Communicator {
        Communicator {
            endpoints: self.inner.endpoints.clone(),
        }
    }

    /// A communicator over a subset of end-points.
    pub fn communicator(&self, ranks: impl IntoIterator<Item = Rank>) -> Result<Communicator> {
        let mut endpoints: Vec<Rank> = ranks.into_iter().collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        if endpoints.is_empty() {
            return Err(MrnetError::EmptyCommunicator);
        }
        for &r in &endpoints {
            if !self.inner.endpoints.contains(&r) {
                return Err(MrnetError::UnknownEndpoint(r));
            }
        }
        Ok(Communicator { endpoints })
    }

    /// The filter registry, for registering custom filters
    /// (`load_filterFunc`, §2.4). Registrations are visible to every
    /// process in the network.
    pub fn registry(&self) -> &FilterRegistry {
        &self.inner.registry
    }

    /// Creates a stream over `comm` with an upstream transformation
    /// filter and synchronization mode (`new MR_Stream(comm, filter)`).
    pub fn new_stream(
        &self,
        comm: &Communicator,
        up_filter: FilterId,
        sync: SyncMode,
    ) -> Result<Stream> {
        self.new_stream_full(comm, up_filter, FILTER_NULL, sync)
    }

    /// Creates a stream specifying both upstream and downstream
    /// transformation filters.
    pub fn new_stream_full(
        &self,
        comm: &Communicator,
        up_filter: FilterId,
        down_filter: FilterId,
        sync: SyncMode,
    ) -> Result<Stream> {
        self.ensure_up()?;
        if comm.is_empty() {
            return Err(MrnetError::EmptyCommunicator);
        }
        let id = self.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        let def = StreamDef {
            id,
            endpoints: comm.endpoints.clone(),
            up_filter: self.inner.registry.name_of(up_filter)?,
            down_filter: self.inner.registry.name_of(down_filter)?,
            sync,
        };
        self.inner.streams.lock().insert(id, def.clone());
        self.send_cmd(Command::NewStream(def.clone()))?;
        Ok(Stream {
            def,
            net: self.inner.clone(),
        })
    }

    /// Looks up an existing stream by id.
    pub fn stream(&self, id: StreamId) -> Result<Stream> {
        let def = self
            .inner
            .streams
            .lock()
            .get(&id)
            .cloned()
            .ok_or(MrnetError::UnknownStream(id))?;
        Ok(Stream {
            def,
            net: self.inner.clone(),
        })
    }

    /// Blocking stream-anonymous receive: the next upstream packet on
    /// any stream, plus its stream handle.
    pub fn recv_any(&self) -> Result<(Packet, Stream)> {
        let packet = self.inner.delivery.recv_any(None)?;
        let stream = self.stream(packet.stream_id())?;
        Ok((packet, stream))
    }

    /// [`Network::recv_any`] with a timeout.
    pub fn recv_any_timeout(&self, timeout: Duration) -> Result<(Packet, Stream)> {
        let packet = self.inner.delivery.recv_any(Some(timeout))?;
        let stream = self.stream(packet.stream_id())?;
        Ok((packet, stream))
    }

    /// Collects a metrics snapshot from every node in the tree via the
    /// in-band introspection stream (§3's internal measurements, made
    /// available to tools): the request multicasts down, each process
    /// appends its own flattened section, and the sections reduce back
    /// up by concatenation. Blocks up to `timeout`; subtrees that miss
    /// the deadline are simply absent from the result, so a complete
    /// snapshot has one section per process plus one per back-end.
    pub fn metrics_snapshot(&self, timeout: Duration) -> Result<NetworkSnapshot> {
        self.ensure_up()?;
        let req_id = self.inner.next_metrics_req.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.send_cmd(Command::CollectMetrics {
            req_id,
            timeout_secs: timeout.as_secs_f64(),
            reply: tx,
        })?;
        // The root answers (possibly partially) at its own deadline;
        // the slack covers scheduling of the reply itself.
        rx.recv_timeout(timeout + Duration::from_secs(2))
            .map_err(|_| MrnetError::Timeout)
    }

    /// The front-end's trace assembler: reconstructed wave timelines,
    /// per-hop latency histograms, and per-child clock estimates from
    /// the distributed-tracing subsystem.
    pub fn trace_assembler(&self) -> &Arc<TraceAssembler> {
        &self.inner.assembler
    }

    /// Collects a metrics snapshot (as [`Network::metrics_snapshot`]),
    /// folds in the front-end's trace-assembly section, and renders
    /// both Prometheus text exposition and JSON.
    pub fn export_metrics(&self, timeout: Duration) -> Result<MetricsExport> {
        let snapshot = self.metrics_snapshot(timeout)?;
        Ok(self.render_export(snapshot))
    }

    fn render_export(&self, snapshot: NetworkSnapshot) -> MetricsExport {
        let mut trace = MetricsSection::new(0);
        self.inner.assembler.section_into(&mut trace);
        let mut full = snapshot.clone();
        full.nodes.push(trace.clone());
        MetricsExport {
            snapshot,
            trace,
            prometheus: prometheus_text(&full),
            json: json_text(&full),
        }
    }

    /// When `MRNET_METRICS_FILE` names a path, collects a final export
    /// and writes its JSON there. Called from [`Network::shutdown`]
    /// while the tree is still up; failures are logged, never fatal.
    fn dump_metrics_file(&self) {
        let Ok(path) = std::env::var("MRNET_METRICS_FILE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        match self.export_metrics(Duration::from_secs(2)) {
            Ok(export) => {
                if let Err(e) = std::fs::write(&path, export.json) {
                    log_warn!(0, "failed to write metrics file {path}: {e}");
                }
            }
            Err(e) => log_warn!(0, "metrics dump for {path} failed: {e}"),
        }
    }

    /// Blocks up to `timeout` for the next topology event (MRNet's
    /// event queue): currently rank-failure notifications produced as
    /// the tree detects and propagates process deaths. Returns
    /// [`MrnetError::Timeout`] when nothing happens in time.
    pub fn next_event_timeout(&self, timeout: Duration) -> Result<TopologyEvent> {
        self.inner
            .ledger
            .events()
            .recv_timeout(timeout)
            .map_err(|_| MrnetError::Timeout)
    }

    /// Non-blocking poll of the topology event queue.
    pub fn try_next_event(&self) -> Option<TopologyEvent> {
        self.inner.ledger.events().try_recv().ok()
    }

    /// Every rank confirmed failed so far (cumulative, sorted), so a
    /// tool that missed events can still learn the surviving set.
    pub fn failed_ranks(&self) -> Vec<Rank> {
        self.inner.ledger.failed_ranks()
    }

    fn ensure_up(&self) -> Result<()> {
        if self.inner.down.load(Ordering::Relaxed) {
            Err(MrnetError::Shutdown)
        } else {
            Ok(())
        }
    }

    fn send_cmd(&self, cmd: Command) -> Result<()> {
        self.inner
            .cmd_tx
            .send(Inbound::Cmd(cmd))
            .map_err(|_| MrnetError::Shutdown)
    }

    /// Shuts the network down: tears down the process tree and wakes
    /// all blocked receivers. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.down.load(Ordering::SeqCst) {
            return;
        }
        // The final metrics dump needs the tree alive: collect before
        // flipping the down flag.
        self.dump_metrics_file();
        if self.inner.down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.inner.cmd_tx.send(Inbound::Cmd(Command::Shutdown));
        let joins: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.joins.lock());
        for j in joins {
            let _ = j.join();
        }
        // The root loop closes delivery on exit; make sure even if the
        // loop already died.
        self.inner.delivery.close();
    }

    /// True after shutdown.
    pub fn is_down(&self) -> bool {
        self.inner.down.load(Ordering::Relaxed)
    }
}

impl Drop for NetInner {
    fn drop(&mut self) {
        // Last handle gone without an explicit shutdown: stop the tree.
        let _ = self.cmd_tx.send(Inbound::Cmd(Command::Shutdown));
        for j in std::mem::take(&mut *self.joins.lock()) {
            let _ = j.join();
        }
        self.delivery.close();
    }
}

impl Stream {
    /// The stream id.
    pub fn id(&self) -> StreamId {
        self.def.id
    }

    /// The stream's end-point ranks.
    pub fn endpoints(&self) -> &[Rank] {
        &self.def.endpoints
    }

    /// The stream's definition (filters, sync mode).
    pub fn def(&self) -> &StreamDef {
        &self.def
    }

    /// Multicasts values downstream to all the stream's end-points
    /// (Figure 2's `stream->send("%d", ...)`).
    pub fn send(&self, tag: i32, fmt: &str, values: Vec<Value>) -> Result<()> {
        let packet = Packet::with_fmt_str(self.def.id, tag, fmt, values)?;
        self.send_packet(packet)
    }

    /// Multicasts a pre-built packet (retargeted onto this stream).
    pub fn send_packet(&self, packet: Packet) -> Result<()> {
        if self.net.down.load(Ordering::Relaxed) {
            return Err(MrnetError::Shutdown);
        }
        let packet = packet.with_stream(self.def.id);
        self.net
            .cmd_tx
            .send(Inbound::Cmd(Command::SendDown(packet)))
            .map_err(|_| MrnetError::Shutdown)?;
        *self.net.sent.lock().entry(self.def.id).or_insert(0) += 1;
        Ok(())
    }

    /// Convenience: build and send from Rust values.
    pub fn send_values(&self, tag: i32, values: impl IntoIterator<Item = Value>) -> Result<()> {
        let mut builder = mrnet_packet::PacketBuilder::new(self.def.id, tag);
        for v in values {
            builder = builder.push(v);
        }
        self.send_packet(builder.build())
    }

    /// Blocking receive of the next aggregated upstream packet on this
    /// stream (Figure 2's `stream->recv("%f", result)`).
    pub fn recv(&self) -> Result<Packet> {
        self.net.delivery.recv_on(self.def.id, None)
    }

    /// [`Stream::recv`] with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Packet> {
        self.net.delivery.recv_on(self.def.id, Some(timeout))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Packet>> {
        if self.net.delivery.pending_on(self.def.id) > 0 {
            Ok(Some(self.net.delivery.recv_on(self.def.id, None)?))
        } else {
            Ok(None)
        }
    }

    /// Number of aggregated packets queued for this stream.
    pub fn pending(&self) -> usize {
        self.net.delivery.pending_on(self.def.id)
    }

    /// Front-end traffic counters for this stream.
    pub fn stats(&self) -> StreamStats {
        let d = self.net.delivery.stream_stats(self.def.id);
        StreamStats {
            sent: self.net.sent.lock().get(&self.def.id).copied().unwrap_or(0),
            received: d.received,
            queued: d.queued,
            closed: d.closed,
        }
    }

    /// Tears the stream down across the network.
    pub fn close(self) -> Result<()> {
        self.net.streams.lock().remove(&self.def.id);
        self.net
            .cmd_tx
            .send(Inbound::Cmd(Command::DeleteStream(self.def.id)))
            .map_err(|_| MrnetError::Shutdown)
    }
}
