//! Recursive process creation for multi-process instantiation.
//!
//! Implements the child-side mechanics of §2.5's first instantiation
//! mode with real OS processes: a parent creates its children
//! *sequentially* (the paper's rsh semantics — concurrency comes from
//! different branches running in different processes), each child
//! connects back to its creator, receives its configuration slice in a
//! `Launch` message, and recurses. Back-end slots are advertised
//! upstream as `AttachInfo` before the node blocks waiting for
//! attachment, so rendezvous information reaches the front-end while
//! instantiation is still in flight.

use std::collections::HashMap;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use mrnet_packet::Rank;
use mrnet_transport::{Listener, SharedConnection, TcpTransportListener};

use crate::error::{MrnetError, Result};
use crate::proto::{decode_frame, Control, Frame};
use crate::slice::SubtreeView;

/// What a node must do for its direct children.
#[derive(Debug)]
pub struct ChildPlan {
    /// Internal children to create: `(rank, slice to hand over)`.
    pub spawn: Vec<Rank>,
    /// Back-end slots to advertise: `(rank, endpoint)` pairs.
    pub advertise: Vec<(Rank, String)>,
    /// Expected ranks in configuration order (for slot assignment).
    pub order: Vec<Rank>,
}

/// Plans the children of `view`'s root given this node's listener
/// address.
pub fn plan_children(view: &SubtreeView, listen_addr: &str) -> ChildPlan {
    let mut spawn = Vec::new();
    let mut advertise = Vec::new();
    let mut order = Vec::new();
    for (rank, is_backend) in view.children() {
        order.push(rank);
        if is_backend {
            advertise.push((rank, listen_addr.to_owned()));
        } else {
            spawn.push(rank);
        }
    }
    ChildPlan {
        spawn,
        advertise,
        order,
    }
}

/// Sequentially creates the internal child processes (the paper's
/// serialized per-parent launches). Each child is told where to
/// connect back and which rank it is. Returns the spawned handles so
/// the caller can reap them on shutdown.
pub fn spawn_internal_children(
    plan: &ChildPlan,
    commnode_exe: &Path,
    listen_addr: &str,
) -> Result<Vec<Child>> {
    let mut children = Vec::with_capacity(plan.spawn.len());
    for &rank in &plan.spawn {
        let child = Command::new(commnode_exe)
            .arg("--parent")
            .arg(listen_addr)
            .arg("--rank")
            .arg(rank.to_string())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| {
                MrnetError::Instantiation(format!("failed to launch commnode for rank {rank}: {e}"))
            })?;
        children.push(child);
    }
    Ok(children)
}

/// Accepts all direct children on `listener`: every inbound connection
/// introduces itself with `Attach { rank }`; internal children are
/// immediately handed their configuration slice in a `Launch` message.
/// Returns the connections in configuration order.
pub fn accept_children(
    listener: &TcpTransportListener,
    view: &SubtreeView,
    plan: &ChildPlan,
) -> Result<Vec<SharedConnection>> {
    let slot_of: HashMap<Rank, usize> = plan
        .order
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i))
        .collect();
    let internal: std::collections::HashSet<Rank> = plan.spawn.iter().copied().collect();
    let mut conns: Vec<Option<SharedConnection>> = (0..plan.order.len()).map(|_| None).collect();
    let mut remaining = plan.order.len();
    while remaining > 0 {
        let conn: SharedConnection = Arc::from(listener.accept().map_err(MrnetError::Transport)?);
        let frame = conn.recv().map_err(MrnetError::Transport)?;
        let rank = match decode_frame(frame)? {
            Frame::Control(pkt) => match Control::from_packet(&pkt)? {
                Control::Attach { rank } => rank,
                other => {
                    return Err(MrnetError::Protocol(format!(
                        "expected Attach handshake, got {other:?}"
                    )))
                }
            },
            Frame::Data(_) | Frame::Traced(..) => {
                return Err(MrnetError::Protocol(
                    "data frame before Attach handshake".into(),
                ))
            }
        };
        let &slot = slot_of
            .get(&rank)
            .ok_or_else(|| MrnetError::Instantiation(format!("unexpected rank {rank} attached")))?;
        if conns[slot].is_some() {
            return Err(MrnetError::Instantiation(format!(
                "rank {rank} attached twice"
            )));
        }
        if internal.contains(&rank) {
            let slice = view.slice_for(rank)?;
            conn.send(
                Control::Launch {
                    ranks: slice.ranks,
                    parents: slice.parents,
                }
                .to_frame(),
            )
            .map_err(MrnetError::Transport)?;
        }
        conns[slot] = Some(conn);
        remaining -= 1;
    }
    Ok(conns
        .into_iter()
        .map(|c| c.expect("all slots filled"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::SubtreeSlice;
    use mrnet_topology::{generator, HostPool};

    #[test]
    fn plan_separates_spawn_and_advertise() {
        // Unbalanced: root has internal and backend children.
        let topo = generator::fig4_unbalanced(&mut HostPool::synthetic(64)).unwrap();
        let view = SubtreeSlice::of(&topo, topo.root()).view().unwrap();
        let plan = plan_children(&view, "127.0.0.1:9999");
        assert_eq!(plan.order.len(), 6); // six-way root fan-out
        assert_eq!(plan.spawn.len(), 2); // two binomial children
        assert_eq!(plan.advertise.len(), 4); // four back-ends
        for (_, ep) in &plan.advertise {
            assert_eq!(ep, "127.0.0.1:9999");
        }
        // Order covers both kinds.
        assert_eq!(plan.order.len(), plan.spawn.len() + plan.advertise.len());
    }

    #[test]
    fn accept_children_orders_and_launches() {
        use mrnet_transport::{Connection, TcpConnection};
        // A leaf node's plan: two back-end children attach over TCP in
        // reverse order; connections come back in configuration order.
        let topo = generator::flat(2, &mut HostPool::synthetic(8)).unwrap();
        let view = SubtreeSlice::of(&topo, topo.root()).view().unwrap();
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let plan = plan_children(&view, &addr);
        assert!(plan.spawn.is_empty());
        let ranks = plan.order.clone();
        let addr2 = addr.clone();
        let attacher = std::thread::spawn(move || {
            // Attach in reverse order.
            let mut held = Vec::new();
            for &rank in ranks.iter().rev() {
                let c = TcpConnection::connect(&addr2).unwrap();
                c.send(Control::Attach { rank }.to_frame()).unwrap();
                held.push(c);
            }
            held
        });
        let conns = accept_children(&listener, &view, &plan).unwrap();
        assert_eq!(conns.len(), 2);
        let _held = attacher.join().unwrap();
    }

    #[test]
    fn accept_rejects_unknown_rank() {
        use mrnet_transport::{Connection, TcpConnection};
        let topo = generator::flat(1, &mut HostPool::synthetic(8)).unwrap();
        let view = SubtreeSlice::of(&topo, topo.root()).view().unwrap();
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.addr();
        let plan = plan_children(&view, &addr);
        let t = std::thread::spawn(move || {
            let c = TcpConnection::connect(&addr).unwrap();
            c.send(Control::Attach { rank: 999 }.to_frame()).unwrap();
            c
        });
        let err = accept_children(&listener, &view, &plan)
            .err()
            .expect("bad rank");
        assert!(matches!(err, MrnetError::Instantiation(_)));
        let _ = t.join();
    }
}
