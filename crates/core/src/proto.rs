//! The MRNet wire protocol: frames and control messages.
//!
//! Every frame exchanged between MRNet processes is either a **data
//! frame** — a batched packet buffer (§2.3) — or a **control frame** —
//! a single packet on the reserved control stream whose tag selects
//! the operation. Control messages drive stream creation/deletion,
//! instantiation subtree reports, mode-2 back-end attachment, and
//! shutdown.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use mrnet_filters::SyncMode;
use mrnet_obs::tracectx::TraceEnvelope;
use mrnet_packet::{
    decode_batch_lazy_with, decode_packet_from, encode_batch, encode_packet,
    trace::{decode_trailer_from, encode_trailer_into},
    DecodeLimits, Packet, PacketBuilder, Rank, StreamId, Value,
};

use crate::error::{MrnetError, Result};

/// The reserved stream id carrying control messages.
pub const CONTROL_STREAM: StreamId = 0;

/// First stream id handed to user streams.
pub const FIRST_USER_STREAM: StreamId = 1;

/// The reserved stream id for in-band introspection traffic (metrics
/// collection and trace reports). Chosen from the top of the id space
/// so it can never collide with user streams, which allocate upward
/// from [`FIRST_USER_STREAM`]. Packets on this stream bypass stream
/// managers and are not counted as user traffic.
pub const METRICS_STREAM: StreamId = u32::MAX;

/// Control-message tags.
pub mod tags {
    /// Create a stream (downstream).
    pub const NEW_STREAM: i32 = -1;
    /// Delete a stream (downstream).
    pub const DELETE_STREAM: i32 = -2;
    /// Subtree end-point report (upstream, during instantiation).
    pub const SUBTREE_REPORT: i32 = -3;
    /// Back-end attach handshake (mode-2 instantiation).
    pub const ATTACH: i32 = -4;
    /// Orderly shutdown (downstream).
    pub const SHUTDOWN: i32 = -5;
    /// Subtree launch directive (parent → child, process
    /// instantiation): "a message from parent to child containing the
    /// portion of the configuration relevant to that child" (§2.5).
    pub const LAUNCH: i32 = -6;
    /// Back-end rendezvous advertisement (upstream): which attach
    /// endpoints serve which back-end ranks ("the leaf processes' host
    /// names and connection port numbers", §2.5).
    pub const ATTACH_INFO: i32 = -7;
    /// Rank-death report (bidirectional): the node that detects a dead
    /// peer propagates the failure both up toward the front-end and
    /// down the surviving subtrees so every node prunes its routes and
    /// stream membership.
    pub const RANK_FAILED: i32 = -8;
    /// Clock-sync ping (parent → child): carries the parent's send
    /// stamp `t0`. Every parent pings each child after instantiation
    /// so trace timestamps can be mapped into the front-end's clock.
    pub const CLOCK_PING: i32 = -9;
    /// Clock-sync reply (child → parent): echoes `t0` plus the child's
    /// receive (`t1`) and send (`t2`) stamps, completing the NTP-style
    /// exchange `offset = ((t1 - t0) + (t2 - t3)) / 2`.
    pub const CLOCK_PONG: i32 = -10;
    /// Resolved clock table fragment (child → parent): per-rank
    /// offsets and RTTs for ranks in the sender's subtree, relative to
    /// the *sender's* clock. Each relay adds its own estimate of the
    /// sender before forwarding, so the front-end accumulates offsets
    /// relative to itself.
    pub const CLOCK_INFO: i32 = -11;

    /// Introspection request tag (front-end → everyone, multicast on
    /// [`super::METRICS_STREAM`]): "dump your metrics section".
    pub const METRICS_REQUEST: i32 = -100;
    /// Introspection reply tag (upstream on [`super::METRICS_STREAM`]):
    /// concatenated metrics sections from a subtree.
    pub const METRICS_REPLY: i32 = -101;
    /// Completed down-wave trace envelope, relayed upstream to the
    /// front-end's assembler on [`super::METRICS_STREAM`] by the
    /// back-end that terminated the wave. Forwarded verbatim, never
    /// aggregated.
    pub const TRACE_REPORT: i32 = -102;
}

/// Frame kind discriminants.
const FRAME_DATA: u8 = 0;
const FRAME_CONTROL: u8 = 1;
const FRAME_DATA_TRACED: u8 = 2;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A batch of data packets.
    Data(Vec<Packet>),
    /// A control packet.
    Control(Packet),
    /// A batch of data packets plus the trace envelopes of the sampled
    /// waves riding in it (matched to packets by the envelopes' stream
    /// ids). Only sampled frames use this kind; untraced frames stay
    /// on the plain [`Frame::Data`] encoding with zero trailer bytes.
    Traced(Vec<Packet>, Vec<TraceEnvelope>),
}

/// Encodes a batch of data packets as a frame.
pub fn encode_data_frame(packets: &[Packet]) -> Bytes {
    let batch = encode_batch(packets);
    let mut buf = BytesMut::with_capacity(1 + batch.len());
    buf.put_u8(FRAME_DATA);
    buf.put_slice(&batch);
    buf.freeze()
}

/// Encodes a batch plus trace-envelope trailers. With no envelopes
/// this is exactly [`encode_data_frame`] — the traced kind (and its
/// batch length prefix) appears on the wire only when a trailer does.
pub fn encode_traced_data_frame(packets: &[Packet], envelopes: &[TraceEnvelope]) -> Bytes {
    if envelopes.is_empty() {
        return encode_data_frame(packets);
    }
    let batch = encode_batch(packets);
    let mut buf = BytesMut::with_capacity(1 + 4 + batch.len() + 64 * envelopes.len());
    buf.put_u8(FRAME_DATA_TRACED);
    buf.put_u32_le(batch.len() as u32);
    buf.put_slice(&batch);
    encode_trailer_into(envelopes, &mut buf);
    buf.freeze()
}

/// Encodes a control packet as a frame.
pub fn encode_control_frame(packet: &Packet) -> Bytes {
    let body = encode_packet(packet);
    let mut buf = BytesMut::with_capacity(1 + body.len());
    buf.put_u8(FRAME_CONTROL);
    buf.put_slice(&body);
    buf.freeze()
}

/// Decodes a frame.
///
/// Data-frame packets come back **lazy**: headers parsed and wire
/// structure validated (against [`DecodeLimits::from_env`], so
/// `MRNET_DECODE_MAX` governs the network ingress), but payloads stay
/// zero-copy slices of `bytes` until something touches them. A node
/// that only relays the packets never pays the decode.
pub fn decode_frame(bytes: Bytes) -> Result<Frame> {
    if bytes.is_empty() {
        return Err(MrnetError::Protocol("empty frame".into()));
    }
    let limits = DecodeLimits::from_env();
    let kind = bytes[0];
    let body = bytes.slice(1..);
    match kind {
        FRAME_DATA => Ok(Frame::Data(decode_batch_lazy_with(body, &limits)?)),
        FRAME_CONTROL => {
            let mut body = body;
            let packet = decode_packet_from(&mut body, &limits)?;
            if body.has_remaining() {
                return Err(MrnetError::Protocol(
                    "trailing bytes after control packet".into(),
                ));
            }
            Ok(Frame::Control(packet))
        }
        FRAME_DATA_TRACED => {
            let mut body = body;
            if body.remaining() < 4 {
                return Err(MrnetError::Protocol("truncated traced frame".into()));
            }
            let batch_len = body.get_u32_le() as usize;
            if body.remaining() < batch_len {
                return Err(MrnetError::Protocol("truncated traced frame batch".into()));
            }
            let batch = body.slice(..batch_len);
            body.advance(batch_len);
            let packets = decode_batch_lazy_with(batch, &limits)?;
            let envelopes = decode_trailer_from(&mut body)?;
            if body.has_remaining() {
                return Err(MrnetError::Protocol(
                    "trailing bytes after trace trailer".into(),
                ));
            }
            Ok(Frame::Traced(packets, envelopes))
        }
        other => Err(MrnetError::Protocol(format!("unknown frame kind {other}"))),
    }
}

/// A parsed control message.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// Create a stream over the given end-points with the given
    /// filters.
    NewStream {
        /// The new stream's id.
        stream_id: StreamId,
        /// Back-end ranks that are end-points of the stream.
        endpoints: Vec<Rank>,
        /// Name of the upstream transformation filter.
        up_filter: String,
        /// Name of the downstream transformation filter.
        down_filter: String,
        /// Synchronization mode for upstream flow.
        sync: SyncMode,
    },
    /// Tear down a stream.
    DeleteStream {
        /// The stream to delete.
        stream_id: StreamId,
    },
    /// "When a sub-tree has been established, the root of that sub-tree
    /// sends a report to its parent containing the end-points
    /// accessible via that sub-tree" (§2.5).
    SubtreeReport {
        /// Back-end ranks reachable through the sender.
        endpoints: Vec<Rank>,
    },
    /// A mode-2 back-end announcing itself to its leaf parent.
    Attach {
        /// The back-end's rank.
        rank: Rank,
    },
    /// Orderly shutdown of the subtree.
    Shutdown,
    /// The configuration slice a parent hands a freshly created child
    /// during process instantiation: the child's subtree in BFS order.
    /// `ranks[0]` is the child itself; `parents[i]` is the index
    /// within `ranks` of node *i*'s parent (`parents[0]` is unused and
    /// set to `u32::MAX`).
    Launch {
        /// Global ranks of the subtree's nodes, BFS order.
        ranks: Vec<Rank>,
        /// Parent index (into `ranks`) per node.
        parents: Vec<u32>,
    },
    /// Rendezvous advertisement flowing upstream during process
    /// instantiation: back-end `ranks[i]` should attach at
    /// `endpoints[i]`.
    AttachInfo {
        /// Back-end ranks served.
        ranks: Vec<Rank>,
        /// `host:port` endpoint per rank.
        endpoints: Vec<String>,
    },
    /// A failure report: `rank` (the tree node whose connection died)
    /// and every back-end endpoint that was only reachable through it.
    /// Flows up to the front-end and down to surviving subtrees.
    RankFailed {
        /// The failed tree node (internal node or back-end).
        rank: Rank,
        /// Back-end ranks lost with it (for a back-end, just itself).
        subtree: Vec<Rank>,
    },
    /// Clock-sync ping (parent → child).
    ClockPing {
        /// The parent's send stamp, wall-clock µs.
        t0_us: u64,
    },
    /// Clock-sync reply (child → parent).
    ClockPong {
        /// The ping's `t0`, echoed back.
        t0_us: u64,
        /// The child's receive stamp.
        t1_us: u64,
        /// The child's reply-send stamp.
        t2_us: u64,
    },
    /// Resolved per-rank clock offsets and RTTs for a subtree, flowing
    /// up toward the front-end. Offsets are relative to the sender;
    /// each relay adds its own estimate of the sender before
    /// forwarding.
    ClockInfo {
        /// Ranks described, parallel to the other two arrays.
        ranks: Vec<Rank>,
        /// Each rank's clock minus the sender's clock, µs.
        offsets_us: Vec<i64>,
        /// Accumulated ping RTT per rank (uncertainty bound), µs.
        rtts_us: Vec<u64>,
    },
}

impl Control {
    /// Encodes this control message as a control packet.
    pub fn to_packet(&self) -> Packet {
        match self {
            Control::NewStream {
                stream_id,
                endpoints,
                up_filter,
                down_filter,
                sync,
            } => {
                let (sync_tag, sync_timeout) = sync.encode();
                PacketBuilder::new(CONTROL_STREAM, tags::NEW_STREAM)
                    .push(*stream_id)
                    .push(endpoints.clone())
                    .push(up_filter.as_str())
                    .push(down_filter.as_str())
                    .push(Value::Char(sync_tag))
                    .push(sync_timeout)
                    .build()
            }
            Control::DeleteStream { stream_id } => {
                PacketBuilder::new(CONTROL_STREAM, tags::DELETE_STREAM)
                    .push(*stream_id)
                    .build()
            }
            Control::SubtreeReport { endpoints } => {
                PacketBuilder::new(CONTROL_STREAM, tags::SUBTREE_REPORT)
                    .push(endpoints.clone())
                    .build()
            }
            Control::Attach { rank } => PacketBuilder::new(CONTROL_STREAM, tags::ATTACH)
                .push(*rank)
                .build(),
            Control::Shutdown => Packet::control(CONTROL_STREAM, tags::SHUTDOWN),
            Control::Launch { ranks, parents } => PacketBuilder::new(CONTROL_STREAM, tags::LAUNCH)
                .push(ranks.clone())
                .push(parents.clone())
                .build(),
            Control::AttachInfo { ranks, endpoints } => {
                PacketBuilder::new(CONTROL_STREAM, tags::ATTACH_INFO)
                    .push(ranks.clone())
                    .push(endpoints.clone())
                    .build()
            }
            Control::RankFailed { rank, subtree } => {
                PacketBuilder::new(CONTROL_STREAM, tags::RANK_FAILED)
                    .push(*rank)
                    .push(subtree.clone())
                    .build()
            }
            Control::ClockPing { t0_us } => PacketBuilder::new(CONTROL_STREAM, tags::CLOCK_PING)
                .push(*t0_us)
                .build(),
            Control::ClockPong {
                t0_us,
                t1_us,
                t2_us,
            } => PacketBuilder::new(CONTROL_STREAM, tags::CLOCK_PONG)
                .push(*t0_us)
                .push(*t1_us)
                .push(*t2_us)
                .build(),
            Control::ClockInfo {
                ranks,
                offsets_us,
                rtts_us,
            } => PacketBuilder::new(CONTROL_STREAM, tags::CLOCK_INFO)
                .push(ranks.clone())
                .push(offsets_us.clone())
                .push(rtts_us.clone())
                .build(),
        }
    }

    /// Parses a control packet.
    pub fn from_packet(packet: &Packet) -> Result<Control> {
        let bad = |what: &str| MrnetError::Protocol(format!("malformed {what} control message"));
        match packet.tag() {
            tags::NEW_STREAM => {
                let stream_id = packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("NewStream"))?;
                let endpoints = packet
                    .get(1)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("NewStream"))?
                    .to_vec();
                let up_filter = packet
                    .get(2)
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("NewStream"))?
                    .to_owned();
                let down_filter = packet
                    .get(3)
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("NewStream"))?
                    .to_owned();
                let sync_tag = match packet.get(4) {
                    Some(Value::Char(c)) => *c,
                    _ => return Err(bad("NewStream")),
                };
                let sync_timeout = packet
                    .get(5)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad("NewStream"))?;
                let sync = SyncMode::decode(sync_tag, sync_timeout)
                    .ok_or_else(|| bad("NewStream sync mode in"))?;
                Ok(Control::NewStream {
                    stream_id,
                    endpoints,
                    up_filter,
                    down_filter,
                    sync,
                })
            }
            tags::DELETE_STREAM => Ok(Control::DeleteStream {
                stream_id: packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("DeleteStream"))?,
            }),
            tags::SUBTREE_REPORT => Ok(Control::SubtreeReport {
                endpoints: packet
                    .get(0)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("SubtreeReport"))?
                    .to_vec(),
            }),
            tags::ATTACH => Ok(Control::Attach {
                rank: packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("Attach"))?,
            }),
            tags::SHUTDOWN => Ok(Control::Shutdown),
            tags::LAUNCH => {
                let ranks = packet
                    .get(0)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("Launch"))?
                    .to_vec();
                let parents = packet
                    .get(1)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("Launch"))?
                    .to_vec();
                if ranks.len() != parents.len() || ranks.is_empty() {
                    return Err(bad("Launch"));
                }
                Ok(Control::Launch { ranks, parents })
            }
            tags::ATTACH_INFO => {
                let ranks = packet
                    .get(0)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("AttachInfo"))?
                    .to_vec();
                let endpoints = packet
                    .get(1)
                    .and_then(Value::as_str_array)
                    .ok_or_else(|| bad("AttachInfo"))?
                    .to_vec();
                if ranks.len() != endpoints.len() {
                    return Err(bad("AttachInfo"));
                }
                Ok(Control::AttachInfo { ranks, endpoints })
            }
            tags::RANK_FAILED => {
                let rank = packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("RankFailed"))?;
                let subtree = packet
                    .get(1)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("RankFailed"))?
                    .to_vec();
                Ok(Control::RankFailed { rank, subtree })
            }
            tags::CLOCK_PING => Ok(Control::ClockPing {
                t0_us: packet
                    .get(0)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("ClockPing"))?,
            }),
            tags::CLOCK_PONG => {
                let stamp = |i: usize| {
                    packet
                        .get(i)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad("ClockPong"))
                };
                Ok(Control::ClockPong {
                    t0_us: stamp(0)?,
                    t1_us: stamp(1)?,
                    t2_us: stamp(2)?,
                })
            }
            tags::CLOCK_INFO => {
                let ranks = packet
                    .get(0)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("ClockInfo"))?
                    .to_vec();
                let offsets_us = packet
                    .get(1)
                    .and_then(Value::as_i64_slice)
                    .ok_or_else(|| bad("ClockInfo"))?
                    .to_vec();
                let rtts_us = packet
                    .get(2)
                    .and_then(Value::as_u64_slice)
                    .ok_or_else(|| bad("ClockInfo"))?
                    .to_vec();
                if ranks.len() != offsets_us.len() || ranks.len() != rtts_us.len() {
                    return Err(bad("ClockInfo"));
                }
                Ok(Control::ClockInfo {
                    ranks,
                    offsets_us,
                    rtts_us,
                })
            }
            other => Err(MrnetError::Protocol(format!("unknown control tag {other}"))),
        }
    }

    /// Encodes directly to a frame.
    pub fn to_frame(&self) -> Bytes {
        encode_control_frame(&self.to_packet())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(c: Control) {
        let frame = c.to_frame();
        match decode_frame(frame).unwrap() {
            Frame::Control(p) => assert_eq!(Control::from_packet(&p).unwrap(), c),
            other => panic!("expected control frame, got {other:?}"),
        }
    }

    #[test]
    fn control_round_trips() {
        round_trip(Control::NewStream {
            stream_id: 12,
            endpoints: vec![3, 4, 5],
            up_filter: "f_max".into(),
            down_filter: "null".into(),
            sync: SyncMode::WaitForAll,
        });
        round_trip(Control::NewStream {
            stream_id: 1,
            endpoints: vec![],
            up_filter: "null".into(),
            down_filter: "null".into(),
            sync: SyncMode::TimeOut(0.5),
        });
        round_trip(Control::DeleteStream { stream_id: 9 });
        round_trip(Control::SubtreeReport {
            endpoints: vec![10, 11],
        });
        round_trip(Control::Attach { rank: 77 });
        round_trip(Control::Shutdown);
        round_trip(Control::Launch {
            ranks: vec![3, 4, 5],
            parents: vec![u32::MAX, 0, 0],
        });
        round_trip(Control::AttachInfo {
            ranks: vec![9, 10],
            endpoints: vec!["127.0.0.1:4000".into(), "127.0.0.1:4001".into()],
        });
        round_trip(Control::RankFailed {
            rank: 2,
            subtree: vec![5, 6, 7],
        });
        round_trip(Control::RankFailed {
            rank: 6,
            subtree: vec![6],
        });
        round_trip(Control::ClockPing { t0_us: 1 << 50 });
        round_trip(Control::ClockPong {
            t0_us: 100,
            t1_us: 150,
            t2_us: 160,
        });
        round_trip(Control::ClockInfo {
            ranks: vec![3, 4],
            offsets_us: vec![-1500, 40],
            rtts_us: vec![200, 35],
        });
        round_trip(Control::ClockInfo {
            ranks: vec![],
            offsets_us: vec![],
            rtts_us: vec![],
        });
    }

    #[test]
    fn malformed_clock_messages_rejected() {
        let p = PacketBuilder::new(CONTROL_STREAM, tags::CLOCK_PING)
            .push("not a stamp")
            .build();
        assert!(Control::from_packet(&p).is_err());
        let p = PacketBuilder::new(CONTROL_STREAM, tags::CLOCK_PONG)
            .push(1u64)
            .push(2u64)
            .build();
        assert!(Control::from_packet(&p).is_err());
        // Mismatched array lengths.
        let p = PacketBuilder::new(CONTROL_STREAM, tags::CLOCK_INFO)
            .push(vec![1u32, 2])
            .push(vec![0i64])
            .push(vec![0u64, 0])
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn malformed_rank_failed_rejected() {
        let p = PacketBuilder::new(CONTROL_STREAM, tags::RANK_FAILED)
            .push("not a rank")
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn malformed_launch_rejected() {
        // Mismatched array lengths.
        let p = PacketBuilder::new(CONTROL_STREAM, tags::LAUNCH)
            .push(vec![1u32, 2])
            .push(vec![0u32])
            .build();
        assert!(Control::from_packet(&p).is_err());
        // Empty subtree.
        let p = PacketBuilder::new(CONTROL_STREAM, tags::LAUNCH)
            .push(Vec::<u32>::new())
            .push(Vec::<u32>::new())
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn malformed_attach_info_rejected() {
        let p = PacketBuilder::new(CONTROL_STREAM, tags::ATTACH_INFO)
            .push(vec![1u32])
            .push(Vec::<String>::new())
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn data_frame_round_trips() {
        let packets = vec![
            PacketBuilder::new(5, 1).push(1i32).build(),
            PacketBuilder::new(5, 1).push(2i32).build(),
        ];
        let frame = encode_data_frame(&packets);
        match decode_frame(frame).unwrap() {
            Frame::Data(got) => assert_eq!(got, packets),
            other => panic!("expected data frame, got {other:?}"),
        }
    }

    #[test]
    fn traced_frame_round_trips() {
        use mrnet_obs::tracectx::HopRecord;
        let packets = vec![
            PacketBuilder::new(5, 1).push(1i32).build(),
            PacketBuilder::new(6, 1).push(2i32).build(),
        ];
        let env = TraceEnvelope {
            trace_id: (9u64 << 32) | 1,
            stream: 5,
            hops: vec![HopRecord {
                rank: 9,
                recv_us: 123,
                send_us: 456,
            }],
        };
        let frame = encode_traced_data_frame(&packets, &[env.clone()]);
        match decode_frame(frame).unwrap() {
            Frame::Traced(got, envs) => {
                assert_eq!(got, packets);
                assert_eq!(envs, vec![env]);
            }
            other => panic!("expected traced frame, got {other:?}"),
        }
    }

    #[test]
    fn data_frame_packets_decode_lazily_and_relay_byte_identically() {
        let packets = vec![
            PacketBuilder::new(5, 1).push(1i32).push("a").build(),
            PacketBuilder::new(5, 1).push(2i32).push("b").build(),
        ];
        let inbound = encode_data_frame(&packets);
        let relayed = match decode_frame(inbound.clone()).unwrap() {
            Frame::Data(got) => got,
            other => panic!("expected data frame, got {other:?}"),
        };
        assert!(relayed.iter().all(Packet::is_lazy));
        // An untouched relay re-encodes to the identical frame.
        let outbound = encode_data_frame(&relayed);
        assert_eq!(outbound, inbound);
        assert!(relayed.iter().all(Packet::is_lazy), "relay must not decode");
    }

    #[test]
    fn traced_frame_packets_decode_lazily_and_relay_byte_identically() {
        use mrnet_obs::tracectx::HopRecord;
        let packets = vec![PacketBuilder::new(5, 1).push(7i32).build()];
        let env = TraceEnvelope {
            trace_id: 3,
            stream: 5,
            hops: vec![HopRecord {
                rank: 2,
                recv_us: 10,
                send_us: 20,
            }],
        };
        let inbound = encode_traced_data_frame(&packets, &[env]);
        let (relayed, envs) = match decode_frame(inbound.clone()).unwrap() {
            Frame::Traced(got, envs) => (got, envs),
            other => panic!("expected traced frame, got {other:?}"),
        };
        assert!(relayed.iter().all(Packet::is_lazy));
        let outbound = encode_traced_data_frame(&relayed, &envs);
        assert_eq!(outbound, inbound);
        assert!(relayed.iter().all(Packet::is_lazy));
    }

    #[test]
    fn untraced_frames_carry_zero_trailer_bytes() {
        // With no envelopes the traced encoder degrades to the plain
        // data-frame encoding, byte for byte: untraced runs pay
        // nothing on the wire.
        let packets = vec![PacketBuilder::new(5, 1).push(7i32).build()];
        let plain = encode_data_frame(&packets);
        let traced_empty = encode_traced_data_frame(&packets, &[]);
        assert_eq!(plain, traced_empty);
        assert!(matches!(
            decode_frame(traced_empty).unwrap(),
            Frame::Data(_)
        ));
    }

    #[test]
    fn corrupt_traced_frames_rejected() {
        let packets = vec![PacketBuilder::new(5, 1).push(7i32).build()];
        let env = TraceEnvelope {
            trace_id: 1,
            stream: 5,
            hops: vec![],
        };
        let frame = encode_traced_data_frame(&packets, &[env]);
        // Truncations at every boundary fail cleanly.
        for cut in 1..frame.len() {
            assert!(decode_frame(frame.slice(..cut)).is_err(), "cut={cut}");
        }
        // Trailing garbage after the trailer is rejected.
        let mut long = BytesMut::from(&frame[..]);
        long.put_u8(0);
        assert!(decode_frame(long.freeze()).is_err());
    }

    #[test]
    fn empty_and_unknown_frames_rejected() {
        assert!(decode_frame(Bytes::new()).is_err());
        assert!(decode_frame(Bytes::from_static(&[9, 0, 0])).is_err());
    }

    #[test]
    fn unknown_control_tag_rejected() {
        let p = Packet::control(CONTROL_STREAM, -99);
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn malformed_new_stream_rejected() {
        let p = PacketBuilder::new(CONTROL_STREAM, tags::NEW_STREAM)
            .push(1u32)
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn timeout_sync_mode_survives_f32_narrowing() {
        let c = Control::NewStream {
            stream_id: 2,
            endpoints: vec![1],
            up_filter: "null".into(),
            down_filter: "null".into(),
            sync: SyncMode::TimeOut(0.25),
        };
        let p = c.to_packet();
        match Control::from_packet(&p).unwrap() {
            Control::NewStream {
                sync: SyncMode::TimeOut(t),
                ..
            } => assert!((t - 0.25).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }
}
