//! The MRNet wire protocol: frames and control messages.
//!
//! Every frame exchanged between MRNet processes is either a **data
//! frame** — a batched packet buffer (§2.3) — or a **control frame** —
//! a single packet on the reserved control stream whose tag selects
//! the operation. Control messages drive stream creation/deletion,
//! instantiation subtree reports, mode-2 back-end attachment, and
//! shutdown.

use bytes::{BufMut, Bytes, BytesMut};

use mrnet_filters::SyncMode;
use mrnet_packet::{
    decode_batch, decode_packet, encode_batch, encode_packet, Packet, PacketBuilder, Rank,
    StreamId, Value,
};

use crate::error::{MrnetError, Result};

/// The reserved stream id carrying control messages.
pub const CONTROL_STREAM: StreamId = 0;

/// First stream id handed to user streams.
pub const FIRST_USER_STREAM: StreamId = 1;

/// Control-message tags.
pub mod tags {
    /// Create a stream (downstream).
    pub const NEW_STREAM: i32 = -1;
    /// Delete a stream (downstream).
    pub const DELETE_STREAM: i32 = -2;
    /// Subtree end-point report (upstream, during instantiation).
    pub const SUBTREE_REPORT: i32 = -3;
    /// Back-end attach handshake (mode-2 instantiation).
    pub const ATTACH: i32 = -4;
    /// Orderly shutdown (downstream).
    pub const SHUTDOWN: i32 = -5;
    /// Subtree launch directive (parent → child, process
    /// instantiation): "a message from parent to child containing the
    /// portion of the configuration relevant to that child" (§2.5).
    pub const LAUNCH: i32 = -6;
    /// Back-end rendezvous advertisement (upstream): which attach
    /// endpoints serve which back-end ranks ("the leaf processes' host
    /// names and connection port numbers", §2.5).
    pub const ATTACH_INFO: i32 = -7;
    /// Rank-death report (bidirectional): the node that detects a dead
    /// peer propagates the failure both up toward the front-end and
    /// down the surviving subtrees so every node prunes its routes and
    /// stream membership.
    pub const RANK_FAILED: i32 = -8;
}

/// Frame kind discriminants.
const FRAME_DATA: u8 = 0;
const FRAME_CONTROL: u8 = 1;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A batch of data packets.
    Data(Vec<Packet>),
    /// A control packet.
    Control(Packet),
}

/// Encodes a batch of data packets as a frame.
pub fn encode_data_frame(packets: &[Packet]) -> Bytes {
    let batch = encode_batch(packets);
    let mut buf = BytesMut::with_capacity(1 + batch.len());
    buf.put_u8(FRAME_DATA);
    buf.put_slice(&batch);
    buf.freeze()
}

/// Encodes a control packet as a frame.
pub fn encode_control_frame(packet: &Packet) -> Bytes {
    let body = encode_packet(packet);
    let mut buf = BytesMut::with_capacity(1 + body.len());
    buf.put_u8(FRAME_CONTROL);
    buf.put_slice(&body);
    buf.freeze()
}

/// Decodes a frame.
pub fn decode_frame(bytes: Bytes) -> Result<Frame> {
    if bytes.is_empty() {
        return Err(MrnetError::Protocol("empty frame".into()));
    }
    let kind = bytes[0];
    let body = bytes.slice(1..);
    match kind {
        FRAME_DATA => Ok(Frame::Data(decode_batch(body)?)),
        FRAME_CONTROL => Ok(Frame::Control(decode_packet(body)?)),
        other => Err(MrnetError::Protocol(format!("unknown frame kind {other}"))),
    }
}

/// A parsed control message.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// Create a stream over the given end-points with the given
    /// filters.
    NewStream {
        /// The new stream's id.
        stream_id: StreamId,
        /// Back-end ranks that are end-points of the stream.
        endpoints: Vec<Rank>,
        /// Name of the upstream transformation filter.
        up_filter: String,
        /// Name of the downstream transformation filter.
        down_filter: String,
        /// Synchronization mode for upstream flow.
        sync: SyncMode,
    },
    /// Tear down a stream.
    DeleteStream {
        /// The stream to delete.
        stream_id: StreamId,
    },
    /// "When a sub-tree has been established, the root of that sub-tree
    /// sends a report to its parent containing the end-points
    /// accessible via that sub-tree" (§2.5).
    SubtreeReport {
        /// Back-end ranks reachable through the sender.
        endpoints: Vec<Rank>,
    },
    /// A mode-2 back-end announcing itself to its leaf parent.
    Attach {
        /// The back-end's rank.
        rank: Rank,
    },
    /// Orderly shutdown of the subtree.
    Shutdown,
    /// The configuration slice a parent hands a freshly created child
    /// during process instantiation: the child's subtree in BFS order.
    /// `ranks[0]` is the child itself; `parents[i]` is the index
    /// within `ranks` of node *i*'s parent (`parents[0]` is unused and
    /// set to `u32::MAX`).
    Launch {
        /// Global ranks of the subtree's nodes, BFS order.
        ranks: Vec<Rank>,
        /// Parent index (into `ranks`) per node.
        parents: Vec<u32>,
    },
    /// Rendezvous advertisement flowing upstream during process
    /// instantiation: back-end `ranks[i]` should attach at
    /// `endpoints[i]`.
    AttachInfo {
        /// Back-end ranks served.
        ranks: Vec<Rank>,
        /// `host:port` endpoint per rank.
        endpoints: Vec<String>,
    },
    /// A failure report: `rank` (the tree node whose connection died)
    /// and every back-end endpoint that was only reachable through it.
    /// Flows up to the front-end and down to surviving subtrees.
    RankFailed {
        /// The failed tree node (internal node or back-end).
        rank: Rank,
        /// Back-end ranks lost with it (for a back-end, just itself).
        subtree: Vec<Rank>,
    },
}

impl Control {
    /// Encodes this control message as a control packet.
    pub fn to_packet(&self) -> Packet {
        match self {
            Control::NewStream {
                stream_id,
                endpoints,
                up_filter,
                down_filter,
                sync,
            } => {
                let (sync_tag, sync_timeout) = sync.encode();
                PacketBuilder::new(CONTROL_STREAM, tags::NEW_STREAM)
                    .push(*stream_id)
                    .push(endpoints.clone())
                    .push(up_filter.as_str())
                    .push(down_filter.as_str())
                    .push(Value::Char(sync_tag))
                    .push(sync_timeout)
                    .build()
            }
            Control::DeleteStream { stream_id } => {
                PacketBuilder::new(CONTROL_STREAM, tags::DELETE_STREAM)
                    .push(*stream_id)
                    .build()
            }
            Control::SubtreeReport { endpoints } => {
                PacketBuilder::new(CONTROL_STREAM, tags::SUBTREE_REPORT)
                    .push(endpoints.clone())
                    .build()
            }
            Control::Attach { rank } => PacketBuilder::new(CONTROL_STREAM, tags::ATTACH)
                .push(*rank)
                .build(),
            Control::Shutdown => Packet::control(CONTROL_STREAM, tags::SHUTDOWN),
            Control::Launch { ranks, parents } => PacketBuilder::new(CONTROL_STREAM, tags::LAUNCH)
                .push(ranks.clone())
                .push(parents.clone())
                .build(),
            Control::AttachInfo { ranks, endpoints } => {
                PacketBuilder::new(CONTROL_STREAM, tags::ATTACH_INFO)
                    .push(ranks.clone())
                    .push(endpoints.clone())
                    .build()
            }
            Control::RankFailed { rank, subtree } => {
                PacketBuilder::new(CONTROL_STREAM, tags::RANK_FAILED)
                    .push(*rank)
                    .push(subtree.clone())
                    .build()
            }
        }
    }

    /// Parses a control packet.
    pub fn from_packet(packet: &Packet) -> Result<Control> {
        let bad = |what: &str| MrnetError::Protocol(format!("malformed {what} control message"));
        match packet.tag() {
            tags::NEW_STREAM => {
                let stream_id = packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("NewStream"))?;
                let endpoints = packet
                    .get(1)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("NewStream"))?
                    .to_vec();
                let up_filter = packet
                    .get(2)
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("NewStream"))?
                    .to_owned();
                let down_filter = packet
                    .get(3)
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("NewStream"))?
                    .to_owned();
                let sync_tag = match packet.get(4) {
                    Some(Value::Char(c)) => *c,
                    _ => return Err(bad("NewStream")),
                };
                let sync_timeout = packet
                    .get(5)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad("NewStream"))?;
                let sync = SyncMode::decode(sync_tag, sync_timeout)
                    .ok_or_else(|| bad("NewStream sync mode in"))?;
                Ok(Control::NewStream {
                    stream_id,
                    endpoints,
                    up_filter,
                    down_filter,
                    sync,
                })
            }
            tags::DELETE_STREAM => Ok(Control::DeleteStream {
                stream_id: packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("DeleteStream"))?,
            }),
            tags::SUBTREE_REPORT => Ok(Control::SubtreeReport {
                endpoints: packet
                    .get(0)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("SubtreeReport"))?
                    .to_vec(),
            }),
            tags::ATTACH => Ok(Control::Attach {
                rank: packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("Attach"))?,
            }),
            tags::SHUTDOWN => Ok(Control::Shutdown),
            tags::LAUNCH => {
                let ranks = packet
                    .get(0)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("Launch"))?
                    .to_vec();
                let parents = packet
                    .get(1)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("Launch"))?
                    .to_vec();
                if ranks.len() != parents.len() || ranks.is_empty() {
                    return Err(bad("Launch"));
                }
                Ok(Control::Launch { ranks, parents })
            }
            tags::ATTACH_INFO => {
                let ranks = packet
                    .get(0)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("AttachInfo"))?
                    .to_vec();
                let endpoints = packet
                    .get(1)
                    .and_then(Value::as_str_array)
                    .ok_or_else(|| bad("AttachInfo"))?
                    .to_vec();
                if ranks.len() != endpoints.len() {
                    return Err(bad("AttachInfo"));
                }
                Ok(Control::AttachInfo { ranks, endpoints })
            }
            tags::RANK_FAILED => {
                let rank = packet
                    .get(0)
                    .and_then(Value::as_u32)
                    .ok_or_else(|| bad("RankFailed"))?;
                let subtree = packet
                    .get(1)
                    .and_then(Value::as_u32_slice)
                    .ok_or_else(|| bad("RankFailed"))?
                    .to_vec();
                Ok(Control::RankFailed { rank, subtree })
            }
            other => Err(MrnetError::Protocol(format!("unknown control tag {other}"))),
        }
    }

    /// Encodes directly to a frame.
    pub fn to_frame(&self) -> Bytes {
        encode_control_frame(&self.to_packet())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(c: Control) {
        let frame = c.to_frame();
        match decode_frame(frame).unwrap() {
            Frame::Control(p) => assert_eq!(Control::from_packet(&p).unwrap(), c),
            other => panic!("expected control frame, got {other:?}"),
        }
    }

    #[test]
    fn control_round_trips() {
        round_trip(Control::NewStream {
            stream_id: 12,
            endpoints: vec![3, 4, 5],
            up_filter: "f_max".into(),
            down_filter: "null".into(),
            sync: SyncMode::WaitForAll,
        });
        round_trip(Control::NewStream {
            stream_id: 1,
            endpoints: vec![],
            up_filter: "null".into(),
            down_filter: "null".into(),
            sync: SyncMode::TimeOut(0.5),
        });
        round_trip(Control::DeleteStream { stream_id: 9 });
        round_trip(Control::SubtreeReport {
            endpoints: vec![10, 11],
        });
        round_trip(Control::Attach { rank: 77 });
        round_trip(Control::Shutdown);
        round_trip(Control::Launch {
            ranks: vec![3, 4, 5],
            parents: vec![u32::MAX, 0, 0],
        });
        round_trip(Control::AttachInfo {
            ranks: vec![9, 10],
            endpoints: vec!["127.0.0.1:4000".into(), "127.0.0.1:4001".into()],
        });
        round_trip(Control::RankFailed {
            rank: 2,
            subtree: vec![5, 6, 7],
        });
        round_trip(Control::RankFailed {
            rank: 6,
            subtree: vec![6],
        });
    }

    #[test]
    fn malformed_rank_failed_rejected() {
        let p = PacketBuilder::new(CONTROL_STREAM, tags::RANK_FAILED)
            .push("not a rank")
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn malformed_launch_rejected() {
        // Mismatched array lengths.
        let p = PacketBuilder::new(CONTROL_STREAM, tags::LAUNCH)
            .push(vec![1u32, 2])
            .push(vec![0u32])
            .build();
        assert!(Control::from_packet(&p).is_err());
        // Empty subtree.
        let p = PacketBuilder::new(CONTROL_STREAM, tags::LAUNCH)
            .push(Vec::<u32>::new())
            .push(Vec::<u32>::new())
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn malformed_attach_info_rejected() {
        let p = PacketBuilder::new(CONTROL_STREAM, tags::ATTACH_INFO)
            .push(vec![1u32])
            .push(Vec::<String>::new())
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn data_frame_round_trips() {
        let packets = vec![
            PacketBuilder::new(5, 1).push(1i32).build(),
            PacketBuilder::new(5, 1).push(2i32).build(),
        ];
        let frame = encode_data_frame(&packets);
        match decode_frame(frame).unwrap() {
            Frame::Data(got) => assert_eq!(got, packets),
            other => panic!("expected data frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_unknown_frames_rejected() {
        assert!(decode_frame(Bytes::new()).is_err());
        assert!(decode_frame(Bytes::from_static(&[9, 0, 0])).is_err());
    }

    #[test]
    fn unknown_control_tag_rejected() {
        let p = Packet::control(CONTROL_STREAM, -99);
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn malformed_new_stream_rejected() {
        let p = PacketBuilder::new(CONTROL_STREAM, tags::NEW_STREAM)
            .push(1u32)
            .build();
        assert!(Control::from_packet(&p).is_err());
    }

    #[test]
    fn timeout_sync_mode_survives_f32_narrowing() {
        let c = Control::NewStream {
            stream_id: 2,
            endpoints: vec![1],
            up_filter: "null".into(),
            down_filter: "null".into(),
            sync: SyncMode::TimeOut(0.25),
        };
        let p = c.to_packet();
        match Control::from_packet(&p).unwrap() {
            Control::NewStream {
                sync: SyncMode::TimeOut(t),
                ..
            } => assert!((t - 0.25).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }
}
