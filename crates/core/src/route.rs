//! Packet routing: which child leads to which end-points.
//!
//! During instantiation every process learns, per direct child, the
//! set of back-end ranks reachable through that child (the §2.5
//! subtree reports). [`RoutingTable`] answers the two questions the
//! data path asks: *which children does this stream involve?* and
//! *does child c lead to any end-point of this stream?*

use std::collections::HashSet;

use mrnet_packet::Rank;

/// Per-child reachability, indexed by local child position.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    reachable: Vec<HashSet<Rank>>,
}

impl RoutingTable {
    /// An empty table (a back-end has no children).
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// Adds a child with the given reachable end-point set; returns its
    /// local child index.
    pub fn add_child(&mut self, reachable: impl IntoIterator<Item = Rank>) -> usize {
        self.reachable.push(reachable.into_iter().collect());
        self.reachable.len() - 1
    }

    /// Number of direct children.
    pub fn num_children(&self) -> usize {
        self.reachable.len()
    }

    /// True when there are no children.
    pub fn is_empty(&self) -> bool {
        self.reachable.is_empty()
    }

    /// All end-points reachable through any child, sorted.
    pub fn all_endpoints(&self) -> Vec<Rank> {
        let mut v: Vec<Rank> = self
            .reachable
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether child `child` leads to any rank in `endpoints`.
    pub fn child_serves(&self, child: usize, endpoints: &[Rank]) -> bool {
        endpoints.iter().any(|r| self.reachable[child].contains(r))
    }

    /// Local indices of the children that lead to at least one of
    /// `endpoints`, in child order.
    pub fn children_for(&self, endpoints: &[Rank]) -> Vec<usize> {
        (0..self.reachable.len())
            .filter(|&c| self.child_serves(c, endpoints))
            .collect()
    }

    /// One-pass combination of [`RoutingTable::children_for`] and
    /// [`RoutingTable::targets_via`]: each serving child paired with
    /// the end-points it reaches, in child order.
    pub fn children_with_targets(&self, endpoints: &[Rank]) -> Vec<(usize, Vec<Rank>)> {
        (0..self.reachable.len())
            .filter_map(|c| {
                let targets = self.targets_via(c, endpoints);
                (!targets.is_empty()).then_some((c, targets))
            })
            .collect()
    }

    /// The end-points of `endpoints` reachable via `child`.
    pub fn targets_via(&self, child: usize, endpoints: &[Rank]) -> Vec<Rank> {
        endpoints
            .iter()
            .copied()
            .filter(|r| self.reachable[child].contains(r))
            .collect()
    }

    /// All end-points reachable via `child`, sorted — the subtree that
    /// is lost when the child's connection dies.
    pub fn reachable_via(&self, child: usize) -> Vec<Rank> {
        let mut v: Vec<Rank> = self.reachable[child].iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Removes failed end-points from every child's reachable set.
    /// Child indices stay stable (an emptied child keeps its slot), so
    /// routing indices held elsewhere remain valid after a failure.
    pub fn remove_endpoints(&mut self, dead: &[Rank]) {
        for set in &mut self.reachable {
            for r in dead {
                set.remove(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.add_child([1, 2]);
        t.add_child([3]);
        t.add_child([4, 5, 6]);
        t
    }

    #[test]
    fn all_endpoints_sorted_deduped() {
        assert_eq!(table().all_endpoints(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn children_for_selects_overlapping() {
        let t = table();
        assert_eq!(t.children_for(&[2, 4]), vec![0, 2]);
        assert_eq!(t.children_for(&[3]), vec![1]);
        assert_eq!(t.children_for(&[99]), Vec::<usize>::new());
        assert_eq!(t.children_for(&[1, 3, 5]), vec![0, 1, 2]);
    }

    #[test]
    fn children_with_targets_pairs_children_and_ranks() {
        let t = table();
        assert_eq!(
            t.children_with_targets(&[2, 4, 6]),
            vec![(0, vec![2]), (2, vec![4, 6])]
        );
        assert!(t.children_with_targets(&[99]).is_empty());
    }

    #[test]
    fn targets_via_projects() {
        let t = table();
        assert_eq!(t.targets_via(2, &[5, 1, 6]), vec![5, 6]);
        assert!(t.targets_via(1, &[5]).is_empty());
    }

    #[test]
    fn child_serves() {
        let t = table();
        assert!(t.child_serves(0, &[2]));
        assert!(!t.child_serves(0, &[3]));
    }

    #[test]
    fn reachable_via_is_sorted_subtree() {
        let t = table();
        assert_eq!(t.reachable_via(2), vec![4, 5, 6]);
        assert_eq!(t.reachable_via(1), vec![3]);
    }

    #[test]
    fn remove_endpoints_keeps_child_indices_stable() {
        let mut t = table();
        t.remove_endpoints(&[3, 5]);
        assert_eq!(t.num_children(), 3);
        assert_eq!(t.reachable_via(1), Vec::<Rank>::new());
        assert_eq!(t.reachable_via(2), vec![4, 6]);
        assert_eq!(t.all_endpoints(), vec![1, 2, 4, 6]);
        // Routing queries now skip the dead ranks.
        assert_eq!(t.children_for(&[3]), Vec::<usize>::new());
        assert_eq!(t.children_for(&[5, 6]), vec![2]);
    }

    #[test]
    fn empty_table() {
        let t = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.num_children(), 0);
        assert!(t.all_endpoints().is_empty());
    }
}
