//! Paper-scale performance models of the MRNet protocols.
//!
//! The threaded runtime in this crate measures real wall-clock numbers
//! for trees of threads; this module evaluates the same §2.5/§2.6
//! protocols on the simulated Blue Pacific substrate (`mrnet-sim`) so
//! the benchmark harness can regenerate Figure 7 at 512 back-ends
//! without a 280-node machine. The protocol structure here mirrors the
//! real implementation: sequential per-parent launches with concurrent
//! branches, per-interface LogP serialization at both ends of every
//! transfer, and wave pipelining through interior nodes.

use mrnet_sim::{LaunchModel, LaunchParams, LogGpParams, NetModel};
use mrnet_topology::{NodeId, Topology};

/// Approximate wire size of a small MRNet data packet (header + one
/// scalar), used when callers don't specify message sizes.
pub const SMALL_PACKET: usize = 32;

/// Front-end processing cost per completed reduction result, seconds.
/// Calibrated so tree throughput saturates near the paper's ~70 ops/s
/// for *both* 4-way and 8-way fan-outs (Figure 7c's curves are nearly
/// equal, which means their ceiling was the front-end's per-result
/// work, not the tree's fan-out).
pub const FE_RESULT_COST: f64 = 0.013;

/// Simulated mode-1 instantiation latency (Figure 7a): each parent
/// creates its children sequentially with `rsh`-class costs, branches
/// proceed concurrently, and completion is when the root has received
/// every subtree report (§2.5).
pub fn instantiation_latency(
    topology: &Topology,
    launch: LaunchParams,
    logp: LogGpParams,
    seed: u64,
) -> f64 {
    let mut launcher = LaunchModel::new(launch, seed);
    let mut net = NetModel::new(topology.len(), logp);
    // Returns the time the subtree rooted at `node` has fully reported
    // to `node` (node itself ready at `ready`).
    fn subtree_done(
        topology: &Topology,
        node: NodeId,
        ready: f64,
        launcher: &mut LaunchModel,
        net: &mut NetModel,
    ) -> f64 {
        let children = topology.children(node);
        if children.is_empty() {
            return ready;
        }
        let mut cursor = ready; // parent's serial launch cursor
        let mut done = ready;
        for &child in children {
            let cost = launcher.sample();
            let initiated = cursor;
            cursor += cost.parent_busy;
            let child_ready = initiated + cost.parent_busy + cost.child_ready;
            let child_done = subtree_done(topology, child, child_ready, launcher, net);
            // Subtree report: child -> node.
            let report_arrival = net.transfer(child.0, node.0, child_done, SMALL_PACKET);
            done = done.max(report_arrival);
        }
        done
    }
    subtree_done(topology, topology.root(), 0.0, &mut launcher, &mut net)
}

/// Simulated latency of one broadcast from the front-end to the last
/// back-end.
pub fn broadcast_latency(topology: &Topology, logp: LogGpParams, bytes: usize) -> f64 {
    let mut net = NetModel::new(topology.len(), logp);
    broadcast_into(topology, &mut net, 0.0, bytes)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Runs one broadcast wave starting at `start`; returns per-node
/// arrival times (0 for nodes not reached, i.e. only the root starts
/// at `start`).
fn broadcast_into(topology: &Topology, net: &mut NetModel, start: f64, bytes: usize) -> Vec<f64> {
    let mut arrival = vec![0.0f64; topology.len()];
    arrival[topology.root().0] = start;
    for id in topology.bfs() {
        let t = arrival[id.0];
        for &child in topology.children(id) {
            arrival[child.0] = net.transfer(id.0, child.0, t, bytes);
        }
    }
    arrival
}

/// Runs one reduction wave with back-ends sending at `start`; returns
/// the time the aggregated packet reaches the front-end.
fn reduction_into(
    topology: &Topology,
    net: &mut NetModel,
    start: &[f64],
    bytes: usize,
    filter_cost: f64,
) -> f64 {
    fn up(
        topology: &Topology,
        node: NodeId,
        net: &mut NetModel,
        start: &[f64],
        bytes: usize,
        filter_cost: f64,
    ) -> f64 {
        let children = topology.children(node);
        if children.is_empty() {
            return start[node.0];
        }
        // Recurse into every subtree first (sibling subtrees share no
        // interfaces, so their internal transfer order is immaterial),
        // then charge the parent's receive occupancy in *arrival*
        // order — on irregular trees a shallow sibling's message
        // really does land before a deep one's, and processing them in
        // configuration order would overstate queueing.
        let mut dones: Vec<(f64, NodeId)> = children
            .iter()
            .map(|&child| (up(topology, child, net, start, bytes, filter_cost), child))
            .collect();
        dones.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut last = 0.0f64;
        for (child_done, child) in dones {
            let arrival = net.transfer(child.0, node.0, child_done, bytes);
            last = last.max(arrival);
        }
        // Synchronize (wave complete) then aggregate.
        last + filter_cost
    }
    up(topology, topology.root(), net, start, bytes, filter_cost)
}

/// Simulated latency of one reduction (all back-ends send at t=0).
pub fn reduction_latency(topology: &Topology, logp: LogGpParams, bytes: usize) -> f64 {
    let mut net = NetModel::new(topology.len(), logp);
    let start = vec![0.0; topology.len()];
    reduction_into(topology, &mut net, &start, bytes, 0.0)
}

/// Simulated round-trip latency of a broadcast followed by a reduction
/// (the Figure 7b micro-benchmark).
pub fn roundtrip_latency(topology: &Topology, logp: LogGpParams, bytes: usize) -> f64 {
    let mut net = NetModel::new(topology.len(), logp);
    let arrival = broadcast_into(topology, &mut net, 0.0, bytes);
    reduction_into(topology, &mut net, &arrival, bytes, 0.0)
}

/// Simulated sustained reduction throughput (Figure 7c): back-ends
/// stream `waves` reduction waves as fast as their interfaces allow;
/// interior pipelining emerges from the per-interface occupancy
/// tracking. Returns completed operations per second at steady state.
pub fn reduction_throughput(
    topology: &Topology,
    logp: LogGpParams,
    bytes: usize,
    waves: usize,
) -> f64 {
    reduction_throughput_with_fe_cost(topology, logp, bytes, waves, FE_RESULT_COST)
}

/// [`reduction_throughput`] with an explicit front-end per-result
/// processing cost (0.0 isolates pure network pipelining).
pub fn reduction_throughput_with_fe_cost(
    topology: &Topology,
    logp: LogGpParams,
    bytes: usize,
    waves: usize,
    fe_result_cost: f64,
) -> f64 {
    assert!(waves >= 2, "need at least two waves to measure an interval");
    let mut net = NetModel::new(topology.len(), logp);
    let start = vec![0.0; topology.len()];
    // The front-end's CPU consumes results in parallel with its
    // network interface draining messages: a separate serial budget.
    let mut fe_cpu_free = 0.0f64;
    let mut completions = Vec::with_capacity(waves);
    for _ in 0..waves {
        // Each wave reuses the persistent interface occupancies, so
        // wave w's messages queue behind wave w-1's.
        let arrived = reduction_into(topology, &mut net, &start, bytes, 0.0);
        let consumed = arrived.max(fe_cpu_free) + fe_result_cost;
        fe_cpu_free = consumed;
        completions.push(consumed);
    }
    let first = completions[0];
    let last = *completions.last().expect("waves >= 2");
    if last <= first {
        return f64::INFINITY;
    }
    (waves - 1) as f64 / (last - first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_topology::{generator, HostPool};

    fn pool() -> HostPool {
        HostPool::synthetic(2048)
    }

    fn flat(n: usize) -> Topology {
        generator::flat(n, &mut pool()).unwrap()
    }

    fn tree(fanout: usize, n: usize) -> Topology {
        generator::balanced_for(fanout, n, &mut pool()).unwrap()
    }

    #[test]
    fn instantiation_flat_512_matches_figure_7a_magnitude() {
        let t = flat(512);
        let latency = instantiation_latency(
            &t,
            LaunchParams::blue_pacific(),
            LogGpParams::blue_pacific(),
            1,
        );
        // Paper: ~800 s.
        assert!(
            (650.0..1000.0).contains(&latency),
            "flat-512 instantiation {latency}"
        );
    }

    #[test]
    fn instantiation_trees_are_dramatically_faster() {
        let params = LaunchParams::blue_pacific();
        let logp = LogGpParams::blue_pacific();
        let flat512 = instantiation_latency(&flat(512), params, logp, 1);
        let tree4 = instantiation_latency(&tree(4, 512), params, logp, 1);
        let tree8 = instantiation_latency(&tree(8, 512), params, logp, 1);
        // Paper Figure 7a: trees grow "quite slowly" — tens of seconds.
        assert!(tree4 < 60.0, "4-way {tree4}");
        assert!(tree8 < 60.0, "8-way {tree8}");
        assert!(flat512 > 10.0 * tree8);
    }

    #[test]
    fn instantiation_monotone_in_backends() {
        let params = LaunchParams::blue_pacific();
        let logp = LogGpParams::blue_pacific();
        let l64 = instantiation_latency(&flat(64), params, logp, 1);
        let l128 = instantiation_latency(&flat(128), params, logp, 1);
        assert!(l128 > l64);
    }

    #[test]
    fn roundtrip_flat_512_matches_figure_7b_magnitude() {
        let t = flat(512);
        let rt = roundtrip_latency(&t, LogGpParams::blue_pacific(), SMALL_PACKET);
        // Paper: ~1.4 s at 512 back-ends.
        assert!((0.9..2.0).contains(&rt), "flat-512 round trip {rt}");
    }

    #[test]
    fn roundtrip_trees_stay_low() {
        let rt8 = roundtrip_latency(&tree(8, 512), LogGpParams::blue_pacific(), SMALL_PACKET);
        // Paper: well under 0.2 s for multi-level topologies.
        assert!(rt8 < 0.2, "8-way-512 round trip {rt8}");
    }

    #[test]
    fn reduction_throughput_tree_beats_flat_by_an_order() {
        let logp = LogGpParams::blue_pacific();
        let flat512 = reduction_throughput(&flat(512), logp, SMALL_PACKET, 30);
        let tree8 = reduction_throughput(&tree(8, 512), logp, SMALL_PACKET, 30);
        // Paper Figure 7c: ~70 ops/s for trees vs low single digits
        // for flat at 512 back-ends.
        assert!(
            (50.0..95.0).contains(&tree8),
            "8-way-512 throughput {tree8}"
        );
        assert!(flat512 < 5.0, "flat-512 throughput {flat512}");
        assert!(tree8 > 10.0 * flat512);
    }

    #[test]
    fn tree_throughputs_are_fe_bound_and_nearly_equal() {
        // Figure 7c's 4-way and 8-way curves sit on top of each other:
        // the ceiling is the front-end's per-result cost.
        let logp = LogGpParams::blue_pacific();
        let t4 = reduction_throughput(&tree(4, 256), logp, SMALL_PACKET, 30);
        let t8 = reduction_throughput(&tree(8, 512), logp, SMALL_PACKET, 30);
        assert!(
            (t4 - t8).abs() / t8 < 0.25,
            "4-way {t4} vs 8-way {t8} should be close"
        );
        // Without the front-end cost, fan-out becomes the bottleneck
        // and 4-way pulls ahead — the pure pipelining effect.
        let pure4 = reduction_throughput_with_fe_cost(&tree(4, 256), logp, SMALL_PACKET, 30, 0.0);
        let pure8 = reduction_throughput_with_fe_cost(&tree(8, 512), logp, SMALL_PACKET, 30, 0.0);
        assert!(pure4 > 1.5 * pure8, "pure pipelining: {pure4} vs {pure8}");
    }

    #[test]
    fn broadcast_and_reduction_are_consistent() {
        let logp = LogGpParams::unit();
        let t = tree(4, 64);
        let b = broadcast_latency(&t, logp, 1);
        let r = reduction_latency(&t, logp, 1);
        assert!(b > 0.0 && r > 0.0);
        let rt = roundtrip_latency(&t, logp, 1);
        // Round trip ≥ each individual phase.
        assert!(rt >= b.max(r));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = tree(4, 64);
        let a = instantiation_latency(
            &t,
            LaunchParams::blue_pacific(),
            LogGpParams::blue_pacific(),
            7,
        );
        let b = instantiation_latency(
            &t,
            LaunchParams::blue_pacific(),
            LogGpParams::blue_pacific(),
            7,
        );
        assert_eq!(a, b);
    }
}
