//! Event-driven cross-validation of the analytic simulation models.
//!
//! [`crate::simulate`] computes collective-operation times with direct
//! recursions over the LogP occupancy model. This module re-implements
//! broadcast and reduction as a *discrete-event simulation* on the
//! [`mrnet_sim::Sim`] engine — independent control flow over the same
//! cost model — and the test suite asserts both implementations agree
//! exactly. Agreement between two independently structured
//! implementations is the evidence that the Figure 7 numbers are
//! properties of the model, not artifacts of one traversal order.

use mrnet_sim::{LogGpParams, NetModel, Sim};
use mrnet_topology::{NodeId, Topology};

struct World {
    topology: Topology,
    net: NetModel,
    /// Per-node count of child messages still missing for the current
    /// reduction wave.
    missing: Vec<usize>,
    /// Completion time of the reduction at the root, once reached.
    root_done: Option<f64>,
    /// Latest downstream arrival (broadcast completion).
    last_leaf_arrival: f64,
}

/// Event-driven broadcast: returns the time the last back-end has
/// received the message.
pub fn des_broadcast_latency(topology: &Topology, logp: LogGpParams, bytes: usize) -> f64 {
    let root = topology.root();
    let mut sim = Sim::new(World {
        topology: topology.clone(),
        net: NetModel::new(topology.len(), logp),
        missing: vec![0; topology.len()],
        root_done: None,
        last_leaf_arrival: 0.0,
    });

    fn deliver(
        world: &mut World,
        sched: &mut mrnet_sim::Scheduler<World>,
        node: NodeId,
        bytes: usize,
    ) {
        let now = sched.now();
        if world.topology.children(node).is_empty() {
            world.last_leaf_arrival = world.last_leaf_arrival.max(now);
            return;
        }
        for &child in world.topology.children(node) {
            let arrival = world.net.transfer(node.0, child.0, now, bytes);
            sched.at(arrival, move |w, s| deliver(w, s, child, bytes));
        }
    }

    sim.schedule_at(0.0, move |w, s| deliver(w, s, root, bytes));
    sim.run();
    sim.world.last_leaf_arrival
}

/// Event-driven reduction: all back-ends send at t = 0; returns the
/// time the aggregated packet is complete at the front-end.
pub fn des_reduction_latency(topology: &Topology, logp: LogGpParams, bytes: usize) -> f64 {
    let mut missing = vec![0usize; topology.len()];
    for id in topology.bfs() {
        missing[id.0] = topology.children(id).len();
    }
    let mut sim = Sim::new(World {
        topology: topology.clone(),
        net: NetModel::new(topology.len(), logp),
        missing,
        root_done: None,
        last_leaf_arrival: 0.0,
    });

    fn send_up(
        world: &mut World,
        sched: &mut mrnet_sim::Scheduler<World>,
        node: NodeId,
        bytes: usize,
    ) {
        let now = sched.now();
        match world.topology.parent(node) {
            None => {
                world.root_done = Some(now);
            }
            Some(parent) => {
                // IMPORTANT for determinism vs the analytic recursion:
                // children transfer in completion order here, whereas
                // the recursion visits them in configuration order.
                // The per-interface occupancy model is commutative in
                // arrival maxima for same-size messages, so the final
                // wave-completion time agrees (asserted by tests).
                let arrival = world.net.transfer(node.0, parent.0, now, bytes);
                sched.at(arrival, move |w, s| arrive(w, s, parent, bytes));
            }
        }
    }

    fn arrive(
        world: &mut World,
        sched: &mut mrnet_sim::Scheduler<World>,
        node: NodeId,
        bytes: usize,
    ) {
        world.missing[node.0] -= 1;
        if world.missing[node.0] == 0 {
            send_up(world, sched, node, bytes);
        }
    }

    for leaf in topology.backends() {
        sim.schedule_at(0.0, move |w, s| send_up(w, s, leaf, bytes));
    }
    sim.run();
    sim.world.root_done.expect("reduction reaches the root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use mrnet_topology::{generator, HostPool};

    fn topologies() -> Vec<Topology> {
        let mut pool = HostPool::synthetic(4096);
        vec![
            generator::flat(17, &mut pool).unwrap(),
            generator::flat(128, &mut pool).unwrap(),
            generator::balanced(4, 2, &mut pool).unwrap(),
            generator::balanced(8, 3, &mut pool).unwrap(),
            generator::balanced_for(4, 100, &mut pool).unwrap(),
            generator::fig4_unbalanced(&mut pool).unwrap(),
            generator::from_level_fanouts(&[3, 5, 2], &mut pool).unwrap(),
        ]
    }

    fn params() -> Vec<LogGpParams> {
        vec![
            LogGpParams::unit(),
            LogGpParams::blue_pacific(),
            LogGpParams {
                latency: 0.01,
                overhead: 0.002,
                gap: 0.0005,
                big_gap: 1e-8,
            },
        ]
    }

    #[test]
    fn des_and_analytic_broadcast_agree_exactly() {
        for topo in topologies() {
            for p in params() {
                for bytes in [1usize, 32, 4096] {
                    let analytic = simulate::broadcast_latency(&topo, p, bytes);
                    let des = des_broadcast_latency(&topo, p, bytes);
                    assert!(
                        (analytic - des).abs() < 1e-9,
                        "broadcast mismatch: analytic {analytic} vs DES {des} \
                         ({} backends, bytes {bytes})",
                        topo.num_backends()
                    );
                }
            }
        }
    }

    #[test]
    fn des_and_analytic_reduction_agree_on_symmetric_trees() {
        // On uniform trees every leaf is interchangeable, so traversal
        // order cannot matter: the two implementations must agree to
        // round-off.
        let mut pool = HostPool::synthetic(4096);
        for topo in [
            generator::flat(64, &mut pool).unwrap(),
            generator::balanced(4, 2, &mut pool).unwrap(),
            generator::balanced(2, 4, &mut pool).unwrap(),
            generator::balanced(8, 2, &mut pool).unwrap(),
        ] {
            for p in params() {
                let analytic = simulate::reduction_latency(&topo, p, 32);
                let des = des_reduction_latency(&topo, p, 32);
                assert!(
                    (analytic - des).abs() < 1e-9,
                    "reduction mismatch: analytic {analytic} vs DES {des} \
                     ({} backends)",
                    topo.num_backends()
                );
            }
        }
    }

    #[test]
    fn des_reduction_close_on_irregular_trees() {
        // On irregular trees the schedulers may pick different send
        // orders at a shared interface; completion times can differ
        // only within one occupancy slot per level.
        let mut pool = HostPool::synthetic(4096);
        for topo in [
            generator::balanced_for(4, 100, &mut pool).unwrap(),
            generator::fig4_unbalanced(&mut pool).unwrap(),
        ] {
            let p = LogGpParams::blue_pacific();
            let analytic = simulate::reduction_latency(&topo, p, 32);
            let des = des_reduction_latency(&topo, p, 32);
            let slack = (topo.depth() as f64) * (p.gap + p.overhead * 2.0 + p.latency);
            assert!(
                (analytic - des).abs() <= slack,
                "analytic {analytic} vs DES {des} (slack {slack})"
            );
        }
    }
}
