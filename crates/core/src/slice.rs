//! Subtree configuration slices for process instantiation.
//!
//! §2.5: during recursive instantiation, "the first activity on this
//! connection is a message from parent to child containing the portion
//! of the configuration relevant to that child. The child then uses
//! this information to begin instantiation of the sub-tree rooted at
//! that child." A [`SubtreeSlice`] is that portion: the child's
//! subtree as parallel `(ranks, parents)` arrays carried by the
//! `Launch` control message.

use mrnet_packet::Rank;
use mrnet_topology::{NodeId, Placement, Topology};

use crate::error::{MrnetError, Result};

/// The configuration slice for one subtree, in BFS order with
/// `ranks[0]` being the subtree root and `parents[i]` the index (into
/// `ranks`) of node `i`'s parent (`u32::MAX` for the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeSlice {
    /// Global ranks, BFS order.
    pub ranks: Vec<Rank>,
    /// Parent indices into `ranks`.
    pub parents: Vec<u32>,
}

impl SubtreeSlice {
    /// Extracts the slice for the subtree of `topology` rooted at
    /// `node`, using node indices as global ranks (the convention of
    /// this implementation's instantiation).
    pub fn of(topology: &Topology, node: NodeId) -> SubtreeSlice {
        let (sub, mapping) = topology.subtree(node);
        let ranks: Vec<Rank> = mapping.iter().map(|id| id.0 as Rank).collect();
        let parents: Vec<u32> = (0..sub.len())
            .map(|i| match sub.parent(NodeId(i)) {
                Some(p) => p.0 as u32,
                None => u32::MAX,
            })
            .collect();
        SubtreeSlice { ranks, parents }
    }

    /// Reconstructs the slice received in a `Launch` message into a
    /// navigable view.
    pub fn from_wire(ranks: Vec<Rank>, parents: Vec<u32>) -> Result<SubtreeView> {
        if ranks.is_empty() || ranks.len() != parents.len() || parents[0] != u32::MAX {
            return Err(MrnetError::Protocol("malformed subtree slice".into()));
        }
        let placements: Vec<Placement> = ranks
            .iter()
            .map(|r| Placement::new(format!("proc-{r}"), 0))
            .collect();
        let parent_opts: Vec<Option<usize>> = parents
            .iter()
            .map(|&p| {
                if p == u32::MAX {
                    None
                } else {
                    Some(p as usize)
                }
            })
            .collect();
        let topology = Topology::from_parts(placements, parent_opts)
            .map_err(|e| MrnetError::Protocol(format!("invalid subtree slice: {e}")))?;
        Ok(SubtreeView { topology, ranks })
    }

    /// This slice's view (convenience for locally built slices).
    pub fn view(&self) -> Result<SubtreeView> {
        SubtreeSlice::from_wire(self.ranks.clone(), self.parents.clone())
    }
}

/// A navigable reconstruction of a received subtree slice.
#[derive(Debug, Clone)]
pub struct SubtreeView {
    topology: Topology,
    ranks: Vec<Rank>,
}

impl SubtreeView {
    /// The rank of this subtree's root (the receiving process).
    pub fn my_rank(&self) -> Rank {
        self.ranks[0]
    }

    /// Total nodes in the subtree.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True for a single-node subtree (a back-end slice).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Direct children of the root: `(global rank, is_backend)` in
    /// configuration order.
    pub fn children(&self) -> Vec<(Rank, bool)> {
        self.topology
            .children(self.topology.root())
            .iter()
            .map(|&c| (self.ranks[c.0], self.topology.children(c).is_empty()))
            .collect()
    }

    /// All back-end ranks reachable through this subtree (the content
    /// of the eventual subtree report).
    pub fn backend_ranks(&self) -> Vec<Rank> {
        let mut v: Vec<Rank> = self
            .topology
            .backends()
            .into_iter()
            .map(|id| self.ranks[id.0])
            .collect();
        v.sort_unstable();
        v
    }

    /// The slice to forward to the direct child with global rank
    /// `child_rank`.
    pub fn slice_for(&self, child_rank: Rank) -> Result<SubtreeSlice> {
        let child = self
            .topology
            .children(self.topology.root())
            .iter()
            .copied()
            .find(|c| self.ranks[c.0] == child_rank)
            .ok_or_else(|| {
                MrnetError::Protocol(format!("rank {child_rank} is not a direct child"))
            })?;
        let (sub, mapping) = self.topology.subtree(child);
        let ranks: Vec<Rank> = mapping.iter().map(|id| self.ranks[id.0]).collect();
        let parents: Vec<u32> = (0..sub.len())
            .map(|i| match sub.parent(NodeId(i)) {
                Some(p) => p.0 as u32,
                None => u32::MAX,
            })
            .collect();
        Ok(SubtreeSlice { ranks, parents })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_topology::{generator, HostPool};

    fn topo() -> Topology {
        generator::balanced(2, 2, &mut HostPool::synthetic(16)).unwrap()
    }

    #[test]
    fn slice_of_root_covers_everything() {
        let t = topo();
        let slice = SubtreeSlice::of(&t, t.root());
        assert_eq!(slice.ranks.len(), 7);
        assert_eq!(slice.ranks[0], 0);
        assert_eq!(slice.parents[0], u32::MAX);
        let view = slice.view().unwrap();
        assert_eq!(view.my_rank(), 0);
        assert_eq!(view.backend_ranks().len(), 4);
        let kids = view.children();
        assert_eq!(kids.len(), 2);
        assert!(kids.iter().all(|&(_, leaf)| !leaf));
    }

    #[test]
    fn slice_of_internal_child() {
        let t = topo();
        let first_internal = t.children(t.root())[0];
        let slice = SubtreeSlice::of(&t, first_internal);
        assert_eq!(slice.ranks.len(), 3);
        let view = slice.view().unwrap();
        assert_eq!(view.my_rank(), first_internal.0 as u32);
        let kids = view.children();
        assert_eq!(kids.len(), 2);
        assert!(kids.iter().all(|&(_, leaf)| leaf));
        assert_eq!(view.backend_ranks().len(), 2);
    }

    #[test]
    fn recursive_slicing_matches_direct_extraction() {
        let t = generator::balanced(2, 3, &mut HostPool::synthetic(32)).unwrap();
        let root_slice = SubtreeSlice::of(&t, t.root());
        let view = root_slice.view().unwrap();
        for (child_rank, is_leaf) in view.children() {
            assert!(!is_leaf);
            let forwarded = view.slice_for(child_rank).unwrap();
            let direct = SubtreeSlice::of(&t, NodeId(child_rank as usize));
            assert_eq!(forwarded, direct);
            // And one level deeper.
            let child_view = forwarded.view().unwrap();
            for (grand_rank, _) in child_view.children() {
                let fwd2 = child_view.slice_for(grand_rank).unwrap();
                let dir2 = SubtreeSlice::of(&t, NodeId(grand_rank as usize));
                assert_eq!(fwd2, dir2);
            }
        }
    }

    #[test]
    fn slice_for_rejects_non_children() {
        let t = topo();
        let view = SubtreeSlice::of(&t, t.root()).view().unwrap();
        assert!(view.slice_for(999).is_err());
        // A grandchild is not a direct child.
        let grandchild = t.backends()[0];
        assert!(view.slice_for(grandchild.0 as u32).is_err());
    }

    #[test]
    fn from_wire_validates() {
        assert!(SubtreeSlice::from_wire(vec![], vec![]).is_err());
        assert!(SubtreeSlice::from_wire(vec![1], vec![0]).is_err()); // root parent must be MAX
        assert!(SubtreeSlice::from_wire(vec![1, 2], vec![u32::MAX]).is_err());
        // Cycle / bad parent index.
        assert!(SubtreeSlice::from_wire(vec![1, 2], vec![u32::MAX, 5]).is_err());
        assert!(SubtreeSlice::from_wire(vec![1, 2], vec![u32::MAX, 0]).is_ok());
    }
}
