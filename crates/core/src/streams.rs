//! Stream definitions shared across the tool instance.

use mrnet_filters::SyncMode;
use mrnet_packet::{Rank, StreamId};

use crate::proto::Control;

/// Immutable description of a stream, as carried by the `NewStream`
/// control message: which end-points it reaches and which filters are
/// bound to it (§2.1: "A filter may be bound to a stream when the
/// stream is created").
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDef {
    /// The stream id (unique per network instance).
    pub id: StreamId,
    /// Back-end ranks that are end-points of this stream.
    pub endpoints: Vec<Rank>,
    /// Name of the upstream transformation filter.
    pub up_filter: String,
    /// Name of the downstream transformation filter.
    pub down_filter: String,
    /// Synchronization mode for upstream flow.
    pub sync: SyncMode,
}

impl StreamDef {
    /// The `NewStream` control message announcing this stream.
    pub fn to_control(&self) -> Control {
        Control::NewStream {
            stream_id: self.id,
            endpoints: self.endpoints.clone(),
            up_filter: self.up_filter.clone(),
            down_filter: self.down_filter.clone(),
            sync: self.sync,
        }
    }

    /// Reconstructs a definition from a parsed `NewStream` control.
    pub fn from_control(control: &Control) -> Option<StreamDef> {
        match control {
            Control::NewStream {
                stream_id,
                endpoints,
                up_filter,
                down_filter,
                sync,
            } => Some(StreamDef {
                id: *stream_id,
                endpoints: endpoints.clone(),
                up_filter: up_filter.clone(),
                down_filter: down_filter.clone(),
                sync: *sync,
            }),
            _ => None,
        }
    }

    /// Whether `rank` is an end-point of this stream.
    pub fn has_endpoint(&self, rank: Rank) -> bool {
        self.endpoints.contains(&rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def() -> StreamDef {
        StreamDef {
            id: 4,
            endpoints: vec![2, 3, 5],
            up_filter: "f_max".into(),
            down_filter: "null".into(),
            sync: SyncMode::WaitForAll,
        }
    }

    #[test]
    fn control_round_trip() {
        let d = def();
        let c = d.to_control();
        assert_eq!(StreamDef::from_control(&c), Some(d));
    }

    #[test]
    fn from_non_new_stream_is_none() {
        assert_eq!(StreamDef::from_control(&Control::Shutdown), None);
    }

    #[test]
    fn endpoint_membership() {
        let d = def();
        assert!(d.has_endpoint(3));
        assert!(!d.has_endpoint(4));
    }
}
