//! Failure injection: the network must degrade gracefully — not hang
//! or corrupt state — when back-ends die, when peers send garbage, and
//! when handles are dropped without ceremony. (Full fault *recovery*
//! is future work in the paper too; these tests pin down today's
//! containment behavior.)

use std::time::Duration;

use mrnet::{launch_local, MrnetError, NetworkBuilder, SyncMode, TopologyEvent, Value};
use mrnet_topology::{generator, HostPool};

fn pool() -> HostPool {
    HostPool::synthetic(256)
}

const TIMEOUT: Duration = Duration::from_secs(15);

#[test]
fn dead_backend_prunes_wait_for_all_and_fails_drained_streams() {
    let topo = generator::flat(4, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let mut backends = dep.backends;
    let victim_rank = backends.last().unwrap().rank();
    // Kill one back-end before it answers anything.
    drop(backends.pop());

    // The death surfaces as a topology event naming the victim...
    let TopologyEvent::RankFailed { subtree, .. } = net.next_event_timeout(TIMEOUT).unwrap();
    assert_eq!(subtree, vec![victim_rank]);
    // ...and in the cumulative failed set.
    assert_eq!(net.failed_ranks(), vec![victim_rank]);

    // A WaitForAll stream over the pre-death broadcast communicator
    // does not stall: its membership shrinks to the survivors and the
    // wave completes from their contributions alone.
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let all_stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    all_stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    for be in &backends {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%d", vec![Value::Int32(1)]).unwrap();
    }
    let agg = all_stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(agg.get(0).unwrap().as_i32(), Some(3));

    // Kill every remaining member: the stream reports that its
    // end-points are gone instead of blocking forever.
    backends.clear();
    assert_eq!(
        all_stream.recv_timeout(TIMEOUT),
        Err(MrnetError::AllEndpointsFailed)
    );
    net.shutdown();
}

#[test]
fn garbage_frame_to_node_severs_only_that_peer() {
    // A raw TCP peer completes the attach handshake and then sends an
    // undecodable frame. The node must declare that peer failed (an
    // event reaches the front-end) while continuing to serve its other
    // child — no panic, no hang.
    use mrnet::proto::Control;
    use mrnet::WireTransport;
    use mrnet_transport::{Connection, TcpConnection};

    let topo = generator::flat(2, &mut pool()).unwrap();
    let pending = NetworkBuilder::new(topo)
        .transport(WireTransport::Tcp)
        .launch_internal()
        .unwrap();
    let points = pending.attach_points().to_vec();
    assert_eq!(points.len(), 2);
    let good = points[0].clone();
    let good_be =
        std::thread::spawn(move || mrnet::Backend::attach_tcp(&good.endpoint, good.rank).unwrap());
    let impostor_rank = points[1].rank;
    let raw = TcpConnection::connect(&points[1].endpoint).unwrap();
    raw.send(
        Control::Attach {
            rank: impostor_rank,
        }
        .to_frame(),
    )
    .unwrap();
    raw.send(
        Control::SubtreeReport {
            endpoints: vec![impostor_rank],
        }
        .to_frame(),
    )
    .unwrap();
    let net = pending.wait(TIMEOUT).unwrap();
    let good_be = good_be.join().unwrap();

    // Valid framing, garbage contents.
    raw.send(bytes::Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef]))
        .unwrap();
    let TopologyEvent::RankFailed { subtree, .. } = net.next_event_timeout(TIMEOUT).unwrap();
    assert_eq!(subtree, vec![impostor_rank]);

    // The surviving child still works end-to-end on the same node.
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    let (_, sid) = good_be.recv().unwrap();
    good_be.send(sid, 0, "%d", vec![Value::Int32(9)]).unwrap();
    let agg = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(agg.get(0).unwrap().as_i32(), Some(9));
    net.shutdown();
    drop(raw);
}

#[test]
fn timeout_streams_survive_dead_backends() {
    // The paper's TimeOut synchronization mode exists exactly for
    // stragglers; a dead back-end is the ultimate straggler.
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let mut backends = dep.backends;
    drop(backends.pop()); // kill one of four

    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::TimeOut(0.3)).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    for be in &backends {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%d", vec![Value::Int32(5)]).unwrap();
    }
    // Partial aggregate from the three survivors arrives after the
    // timeout despite the dead member.
    let mut total = 0;
    let deadline = std::time::Instant::now() + TIMEOUT;
    while total < 15 && std::time::Instant::now() < deadline {
        if let Ok(pkt) = stream.recv_timeout(Duration::from_millis(500)) {
            total += pkt.get(0).unwrap().as_i32().unwrap();
        }
    }
    assert_eq!(total, 15);
    net.shutdown();
}

#[test]
fn dropping_network_without_shutdown_releases_everything() {
    // Drop is the only cleanup: backends must still observe shutdown.
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let backends = dep.backends;
    let waiters: Vec<_> = backends
        .into_iter()
        .map(|be| std::thread::spawn(move || be.recv()))
        .collect();
    drop(dep.network);
    for w in waiters {
        assert_eq!(w.join().unwrap().unwrap_err(), MrnetError::Shutdown);
    }
}

#[test]
fn garbage_frames_do_not_poison_the_backend() {
    // A malformed frame surfaces as an error on that receive, but the
    // connection and later traffic keep working.
    use mrnet_transport::Listener;
    let fabric = mrnet_transport::LocalFabric::new();
    let listener = fabric.listen("leaf");
    let be = std::thread::spawn({
        let fabric = fabric.clone();
        move || mrnet::Backend::attach(&fabric, "leaf", 7).unwrap()
    });
    let server = listener.accept().unwrap();
    let be = be.join().unwrap();
    // Drain the handshake (Attach + SubtreeReport).
    server.recv().unwrap();
    server.recv().unwrap();
    // Garbage bytes.
    server
        .send(bytes::Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef]))
        .unwrap();
    let err = be.recv_timeout(Duration::from_secs(1)).unwrap_err();
    assert!(matches!(
        err,
        MrnetError::Packet(_) | MrnetError::Protocol(_)
    ));
    // A valid frame afterwards is still delivered.
    let pkt = mrnet::PacketBuilder::new(3, 1).push(42i32).build();
    // The stream must be known first: announce it.
    let def = mrnet::StreamDef {
        id: 3,
        endpoints: vec![7],
        up_filter: "null".into(),
        down_filter: "null".into(),
        sync: SyncMode::DoNotWait,
    };
    server.send(def.to_control().to_frame()).unwrap();
    server
        .send(mrnet::proto::encode_data_frame(&[pkt]))
        .unwrap();
    let (got, sid) = be.recv_timeout(TIMEOUT).unwrap().unwrap();
    assert_eq!(sid, 3);
    assert_eq!(got.get(0).unwrap().as_i32(), Some(42));
}

#[test]
fn instantiation_failure_surfaces_not_hangs() {
    // A mode-2 deployment whose back-ends never attach times out
    // cleanly in wait().
    let topo = generator::flat(2, &mut pool()).unwrap();
    let pending = NetworkBuilder::new(topo).launch_internal().unwrap();
    let err = pending
        .wait(Duration::from_millis(300))
        .err()
        .expect("timeout");
    assert!(matches!(err, MrnetError::Instantiation(_)));
}

#[test]
fn sends_after_shutdown_fail_fast() {
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();
    net.shutdown();
    assert!(matches!(
        stream.send(0, "%d", vec![Value::Int32(1)]),
        Err(MrnetError::Shutdown)
    ));
    assert!(matches!(
        net.new_stream(&comm, null, SyncMode::DoNotWait),
        Err(MrnetError::Shutdown)
    ));
    for be in &dep.backends {
        let r = be.send(stream.id(), 0, "%d", vec![Value::Int32(1)]);
        assert!(r.is_err());
    }
}
