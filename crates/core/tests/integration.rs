//! End-to-end tests of the MRNet core: live thread trees exchanging
//! real frames over both transports and both instantiation modes.

use std::time::Duration;

use mrnet::{launch_local, Backend, MrnetError, NetworkBuilder, SyncMode, Value, WireTransport};
use mrnet_packet::BatchPolicy;
use mrnet_topology::{generator, HostPool};

fn pool() -> HostPool {
    HostPool::synthetic(1024)
}

const TIMEOUT: Duration = Duration::from_secs(20);

/// Drives every backend in its own thread with `f`, collecting results.
fn drive_backends<T: Send + 'static>(
    backends: Vec<Backend>,
    f: impl Fn(Backend) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let handles: Vec<_> = backends
        .into_iter()
        .map(|be| {
            let f = f.clone();
            std::thread::spawn(move || f(be))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn figure2_flow_on_4ary_tree() {
    let topo = generator::balanced(4, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    assert_eq!(net.num_backends(), 16);

    let comm = net.broadcast_communicator();
    let fmax = net.registry().id_of("f_max").unwrap();
    let stream = net.new_stream(&comm, fmax, SyncMode::WaitForAll).unwrap();
    stream.send(7, "%d", vec![Value::Int32(99)]).unwrap();

    drive_backends(dep.backends, |be| {
        let (pkt, sid) = be.recv().unwrap();
        assert_eq!(pkt.tag(), 7);
        assert_eq!(pkt.get(0).unwrap().as_i32(), Some(99));
        be.send(sid, 7, "%f", vec![Value::Float(be.rank() as f32)])
            .unwrap();
    });

    let result = stream.recv_timeout(TIMEOUT).unwrap();
    let max_rank = *net.endpoints().iter().max().unwrap();
    assert_eq!(result.get(0).unwrap().as_f32(), Some(max_rank as f32));
    net.shutdown();
}

#[test]
fn sum_on_flat_topology() {
    let topo = generator::flat(8, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let isum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, isum, SyncMode::WaitForAll).unwrap();
    stream.send(1, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 1, "%d", vec![Value::Int32(2)]).unwrap();
    });
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(16));
    net.shutdown();
}

#[test]
fn concat_collects_all_hostnames() {
    let topo = generator::balanced(2, 3, &mut pool()).unwrap(); // 8 BEs
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let concat = net.registry().id_of("concat_s").unwrap();
    let stream = net.new_stream(&comm, concat, SyncMode::WaitForAll).unwrap();
    stream.send(2, "%d", vec![Value::Int32(1)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(
            sid,
            2,
            "%s",
            vec![Value::Str(format!("host-{}", be.rank()))],
        )
        .unwrap();
    });
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    let names = result.get(0).unwrap().as_str_array().unwrap().to_vec();
    assert_eq!(names.len(), 8);
    for rank in net.endpoints() {
        assert!(names.contains(&format!("host-{rank}")));
    }
    net.shutdown();
}

#[test]
fn multiple_concurrent_streams() {
    // "Multiple logical streams of data … and multiple operations can
    // be active simultaneously" (§1).
    let topo = generator::balanced(3, 2, &mut pool()).unwrap(); // 9 BEs
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let reg = net.registry();
    let s_max = net
        .new_stream(&comm, reg.id_of("d_max").unwrap(), SyncMode::WaitForAll)
        .unwrap();
    let s_min = net
        .new_stream(&comm, reg.id_of("d_min").unwrap(), SyncMode::WaitForAll)
        .unwrap();
    let s_sum = net
        .new_stream(&comm, reg.id_of("d_sum").unwrap(), SyncMode::WaitForAll)
        .unwrap();
    for s in [&s_max, &s_min, &s_sum] {
        s.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    }
    drive_backends(dep.backends, |be| {
        // Answer all three requests, whatever order they arrive in.
        for _ in 0..3 {
            let (_, sid) = be.recv().unwrap();
            be.send(sid, 0, "%d", vec![Value::Int32(be.rank() as i32)])
                .unwrap();
        }
    });
    let ranks: Vec<i32> = net.endpoints().iter().map(|&r| r as i32).collect();
    assert_eq!(
        s_max
            .recv_timeout(TIMEOUT)
            .unwrap()
            .get(0)
            .unwrap()
            .as_i32(),
        ranks.iter().max().copied()
    );
    assert_eq!(
        s_min
            .recv_timeout(TIMEOUT)
            .unwrap()
            .get(0)
            .unwrap()
            .as_i32(),
        ranks.iter().min().copied()
    );
    assert_eq!(
        s_sum
            .recv_timeout(TIMEOUT)
            .unwrap()
            .get(0)
            .unwrap()
            .as_i32(),
        Some(ranks.iter().sum())
    );
    net.shutdown();
}

#[test]
fn subset_communicator_only_reaches_members() {
    let topo = generator::balanced(2, 2, &mut pool()).unwrap(); // 4 BEs
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let eps = net.endpoints().to_vec();
    let subset = net.communicator(eps[..2].iter().copied()).unwrap();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&subset, null, SyncMode::DoNotWait).unwrap();
    stream.send(5, "%d", vec![Value::Int32(1)]).unwrap();

    let results = drive_backends(dep.backends, |be| {
        match be.recv_timeout(Duration::from_millis(600)) {
            Ok(Some((pkt, _))) => (be.rank(), Some(pkt.tag())),
            Ok(None) => (be.rank(), None),
            Err(_) => (be.rank(), None),
        }
    });
    for (rank, got) in results {
        if subset.endpoints().contains(&rank) {
            assert_eq!(got, Some(5), "member {rank} must receive");
        } else {
            assert_eq!(got, None, "non-member {rank} must not receive");
        }
    }
    net.shutdown();
}

#[test]
fn do_not_wait_streams_deliver_packets_individually() {
    let topo = generator::flat(3, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%ud", vec![Value::UInt32(be.rank())])
            .unwrap();
        be.send(sid, 0, "%ud", vec![Value::UInt32(be.rank() + 100)])
            .unwrap();
    });
    let mut got = Vec::new();
    for _ in 0..6 {
        got.push(
            stream
                .recv_timeout(TIMEOUT)
                .unwrap()
                .get(0)
                .unwrap()
                .as_u32()
                .unwrap(),
        );
    }
    got.sort_unstable();
    let mut expected: Vec<u32> = net.endpoints().iter().flat_map(|&r| [r, r + 100]).collect();
    expected.sort_unstable();
    assert_eq!(got, expected);
    net.shutdown();
}

#[test]
fn timeout_sync_releases_partial_waves() {
    let topo = generator::flat(4, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::TimeOut(0.3)).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    // Only two of four back-ends answer.
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        if be.rank() % 2 == 0 {
            be.send(sid, 0, "%d", vec![Value::Int32(10)]).unwrap();
        }
        be
    });
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(20));
    net.shutdown();
}

#[test]
fn stream_close_propagates() {
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();
    let sid = stream.id();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    let backends = dep.backends;
    // Both backends learn the stream.
    for be in &backends {
        let (_, s) = be.recv().unwrap();
        assert_eq!(s, sid);
    }
    stream.close().unwrap();
    // Deletion reaches the backends: their sends eventually fail with
    // UnknownStream once the DeleteStream control is processed.
    let be = &backends[0];
    let deadline = std::time::Instant::now() + TIMEOUT;
    loop {
        // recv_timeout processes inbound control frames.
        let _ = be.recv_timeout(Duration::from_millis(50));
        match be.send(sid, 0, "%d", vec![Value::Int32(1)]) {
            Err(MrnetError::UnknownStream(s)) => {
                assert_eq!(s, sid);
                break;
            }
            Ok(()) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "DeleteStream never reached the back-end"
                );
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    net.shutdown();
}

#[test]
fn shutdown_wakes_backends_and_frontend() {
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let backends = dep.backends;
    let waiters: Vec<_> = backends
        .into_iter()
        .map(|be| std::thread::spawn(move || be.recv()))
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    net.shutdown();
    for w in waiters {
        assert_eq!(w.join().unwrap().unwrap_err(), MrnetError::Shutdown);
    }
    assert!(net.is_down());
    // recv after shutdown fails immediately.
    assert!(matches!(net.recv_any(), Err(MrnetError::Shutdown)));
}

#[test]
fn recv_any_returns_stream_handles() {
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(3, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 3, "%d", vec![Value::Int32(1)]).unwrap();
    });
    let (pkt, s) = net.recv_any_timeout(TIMEOUT).unwrap();
    assert_eq!(s.id(), stream.id());
    assert_eq!(pkt.get(0).unwrap().as_i32(), Some(2));
    net.shutdown();
}

#[test]
fn custom_filter_via_registry() {
    use mrnet::{FnFilter, FormatString};
    use mrnet_packet::PacketBuilder;

    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let registry = mrnet::FilterRegistry::with_builtins();
    // A word-count-style filter: counts total packets seen across all
    // waves (exercising persistent filter state in internal processes).
    registry
        .register("wave_width", || {
            Box::new(FnFilter::new(
                "wave_width",
                Some(FormatString::parse("%ud").unwrap()),
                (),
                |_, inputs, _ctx| {
                    let total: u32 = inputs
                        .iter()
                        .map(|p| p.get(0).unwrap().as_u32().unwrap())
                        .sum();
                    let first = &inputs[0];
                    Ok(vec![PacketBuilder::new(first.stream_id(), first.tag())
                        .push(total)
                        .build()])
                },
            ))
        })
        .unwrap();
    let dep = NetworkBuilder::new(topo)
        .registry(registry)
        .launch()
        .unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let wid = net.registry().id_of("wave_width").unwrap();
    let stream = net.new_stream(&comm, wid, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%ud", vec![Value::UInt32(1)]).unwrap();
    });
    // Each back-end contributes 1; the tree sums them: 4 in total.
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_u32(), Some(4));
    net.shutdown();
}

#[test]
fn mode2_attach_instantiation() {
    // §2.5 second mode: internal tree first, back-ends attach later.
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let pending = NetworkBuilder::new(topo).launch_internal().unwrap();
    let fabric = pending.fabric().clone();
    let points = pending.attach_points().to_vec();
    assert_eq!(points.len(), 4);

    let be_threads: Vec<_> = points
        .into_iter()
        .map(|ap| {
            let fabric = fabric.clone();
            std::thread::spawn(move || {
                let be = Backend::attach(&fabric, &ap.endpoint, ap.rank).unwrap();
                let (pkt, sid) = be.recv().unwrap();
                assert_eq!(pkt.get(0).unwrap().as_i32(), Some(55));
                be.send(
                    sid,
                    0,
                    "%d",
                    vec![Value::Int32(i32::try_from(ap.rank).unwrap())],
                )
                .unwrap();
            })
        })
        .collect();

    let net = pending.wait(TIMEOUT).unwrap();
    assert_eq!(net.num_backends(), 4);
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(55)]).unwrap();
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    let expected: i32 = net.endpoints().iter().map(|&r| r as i32).sum();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(expected));
    for t in be_threads {
        t.join().unwrap();
    }
    net.shutdown();
}

#[test]
fn tcp_transport_end_to_end() {
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = NetworkBuilder::new(topo)
        .transport(WireTransport::Tcp)
        .launch()
        .unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let favg = net.registry().id_of("lf_sum").unwrap();
    let stream = net.new_stream(&comm, favg, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%lf", vec![Value::Double(2.5)]).unwrap();
    });
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_f64(), Some(10.0));
    net.shutdown();
}

#[test]
fn unbatched_policy_still_correct() {
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = NetworkBuilder::new(topo)
        .batch_policy(BatchPolicy::unbatched())
        .launch()
        .unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%d", vec![Value::Int32(3)]).unwrap();
    });
    assert_eq!(
        stream
            .recv_timeout(TIMEOUT)
            .unwrap()
            .get(0)
            .unwrap()
            .as_i32(),
        Some(12)
    );
    net.shutdown();
}

#[test]
fn repeated_reductions_pipeline() {
    let topo = generator::balanced(4, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    const ROUNDS: i32 = 50;
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        for round in 0..ROUNDS {
            be.send(sid, 0, "%d", vec![Value::Int32(round)]).unwrap();
        }
    });
    for round in 0..ROUNDS {
        let result = stream.recv_timeout(TIMEOUT).unwrap();
        assert_eq!(result.get(0).unwrap().as_i32(), Some(round * 16));
    }
    net.shutdown();
}

#[test]
fn communicator_validation() {
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    assert!(matches!(
        net.communicator(std::iter::empty()),
        Err(MrnetError::EmptyCommunicator)
    ));
    assert!(matches!(
        net.communicator([999u32]),
        Err(MrnetError::UnknownEndpoint(999))
    ));
    net.shutdown();
}

#[test]
fn backend_send_on_unknown_stream_fails() {
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let be = &dep.backends[0];
    assert!(matches!(
        be.send(42, 0, "%d", vec![Value::Int32(1)]),
        Err(MrnetError::UnknownStream(42))
    ));
    dep.network.shutdown();
}

#[test]
fn larger_tree_512_backends_instantiates_and_reduces() {
    // The paper's largest configuration, as threads.
    let topo = generator::balanced_for(8, 512, &mut HostPool::synthetic(4096)).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    assert_eq!(net.num_backends(), 512);
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%d", vec![Value::Int32(1)]).unwrap();
    });
    let result = stream.recv_timeout(Duration::from_secs(60)).unwrap();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(512));
    net.shutdown();
}

#[test]
fn stream_stats_count_traffic() {
    let topo = generator::flat(3, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    assert_eq!(stream.stats(), mrnet::StreamStats::default());
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        for _ in 0..2 {
            let (_, sid) = be.recv().unwrap();
            be.send(sid, 0, "%d", vec![Value::Int32(1)]).unwrap();
        }
    });
    for _ in 0..2 {
        stream.recv_timeout(TIMEOUT).unwrap();
    }
    let stats = stream.stats();
    assert_eq!(stats.sent, 2);
    assert_eq!(stats.received, 2, "two aggregated results");
    net.shutdown();
}

#[test]
fn downstream_transformation_filter_applies_at_internal_nodes() {
    // §2.4: "Transformation filters operate on input data packets
    // flowing either upstream or downstream." A doubling filter bound
    // downstream multiplies at every internal level: depth 2 ⇒ ×4 by
    // the time packets reach the back-ends.
    use mrnet::{FilterRegistry, FnFilter, FormatString, PacketBuilder};
    let registry = FilterRegistry::with_builtins();
    registry
        .register("double_down", || {
            Box::new(FnFilter::new(
                "double_down",
                Some(FormatString::parse("%d").unwrap()),
                (),
                |_, inputs, _| {
                    Ok(inputs
                        .into_iter()
                        .map(|p| {
                            let v = p.get(0).unwrap().as_i32().unwrap();
                            PacketBuilder::new(p.stream_id(), p.tag())
                                .push(v * 2)
                                .build()
                        })
                        .collect())
                },
            ))
        })
        .unwrap();
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = NetworkBuilder::new(topo)
        .registry(registry)
        .launch()
        .unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let up = net.registry().id_of("d_sum").unwrap();
    let down = net.registry().id_of("double_down").unwrap();
    let stream = net
        .new_stream_full(&comm, up, down, SyncMode::WaitForAll)
        .unwrap();
    stream.send(0, "%d", vec![Value::Int32(5)]).unwrap();
    let got = drive_backends(dep.backends, |be| {
        let (pkt, sid) = be.recv().unwrap();
        let v = pkt.get(0).unwrap().as_i32().unwrap();
        be.send(sid, 0, "%d", vec![Value::Int32(v)]).unwrap();
        v
    });
    // Root applies the downstream filter once, each internal level
    // once more: 5 × 2 (root) × 2 (level-1 internal) = 20.
    for v in got {
        assert_eq!(v, 20);
    }
    let total = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(total.get(0).unwrap().as_i32(), Some(80));
    net.shutdown();
}

#[test]
fn independent_networks_coexist_without_crosstalk() {
    // "each tool has its own MRNet network instantiation" (§2.1).
    let dep_a = launch_local(generator::flat(2, &mut pool()).unwrap()).unwrap();
    let dep_b = launch_local(generator::flat(3, &mut pool()).unwrap()).unwrap();
    let run = |dep: mrnet::Deployment, reply: i32| {
        let net = dep.network.clone();
        let comm = net.broadcast_communicator();
        let sum = net.registry().id_of("d_sum").unwrap();
        let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
        stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
        drive_backends(dep.backends, move |be| {
            let (_, sid) = be.recv().unwrap();
            be.send(sid, 0, "%d", vec![Value::Int32(reply)]).unwrap();
        });
        let out = stream
            .recv_timeout(TIMEOUT)
            .unwrap()
            .get(0)
            .unwrap()
            .as_i32()
            .unwrap();
        net.shutdown();
        out
    };
    // Interleave: create both, then run both.
    assert_eq!(run(dep_a, 10), 20);
    assert_eq!(run(dep_b, 100), 300);
}

#[test]
fn recv_any_interleaves_streams_fairly() {
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let s1 = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();
    let s2 = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();
    s1.send(1, "%d", vec![Value::Int32(0)]).unwrap();
    s2.send(2, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        for _ in 0..2 {
            let (pkt, sid) = be.recv().unwrap();
            be.send(sid, pkt.tag(), "%d", vec![Value::Int32(1)])
                .unwrap();
        }
    });
    // Four packets total (2 backends × 2 streams), all via recv_any.
    let mut counts = std::collections::HashMap::new();
    for _ in 0..4 {
        let (_, stream) = net.recv_any_timeout(TIMEOUT).unwrap();
        *counts.entry(stream.id()).or_insert(0) += 1;
    }
    assert_eq!(counts.get(&s1.id()), Some(&2));
    assert_eq!(counts.get(&s2.id()), Some(&2));
    net.shutdown();
}

#[test]
fn tcp_mode2_attach() {
    // Mode-2 instantiation with TCP rendezvous endpoints.
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let pending = NetworkBuilder::new(topo)
        .transport(WireTransport::Tcp)
        .launch_internal()
        .unwrap();
    let points = pending.attach_points().to_vec();
    let threads: Vec<_> = points
        .into_iter()
        .map(|ap| {
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).unwrap();
                let (_, sid) = be.recv().unwrap();
                be.send(sid, 0, "%d", vec![Value::Int32(2)]).unwrap();
            })
        })
        .collect();
    let net = pending.wait(TIMEOUT).unwrap();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    assert_eq!(
        stream
            .recv_timeout(TIMEOUT)
            .unwrap()
            .get(0)
            .unwrap()
            .as_i32(),
        Some(8)
    );
    net.shutdown();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn unpack_api_on_live_traffic() {
    use mrnet::Unpack;
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let concat = net.registry().id_of("concat_s").unwrap();
    let stream = net.new_stream(&comm, concat, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (pkt, sid) = be.recv().unwrap();
        let (request,): (i32,) = pkt.unpack().unwrap();
        be.send(sid, 0, "%s", vec![Value::Str(format!("ack{request}"))])
            .unwrap();
    });
    let reply = stream.recv_timeout(TIMEOUT).unwrap();
    let (names,): (Vec<String>,) = reply.unpack().unwrap();
    assert_eq!(names, vec!["ack0", "ack0"]);
    net.shutdown();
}

#[test]
fn single_connection_front_end_offloads_aggregation() {
    // §1: "MRNet can off-load all data aggregation processing from a
    // tool's front-end by using a single connection between the
    // front-end and the top-most MRNet internal process" — the `1xK`
    // topology shape.
    let topo = generator::from_level_fanouts(&[1, 4, 4], &mut pool()).unwrap();
    assert_eq!(topo.root_fanout(), 1);
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    assert_eq!(net.num_backends(), 16);
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 0, "%d", vec![Value::Int32(3)]).unwrap();
    });
    // The top-most internal process delivers one fully aggregated
    // packet over the single front-end connection.
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(48));
    let stats = stream.stats();
    assert_eq!(stats.received, 1);
    net.shutdown();
}
