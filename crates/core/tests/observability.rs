//! End-to-end tests of the observability layer: per-node packet
//! counters that reconcile across the tree, and the in-band
//! introspection stream that collects them.

use std::time::Duration;

use mrnet::{launch_local, MetricsSection, MrnetError, NetworkSnapshot, SyncMode, Value};
use mrnet_topology::{generator, HostPool};

fn pool() -> HostPool {
    HostPool::synthetic(64)
}

const TIMEOUT: Duration = Duration::from_secs(20);

/// Sections for ranks in `ranks`, in snapshot order.
fn sections_for<'a>(
    snap: &'a NetworkSnapshot,
    ranks: &'a [u32],
) -> impl Iterator<Item = &'a MetricsSection> {
    snap.nodes.iter().filter(|s| ranks.contains(&s.rank))
}

#[test]
fn counters_reconcile_and_introspection_covers_every_node() {
    // 2-level binary tree: front-end, 2 internal processes, 4 back-ends.
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let backend_ranks: Vec<u32> = net.endpoints().to_vec();
    assert_eq!(backend_ranks.len(), 4);

    // Null filter + DoNotWait: every back-end packet reaches the root
    // unmerged, so packet counts are conserved hop by hop.
    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();

    const WAVES: u64 = 5;
    stream
        .send(1, "%d", vec![Value::Int32(WAVES as i32)])
        .unwrap();

    // Back-ends answer the broadcast with WAVES packets each, then keep
    // pumping their connections so introspection requests get answered.
    let handles: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let (_, sid) = be.recv().unwrap();
                for w in 0..WAVES {
                    be.send(sid, 1, "%d", vec![Value::Int32(w as i32)]).unwrap();
                }
                loop {
                    match be.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(MrnetError::Shutdown) => return,
                        Err(e) => panic!("backend pump failed: {e}"),
                    }
                }
            })
        })
        .collect();

    // Drain all packets so every hop has fully forwarded before the
    // snapshot is taken.
    let expected = WAVES * backend_ranks.len() as u64;
    for _ in 0..expected {
        stream.recv_timeout(TIMEOUT).unwrap();
    }

    let snap = net.metrics_snapshot(Duration::from_secs(5)).unwrap();

    // One section per node: front-end + 2 internal + 4 back-ends.
    assert_eq!(snap.nodes.len(), 7, "ranks seen: {:?}", snap.ranks());
    let mut ranks = snap.ranks();
    ranks.dedup();
    assert_eq!(ranks.len(), 7, "sections must have distinct ranks");
    for be in &backend_ranks {
        assert!(snap.node(*be).is_some(), "missing back-end rank {be}");
    }

    // Identify roles. The front-end is the one node that never
    // receives from above; back-ends are known by rank.
    let interior: Vec<&MetricsSection> = snap
        .nodes
        .iter()
        .filter(|s| !backend_ranks.contains(&s.rank))
        .collect();
    assert_eq!(interior.len(), 3);
    let root = interior
        .iter()
        .find(|s| s.get("down.pkts.recv") == Some(0))
        .expect("exactly one node has no parent");
    let internals: Vec<&&MetricsSection> = interior
        .iter()
        .filter(|s| s.get("down.pkts.recv") != Some(0))
        .collect();
    assert_eq!(internals.len(), 2);

    // Reconciliation: with no filter merging or drops, the sum of the
    // leaves' upstream sends equals the root's upstream receives.
    let leaf_sent: u64 = sections_for(&snap, &backend_ranks)
        .map(|s| s.get("up.pkts.sent").unwrap_or(0))
        .sum();
    assert_eq!(leaf_sent, expected);
    assert_eq!(root.get("up.pkts.recv"), Some(expected));
    // ... and every delivered packet was counted out of the root.
    assert_eq!(root.get("up.pkts.sent"), Some(expected));
    assert!(root.get("up.bytes.local").unwrap_or(0) > 0);

    // Each internal node carried its half of the traffic, both ways.
    for mid in &internals {
        assert_eq!(mid.get("up.pkts.recv"), Some(expected / 2));
        assert_eq!(mid.get("up.pkts.sent"), Some(expected / 2));
        assert_eq!(mid.get("down.pkts.recv"), Some(1));
        assert_eq!(mid.get("down.pkts.sent"), Some(2));
    }
    // The root multicast one packet to its two children; each back-end
    // received exactly one.
    assert_eq!(root.get("down.pkts.sent"), Some(2));
    for be in sections_for(&snap, &backend_ranks) {
        assert_eq!(be.get("down.pkts.recv"), Some(1));
        assert_eq!(be.get("up.pkts.sent"), Some(WAVES));
    }

    // Byte counters moved at the edges.
    let leaf_bytes: u64 = sections_for(&snap, &backend_ranks)
        .map(|s| s.get("up.bytes.local").unwrap_or(0))
        .sum();
    assert!(leaf_bytes > 0);

    net.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn filter_timings_populated_and_introspection_repeats() {
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();

    let comm = net.broadcast_communicator();
    let dsum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, dsum, SyncMode::WaitForAll).unwrap();
    stream.send(2, "%d", vec![Value::Int32(0)]).unwrap();

    let handles: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let (_, sid) = be.recv().unwrap();
                be.send(sid, 2, "%d", vec![Value::Int32(3)]).unwrap();
                loop {
                    match be.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(MrnetError::Shutdown) => return,
                        Err(e) => panic!("backend pump failed: {e}"),
                    }
                }
            })
        })
        .collect();

    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(12));

    // Every interior node synchronized and executed the sum filter at
    // least once; the WaitForAll alignment also records wait time.
    let backend_ranks: Vec<u32> = net.endpoints().to_vec();
    let snap = net.metrics_snapshot(Duration::from_secs(5)).unwrap();
    assert_eq!(snap.nodes.len(), 7);
    for node in snap
        .nodes
        .iter()
        .filter(|s| !backend_ranks.contains(&s.rank))
    {
        assert!(
            node.get("filter.d_sum.waves").unwrap_or(0) >= 1,
            "rank {} never ran the filter",
            node.rank
        );
        assert!(
            node.get("filter.d_sum.exec_us.count").unwrap_or(0) >= 1,
            "rank {} has no exec samples",
            node.rank
        );
        assert!(
            node.get("filter.d_sum.wait_us.count").unwrap_or(0) >= 1,
            "rank {} has no sync-wait samples",
            node.rank
        );
    }

    // Introspection is repeatable: a second request gets fresh,
    // monotonically non-decreasing counters.
    let again = net.metrics_snapshot(Duration::from_secs(5)).unwrap();
    assert_eq!(again.nodes.len(), 7);
    assert!(again.total("up.pkts.sent") >= snap.total("up.pkts.sent"));

    net.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn stream_stats_track_queue_and_close() {
    let topo = generator::flat(2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();

    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();

    // Nothing has moved: stats are all-default, not "closed".
    let stats = stream.stats();
    assert_eq!(stats, mrnet::StreamStats::default());

    stream.send(3, "%d", vec![Value::Int32(0)]).unwrap();
    let handles: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let (_, sid) = be.recv().unwrap();
                be.send(sid, 3, "%d", vec![Value::Int32(1)]).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Both replies delivered but not consumed: they show as queued.
    let deadline = std::time::Instant::now() + TIMEOUT;
    while stream.stats().received < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "replies never arrived"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = stream.stats();
    assert_eq!(stats.sent, 1);
    assert_eq!(stats.received, 2);
    assert_eq!(stats.queued, 2);
    assert!(!stats.closed);

    stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(stream.stats().queued, 1);

    net.shutdown();
    let stats = stream.stats();
    assert!(stats.closed);
    // Undrained data remains visible (and receivable) after close.
    assert_eq!(stats.queued, 1);
    assert_eq!(stats.received, 2);
}
