//! Multi-process instantiation tests: real `mrnet_commnode` OS
//! processes connected over TCP, created recursively per §2.5, with
//! back-ends attaching at dynamically advertised rendezvous points.

use std::path::PathBuf;
use std::time::Duration;

use mrnet::{launch_processes, Backend, SyncMode, Value};
use mrnet_topology::{generator, HostPool, Topology};

fn commnode_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_mrnet_commnode"))
}

const TIMEOUT: Duration = Duration::from_secs(30);

fn run_tree(topology: Topology) {
    let n = topology.num_backends();
    let pending = launch_processes(topology, &commnode_exe()).unwrap();
    let points = pending.collect_attach_points(TIMEOUT).unwrap();
    assert_eq!(points.len(), n);

    // "Job-manager-created" back-ends attach over TCP.
    let backend_threads: Vec<_> = points
        .into_iter()
        .map(|ap| {
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).unwrap();
                let (pkt, sid) = be.recv().unwrap();
                let base = pkt.get(0).and_then(Value::as_i32).unwrap();
                be.send(
                    sid,
                    0,
                    "%d",
                    vec![Value::Int32(base + i32::try_from(ap.rank).unwrap())],
                )
                .unwrap();
                // Stay alive until shutdown so the tree drains cleanly.
                let _ = be.recv();
            })
        })
        .collect();

    let net = pending.wait(TIMEOUT).unwrap();
    assert_eq!(net.num_backends(), n);

    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(100)]).unwrap();
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    let expected: i32 = net
        .endpoints()
        .iter()
        .map(|&r| 100 + i32::try_from(r).unwrap())
        .sum();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(expected));

    net.shutdown();
    for t in backend_threads {
        t.join().unwrap();
    }
}

#[test]
fn two_level_tree_of_real_processes() {
    // FE (this process) -> 2 commnode processes -> 4 back-ends.
    run_tree(generator::balanced(2, 2, &mut HostPool::synthetic(16)).unwrap());
}

#[test]
fn three_level_tree_recursive_spawning() {
    // FE -> 2 commnodes -> 4 commnodes -> 8 back-ends: commnodes must
    // recursively launch their own children.
    run_tree(generator::balanced(2, 3, &mut HostPool::synthetic(32)).unwrap());
}

#[test]
fn flat_topology_attaches_directly_to_front_end() {
    // No internal processes at all: attach points are the front-end's
    // own listener.
    run_tree(generator::flat(3, &mut HostPool::synthetic(8)).unwrap());
}

#[test]
fn mixed_node_unbalanced_topology() {
    // Figure 4b's shape: the root has both commnode children and
    // directly attached back-ends. Advertisements for deeper back-ends
    // can only flow once the root's own back-ends have attached, so
    // this deployment must consume attach events incrementally.
    let topology = generator::fig4_unbalanced(&mut HostPool::synthetic(64)).unwrap();
    let n = topology.num_backends();
    let pending = launch_processes(topology, &commnode_exe()).unwrap();
    let events = pending.attach_events().expect("process mode");

    let backend_threads: Vec<_> = (0..n)
        .map(|_| {
            let (rank, endpoint) = events.recv_timeout(TIMEOUT).expect("advertisement");
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&endpoint, rank).unwrap();
                let (pkt, sid) = be.recv().unwrap();
                let base = pkt.get(0).and_then(Value::as_i32).unwrap();
                be.send(sid, 0, "%d", vec![Value::Int32(base + rank as i32)])
                    .unwrap();
                let _ = be.recv();
            })
        })
        .collect();

    let net = pending.wait(TIMEOUT).unwrap();
    assert_eq!(net.num_backends(), n);
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(7)]).unwrap();
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    let expected: i32 = net.endpoints().iter().map(|&r| 7 + r as i32).sum();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(expected));
    net.shutdown();
    for t in backend_threads {
        t.join().unwrap();
    }
}

#[test]
fn introspection_covers_every_process_in_the_tree() {
    // FE (this process) -> 2 commnode OS processes -> 4 back-ends. The
    // in-band metrics request must cross real TCP hops and come back
    // with one section per node: 1 front-end + 2 commnodes + 4
    // back-ends. Back-ends blocked in `recv` answer automatically.
    let topology = generator::balanced(2, 2, &mut HostPool::synthetic(16)).unwrap();
    let n = topology.num_backends();
    let pending = launch_processes(topology, &commnode_exe()).unwrap();
    let points = pending.collect_attach_points(TIMEOUT).unwrap();

    let backend_threads: Vec<_> = points
        .into_iter()
        .map(|ap| {
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).unwrap();
                let (pkt, sid) = be.recv().unwrap();
                let base = pkt.get(0).and_then(Value::as_i32).unwrap();
                be.send(sid, 0, "%d", vec![Value::Int32(base)]).unwrap();
                let _ = be.recv();
            })
        })
        .collect();

    let net = pending.wait(TIMEOUT).unwrap();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();
    stream.send(0, "%d", vec![Value::Int32(1)]).unwrap();
    stream.recv_timeout(TIMEOUT).unwrap();

    let snap = net.metrics_snapshot(Duration::from_secs(10)).unwrap();
    assert_eq!(
        snap.nodes.len(),
        n + 3,
        "one merged section per process, got ranks {:?}",
        snap.ranks()
    );
    let mut ranks = snap.ranks();
    ranks.dedup();
    assert_eq!(ranks.len(), n + 3, "sections must have distinct ranks");
    // Data flowed through every back-end and was counted there.
    for &be in net.endpoints() {
        let node = snap.node(be).expect("back-end section");
        assert_eq!(node.get("up.pkts.sent"), Some(1));
        assert_eq!(node.get("down.pkts.recv"), Some(1));
    }

    net.shutdown();
    for t in backend_threads {
        t.join().unwrap();
    }
}

#[test]
fn sigkilled_commnode_fails_whole_subtree_but_tree_survives() {
    // FE -> 2 commnode processes -> 4 back-ends. SIGKILL one commnode
    // mid-run: the front-end must observe a RankFailed event covering
    // that commnode's entire subtree, and the broadcast WaitForAll
    // stream must keep completing waves from the surviving half.
    use mrnet::TopologyEvent;

    let topology = generator::balanced(2, 2, &mut HostPool::synthetic(16)).unwrap();
    let n = topology.num_backends();
    let pending = launch_processes(topology, &commnode_exe()).unwrap();
    let pids = pending.commnode_pids().to_vec();
    assert_eq!(pids.len(), 2, "root spawns two commnode processes");
    let points = pending.collect_attach_points(TIMEOUT).unwrap();

    // Back-ends echo their rank on every wave until their link dies.
    let backend_threads: Vec<_> = points
        .into_iter()
        .map(|ap| {
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).unwrap();
                while let Ok((_pkt, sid)) = be.recv() {
                    let _ = be.send(
                        sid,
                        0,
                        "%d",
                        vec![Value::Int32(i32::try_from(ap.rank).unwrap())],
                    );
                }
            })
        })
        .collect();

    let net = pending.wait(TIMEOUT).unwrap();
    let comm = net.broadcast_communicator();
    let sum = net.registry().id_of("d_sum").unwrap();
    let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll).unwrap();

    // Wave 1: everyone alive, full aggregate.
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    let full: i32 = net.endpoints().iter().map(|&r| r as i32).sum();
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(full));

    // Hard-kill one commnode process.
    let status = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success());

    // The front-end learns the whole subtree is gone in one event.
    let TopologyEvent::RankFailed { rank, subtree } = net.next_event_timeout(TIMEOUT).unwrap();
    assert_eq!(subtree.len(), n / 2, "half the back-ends died: {subtree:?}");
    assert!(subtree.iter().all(|r| net.endpoints().contains(r)));
    assert!(
        !net.endpoints().contains(&rank),
        "the failed node itself is a commnode, not a back-end"
    );
    let failed = net.failed_ranks();
    assert!(failed.contains(&rank));
    assert!(subtree.iter().all(|r| failed.contains(r)));

    // Wave 2: the pruned stream completes from the survivors alone.
    stream.send(0, "%d", vec![Value::Int32(0)]).unwrap();
    let survivors: i32 = net
        .endpoints()
        .iter()
        .filter(|r| !subtree.contains(r))
        .map(|&r| r as i32)
        .sum();
    let result = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(result.get(0).unwrap().as_i32(), Some(survivors));

    net.shutdown();
    for t in backend_threads {
        t.join().unwrap();
    }
}

#[test]
fn missing_commnode_binary_fails_cleanly() {
    let topo = generator::balanced(2, 2, &mut HostPool::synthetic(16)).unwrap();
    let err = launch_processes(topo, std::path::Path::new("/nonexistent/commnode"))
        .err()
        .expect("spawn must fail");
    assert!(matches!(err, mrnet::MrnetError::Instantiation(_)));
}
