//! End-to-end tests of the upstream fast path: lazy payload relay
//! through internal nodes (zero decodes, byte-identical wire data) and
//! sharded filter execution (a slow stream's filter never stalls an
//! independent stream's waves).

use std::time::{Duration, Instant};

use mrnet::{
    launch_local, FilterRegistry, FnFilter, FormatString, MetricsSection, MrnetError,
    NetworkBuilder, NetworkSnapshot, Packet, PacketBuilder, SyncMode, Value,
};
use mrnet_packet::encode_packet;
use mrnet_topology::{generator, HostPool};

fn pool() -> HostPool {
    HostPool::synthetic(64)
}

const TIMEOUT: Duration = Duration::from_secs(20);

/// Sections for ranks in `ranks`, in snapshot order.
fn sections_for<'a>(
    snap: &'a NetworkSnapshot,
    ranks: &'a [u32],
) -> impl Iterator<Item = &'a MetricsSection> {
    snap.nodes.iter().filter(|s| ranks.contains(&s.rank))
}

/// A pure relay (null filter, no alignment) must never open a payload
/// at any interior node: `pkts.decoded` stays zero tree-wide, every
/// forwarded packet counts as `pkts.lazy_relayed`, and the bytes the
/// front-end receives are exactly the bytes each back-end encoded.
#[test]
fn passthrough_relay_never_decodes_and_preserves_bytes() {
    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let backend_ranks: Vec<u32> = net.endpoints().to_vec();
    assert_eq!(backend_ranks.len(), 4);

    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();

    const WAVES: u64 = 8;
    stream.send(1, "%d", vec![Value::Int32(0)]).unwrap();

    let handles: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let (_, sid) = be.recv().unwrap();
                for w in 0..WAVES {
                    be.send(sid, 1, "%d", vec![Value::Int32(w as i32)]).unwrap();
                }
                loop {
                    match be.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(MrnetError::Shutdown) => return,
                        Err(e) => panic!("backend pump failed: {e}"),
                    }
                }
            })
        })
        .collect();

    let expected = WAVES * backend_ranks.len() as u64;
    let mut delivered: Vec<Packet> = Vec::with_capacity(expected as usize);
    for _ in 0..expected {
        delivered.push(stream.recv_timeout(TIMEOUT).unwrap());
    }

    // Every delivered packet is still in raw wire form: two relay hops
    // (internal node, front-end) and local delivery never touched the
    // payload.
    for p in &delivered {
        assert!(p.is_lazy(), "payload was materialized somewhere en route");
    }

    // Byte identity: the wire bytes handed to the tool are exactly what
    // the back-end's encoder produced. Reconstruct each packet from its
    // (now decoded) fields the same way `Backend::send` builds it and
    // compare encodings. Reading the values materializes the payload,
    // but `raw_wire` survives materialization.
    for p in &delivered {
        let wire = p.raw_wire().expect("relayed packet kept its wire form").clone();
        let rebuilt = Packet::with_fmt_str(
            p.stream_id(),
            p.tag(),
            "%d",
            vec![p.get(0).unwrap().clone()],
        )
        .unwrap()
        .with_src(p.src());
        assert_eq!(
            wire,
            encode_packet(&rebuilt),
            "relayed bytes differ from the back-end's encoding"
        );
    }

    let snap = net.metrics_snapshot(Duration::from_secs(5)).unwrap();
    let interior: Vec<&MetricsSection> = snap
        .nodes
        .iter()
        .filter(|s| !backend_ranks.contains(&s.rank))
        .collect();
    assert_eq!(interior.len(), 3);

    for node in &interior {
        // The acceptance bar for the fast path: relaying a passthrough
        // stream performs zero payload decodes.
        assert_eq!(
            node.get("pkts.decoded"),
            Some(0),
            "rank {} decoded a passthrough payload",
            node.rank
        );
    }
    // Each internal node lazily relayed its half of the upstream
    // traffic plus the one broadcast packet it forwarded downstream;
    // the front-end relayed every upstream packet into local delivery
    // (its own broadcast was built locally, so it was never lazy).
    let root = interior
        .iter()
        .find(|s| s.get("down.pkts.recv") == Some(0))
        .expect("exactly one node has no parent");
    assert_eq!(root.get("pkts.lazy_relayed"), Some(expected));
    for mid in interior.iter().filter(|s| s.rank != root.rank) {
        assert_eq!(mid.get("pkts.lazy_relayed"), Some(expected / 2 + 1));
    }
    // Back-ends received the broadcast in wire form too.
    for be in sections_for(&snap, &backend_ranks) {
        assert_eq!(be.get("pkts.decoded"), Some(0));
    }

    net.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}

/// Two streams with transformation filters land on different shards
/// (sequential stream ids, default two shards), so a deliberately slow
/// filter on one stream must not delay the other stream's aggregation.
#[test]
fn slow_filter_on_one_stream_does_not_stall_another() {
    const SLOW_WAVE: Duration = Duration::from_millis(800);

    let reg = FilterRegistry::with_builtins();
    reg.register("slow_sum", || {
        let fmt = FormatString::parse("%d").unwrap();
        Box::new(FnFilter::new("slow_sum", Some(fmt), (), |_, inputs, _| {
            std::thread::sleep(SLOW_WAVE);
            let mut sum = 0i32;
            let mut proto = None;
            for p in inputs {
                sum += p.get(0).unwrap().as_i32().unwrap();
                proto.get_or_insert((p.stream_id(), p.tag()));
            }
            let (sid, tag) = proto.unwrap();
            Ok(vec![PacketBuilder::new(sid, tag).push(sum).build()])
        }))
    })
    .unwrap();

    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = NetworkBuilder::new(topo).registry(reg).launch().unwrap();
    let net = dep.network.clone();
    let backend_ranks: Vec<u32> = net.endpoints().to_vec();

    let comm = net.broadcast_communicator();
    let slow_id = net.registry().id_of("slow_sum").unwrap();
    let fast_id = net.registry().id_of("d_sum").unwrap();
    // Stream ids are assigned sequentially, so these two land on
    // different shards of the default two-shard executor.
    let slow = net.new_stream(&comm, slow_id, SyncMode::WaitForAll).unwrap();
    let fast = net.new_stream(&comm, fast_id, SyncMode::WaitForAll).unwrap();
    slow.send(1, "%d", vec![Value::Int32(0)]).unwrap();
    fast.send(2, "%d", vec![Value::Int32(0)]).unwrap();

    let handles: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let mut answered = 0;
                while answered < 2 {
                    let (pkt, sid) = be.recv().unwrap();
                    match pkt.tag() {
                        1 => be.send(sid, 1, "%d", vec![Value::Int32(10)]).unwrap(),
                        2 => be.send(sid, 2, "%d", vec![Value::Int32(7)]).unwrap(),
                        t => panic!("unexpected tag {t}"),
                    }
                    answered += 1;
                }
                loop {
                    match be.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(MrnetError::Shutdown) => return,
                        Err(e) => panic!("backend pump failed: {e}"),
                    }
                }
            })
        })
        .collect();

    // The fast stream's result must arrive while the slow stream's
    // filter is still asleep at its first hop. If filter execution were
    // serialized on the node loop (or on one shard), the fast wave
    // would queue behind at least one full SLOW_WAVE.
    let start = Instant::now();
    let fast_result = fast.recv_timeout(TIMEOUT).unwrap();
    let fast_latency = start.elapsed();
    assert_eq!(fast_result.get(0).unwrap().as_i32(), Some(7 * 4));
    assert!(
        fast_latency < SLOW_WAVE / 2,
        "fast stream stalled behind the slow filter: {fast_latency:?}"
    );

    // The slow stream still completes correctly (two sequential slow
    // hops: internal node, then front-end).
    let slow_result = slow.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(slow_result.get(0).unwrap().as_i32(), Some(10 * 4));

    // Both shards did work at every interior node: the two streams
    // really ran on different workers.
    let snap = net.metrics_snapshot(Duration::from_secs(5)).unwrap();
    for node in snap
        .nodes
        .iter()
        .filter(|s| !backend_ranks.contains(&s.rank))
    {
        assert!(
            node.get("filter.exec.0.waves").unwrap_or(0) >= 1,
            "rank {}: shard 0 idle",
            node.rank
        );
        assert!(
            node.get("filter.exec.1.waves").unwrap_or(0) >= 1,
            "rank {}: shard 1 idle",
            node.rank
        );
        assert!(node.get("filter.exec.1.busy_us").unwrap_or(0) > 0 || node.get("filter.exec.0.busy_us").unwrap_or(0) > 0);
    }

    net.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}
