//! Encode-once multicast: a downstream flush wave to k children with
//! identical batches must encode the data frame exactly once and hand
//! the other k-1 children the same `Bytes` (a refcount bump), visible
//! in the `frames.encoded` / `frames.shared` introspection metrics.

use std::time::Duration;

use mrnet::{launch_local, MrnetError, SyncMode, Value};
use mrnet_topology::{generator, HostPool};

const TIMEOUT: Duration = Duration::from_secs(20);

#[test]
fn multicast_wave_encodes_once_and_shares_with_siblings() {
    // Flat tree: the front-end fans out directly to 4 back-ends, all
    // of them on the broadcast stream's route.
    let topo = generator::flat(4, &mut HostPool::synthetic(8)).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();

    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();

    const WAVES: u64 = 5;
    for w in 0..WAVES {
        stream.send(1, "%d", vec![Value::Int32(w as i32)]).unwrap();
    }

    // Back-ends confirm they received every wave, then keep pumping so
    // the introspection request gets answered.
    let handles: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                let (_, sid) = be.recv().unwrap();
                for _ in 1..WAVES {
                    be.recv().unwrap();
                }
                be.send(sid, 2, "%d", vec![Value::Int32(1)]).unwrap();
                loop {
                    match be.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(MrnetError::Shutdown) => return,
                        Err(e) => panic!("backend pump failed: {e}"),
                    }
                }
            })
        })
        .collect();
    for _ in 0..4 {
        stream.recv_timeout(TIMEOUT).unwrap();
    }

    let snap = net.metrics_snapshot(Duration::from_secs(5)).unwrap();
    let backend_ranks = net.endpoints().to_vec();
    let root = snap
        .nodes
        .iter()
        .find(|s| !backend_ranks.contains(&s.rank))
        .expect("front-end section");

    // Each wave reached all 4 children: one encode, three shares.
    let encoded = root.get("frames.encoded").unwrap_or(0);
    let shared = root.get("frames.shared").unwrap_or(0);
    assert_eq!(encoded, WAVES, "one encode per multicast flush wave");
    assert_eq!(shared, 3 * encoded, "k-1 children share each frame");
    // Sanity: the children did receive every wave (4 sends per wave).
    assert_eq!(root.get("down.pkts.sent"), Some(4 * WAVES));

    net.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn divergent_routes_still_encode_separately() {
    // Two streams with disjoint single-back-end routes: their flushes
    // can never share a frame, so `frames.shared` stays zero while
    // `frames.encoded` counts each unicast flush.
    let topo = generator::flat(2, &mut HostPool::synthetic(4)).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();

    let ranks = net.endpoints().to_vec();
    let null = net.registry().id_of("null").unwrap();
    let solo_a = net.communicator([ranks[0]]).unwrap();
    let solo_b = net.communicator([ranks[1]]).unwrap();
    let sa = net.new_stream(&solo_a, null, SyncMode::DoNotWait).unwrap();
    let sb = net.new_stream(&solo_b, null, SyncMode::DoNotWait).unwrap();
    sa.send(1, "%d", vec![Value::Int32(1)]).unwrap();
    sb.send(1, "%d", vec![Value::Int32(2)]).unwrap();

    let handles: Vec<_> = dep
        .backends
        .into_iter()
        .map(|be| {
            std::thread::spawn(move || {
                be.recv().unwrap();
                loop {
                    match be.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(MrnetError::Shutdown) => return,
                        Err(e) => panic!("backend pump failed: {e}"),
                    }
                }
            })
        })
        .collect();

    let snap = net.metrics_snapshot(Duration::from_secs(5)).unwrap();
    let root = snap
        .nodes
        .iter()
        .find(|s| !ranks.contains(&s.rank))
        .expect("front-end section");
    assert_eq!(root.get("frames.encoded"), Some(2));
    assert_eq!(root.get("frames.shared"), Some(0));

    net.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}
