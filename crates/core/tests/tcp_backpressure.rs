//! The tentpole claim of the per-connection writer threads, proven
//! over real sockets: one back-end that stops reading exerts TCP
//! backpressure on its own connection only — the front-end's event
//! loop keeps multicasting and its siblings keep receiving, because
//! `send()` is an enqueue onto that child's bounded queue rather than
//! a blocking socket write.
//!
//! Lives in its own test binary so `MRNET_SEND_QUEUE` (read when each
//! connection is created) can be set process-wide without racing other
//! tests.

use std::sync::mpsc;
use std::time::Duration;

use mrnet::{launch_processes, Backend, SyncMode, Value};
use mrnet_topology::{generator, HostPool};

fn commnode_exe() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_BIN_EXE_mrnet_commnode"))
}

const TIMEOUT: Duration = Duration::from_secs(60);

/// Waves of 8 KiB multicast payloads. Sized so the traffic toward the
/// non-reading back-end (~24 MiB) overflows its connection's inbound
/// buffer (1024 frames) plus any plausible kernel socket buffering —
/// i.e. the slow child's socket genuinely stops accepting bytes — yet
/// stays below the front-end's (raised) send-queue depth, so only the
/// writer thread for that one child ever waits.
const WAVES: usize = 3_000;
const PAYLOAD: usize = 8 << 10;

#[test]
fn slow_backend_does_not_stall_siblings_over_tcp() {
    // Deep queue at the front-end: backpressure from the jammed child
    // lands in its queue, never in the node loop.
    std::env::set_var("MRNET_SEND_QUEUE", "100000");

    // Flat tree over TCP: 3 back-ends attach to the front-end.
    let topo = generator::flat(3, &mut HostPool::synthetic(4)).unwrap();
    let pending = launch_processes(topo, &commnode_exe()).unwrap();
    let points = pending.collect_attach_points(TIMEOUT).unwrap();
    assert_eq!(points.len(), 3);

    // Back-end 0 is the slow one: it attaches, then reads nothing
    // until the test releases it.
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let mut release_rx = Some(release_rx);
    let mut handles = Vec::new();
    for (i, ap) in points.into_iter().enumerate() {
        let gate = if i == 0 { release_rx.take() } else { None };
        handles.push(std::thread::spawn(move || {
            let be = Backend::attach_tcp(&ap.endpoint, ap.rank).unwrap();
            if let Some(gate) = gate {
                gate.recv().expect("release signal");
            }
            let (_, sid) = be.recv().unwrap();
            let mut seen = 1usize;
            while seen < WAVES {
                be.recv().unwrap();
                seen += 1;
            }
            be.send(sid, 7, "%d", vec![Value::Int32(seen as i32)])
                .unwrap();
            // Stay alive until shutdown so the tree drains cleanly.
            let _ = be.recv();
        }));
    }

    let net = pending.wait(TIMEOUT).unwrap();
    let comm = net.broadcast_communicator();
    let null = net.registry().id_of("null").unwrap();
    let stream = net.new_stream(&comm, null, SyncMode::DoNotWait).unwrap();

    let payload = vec![0xABu8; PAYLOAD];
    for w in 0..WAVES {
        stream
            .send(
                1,
                "%d %ac",
                vec![Value::Int32(w as i32), Value::CharArray(payload.clone())],
            )
            .unwrap();
    }

    // The two responsive siblings must receive all 3000 waves and
    // answer while back-end 0 still refuses to read. If the front-end
    // loop were blocked on the jammed socket, these replies could
    // never arrive in time.
    for _ in 0..2 {
        let reply = stream.recv_timeout(TIMEOUT).unwrap();
        assert_eq!(reply.get(0).unwrap().as_i32(), Some(WAVES as i32));
    }

    // Release the slow back-end: backpressure delayed its traffic, it
    // must not have lost any of it.
    release_tx.send(()).unwrap();
    let reply = stream.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(reply.get(0).unwrap().as_i32(), Some(WAVES as i32));

    net.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}
