//! End-to-end tests of the distributed-tracing subsystem: sampled
//! waves crossing a live 2-level tree, skew-corrected reassembly at
//! the front-end, and the metrics export surfaces.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use mrnet::obs::{trace, tracectx, TraceDir};
use mrnet::{launch_local, Backend, SyncMode, Value, WaveTimeline};
use mrnet_topology::{generator, HostPool};

/// The trace enable gate and sampling period are process-global;
/// serialize the tests that flip them.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

const TIMEOUT: Duration = Duration::from_secs(20);

fn pool() -> HostPool {
    HostPool::synthetic(64)
}

fn drive_backends<T: Send + 'static>(
    backends: Vec<Backend>,
    f: impl Fn(Backend) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let handles: Vec<_> = backends
        .into_iter()
        .map(|be| {
            let f = f.clone();
            std::thread::spawn(move || f(be))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Polls `cond` until it returns `Some` or the deadline passes.
fn poll_until<T>(timeout: Duration, mut cond: impl FnMut() -> Option<T>) -> Option<T> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = cond() {
            return Some(v);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Same-host threads share a clock, but the NTP-style estimates can
/// resolve to a few-µs pseudo-offset (scheduling asymmetry); allow
/// that much slack when asserting causality of corrected stamps.
const CAUSALITY_SLACK_US: u64 = 5_000;

fn assert_causal_path(tl: &WaveTimeline, endpoints: &[u32]) {
    assert_eq!(
        tl.hops.len(),
        3,
        "a 2-level tree path is 3 hops, got {:?}",
        tl.hops
    );
    // One hop record per node on the path, in travel order.
    let ranks: Vec<u32> = tl.hops.iter().map(|h| h.rank).collect();
    let (leaf, mid, root) = match tl.dir {
        TraceDir::Up => (ranks[0], ranks[1], ranks[2]),
        TraceDir::Down => (ranks[2], ranks[1], ranks[0]),
    };
    assert_eq!(root, 0, "wave must touch the front-end: {ranks:?}");
    assert!(
        endpoints.contains(&leaf),
        "wave must terminate at a back-end: {ranks:?}"
    );
    assert!(
        mid != 0 && !endpoints.contains(&mid),
        "middle hop must be an internal node: {ranks:?}"
    );
    for h in &tl.hops {
        assert!(h.recv_us <= h.send_us, "dwell must be non-negative: {h:?}");
    }
    for w in tl.hops.windows(2) {
        assert!(
            w[0].send_us <= w[1].recv_us + CAUSALITY_SLACK_US,
            "corrected stamps must be causal along the path: {:?}",
            tl.hops
        );
    }
}

#[test]
fn sampled_waves_assemble_into_causal_timelines_both_directions() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    tracectx::set_sample_every(1);

    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let endpoints: Vec<u32> = net.endpoints().to_vec();
    let n_backends = endpoints.len();
    assert_eq!(n_backends, 4);

    let comm = net.broadcast_communicator();
    let fmax = net.registry().id_of("f_max").unwrap();
    let stream = net.new_stream(&comm, fmax, SyncMode::WaitForAll).unwrap();
    stream.send(1, "%d", vec![Value::Int32(7)]).unwrap();

    drive_backends(dep.backends, |be| {
        let (pkt, sid) = be.recv().unwrap();
        assert_eq!(pkt.get(0).unwrap().as_i32(), Some(7));
        be.send(sid, 1, "%f", vec![Value::Float(be.rank() as f32)])
            .unwrap();
        // Keep pumping briefly so the clock-sync ping exchanges with
        // this leaf can complete before the handle drops.
        let deadline = Instant::now() + Duration::from_millis(400);
        while Instant::now() < deadline {
            match be.recv_timeout(Duration::from_millis(50)) {
                Ok(_) => {}
                Err(_) => break,
            }
        }
    });
    stream.recv_timeout(TIMEOUT).unwrap();

    let assembler = net.trace_assembler().clone();
    // Every back-end send was sampled (period 1), so four up-waves
    // assemble; the one multicast wave terminates at four back-ends,
    // each reporting its completed down envelope.
    let timelines = poll_until(TIMEOUT, || {
        let tls = assembler.timelines();
        let ups = tls.iter().filter(|t| t.dir == TraceDir::Up).count();
        let downs = tls.iter().filter(|t| t.dir == TraceDir::Down).count();
        (ups >= n_backends && downs >= n_backends).then_some(tls)
    })
    .expect("up and down waves assembled");

    for tl in &timelines {
        assert_causal_path(tl, &endpoints);
    }

    // Per-hop dwell and per-edge histograms populated for the whole
    // path: the root, both internal nodes, and every back-end dwelled
    // at least once.
    let hop_ranks: Vec<u32> = assembler.hop_histograms().iter().map(|(r, _)| *r).collect();
    assert!(hop_ranks.contains(&0), "root hop histogram: {hop_ranks:?}");
    for ep in &endpoints {
        assert!(
            hop_ranks.contains(ep),
            "backend {ep} hop histogram: {hop_ranks:?}"
        );
    }
    assert!(!assembler.edge_histograms().is_empty());
    for (_, h) in assembler.hop_histograms() {
        assert!(h.snapshot().count > 0);
    }

    // The clock handshake resolved the front-end's direct children
    // (internal nodes stay alive and pong all four exchanges).
    let synced = poll_until(TIMEOUT, || {
        let s = assembler.synced_ranks();
        (s.len() >= 2).then_some(s)
    })
    .expect("clock estimates for the internal nodes");
    assert!(synced.iter().all(|r| *r != 0));

    // Both export renderings carry the trace section.
    let export = net.export_metrics(TIMEOUT).unwrap();
    assert!(export.trace.get("trace.waves.assembled").unwrap_or(0) >= 2 * n_backends as u64);
    assert!(export.prometheus.contains("mrnet_trace_waves_assembled"));
    assert!(export.prometheus.contains("mrnet_trace_hop_0_us_bucket"));
    assert!(export.json.contains("trace.waves.assembled"));
    // Node sections saw traced frames on the wire.
    let traced_frames: u64 = export
        .snapshot
        .nodes
        .iter()
        .filter_map(|s| s.get("trace.frames"))
        .sum();
    assert!(traced_frames > 0);

    net.shutdown();
    trace::set_enabled(false);
}

#[test]
fn untraced_runs_pay_zero_trailer_bytes() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(false);

    let topo = generator::balanced(2, 2, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let fmax = net.registry().id_of("f_max").unwrap();
    let stream = net.new_stream(&comm, fmax, SyncMode::WaitForAll).unwrap();
    stream.send(1, "%d", vec![Value::Int32(1)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 1, "%f", vec![Value::Float(1.0)]).unwrap();
    });
    stream.recv_timeout(TIMEOUT).unwrap();

    // No node encoded or decoded a traced frame (and a traced encode
    // with no envelopes is byte-identical to a plain data frame — see
    // proto::tests::untraced_frames_carry_zero_trailer_bytes), so the
    // wire carried zero trailer bytes; nothing reached the assembler.
    let snap = net.metrics_snapshot(TIMEOUT).unwrap();
    let traced_frames: u64 = snap
        .nodes
        .iter()
        .filter_map(|s| s.get("trace.frames"))
        .sum();
    assert_eq!(traced_frames, 0);
    let traced_hops: u64 = snap.nodes.iter().filter_map(|s| s.get("trace.hops")).sum();
    assert_eq!(traced_hops, 0);
    let assembler = net.trace_assembler();
    assert_eq!(assembler.assembled.get(), 0);
    assert!(assembler.timelines().is_empty());
    net.shutdown();
}

#[test]
fn metrics_file_dumps_on_shutdown() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    tracectx::set_sample_every(1);

    let path = std::env::temp_dir().join(format!("mrnet-metrics-dump-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("MRNET_METRICS_FILE", &path);

    let topo = generator::balanced(2, 1, &mut pool()).unwrap();
    let dep = launch_local(topo).unwrap();
    let net = dep.network.clone();
    let comm = net.broadcast_communicator();
    let fmax = net.registry().id_of("f_max").unwrap();
    let stream = net.new_stream(&comm, fmax, SyncMode::WaitForAll).unwrap();
    stream.send(1, "%d", vec![Value::Int32(1)]).unwrap();
    drive_backends(dep.backends, |be| {
        let (_, sid) = be.recv().unwrap();
        be.send(sid, 1, "%f", vec![Value::Float(2.0)]).unwrap();
    });
    stream.recv_timeout(TIMEOUT).unwrap();
    net.shutdown();

    std::env::remove_var("MRNET_METRICS_FILE");
    trace::set_enabled(false);

    let dumped = std::fs::read_to_string(&path).expect("metrics file written on shutdown");
    let _ = std::fs::remove_file(&path);
    assert!(dumped.contains("trace.waves.assembled"));
    assert!(dumped.contains("up.pkts.sent"));
}
