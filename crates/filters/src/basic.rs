//! Built-in scalar transformation filters.
//!
//! §2.4: "MRNet provides several transformation filters that should be
//! of general use: basic scalar operations: min, max, sum and average
//! on integers or floats."
//!
//! [`ScalarFilter`] implements min/max/sum/average for every scalar
//! numeric type. As in the original MRNet, `Avg` computes the mean of
//! each wave, so composed through a tree it yields the mean of
//! sub-tree means — exact on trees whose leaves are evenly distributed
//! (the paper's fully-populated configurations) and approximate
//! otherwise. [`MeanPairFilter`] is the exact alternative: it carries
//! `(sum, count)` pairs so the front-end can form the true mean on any
//! topology.

use mrnet_packet::{FormatString, Packet, PacketBuilder, TypeCode, Value};

use crate::error::{FilterError, Result};
use crate::transform::{check_wave_format, FilterContext, Transform};

/// The scalar aggregation operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// Minimum of the inputs.
    Min,
    /// Maximum of the inputs.
    Max,
    /// Sum of the inputs.
    Sum,
    /// Mean of the inputs (see module docs for composition semantics).
    Avg,
}

impl ScalarOp {
    /// Canonical name fragment ("min", "max", "sum", "avg").
    pub fn name(self) -> &'static str {
        match self {
            ScalarOp::Min => "min",
            ScalarOp::Max => "max",
            ScalarOp::Sum => "sum",
            ScalarOp::Avg => "avg",
        }
    }
}

macro_rules! fold_numeric {
    ($inputs:expr, $op:expr, $getter:ident, $ty:ty, $variant:ident) => {{
        let mut acc: Option<$ty> = None;
        let mut count: usize = 0;
        for p in $inputs {
            let v = p
                .get(0)
                .and_then(Value::$getter)
                .ok_or_else(|| FilterError::Custom("scalar filter input missing value".into()))?;
            count += 1;
            acc = Some(match ($op, acc) {
                (_, None) => v,
                (ScalarOp::Min, Some(a)) => {
                    if v < a {
                        v
                    } else {
                        a
                    }
                }
                (ScalarOp::Max, Some(a)) => {
                    if v > a {
                        v
                    } else {
                        a
                    }
                }
                (ScalarOp::Sum, Some(a)) => a + v,
                (ScalarOp::Avg, Some(a)) => a + v,
            });
        }
        let mut result = acc.ok_or(FilterError::EmptyWave)?;
        if matches!($op, ScalarOp::Avg) && count > 0 {
            #[allow(clippy::assign_op_pattern)]
            {
                result = result / (count as $ty);
            }
        }
        Value::$variant(result)
    }};
}

/// Min/max/sum/average over single-scalar packets of one numeric type.
#[derive(Debug)]
pub struct ScalarFilter {
    op: ScalarOp,
    code: TypeCode,
    fmt: FormatString,
    name: String,
}

impl ScalarFilter {
    /// Creates a scalar filter over `code` (a numeric scalar type).
    pub fn new(op: ScalarOp, code: TypeCode) -> Result<ScalarFilter> {
        match code {
            TypeCode::Int32
            | TypeCode::UInt32
            | TypeCode::Int64
            | TypeCode::UInt64
            | TypeCode::Float
            | TypeCode::Double => {}
            other => {
                return Err(FilterError::Custom(format!(
                    "scalar filter needs a numeric scalar type, got {}",
                    other.spec()
                )))
            }
        }
        Ok(ScalarFilter {
            op,
            code,
            fmt: FormatString::from_codes(vec![code]),
            name: format!("{}_{}", code.spec().trim_start_matches('%'), op.name()),
        })
    }

    fn fold(&self, inputs: &[Packet]) -> Result<Value> {
        Ok(match self.code {
            TypeCode::Int32 => fold_numeric!(inputs, self.op, as_i32, i32, Int32),
            TypeCode::UInt32 => fold_numeric!(inputs, self.op, as_u32, u32, UInt32),
            TypeCode::Int64 => fold_numeric!(inputs, self.op, as_i64, i64, Int64),
            TypeCode::UInt64 => fold_numeric!(inputs, self.op, as_u64, u64, UInt64),
            TypeCode::Float => fold_numeric!(inputs, self.op, as_f32, f32, Float),
            TypeCode::Double => fold_numeric!(inputs, self.op, as_f64, f64, Double),
            _ => unreachable!("constructor rejects non-numeric codes"),
        })
    }
}

impl Transform for ScalarFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_format(&self) -> Option<&FormatString> {
        Some(&self.fmt)
    }

    fn transform(&mut self, inputs: Vec<Packet>, _ctx: &FilterContext) -> Result<Vec<Packet>> {
        if inputs.is_empty() {
            return Err(FilterError::EmptyWave);
        }
        check_wave_format(&self.fmt, &inputs)?;
        let value = self.fold(&inputs)?;
        let first = &inputs[0];
        Ok(vec![PacketBuilder::new(first.stream_id(), first.tag())
            .src(first.src())
            .push(value)
            .build()])
    }
}

/// Exact distributed mean: packets carry `(sum: %lf, count: %uld)`;
/// each filter invocation adds sums and counts. Back-ends inject
/// `(value, 1)`; the front-end divides.
#[derive(Debug, Default)]
pub struct MeanPairFilter {
    fmt: FormatString,
}

impl MeanPairFilter {
    /// Creates the filter.
    pub fn new() -> MeanPairFilter {
        MeanPairFilter {
            fmt: FormatString::parse("%lf %uld").expect("static format"),
        }
    }

    /// Builds a back-end contribution packet for `value`.
    pub fn contribution(stream_id: u32, tag: i32, value: f64) -> Packet {
        PacketBuilder::new(stream_id, tag)
            .push(value)
            .push(1u64)
            .build()
    }

    /// Extracts the final mean from an aggregated packet.
    pub fn finish(packet: &Packet) -> Result<f64> {
        let sum = packet
            .get(0)
            .and_then(Value::as_f64)
            .ok_or_else(|| FilterError::Custom("mean-pair packet missing sum".into()))?;
        let count = packet
            .get(1)
            .and_then(Value::as_u64)
            .ok_or_else(|| FilterError::Custom("mean-pair packet missing count".into()))?;
        if count == 0 {
            return Err(FilterError::Custom("mean of zero samples".into()));
        }
        Ok(sum / count as f64)
    }
}

impl Transform for MeanPairFilter {
    fn name(&self) -> &str {
        "mean_pair"
    }

    fn input_format(&self) -> Option<&FormatString> {
        Some(&self.fmt)
    }

    fn transform(&mut self, inputs: Vec<Packet>, _ctx: &FilterContext) -> Result<Vec<Packet>> {
        if inputs.is_empty() {
            return Err(FilterError::EmptyWave);
        }
        check_wave_format(&self.fmt, &inputs)?;
        let mut sum = 0.0f64;
        let mut count = 0u64;
        for p in &inputs {
            sum += p.get(0).and_then(Value::as_f64).unwrap_or(0.0);
            count += p.get(1).and_then(Value::as_u64).unwrap_or(0);
        }
        let first = &inputs[0];
        Ok(vec![PacketBuilder::new(first.stream_id(), first.tag())
            .src(first.src())
            .push(sum)
            .push(count)
            .build()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FilterContext {
        FilterContext::new(1, 0, 4)
    }

    fn fpkt(v: f32) -> Packet {
        PacketBuilder::new(1, 7).push(v).build()
    }

    fn ipkt(v: i32) -> Packet {
        PacketBuilder::new(1, 7).push(v).build()
    }

    #[test]
    fn float_max_like_figure_2() {
        // Figure 2 uses a "floating point maximum" filter.
        let mut f = ScalarFilter::new(ScalarOp::Max, TypeCode::Float).unwrap();
        let out = f
            .transform(vec![fpkt(1.5), fpkt(9.25), fpkt(-3.0)], &ctx())
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_f32(), Some(9.25));
        assert_eq!(out[0].stream_id(), 1);
        assert_eq!(out[0].tag(), 7);
        assert_eq!(f.name(), "f_max");
    }

    #[test]
    fn int_min_sum_avg() {
        let mk = |op| ScalarFilter::new(op, TypeCode::Int32).unwrap();
        let wave = || vec![ipkt(4), ipkt(-2), ipkt(10)];
        assert_eq!(
            mk(ScalarOp::Min).transform(wave(), &ctx()).unwrap()[0]
                .get(0)
                .unwrap()
                .as_i32(),
            Some(-2)
        );
        assert_eq!(
            mk(ScalarOp::Sum).transform(wave(), &ctx()).unwrap()[0]
                .get(0)
                .unwrap()
                .as_i32(),
            Some(12)
        );
        assert_eq!(
            mk(ScalarOp::Avg).transform(wave(), &ctx()).unwrap()[0]
                .get(0)
                .unwrap()
                .as_i32(),
            Some(4)
        );
    }

    #[test]
    fn double_and_unsigned_types() {
        let mut f = ScalarFilter::new(ScalarOp::Sum, TypeCode::Double).unwrap();
        let wave = vec![
            PacketBuilder::new(0, 0).push(1.5f64).build(),
            PacketBuilder::new(0, 0).push(2.5f64).build(),
        ];
        assert_eq!(
            f.transform(wave, &ctx()).unwrap()[0]
                .get(0)
                .unwrap()
                .as_f64(),
            Some(4.0)
        );
        let mut f = ScalarFilter::new(ScalarOp::Max, TypeCode::UInt64).unwrap();
        let wave = vec![
            PacketBuilder::new(0, 0).push(5u64).build(),
            PacketBuilder::new(0, 0).push(u64::MAX).build(),
        ];
        assert_eq!(
            f.transform(wave, &ctx()).unwrap()[0]
                .get(0)
                .unwrap()
                .as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn rejects_non_numeric_type() {
        assert!(ScalarFilter::new(ScalarOp::Sum, TypeCode::Str).is_err());
        assert!(ScalarFilter::new(ScalarOp::Sum, TypeCode::FloatArray).is_err());
    }

    #[test]
    fn rejects_wrong_format_wave() {
        let mut f = ScalarFilter::new(ScalarOp::Sum, TypeCode::Int32).unwrap();
        let err = f
            .transform(vec![fpkt(1.0)], &ctx())
            .expect_err("format mismatch");
        assert!(matches!(err, FilterError::FormatMismatch { .. }));
    }

    #[test]
    fn rejects_empty_wave() {
        let mut f = ScalarFilter::new(ScalarOp::Sum, TypeCode::Int32).unwrap();
        assert!(matches!(
            f.transform(vec![], &ctx()),
            Err(FilterError::EmptyWave)
        ));
    }

    #[test]
    fn composition_through_tree_levels_min() {
        // min is exactly composable: min(min(a,b), min(c,d)) = min(all).
        let mut level1a = ScalarFilter::new(ScalarOp::Min, TypeCode::Int32).unwrap();
        let mut level1b = ScalarFilter::new(ScalarOp::Min, TypeCode::Int32).unwrap();
        let mut root = ScalarFilter::new(ScalarOp::Min, TypeCode::Int32).unwrap();
        let a = level1a.transform(vec![ipkt(5), ipkt(3)], &ctx()).unwrap();
        let b = level1b.transform(vec![ipkt(-1), ipkt(8)], &ctx()).unwrap();
        let out = root
            .transform(vec![a[0].clone(), b[0].clone()], &ctx())
            .unwrap();
        assert_eq!(out[0].get(0).unwrap().as_i32(), Some(-1));
    }

    #[test]
    fn mean_pair_is_exact_on_unbalanced_trees() {
        // Subtree A has 3 samples, subtree B has 1; plain avg-of-avgs
        // would weight them equally. MeanPair does not.
        let mut fa = MeanPairFilter::new();
        let mut fb = MeanPairFilter::new();
        let mut root = MeanPairFilter::new();
        let c = |v: f64| MeanPairFilter::contribution(1, 0, v);
        let a = fa.transform(vec![c(1.0), c(2.0), c(3.0)], &ctx()).unwrap();
        let b = fb.transform(vec![c(10.0)], &ctx()).unwrap();
        let out = root
            .transform(vec![a[0].clone(), b[0].clone()], &ctx())
            .unwrap();
        let mean = MeanPairFilter::finish(&out[0]).unwrap();
        assert!((mean - 4.0).abs() < 1e-12); // (1+2+3+10)/4
    }

    #[test]
    fn mean_pair_finish_rejects_zero_count() {
        let p = PacketBuilder::new(0, 0).push(0.0f64).push(0u64).build();
        assert!(MeanPairFilter::finish(&p).is_err());
    }
}
