//! The concatenation filter.
//!
//! §2.4: "Concatenation: operation that inputs n scalars and outputs a
//! vector of length n of the same base type." Paradyn uses it to build
//! "larger resource report messages that are more efficiently
//! delivered by the underlying communication subsystem than many small
//! resource report messages" (§3.1) — so this implementation also
//! accepts array inputs and appends them, letting concatenations
//! compose through multiple tree levels.

use mrnet_packet::{FormatString, Packet, PacketBuilder, TypeCode, Value};

use crate::error::{FilterError, Result};
use crate::transform::{FilterContext, Transform};

macro_rules! concat_arm {
    ($inputs:expr, $scalar:ident, $array:ident, $ty:ty) => {{
        let mut out: Vec<$ty> = Vec::new();
        for p in $inputs {
            for v in p.values() {
                match v {
                    Value::$scalar(x) => out.push(x.clone()),
                    Value::$array(xs) => out.extend(xs.iter().cloned()),
                    other => {
                        return Err(FilterError::FormatMismatch {
                            expected: TypeCode::$scalar.spec().to_string(),
                            actual: other.type_code().spec().to_string(),
                        })
                    }
                }
            }
        }
        Value::$array(out)
    }};
}

/// Concatenates scalar or array inputs of one base type into a single
/// array packet.
#[derive(Debug)]
pub struct ConcatFilter {
    base: TypeCode,
    name: String,
}

impl ConcatFilter {
    /// Creates a concatenation filter over base type `base` (a scalar
    /// type; inputs may be scalars or arrays of it).
    pub fn new(base: TypeCode) -> Result<ConcatFilter> {
        if base.is_array() {
            return Err(FilterError::Custom(format!(
                "concat base type must be scalar, got {}",
                base.spec()
            )));
        }
        Ok(ConcatFilter {
            base,
            name: format!("concat_{}", base.spec().trim_start_matches('%')),
        })
    }

    fn concat(&self, inputs: &[Packet]) -> Result<Value> {
        Ok(match self.base {
            TypeCode::Char => concat_arm!(inputs, Char, CharArray, u8),
            TypeCode::Int32 => concat_arm!(inputs, Int32, Int32Array, i32),
            TypeCode::UInt32 => concat_arm!(inputs, UInt32, UInt32Array, u32),
            TypeCode::Int64 => concat_arm!(inputs, Int64, Int64Array, i64),
            TypeCode::UInt64 => concat_arm!(inputs, UInt64, UInt64Array, u64),
            TypeCode::Float => concat_arm!(inputs, Float, FloatArray, f32),
            TypeCode::Double => concat_arm!(inputs, Double, DoubleArray, f64),
            TypeCode::Str => concat_arm!(inputs, Str, StrArray, String),
            _ => unreachable!("constructor rejects array base types"),
        })
    }
}

impl Transform for ConcatFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_format(&self) -> Option<&FormatString> {
        // Inputs may be scalar or array packets of the base type, so
        // the filter validates per-value rather than by one format.
        None
    }

    fn transform(&mut self, inputs: Vec<Packet>, _ctx: &FilterContext) -> Result<Vec<Packet>> {
        if inputs.is_empty() {
            return Err(FilterError::EmptyWave);
        }
        let value = self.concat(&inputs)?;
        let first = &inputs[0];
        Ok(vec![PacketBuilder::new(first.stream_id(), first.tag())
            .src(first.src())
            .push(value)
            .build()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FilterContext {
        FilterContext::new(1, 0, 4)
    }

    #[test]
    fn n_scalars_become_vector_of_length_n() {
        let mut f = ConcatFilter::new(TypeCode::Float).unwrap();
        let wave: Vec<Packet> = [1.0f32, 2.0, 3.0]
            .iter()
            .map(|&v| PacketBuilder::new(1, 0).push(v).build())
            .collect();
        let out = f.transform(wave, &ctx()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get(0).unwrap().as_f32_slice(),
            Some(&[1.0f32, 2.0, 3.0][..])
        );
        assert_eq!(out[0].fmt().to_string(), "%af");
    }

    #[test]
    fn arrays_append_for_multi_level_composition() {
        let mut leaf_a = ConcatFilter::new(TypeCode::Str).unwrap();
        let mut leaf_b = ConcatFilter::new(TypeCode::Str).unwrap();
        let mut root = ConcatFilter::new(TypeCode::Str).unwrap();
        let s = |v: &str| PacketBuilder::new(1, 0).push(v).build();
        let a = leaf_a.transform(vec![s("h0"), s("h1")], &ctx()).unwrap();
        let b = leaf_b.transform(vec![s("h2")], &ctx()).unwrap();
        let out = root
            .transform(vec![a[0].clone(), b[0].clone()], &ctx())
            .unwrap();
        let strs = out[0].get(0).unwrap().as_str_array().unwrap();
        assert_eq!(strs, &["h0", "h1", "h2"]);
    }

    #[test]
    fn multi_value_packets_flatten() {
        let mut f = ConcatFilter::new(TypeCode::Int32).unwrap();
        let p = PacketBuilder::new(1, 0).push(1i32).push(2i32).build();
        let q = PacketBuilder::new(1, 0).push(vec![3i32, 4]).build();
        let out = f.transform(vec![p, q], &ctx()).unwrap();
        assert_eq!(
            out[0].get(0).unwrap().as_i32_slice(),
            Some(&[1, 2, 3, 4][..])
        );
    }

    #[test]
    fn mixed_base_types_rejected() {
        let mut f = ConcatFilter::new(TypeCode::Int32).unwrap();
        let bad = PacketBuilder::new(1, 0).push(1.0f32).build();
        assert!(matches!(
            f.transform(vec![bad], &ctx()),
            Err(FilterError::FormatMismatch { .. })
        ));
    }

    #[test]
    fn array_base_type_rejected_at_construction() {
        assert!(ConcatFilter::new(TypeCode::Int32Array).is_err());
    }

    #[test]
    fn empty_wave_rejected() {
        let mut f = ConcatFilter::new(TypeCode::Int32).unwrap();
        assert!(matches!(
            f.transform(vec![], &ctx()),
            Err(FilterError::EmptyWave)
        ));
    }

    #[test]
    fn tag_and_stream_preserved() {
        let mut f = ConcatFilter::new(TypeCode::Char).unwrap();
        let p = PacketBuilder::new(42, 99).push(Value::Char(7)).build();
        let out = f.transform(vec![p], &ctx()).unwrap();
        assert_eq!(out[0].stream_id(), 42);
        assert_eq!(out[0].tag(), 99);
        assert_eq!(out[0].get(0).unwrap().as_bytes(), Some(&[7u8][..]));
    }
}
