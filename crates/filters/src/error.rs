//! Error types for filter construction and execution.

use std::fmt;

use mrnet_packet::PacketError;

/// Errors produced by filters and the filter registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// A packet's format does not match the format the filter requires
    /// (§2.4: "the data format string of the stream's packets and the
    /// filter must be the same").
    FormatMismatch {
        /// The format the filter expects.
        expected: String,
        /// The format actually received.
        actual: String,
    },
    /// The filter received an empty input wave.
    EmptyWave,
    /// No filter is registered under the given id.
    UnknownFilter(u32),
    /// No filter is registered under the given name.
    UnknownName(String),
    /// A filter name is already taken by a different registration.
    DuplicateName(String),
    /// A packet-level error occurred inside a filter.
    Packet(PacketError),
    /// A filter-specific failure.
    Custom(String),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::FormatMismatch { expected, actual } => write!(
                f,
                "filter expects packets of format `{expected}` but received `{actual}`"
            ),
            FilterError::EmptyWave => write!(f, "filter received an empty input wave"),
            FilterError::UnknownFilter(id) => write!(f, "no filter registered with id {id}"),
            FilterError::UnknownName(name) => {
                write!(f, "no filter registered with name `{name}`")
            }
            FilterError::DuplicateName(name) => {
                write!(f, "filter name `{name}` is already registered")
            }
            FilterError::Packet(e) => write!(f, "packet error in filter: {e}"),
            FilterError::Custom(msg) => write!(f, "filter failure: {msg}"),
        }
    }
}

impl std::error::Error for FilterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FilterError::Packet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PacketError> for FilterError {
    fn from(e: PacketError) -> Self {
        FilterError::Packet(e)
    }
}

/// Convenient result alias for filter operations.
pub type Result<T> = std::result::Result<T, FilterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = FilterError::FormatMismatch {
            expected: "%f".into(),
            actual: "%d".into(),
        };
        assert!(e.to_string().contains("%f"));
        assert!(FilterError::UnknownFilter(9).to_string().contains('9'));
        assert!(FilterError::UnknownName("hist".into())
            .to_string()
            .contains("hist"));
    }

    #[test]
    fn packet_error_wraps() {
        let e: FilterError = PacketError::InvalidUtf8.into();
        assert!(matches!(e, FilterError::Packet(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
