//! # mrnet-filters
//!
//! MRNet's data aggregation machinery (paper §2.4): synchronization
//! filters that align asynchronously arriving packets into waves,
//! transformation filters that aggregate wave contents, the built-in
//! filter set (min/max/sum/average, concatenation), and the named
//! filter registry that replaces `load_filterFunc`'s `dlopen`
//! mechanism.

#![forbid(unsafe_code)]

mod basic;
mod concat;
mod error;
mod registry;
mod sync;
mod transform;

pub use basic::{MeanPairFilter, ScalarFilter, ScalarOp};
pub use concat::ConcatFilter;
pub use error::{FilterError, Result};
pub use registry::{FilterId, FilterRegistry, TimedTransform, FILTER_NULL};
pub use sync::{SyncFilter, SyncMode};
pub use transform::{
    check_wave_format, BoxedTransform, FilterContext, FnFilter, NullFilter, Transform,
};
