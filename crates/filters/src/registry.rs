//! The filter registry: MRNet's `load_filterFunc` without `dlopen`.
//!
//! §2.4: "Filter functions implemented by the tool developer must be
//! named and made known to MRNet. Both tasks are accomplished using
//! the `load_filterFunc` function … \[which\] takes the name of a
//! filter function … and the name of the shared object file that
//! contains the filter function, and returns an id that identifies the
//! new filter."
//!
//! Rust offers no stable in-process dynamic loading of Rust code, so
//! the registry replaces the shared-object mechanism (see DESIGN.md
//! §3): tools register a *factory* under a name at runtime and get
//! back a [`FilterId`]. Stream-creation control messages carry the id;
//! every process instantiates its own private filter instance from its
//! registry, giving per-stream, per-process state exactly as the
//! paper's static-storage filters have. The only requirement — same as
//! the original's "shared object reachable on every host" — is that
//! all processes register the same names in the same order.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use mrnet_obs::FilterStats;
use mrnet_packet::{FormatString, Packet, TypeCode};

use crate::basic::{MeanPairFilter, ScalarFilter, ScalarOp};
use crate::concat::ConcatFilter;
use crate::error::{FilterError, Result};
use crate::transform::{BoxedTransform, FilterContext, NullFilter, Transform};

/// Identifies a registered transformation filter across the tool
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(pub u32);

/// The null (pass-through) filter, always id 0.
pub const FILTER_NULL: FilterId = FilterId(0);

type Factory = Arc<dyn Fn() -> BoxedTransform + Send + Sync>;

struct Inner {
    factories: Vec<(String, Factory)>,
    by_name: HashMap<String, u32>,
}

/// A thread-safe registry of filter factories. Clones share state.
#[derive(Clone)]
pub struct FilterRegistry {
    inner: Arc<RwLock<Inner>>,
}

impl Default for FilterRegistry {
    fn default() -> Self {
        FilterRegistry::with_builtins()
    }
}

impl FilterRegistry {
    /// An empty registry (no filters, not even null). Most callers
    /// want [`FilterRegistry::with_builtins`].
    pub fn empty() -> FilterRegistry {
        FilterRegistry {
            inner: Arc::new(RwLock::new(Inner {
                factories: Vec::new(),
                by_name: HashMap::new(),
            })),
        }
    }

    /// A registry pre-loaded with the paper's built-in filters: the
    /// null filter (id 0), min/max/sum/avg over every numeric scalar
    /// type, concatenation over every scalar base type, and the exact
    /// mean-pair filter.
    pub fn with_builtins() -> FilterRegistry {
        let reg = FilterRegistry::empty();
        reg.register("null", || Box::new(NullFilter))
            .expect("fresh registry");
        let numeric = [
            TypeCode::Int32,
            TypeCode::UInt32,
            TypeCode::Int64,
            TypeCode::UInt64,
            TypeCode::Float,
            TypeCode::Double,
        ];
        for code in numeric {
            for op in [ScalarOp::Min, ScalarOp::Max, ScalarOp::Sum, ScalarOp::Avg] {
                let name = format!("{}_{}", code.spec().trim_start_matches('%'), op.name());
                reg.register(&name, move || {
                    Box::new(ScalarFilter::new(op, code).expect("numeric code"))
                })
                .expect("unique builtin name");
            }
        }
        let scalar_bases = [
            TypeCode::Char,
            TypeCode::Int32,
            TypeCode::UInt32,
            TypeCode::Int64,
            TypeCode::UInt64,
            TypeCode::Float,
            TypeCode::Double,
            TypeCode::Str,
        ];
        for base in scalar_bases {
            let name = format!("concat_{}", base.spec().trim_start_matches('%'));
            reg.register(&name, move || {
                Box::new(ConcatFilter::new(base).expect("scalar base"))
            })
            .expect("unique builtin name");
        }
        reg.register("mean_pair", || Box::new(MeanPairFilter::new()))
            .expect("unique builtin name");
        reg
    }

    /// Registers a filter factory under `name`, returning its id — the
    /// `load_filterFunc` analogue. Fails if the name is taken.
    pub fn register(
        &self,
        name: &str,
        factory: impl Fn() -> BoxedTransform + Send + Sync + 'static,
    ) -> Result<FilterId> {
        let mut inner = self.inner.write();
        if inner.by_name.contains_key(name) {
            return Err(FilterError::DuplicateName(name.to_owned()));
        }
        let id = inner.factories.len() as u32;
        inner.factories.push((name.to_owned(), Arc::new(factory)));
        inner.by_name.insert(name.to_owned(), id);
        Ok(FilterId(id))
    }

    /// Looks up a filter id by name.
    pub fn id_of(&self, name: &str) -> Result<FilterId> {
        self.inner
            .read()
            .by_name
            .get(name)
            .map(|&id| FilterId(id))
            .ok_or_else(|| FilterError::UnknownName(name.to_owned()))
    }

    /// The registered name of a filter id.
    pub fn name_of(&self, id: FilterId) -> Result<String> {
        self.inner
            .read()
            .factories
            .get(id.0 as usize)
            .map(|(name, _)| name.clone())
            .ok_or(FilterError::UnknownFilter(id.0))
    }

    /// Creates a fresh filter instance (private state) for a stream.
    pub fn instantiate(&self, id: FilterId) -> Result<BoxedTransform> {
        let factory = self
            .inner
            .read()
            .factories
            .get(id.0 as usize)
            .map(|(_, f)| f.clone())
            .ok_or(FilterError::UnknownFilter(id.0))?;
        Ok(factory())
    }

    /// Like [`FilterRegistry::instantiate`], but wraps the instance in
    /// a [`TimedTransform`] that records wave counts and per-wave
    /// execution time into `stats`.
    pub fn instantiate_timed(
        &self,
        id: FilterId,
        stats: Arc<FilterStats>,
    ) -> Result<BoxedTransform> {
        Ok(Box::new(TimedTransform::new(self.instantiate(id)?, stats)))
    }

    /// Number of registered filters.
    pub fn len(&self) -> usize {
        self.inner.read().factories.len()
    }

    /// True when no filters are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience: the id of a built-in scalar filter.
    pub fn scalar(&self, op: ScalarOp, code: TypeCode) -> Result<FilterId> {
        self.id_of(&format!(
            "{}_{}",
            code.spec().trim_start_matches('%'),
            op.name()
        ))
    }

    /// Convenience: the id of a built-in concatenation filter.
    pub fn concat(&self, base: TypeCode) -> Result<FilterId> {
        self.id_of(&format!("concat_{}", base.spec().trim_start_matches('%')))
    }
}

/// A [`Transform`] decorator that times every wave.
///
/// Wraps a filter instance so each `transform` call increments the
/// wave counter and records wall-clock execution time into the shared
/// [`FilterStats`] — how the core crate populates the
/// `filter.<name>.exec_us` histograms reported by a node's metrics
/// snapshot. Name and input format delegate to the inner filter.
pub struct TimedTransform {
    inner: BoxedTransform,
    stats: Arc<FilterStats>,
}

impl TimedTransform {
    /// Wraps `inner`, recording into `stats`.
    pub fn new(inner: BoxedTransform, stats: Arc<FilterStats>) -> TimedTransform {
        TimedTransform { inner, stats }
    }
}

impl Transform for TimedTransform {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input_format(&self) -> Option<&FormatString> {
        self.inner.input_format()
    }

    fn transform(&mut self, inputs: Vec<Packet>, ctx: &FilterContext) -> Result<Vec<Packet>> {
        let start = Instant::now();
        let out = self.inner.transform(inputs, ctx);
        self.stats
            .exec_us
            .record_us(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        self.stats.waves.inc();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_packet::PacketBuilder;

    #[test]
    fn null_is_id_zero() {
        let reg = FilterRegistry::with_builtins();
        assert_eq!(reg.id_of("null").unwrap(), FILTER_NULL);
        assert_eq!(reg.name_of(FILTER_NULL).unwrap(), "null");
    }

    #[test]
    fn builtins_present() {
        let reg = FilterRegistry::with_builtins();
        // 1 null + 6 types × 4 ops + 8 concat + 1 mean_pair = 34.
        assert_eq!(reg.len(), 34);
        assert!(reg.id_of("f_max").is_ok());
        assert!(reg.id_of("lf_sum").is_ok());
        assert!(reg.id_of("concat_s").is_ok());
        assert!(reg.id_of("mean_pair").is_ok());
    }

    #[test]
    fn scalar_and_concat_helpers() {
        let reg = FilterRegistry::with_builtins();
        let id = reg.scalar(ScalarOp::Max, TypeCode::Float).unwrap();
        assert_eq!(reg.name_of(id).unwrap(), "f_max");
        let id = reg.concat(TypeCode::Str).unwrap();
        assert_eq!(reg.name_of(id).unwrap(), "concat_s");
    }

    #[test]
    fn instantiate_gives_private_state() {
        let reg = FilterRegistry::with_builtins();
        let id = reg.scalar(ScalarOp::Sum, TypeCode::Int32).unwrap();
        let mut a = reg.instantiate(id).unwrap();
        let mut b = reg.instantiate(id).unwrap();
        let ctx = FilterContext::new(0, 0, 2);
        let wave = vec![PacketBuilder::new(0, 0).push(5i32).build()];
        let out_a = a.transform(wave.clone(), &ctx).unwrap();
        let out_b = b.transform(wave, &ctx).unwrap();
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn custom_registration_like_load_filter_func() {
        let reg = FilterRegistry::with_builtins();
        let id = reg
            .register("packet_count", || {
                Box::new(crate::transform::FnFilter::new(
                    "packet_count",
                    None,
                    0u32,
                    |n, inputs, _| {
                        *n += inputs.len() as u32;
                        let count = *n;
                        Ok(vec![PacketBuilder::new(0, 0).push(count).build()])
                    },
                ))
            })
            .unwrap();
        assert!(id.0 >= 34);
        assert_eq!(reg.id_of("packet_count").unwrap(), id);
        let mut f = reg.instantiate(id).unwrap();
        let ctx = FilterContext::new(0, 0, 1);
        let wave = vec![PacketBuilder::new(0, 0).push(1i32).build()];
        let out = f.transform(wave, &ctx).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_u32(), Some(1));
    }

    #[test]
    fn timed_transform_records_waves_and_exec_time() {
        let reg = FilterRegistry::with_builtins();
        let id = reg.scalar(ScalarOp::Sum, TypeCode::UInt32).unwrap();
        let stats = Arc::new(FilterStats::default());
        let mut f = reg.instantiate_timed(id, stats.clone()).unwrap();
        assert_eq!(f.name(), "ud_sum");
        let ctx = FilterContext::new(0, 0, 2);
        for _ in 0..3 {
            let wave = vec![
                PacketBuilder::new(0, 0).push(1u32).build(),
                PacketBuilder::new(0, 0).push(2u32).build(),
            ];
            f.transform(wave, &ctx).unwrap();
        }
        assert_eq!(stats.waves.get(), 3);
        assert_eq!(stats.exec_us.count(), 3);
        // Failed waves are still counted (time was spent).
        let bad = vec![PacketBuilder::new(0, 0).push("wrong type").build()];
        assert!(f.transform(bad, &ctx).is_err());
        assert_eq!(stats.waves.get(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let reg = FilterRegistry::with_builtins();
        let err = reg
            .register("null", || Box::new(NullFilter))
            .expect_err("duplicate");
        assert_eq!(err, FilterError::DuplicateName("null".into()));
    }

    #[test]
    fn unknown_lookups_fail() {
        let reg = FilterRegistry::with_builtins();
        assert!(matches!(
            reg.id_of("nonexistent"),
            Err(FilterError::UnknownName(_))
        ));
        assert!(matches!(
            reg.name_of(FilterId(9999)),
            Err(FilterError::UnknownFilter(9999))
        ));
        assert!(reg.instantiate(FilterId(9999)).is_err());
    }

    #[test]
    fn clones_share_registrations() {
        let reg = FilterRegistry::with_builtins();
        let clone = reg.clone();
        let id = reg.register("shared", || Box::new(NullFilter)).unwrap();
        assert_eq!(clone.id_of("shared").unwrap(), id);
    }

    #[test]
    fn empty_registry() {
        let reg = FilterRegistry::empty();
        assert!(reg.is_empty());
        assert!(reg.id_of("null").is_err());
    }

    #[test]
    fn ids_are_registration_order() {
        let reg = FilterRegistry::empty();
        let a = reg.register("a", || Box::new(NullFilter)).unwrap();
        let b = reg.register("b", || Box::new(NullFilter)).unwrap();
        assert_eq!(a, FilterId(0));
        assert_eq!(b, FilterId(1));
    }
}
