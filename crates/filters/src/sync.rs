//! Synchronization filters.
//!
//! §2.4: "Synchronization filters provide a mechanism to deal with the
//! asynchronous arrival of packets from children nodes; the
//! synchronization filter collects packets and typically aligns them
//! into waves, passing an entire wave onward at the same time." They
//! are type-independent and support three modes:
//!
//! * **Wait For All** — wait for a packet from every child node;
//! * **Time Out** — wait a specified time or until a packet has
//!   arrived from every child, whichever occurs first;
//! * **Do Not Wait** — output packets immediately.

use std::collections::VecDeque;

use mrnet_packet::Packet;

/// Which synchronization criterion a stream uses. Serializable into
/// the stream-creation control message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncMode {
    /// Wait for a packet from every child node.
    WaitForAll,
    /// Wait `timeout` seconds from the first packet of a wave, or
    /// until every child has contributed, whichever occurs first.
    TimeOut(f64),
    /// Output packets immediately.
    DoNotWait,
}

impl SyncMode {
    /// Encodes as (tag, timeout) for the wire.
    pub fn encode(&self) -> (u8, f64) {
        match self {
            SyncMode::WaitForAll => (0, 0.0),
            SyncMode::TimeOut(t) => (1, *t),
            SyncMode::DoNotWait => (2, 0.0),
        }
    }

    /// Decodes from the wire pair; `None` for unknown tags.
    pub fn decode(tag: u8, timeout: f64) -> Option<SyncMode> {
        match tag {
            0 => Some(SyncMode::WaitForAll),
            1 => Some(SyncMode::TimeOut(timeout)),
            2 => Some(SyncMode::DoNotWait),
            _ => None,
        }
    }
}

/// A synchronization filter instance for one stream on one process.
///
/// Time is supplied by the caller as seconds on an arbitrary
/// monotonic axis (wall clock in the threaded runtime, virtual time in
/// the simulator).
#[derive(Debug)]
pub struct SyncFilter {
    mode: SyncMode,
    num_children: usize,
    /// Per-child FIFO of packets not yet released in a wave.
    queues: Vec<VecDeque<Packet>>,
    /// Per-child liveness; a dead slot no longer gates wave
    /// completion, though packets it buffered before dying still join
    /// outgoing waves until drained.
    alive: Vec<bool>,
    /// When the oldest pending wave started (first packet arrival),
    /// for TimeOut mode.
    wave_started_at: Option<f64>,
}

impl SyncFilter {
    /// Creates a filter for a node with `num_children` inbound
    /// connections.
    pub fn new(mode: SyncMode, num_children: usize) -> SyncFilter {
        SyncFilter {
            mode,
            num_children,
            queues: (0..num_children).map(|_| VecDeque::new()).collect(),
            alive: vec![true; num_children],
            wave_started_at: None,
        }
    }

    /// The filter's mode.
    pub fn mode(&self) -> SyncMode {
        self.mode
    }

    /// Accepts a packet from child `from` at time `now`, then returns
    /// any wave(s) that became ready.
    pub fn push(&mut self, from: usize, packet: Packet, now: f64) -> Vec<Vec<Packet>> {
        assert!(from < self.num_children, "child index out of range");
        if matches!(self.mode, SyncMode::DoNotWait) {
            return vec![vec![packet]];
        }
        self.queues[from].push_back(packet);
        if self.wave_started_at.is_none() {
            self.wave_started_at = Some(now);
        }
        self.collect(now)
    }

    /// Marks child slot `slot` dead: it stops gating wave completion,
    /// and any wave(s) its absence unblocks are returned. Packets the
    /// slot buffered before dying still drain into outgoing waves.
    /// Idempotent — deactivating a dead slot returns no waves.
    pub fn deactivate_slot(&mut self, slot: usize, now: f64) -> Vec<Vec<Packet>> {
        assert!(slot < self.num_children, "child index out of range");
        if !self.alive[slot] {
            return Vec::new();
        }
        self.alive[slot] = false;
        self.collect(now)
    }

    /// How many child slots are still alive.
    pub fn alive_children(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Re-evaluates readiness at time `now` without new input (the
    /// event loop calls this when a TimeOut deadline fires or a slot
    /// is deactivated).
    pub fn collect(&mut self, now: f64) -> Vec<Vec<Packet>> {
        let mut waves = Vec::new();
        loop {
            // A wave is complete when every *living* child has
            // contributed; once no children remain alive, whatever is
            // buffered flushes out as final waves.
            let any_alive = self.alive.iter().any(|&a| a);
            let complete = if any_alive {
                self.alive
                    .iter()
                    .zip(&self.queues)
                    .all(|(&a, q)| !a || !q.is_empty())
            } else {
                self.has_pending()
            };
            let timed_out = match (self.mode, self.wave_started_at) {
                (SyncMode::TimeOut(t), Some(started)) => now - started >= t,
                _ => false,
            };
            if complete {
                // Living slots are checked non-empty; dead slots chip
                // in a buffered packet while they still have one.
                let wave: Vec<Packet> = self
                    .queues
                    .iter_mut()
                    .filter_map(VecDeque::pop_front)
                    .collect();
                waves.push(wave);
                // Start timing the next wave from now if anything is
                // still pending.
                self.wave_started_at = self.has_pending().then_some(now);
            } else if timed_out {
                // Partial wave: everything queued goes out.
                let wave: Vec<Packet> = self
                    .queues
                    .iter_mut()
                    .flat_map(|q| q.drain(..).collect::<Vec<_>>())
                    .collect();
                self.wave_started_at = None;
                if wave.is_empty() {
                    break;
                }
                waves.push(wave);
            } else {
                break;
            }
        }
        waves
    }

    /// If in TimeOut mode with a pending wave, the absolute time at
    /// which [`SyncFilter::collect`] should next be called.
    pub fn deadline(&self) -> Option<f64> {
        match (self.mode, self.wave_started_at) {
            (SyncMode::TimeOut(t), Some(started)) => Some(started + t),
            _ => None,
        }
    }

    /// True when any packet is queued.
    pub fn has_pending(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }

    /// Total queued packets.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_packet::PacketBuilder;

    fn pkt(v: i32) -> Packet {
        PacketBuilder::new(1, 0).push(v).build()
    }

    #[test]
    fn wait_for_all_releases_complete_waves() {
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 3);
        assert!(f.push(0, pkt(0), 0.0).is_empty());
        assert!(f.push(1, pkt(1), 0.1).is_empty());
        let waves = f.push(2, pkt(2), 0.2);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 3);
        assert!(!f.has_pending());
    }

    #[test]
    fn wait_for_all_queues_fast_children() {
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 2);
        // Child 0 races ahead with three packets.
        assert!(f.push(0, pkt(10), 0.0).is_empty());
        assert!(f.push(0, pkt(11), 0.0).is_empty());
        assert!(f.push(0, pkt(12), 0.0).is_empty());
        // Child 1 catches up: each arrival completes one wave.
        let w1 = f.push(1, pkt(20), 1.0);
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0][0].get(0).unwrap().as_i32(), Some(10));
        let w2 = f.push(1, pkt(21), 1.1);
        assert_eq!(w2[0][0].get(0).unwrap().as_i32(), Some(11));
        assert_eq!(f.pending(), 1);
    }

    #[test]
    fn do_not_wait_is_immediate() {
        let mut f = SyncFilter::new(SyncMode::DoNotWait, 4);
        let waves = f.push(2, pkt(5), 0.0);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 1);
        assert!(!f.has_pending());
        assert!(f.deadline().is_none());
    }

    #[test]
    fn timeout_releases_partial_wave() {
        let mut f = SyncFilter::new(SyncMode::TimeOut(1.0), 3);
        assert!(f.push(0, pkt(1), 0.0).is_empty());
        assert!(f.push(1, pkt(2), 0.5).is_empty());
        assert_eq!(f.deadline(), Some(1.0));
        // Deadline fires with child 2 silent: partial wave of 2.
        let waves = f.collect(1.0);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 2);
        assert!(f.deadline().is_none());
    }

    #[test]
    fn timeout_completes_early_when_all_arrive() {
        let mut f = SyncFilter::new(SyncMode::TimeOut(10.0), 2);
        assert!(f.push(0, pkt(1), 0.0).is_empty());
        let waves = f.push(1, pkt(2), 0.1);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 2);
    }

    #[test]
    fn timeout_deadline_resets_per_wave() {
        let mut f = SyncFilter::new(SyncMode::TimeOut(1.0), 2);
        f.push(0, pkt(1), 0.0);
        f.push(1, pkt(2), 0.2); // completes wave 1
        assert!(f.deadline().is_none());
        f.push(0, pkt(3), 5.0);
        assert_eq!(f.deadline(), Some(6.0));
    }

    #[test]
    fn collect_without_input_before_deadline_is_empty() {
        let mut f = SyncFilter::new(SyncMode::TimeOut(2.0), 2);
        f.push(0, pkt(1), 0.0);
        assert!(f.collect(1.0).is_empty());
        assert_eq!(f.pending(), 1);
    }

    #[test]
    fn zero_children_wait_for_all_never_fires() {
        // A back-end-side stream has no children; collect must not
        // fabricate waves.
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 0);
        assert!(f.collect(100.0).is_empty());
        assert!(!f.has_pending());
    }

    #[test]
    fn mode_wire_round_trip() {
        for mode in [
            SyncMode::WaitForAll,
            SyncMode::TimeOut(2.5),
            SyncMode::DoNotWait,
        ] {
            let (tag, t) = mode.encode();
            assert_eq!(SyncMode::decode(tag, t), Some(mode));
        }
        assert_eq!(SyncMode::decode(9, 0.0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_checks_child_index() {
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 2);
        f.push(2, pkt(0), 0.0);
    }

    #[test]
    fn deactivate_releases_blocked_wave() {
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 3);
        assert!(f.push(0, pkt(1), 0.0).is_empty());
        assert!(f.push(1, pkt(2), 0.1).is_empty());
        // Child 2 dies: the wave completes from the two survivors.
        let waves = f.deactivate_slot(2, 0.2);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 2);
        assert_eq!(f.alive_children(), 2);
        // Subsequent waves need only the survivors.
        f.push(0, pkt(3), 1.0);
        let next = f.push(1, pkt(4), 1.1);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].len(), 2);
    }

    #[test]
    fn dead_slot_buffered_packets_drain_into_waves() {
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 3);
        // Child 2 races ahead with two packets, then dies.
        assert!(f.push(2, pkt(20), 0.0).is_empty());
        assert!(f.push(2, pkt(21), 0.0).is_empty());
        assert!(f.deactivate_slot(2, 0.1).is_empty());
        // Its buffered packets still ride along with survivor waves.
        f.push(0, pkt(1), 1.0);
        let w1 = f.push(1, pkt(2), 1.1);
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].len(), 3);
        f.push(0, pkt(3), 2.0);
        let w2 = f.push(1, pkt(4), 2.1);
        assert_eq!(w2[0].len(), 3);
        // Buffer drained: waves shrink to the survivors.
        f.push(0, pkt(5), 3.0);
        let w3 = f.push(1, pkt(6), 3.1);
        assert_eq!(w3[0].len(), 2);
    }

    #[test]
    fn all_slots_dead_flushes_remaining_queues() {
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 2);
        assert!(f.push(0, pkt(1), 0.0).is_empty());
        assert!(f.push(0, pkt(2), 0.0).is_empty());
        // Slot 1 (empty, alive) still gates; kill slot 0 first —
        // nothing releases because slot 1 is alive with no packets.
        assert!(f.deactivate_slot(0, 0.1).is_empty());
        // Killing the last living slot flushes the leftovers.
        let waves = f.deactivate_slot(1, 0.2);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].len(), 1);
        assert_eq!(waves[1].len(), 1);
        assert_eq!(f.alive_children(), 0);
        assert!(!f.has_pending());
    }

    #[test]
    fn deactivate_is_idempotent() {
        let mut f = SyncFilter::new(SyncMode::WaitForAll, 2);
        f.push(0, pkt(1), 0.0);
        let first = f.deactivate_slot(1, 0.1);
        assert_eq!(first.len(), 1);
        assert!(f.deactivate_slot(1, 0.2).is_empty());
        assert_eq!(f.alive_children(), 1);
    }
}
