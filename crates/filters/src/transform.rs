//! The transformation-filter abstraction.
//!
//! §2.4: "Transformation filters input a group of packets, perform
//! some type of data transformation on the data contained in the
//! packets and output one or more packets. … Transformation operations
//! must be synchronous, but can carry state from one transformation to
//! the next using static storage structures."
//!
//! [`Transform`] is the Rust rendering of the paper's filter-function
//! signature
//! `void filter(vector<Packet*>& in, vector<Packet*>& out, void** clientData)`:
//! `&mut self` carries the client-data state, the return value is the
//! output packet vector.

use mrnet_packet::{FormatString, Packet, Rank, StreamId};

use crate::error::{FilterError, Result};

/// Ambient information a filter may consult while transforming.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterContext {
    /// The stream the packets belong to.
    pub stream_id: StreamId,
    /// The rank of the process running the filter.
    pub local_rank: Rank,
    /// Number of direct children feeding this filter instance (0 at a
    /// back-end).
    pub num_children: usize,
}

impl FilterContext {
    /// Builds a context.
    pub fn new(stream_id: StreamId, local_rank: Rank, num_children: usize) -> FilterContext {
        FilterContext {
            stream_id,
            local_rank,
            num_children,
        }
    }
}

/// A transformation filter instance, private to one stream on one
/// process (state is per-stream, as in the paper).
pub trait Transform: Send {
    /// The registered name of this filter.
    fn name(&self) -> &str;

    /// The packet format this filter accepts, or `None` for
    /// type-independent filters (e.g. the null filter).
    fn input_format(&self) -> Option<&FormatString>;

    /// Consumes one synchronized wave of input packets, producing zero
    /// or more output packets.
    fn transform(&mut self, inputs: Vec<Packet>, ctx: &FilterContext) -> Result<Vec<Packet>>;
}

/// A boxed transformation filter.
pub type BoxedTransform = Box<dyn Transform>;

/// Checks every input against the filter's required format.
pub fn check_wave_format(fmt: &FormatString, inputs: &[Packet]) -> Result<()> {
    for p in inputs {
        if p.fmt() != fmt {
            return Err(FilterError::FormatMismatch {
                expected: fmt.to_string(),
                actual: p.fmt().to_string(),
            });
        }
    }
    Ok(())
}

/// The null filter: forwards every input packet unchanged. Streams
/// with no aggregation use this.
#[derive(Debug, Default)]
pub struct NullFilter;

impl Transform for NullFilter {
    fn name(&self) -> &str {
        "null"
    }

    fn input_format(&self) -> Option<&FormatString> {
        None
    }

    fn transform(&mut self, inputs: Vec<Packet>, _ctx: &FilterContext) -> Result<Vec<Packet>> {
        Ok(inputs)
    }
}

/// Adapts a plain function (plus optional state) into a [`Transform`];
/// the ergonomic way for tool developers to supply custom filters.
///
/// ```
/// use mrnet_filters::{FnFilter, Transform, FilterContext};
/// use mrnet_packet::{FormatString, Packet, PacketBuilder, Value};
///
/// // A filter that counts packets it has seen (carrying state between
/// // waves, like the paper's clientData).
/// let fmt = FormatString::parse("%d").unwrap();
/// let mut filter = FnFilter::new("count", Some(fmt), 0u64, |state, inputs, _ctx| {
///     *state += inputs.len() as u64;
///     let first = inputs.into_iter().next().unwrap();
///     Ok(vec![PacketBuilder::new(first.stream_id(), first.tag())
///         .push(*state as i32)
///         .build()])
/// });
/// let ctx = FilterContext::new(1, 0, 2);
/// let wave = vec![PacketBuilder::new(1, 0).push(5i32).build()];
/// let out = filter.transform(wave, &ctx).unwrap();
/// assert_eq!(out[0].get(0).unwrap().as_i32(), Some(1));
/// ```
pub struct FnFilter<S> {
    name: String,
    fmt: Option<FormatString>,
    state: S,
    func: FilterFn<S>,
}

type FilterFn<S> =
    Box<dyn FnMut(&mut S, Vec<Packet>, &FilterContext) -> Result<Vec<Packet>> + Send>;

impl<S: Send> FnFilter<S> {
    /// Wraps `func` with initial state `state`.
    pub fn new(
        name: impl Into<String>,
        fmt: Option<FormatString>,
        state: S,
        func: impl FnMut(&mut S, Vec<Packet>, &FilterContext) -> Result<Vec<Packet>> + Send + 'static,
    ) -> FnFilter<S> {
        FnFilter {
            name: name.into(),
            fmt,
            state,
            func: Box::new(func),
        }
    }
}

impl<S: Send> Transform for FnFilter<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_format(&self) -> Option<&FormatString> {
        self.fmt.as_ref()
    }

    fn transform(&mut self, inputs: Vec<Packet>, ctx: &FilterContext) -> Result<Vec<Packet>> {
        if let Some(fmt) = &self.fmt {
            check_wave_format(fmt, &inputs)?;
        }
        (self.func)(&mut self.state, inputs, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_packet::PacketBuilder;

    fn ctx() -> FilterContext {
        FilterContext::new(7, 3, 4)
    }

    #[test]
    fn null_filter_passes_through() {
        let mut f = NullFilter;
        let wave = vec![
            PacketBuilder::new(7, 1).push(1i32).build(),
            PacketBuilder::new(7, 1).push("two").build(),
        ];
        let out = f.transform(wave.clone(), &ctx()).unwrap();
        assert_eq!(out, wave);
        assert_eq!(f.name(), "null");
        assert!(f.input_format().is_none());
    }

    #[test]
    fn check_wave_format_rejects_mixed() {
        let fmt = FormatString::parse("%d").unwrap();
        let wave = vec![
            PacketBuilder::new(0, 0).push(1i32).build(),
            PacketBuilder::new(0, 0).push(1.5f32).build(),
        ];
        let err = check_wave_format(&fmt, &wave).expect_err("mixed wave");
        assert!(matches!(err, FilterError::FormatMismatch { .. }));
    }

    #[test]
    fn fn_filter_carries_state_between_waves() {
        let fmt = FormatString::parse("%d").unwrap();
        let mut f = FnFilter::new("sum-count", Some(fmt), 0i64, |state, inputs, _| {
            for p in &inputs {
                *state += i64::from(p.get(0).unwrap().as_i32().unwrap());
            }
            let sid = inputs[0].stream_id();
            Ok(vec![PacketBuilder::new(sid, 0).push(*state).build()])
        });
        let mk = |v: i32| PacketBuilder::new(1, 0).push(v).build();
        let out1 = f.transform(vec![mk(1), mk(2)], &ctx()).unwrap();
        assert_eq!(out1[0].get(0).unwrap().as_i64(), Some(3));
        let out2 = f.transform(vec![mk(10)], &ctx()).unwrap();
        assert_eq!(out2[0].get(0).unwrap().as_i64(), Some(13));
    }

    #[test]
    fn fn_filter_enforces_format() {
        let fmt = FormatString::parse("%d").unwrap();
        let mut f = FnFilter::new("strict", Some(fmt), (), |_, inputs, _| Ok(inputs));
        let bad = vec![PacketBuilder::new(0, 0).push(1.0f64).build()];
        assert!(f.transform(bad, &ctx()).is_err());
    }

    #[test]
    fn untyped_fn_filter_accepts_anything() {
        let mut f = FnFilter::new("loose", None, (), |_, inputs, _| Ok(inputs));
        let mixed = vec![
            PacketBuilder::new(0, 0).push(1i32).build(),
            PacketBuilder::new(0, 0).push("str").build(),
        ];
        assert_eq!(f.transform(mixed.clone(), &ctx()).unwrap(), mixed);
    }
}
