//! Property-based tests for filter invariants: tree-shape independence
//! of associative aggregations, concatenation order and content
//! preservation, and synchronization filter conservation.

use mrnet_filters::{
    ConcatFilter, FilterContext, ScalarFilter, ScalarOp, SyncFilter, SyncMode, Transform,
};
use mrnet_packet::{Packet, PacketBuilder, TypeCode};
use proptest::prelude::*;

fn ctx() -> FilterContext {
    FilterContext::new(1, 0, 8)
}

fn ipkt(v: i64) -> Packet {
    PacketBuilder::new(1, 0).push(v).build()
}

/// Applies `op` over `values` through an arbitrary two-level grouping,
/// mimicking a tree of filters.
fn tree_fold(op: ScalarOp, groups: &[Vec<i64>]) -> i64 {
    let mut root = ScalarFilter::new(op, TypeCode::Int64).unwrap();
    let mids: Vec<Packet> = groups
        .iter()
        .map(|group| {
            let mut mid = ScalarFilter::new(op, TypeCode::Int64).unwrap();
            let wave: Vec<Packet> = group.iter().map(|&v| ipkt(v)).collect();
            mid.transform(wave, &ctx()).unwrap().remove(0)
        })
        .collect();
    root.transform(mids, &ctx()).unwrap()[0]
        .get(0)
        .unwrap()
        .as_i64()
        .unwrap()
}

fn flat_fold(op: ScalarOp, values: &[i64]) -> i64 {
    let mut f = ScalarFilter::new(op, TypeCode::Int64).unwrap();
    let wave: Vec<Packet> = values.iter().map(|&v| ipkt(v)).collect();
    f.transform(wave, &ctx()).unwrap()[0]
        .get(0)
        .unwrap()
        .as_i64()
        .unwrap()
}

proptest! {
    #[test]
    fn min_max_sum_are_tree_shape_independent(
        groups in proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, 1..6), 1..6)
    ) {
        let flat: Vec<i64> = groups.iter().flatten().copied().collect();
        for op in [ScalarOp::Min, ScalarOp::Max] {
            prop_assert_eq!(tree_fold(op, &groups), flat_fold(op, &flat));
        }
        // Sum is associative too (no overflow in this value range).
        prop_assert_eq!(tree_fold(ScalarOp::Sum, &groups), flat_fold(ScalarOp::Sum, &flat));
    }

    #[test]
    fn concat_preserves_order_and_content(
        groups in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,6}", 1..5), 1..5)
    ) {
        // Two-level concatenation equals flat concatenation.
        let mut root = ConcatFilter::new(TypeCode::Str).unwrap();
        let mids: Vec<Packet> = groups
            .iter()
            .map(|g| {
                let mut mid = ConcatFilter::new(TypeCode::Str).unwrap();
                let wave: Vec<Packet> = g
                    .iter()
                    .map(|s| PacketBuilder::new(1, 0).push(s.as_str()).build())
                    .collect();
                mid.transform(wave, &ctx()).unwrap().remove(0)
            })
            .collect();
        let out = root.transform(mids, &ctx()).unwrap();
        let got = out[0].get(0).unwrap().as_str_array().unwrap().to_vec();
        let expected: Vec<String> = groups.into_iter().flatten().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn wait_for_all_conserves_packets(
        // Per-child packet counts; the filter must emit exactly
        // min(counts) complete waves and retain the rest.
        counts in proptest::collection::vec(0usize..8, 1..6)
    ) {
        let n = counts.len();
        let mut f = SyncFilter::new(SyncMode::WaitForAll, n);
        let mut waves = 0usize;
        let mut emitted = 0usize;
        for (child, &count) in counts.iter().enumerate() {
            for k in 0..count {
                for wave in f.push(child, ipkt(k as i64), 0.0) {
                    waves += 1;
                    emitted += wave.len();
                    prop_assert_eq!(wave.len(), n, "complete waves only");
                }
            }
        }
        let min = counts.iter().copied().min().unwrap_or(0);
        prop_assert_eq!(waves, min);
        prop_assert_eq!(emitted + f.pending(), counts.iter().sum::<usize>());
    }

    #[test]
    fn timeout_mode_never_loses_packets(
        arrivals in proptest::collection::vec((0usize..4, 0.0f64..10.0), 0..40)
    ) {
        let mut f = SyncFilter::new(SyncMode::TimeOut(0.5), 4);
        let mut sorted = arrivals;
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        let total = sorted.len();
        let mut emitted = 0usize;
        for (child, t) in sorted {
            emitted += f.push(child, ipkt(0), t).iter().map(Vec::len).sum::<usize>();
        }
        // Flush everything with a final far-future poll.
        emitted += f.collect(1e9).iter().map(Vec::len).sum::<usize>();
        emitted += f.collect(2e9).iter().map(Vec::len).sum::<usize>();
        prop_assert_eq!(emitted + f.pending(), total);
    }

    #[test]
    fn do_not_wait_is_identity_on_counts(
        pushes in proptest::collection::vec(0usize..6, 0..30)
    ) {
        let mut f = SyncFilter::new(SyncMode::DoNotWait, 6);
        for (i, &child) in pushes.iter().enumerate() {
            let waves = f.push(child, ipkt(i as i64), i as f64);
            prop_assert_eq!(waves.len(), 1);
            prop_assert_eq!(waves[0].len(), 1);
        }
        prop_assert_eq!(f.pending(), 0);
    }

    #[test]
    fn avg_of_equal_sized_groups_matches_flat(
        group_vals in proptest::collection::vec(-1e6f64..1e6, 2..5),
        group_count in 2usize..5
    ) {
        // Equal-sized subtrees: average-of-averages is exact.
        let groups: Vec<Vec<f64>> = (0..group_count).map(|_| group_vals.clone()).collect();
        let mut root = ScalarFilter::new(ScalarOp::Avg, TypeCode::Double).unwrap();
        let mids: Vec<Packet> = groups
            .iter()
            .map(|g| {
                let mut mid = ScalarFilter::new(ScalarOp::Avg, TypeCode::Double).unwrap();
                let wave: Vec<Packet> =
                    g.iter().map(|&v| PacketBuilder::new(1, 0).push(v).build()).collect();
                mid.transform(wave, &ctx()).unwrap().remove(0)
            })
            .collect();
        let got = root.transform(mids, &ctx()).unwrap()[0]
            .get(0).unwrap().as_f64().unwrap();
        let flat: Vec<f64> = groups.iter().flatten().copied().collect();
        let expected = flat.iter().sum::<f64>() / flat.len() as f64;
        prop_assert!((got - expected).abs() <= 1e-6 * expected.abs().max(1.0));
    }
}
