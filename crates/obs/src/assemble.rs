//! Skew-corrected wave reconstruction.
//!
//! The front-end holds one [`TraceAssembler`]. Completed
//! [`TraceEnvelope`]s arrive there — up-wave envelopes directly (the
//! wave terminates at the root), down-wave envelopes relayed upstream
//! by the back-end that terminated them — and the assembler rebuilds
//! each into a [`WaveTimeline`]: the ordered hop sequence with every
//! timestamp mapped into the front-end's clock domain.
//!
//! Skew correction uses the per-rank clock offsets estimated by the
//! connect-time ping handshake (NTP-style,
//! `offset = ((t1 - t0) + (t2 - t3)) / 2`, accumulated hop by hop so
//! each entry is "that rank's clock minus the front-end's clock").
//! Correcting a stamp is therefore one subtraction. Per-hop dwell
//! times (`send - recv` at one node) need no correction at all — both
//! stamps come from the same clock — while per-edge wire+queue times
//! (`recv` at the next hop minus `send` at the previous) are computed
//! from corrected stamps.
//!
//! Each assembled wave feeds two histogram families using the existing
//! bucket scheme (p50/p95/p99 via `HistogramSnapshot::quantile_le_us`):
//! `trace.hop.<rank>.us` (dwell inside one node) and
//! `trace.edge.<from>_<to>.us` (one tree edge, direction implied by
//! the rank pair).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{Counter, Histogram};
use crate::snapshot::MetricsSection;
use crate::trace::TraceDir;
use crate::tracectx::TraceEnvelope;

/// How many assembled timelines the assembler retains for inspection.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 256;

/// One rank's clock, relative to the front-end's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockEntry {
    /// That rank's clock minus the front-end's clock, microseconds.
    /// Subtracting it from a local stamp yields front-end time.
    pub offset_us: i64,
    /// Round-trip time of the winning (minimum-RTT) ping, µs — the
    /// estimate's uncertainty is on the order of `rtt_us / 2`.
    pub rtt_us: u64,
}

/// One hop of an assembled timeline, in the front-end's clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrectedHop {
    /// The observing node's rank.
    pub rank: u32,
    /// Corrected arrival time at this node, µs.
    pub recv_us: u64,
    /// Corrected forward time from this node, µs.
    pub send_us: u64,
}

/// A reconstructed wave: its id, stream, direction, and the ordered,
/// skew-corrected hop sequence (origin first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveTimeline {
    /// The envelope's trace id.
    pub trace_id: u64,
    /// Stream the wave rode.
    pub stream: u32,
    /// Direction of travel.
    pub dir: TraceDir,
    /// Hops in travel order, all stamps in the front-end clock.
    pub hops: Vec<CorrectedHop>,
}

impl WaveTimeline {
    /// End-to-end latency: last corrected send minus first corrected
    /// receive (saturating; zero for degenerate timelines).
    pub fn total_us(&self) -> u64 {
        match (self.hops.first(), self.hops.last()) {
            (Some(first), Some(last)) => last.send_us.saturating_sub(first.recv_us),
            _ => 0,
        }
    }
}

#[derive(Debug, Default)]
struct HistFamilies {
    hops: BTreeMap<u32, Arc<Histogram>>,
    edges: BTreeMap<(u32, u32), Arc<Histogram>>,
}

/// Reassembles completed trace envelopes into skew-corrected
/// timelines and aggregates per-hop / per-edge latency histograms.
///
/// Shared (`Arc`) between the front-end node loop, which feeds it, and
/// the `Network` export API, which renders it.
#[derive(Debug)]
pub struct TraceAssembler {
    clocks: Mutex<BTreeMap<u32, ClockEntry>>,
    hists: Mutex<HistFamilies>,
    timelines: Mutex<VecDeque<WaveTimeline>>,
    capacity: usize,
    /// Envelopes successfully assembled.
    pub assembled: Counter,
    /// Envelopes dropped as malformed (no hops).
    pub dropped: Counter,
}

impl Default for TraceAssembler {
    fn default() -> TraceAssembler {
        TraceAssembler::new()
    }
}

impl TraceAssembler {
    /// Creates an assembler retaining [`DEFAULT_TIMELINE_CAPACITY`]
    /// timelines.
    pub fn new() -> TraceAssembler {
        TraceAssembler::with_capacity(DEFAULT_TIMELINE_CAPACITY)
    }

    /// Creates an assembler retaining at most `capacity` timelines
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> TraceAssembler {
        TraceAssembler {
            clocks: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(HistFamilies::default()),
            timelines: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            assembled: Counter::new(),
            dropped: Counter::new(),
        }
    }

    /// Records `rank`'s estimated clock offset (relative to the
    /// front-end) and ping RTT. Later estimates replace earlier ones
    /// only when their RTT is no worse (minimum-RTT filtering).
    pub fn set_clock(&self, rank: u32, offset_us: i64, rtt_us: u64) {
        let mut clocks = self.clocks.lock();
        match clocks.get(&rank) {
            Some(old) if old.rtt_us <= rtt_us => {}
            _ => {
                clocks.insert(rank, ClockEntry { offset_us, rtt_us });
            }
        }
    }

    /// The clock entry for `rank`; unknown ranks read as offset 0
    /// (same clock as the front-end — exact in thread mode).
    pub fn clock_of(&self, rank: u32) -> ClockEntry {
        self.clocks.lock().get(&rank).copied().unwrap_or_default()
    }

    /// Ranks with a resolved clock estimate, sorted ascending.
    pub fn synced_ranks(&self) -> Vec<u32> {
        self.clocks.lock().keys().copied().collect()
    }

    /// Ingests one completed envelope: corrects its stamps into the
    /// front-end clock, records per-hop dwell and per-edge latencies,
    /// and retains the timeline. Returns the timeline, or `None` for a
    /// hopless (malformed) envelope.
    pub fn ingest(&self, env: &TraceEnvelope, dir: TraceDir) -> Option<WaveTimeline> {
        if env.hops.is_empty() {
            self.dropped.inc();
            return None;
        }
        let hops: Vec<CorrectedHop> = env
            .hops
            .iter()
            .map(|h| {
                let off = self.clock_of(h.rank).offset_us;
                CorrectedHop {
                    rank: h.rank,
                    recv_us: correct(h.recv_us, off),
                    send_us: correct(h.send_us, off),
                }
            })
            .collect();
        {
            let mut hists = self.hists.lock();
            for (i, h) in hops.iter().enumerate() {
                // Dwell uses the raw same-clock stamps, so take it
                // from the uncorrected envelope to dodge rounding.
                let raw = &env.hops[i];
                Arc::clone(
                    hists
                        .hops
                        .entry(h.rank)
                        .or_insert_with(|| Arc::new(Histogram::new())),
                )
                .record_us(raw.send_us.saturating_sub(raw.recv_us));
                if let Some(next) = hops.get(i + 1) {
                    Arc::clone(
                        hists
                            .edges
                            .entry((h.rank, next.rank))
                            .or_insert_with(|| Arc::new(Histogram::new())),
                    )
                    .record_us(next.recv_us.saturating_sub(h.send_us));
                }
            }
        }
        let timeline = WaveTimeline {
            trace_id: env.trace_id,
            stream: env.stream,
            dir,
            hops,
        };
        {
            let mut ring = self.timelines.lock();
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(timeline.clone());
        }
        self.assembled.inc();
        Some(timeline)
    }

    /// Copies out the retained timelines, oldest first.
    pub fn timelines(&self) -> Vec<WaveTimeline> {
        self.timelines.lock().iter().cloned().collect()
    }

    /// Per-rank dwell histograms, sorted by rank.
    pub fn hop_histograms(&self) -> Vec<(u32, Arc<Histogram>)> {
        self.hists
            .lock()
            .hops
            .iter()
            .map(|(r, h)| (*r, Arc::clone(h)))
            .collect()
    }

    /// Per-edge latency histograms, sorted by `(from, to)` rank pair.
    pub fn edge_histograms(&self) -> Vec<((u32, u32), Arc<Histogram>)> {
        self.hists
            .lock()
            .edges
            .iter()
            .map(|(e, h)| (*e, Arc::clone(h)))
            .collect()
    }

    /// Flattens the assembler's aggregates into `section` using the
    /// snapshot naming scheme, for export alongside node metrics.
    pub fn section_into(&self, section: &mut MetricsSection) {
        section.push("trace.waves.assembled", self.assembled.get());
        section.push("trace.waves.dropped", self.dropped.get());
        for (rank, entry) in self.clocks.lock().iter() {
            // Sections carry unsigned values; split the signed offset
            // into its two readable halves (one is always zero).
            section.push(
                &format!("trace.clock.{rank}.ahead_us"),
                entry.offset_us.max(0) as u64,
            );
            section.push(
                &format!("trace.clock.{rank}.behind_us"),
                (-entry.offset_us).max(0) as u64,
            );
            section.push(&format!("trace.clock.{rank}.rtt_us"), entry.rtt_us);
        }
        for (rank, h) in self.hop_histograms() {
            section.push_histogram(&format!("trace.hop.{rank}.us"), &h.snapshot());
        }
        for ((from, to), h) in self.edge_histograms() {
            section.push_histogram(&format!("trace.edge.{from}_{to}.us"), &h.snapshot());
        }
    }
}

/// Maps a local stamp into the front-end clock: subtract the rank's
/// offset, saturating at zero (sections carry unsigned values).
fn correct(us: u64, offset_us: i64) -> u64 {
    let v = us as i64 - offset_us;
    v.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracectx::HopRecord;

    fn env(trace_id: u64, stream: u32, hops: &[(u32, u64, u64)]) -> TraceEnvelope {
        TraceEnvelope {
            trace_id,
            stream,
            hops: hops
                .iter()
                .map(|&(rank, recv_us, send_us)| HopRecord {
                    rank,
                    recv_us,
                    send_us,
                })
                .collect(),
        }
    }

    #[test]
    fn corrects_skew_and_orders_hops() {
        let asm = TraceAssembler::new();
        // Rank 2's clock runs 1000 µs ahead of the front-end's.
        asm.set_clock(1, 0, 10);
        asm.set_clock(2, 1000, 20);
        // Raw stamps look non-causal (hop 2 "before" hop 1 sent).
        let e = env(42, 7, &[(2, 2000, 2100), (1, 1150, 1200), (0, 1250, 1300)]);
        let tl = asm.ingest(&e, TraceDir::Up).unwrap();
        assert_eq!(tl.trace_id, 42);
        assert_eq!(tl.stream, 7);
        assert_eq!(tl.hops.len(), 3);
        // Corrected: rank 2 at 1000..1100, rank 1 at 1150..1200, root
        // at 1250..1300 — causal after correction.
        assert_eq!(tl.hops[0].recv_us, 1000);
        assert_eq!(tl.hops[0].send_us, 1100);
        for w in tl.hops.windows(2) {
            assert!(w[0].send_us <= w[1].recv_us);
        }
        assert_eq!(tl.total_us(), 300);
        assert_eq!(asm.assembled.get(), 1);
    }

    #[test]
    fn feeds_hop_and_edge_histograms() {
        let asm = TraceAssembler::new();
        let e = env(1, 3, &[(4, 100, 150), (1, 160, 180), (0, 200, 205)]);
        asm.ingest(&e, TraceDir::Up).unwrap();
        let hops = asm.hop_histograms();
        assert_eq!(hops.len(), 3);
        let by_rank: BTreeMap<u32, u64> = hops
            .iter()
            .map(|(r, h)| (*r, h.snapshot().sum_us))
            .collect();
        assert_eq!(by_rank[&4], 50);
        assert_eq!(by_rank[&1], 20);
        assert_eq!(by_rank[&0], 5);
        let edges = asm.edge_histograms();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].0, (1, 0));
        assert_eq!(edges[0].1.snapshot().sum_us, 20); // 200 - 180
        assert_eq!(edges[1].0, (4, 1));
        assert_eq!(edges[1].1.snapshot().sum_us, 10); // 160 - 150
    }

    #[test]
    fn min_rtt_wins_clock_updates() {
        let asm = TraceAssembler::new();
        asm.set_clock(5, 400, 100);
        asm.set_clock(5, 900, 300); // worse RTT: ignored
        assert_eq!(asm.clock_of(5).offset_us, 400);
        asm.set_clock(5, 50, 40); // better RTT: replaces
        assert_eq!(
            asm.clock_of(5),
            ClockEntry {
                offset_us: 50,
                rtt_us: 40
            }
        );
        assert_eq!(asm.clock_of(99), ClockEntry::default());
        assert_eq!(asm.synced_ranks(), vec![5]);
    }

    #[test]
    fn drops_empty_envelopes_and_bounds_ring() {
        let asm = TraceAssembler::with_capacity(2);
        assert!(asm.ingest(&env(9, 0, &[]), TraceDir::Down).is_none());
        assert_eq!(asm.dropped.get(), 1);
        for i in 0..5u64 {
            asm.ingest(&env(i, 0, &[(0, 1, 2)]), TraceDir::Down);
        }
        let kept = asm.timelines();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].trace_id, 3);
        assert_eq!(kept[1].trace_id, 4);
        assert_eq!(asm.assembled.get(), 5);
    }

    #[test]
    fn section_export_names_hops_edges_and_clocks() {
        let asm = TraceAssembler::new();
        asm.set_clock(2, -40, 15);
        asm.ingest(&env(1, 1, &[(2, 10, 30), (0, 50, 60)]), TraceDir::Up);
        let mut s = MetricsSection::new(0);
        asm.section_into(&mut s);
        assert_eq!(s.get("trace.waves.assembled"), Some(1));
        assert_eq!(s.get("trace.waves.dropped"), Some(0));
        assert_eq!(s.get("trace.clock.2.ahead_us"), Some(0));
        assert_eq!(s.get("trace.clock.2.behind_us"), Some(40));
        assert_eq!(s.get("trace.clock.2.rtt_us"), Some(15));
        assert_eq!(s.get("trace.hop.2.us.count"), Some(1));
        assert_eq!(s.get("trace.hop.0.us.count"), Some(1));
        assert_eq!(s.get("trace.edge.2_0.us.count"), Some(1));
    }
}
