//! Machine-readable renderings of a [`NetworkSnapshot`].
//!
//! Two formats, both dependency-free:
//!
//! * [`prometheus_text`] — the Prometheus text exposition format.
//!   Every metric gains an `mrnet_` prefix and a `rank` label;
//!   histograms pushed via `MetricsSection::push_histogram` are
//!   detected by their `.count`/`.sum_us`/`.le_*` entry triples and
//!   re-emitted as proper cumulative `_bucket`/`_sum`/`_count` series.
//! * [`json_text`] — a stable hand-rolled JSON document (`serde` is
//!   stubbed out in the offline build), one object per node with the
//!   flat name→value map, suitable for the CI perf-trajectory
//!   artifacts next to `BENCH_*.json`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::snapshot::{MetricsSection, NetworkSnapshot};

/// Renders the snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snap: &NetworkSnapshot) -> String {
    let mut out = String::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    for section in &snap.nodes {
        render_section_prometheus(section, &mut typed, &mut out);
    }
    out
}

fn render_section_prometheus(s: &MetricsSection, typed: &mut BTreeSet<String>, out: &mut String) {
    let bases = histogram_bases(s);
    let rank = s.rank;
    // Histograms first, grouped; then the remaining scalars in order.
    for base in &bases {
        let metric = sanitize(base);
        if typed.insert(metric.clone()) {
            let _ = writeln!(out, "# TYPE {metric} histogram");
        }
        let mut cum = 0u64;
        let mut saw_inf = false;
        for (name, value) in s.entries() {
            if let Some(le) = name
                .strip_prefix(base.as_str())
                .and_then(|rest| rest.strip_prefix(".le_"))
            {
                cum += value;
                saw_inf |= le == "inf";
                let le = if le == "inf" { "+Inf" } else { le };
                let _ = writeln!(out, "{metric}_bucket{{rank=\"{rank}\",le=\"{le}\"}} {cum}");
            }
        }
        let count = s.get(&format!("{base}.count")).unwrap_or(0);
        if !saw_inf {
            // The catch-all bucket was empty and elided on the wire,
            // but Prometheus requires the +Inf bucket to equal the
            // count.
            let _ = writeln!(
                out,
                "{metric}_bucket{{rank=\"{rank}\",le=\"+Inf\"}} {count}"
            );
        }
        let sum = s.get(&format!("{base}.sum_us")).unwrap_or(0);
        let _ = writeln!(out, "{metric}_sum{{rank=\"{rank}\"}} {sum}");
        let _ = writeln!(out, "{metric}_count{{rank=\"{rank}\"}} {count}");
    }
    for (name, value) in s.entries() {
        if belongs_to_histogram(name, &bases) {
            continue;
        }
        let metric = sanitize(name);
        if typed.insert(metric.clone()) {
            let _ = writeln!(out, "# TYPE {metric} untyped");
        }
        let _ = writeln!(out, "{metric}{{rank=\"{rank}\"}} {value}");
    }
}

/// Base names pushed as histograms: every `X` with both `X.count` and
/// `X.sum_us` present.
fn histogram_bases(s: &MetricsSection) -> Vec<String> {
    s.names
        .iter()
        .filter_map(|n| n.strip_suffix(".count"))
        .filter(|base| s.get(&format!("{base}.sum_us")).is_some())
        .map(str::to_owned)
        .collect()
}

fn belongs_to_histogram(name: &str, bases: &[String]) -> bool {
    bases.iter().any(|b| {
        name.strip_prefix(b.as_str())
            .is_some_and(|rest| rest == ".count" || rest == ".sum_us" || rest.starts_with(".le_"))
    })
}

/// Maps a dotted metric name onto the Prometheus charset with the
/// `mrnet_` namespace prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("mrnet_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot as a JSON document:
/// `{"nodes": [{"rank": N, "metrics": {"name": value, ...}}, ...]}`.
pub fn json_text(snap: &NetworkSnapshot) -> String {
    let mut out = String::from("{\n  \"nodes\": [\n");
    for (i, section) in snap.nodes.iter().enumerate() {
        let _ = write!(out, "    {{\"rank\": {}, \"metrics\": {{", section.rank);
        for (j, (name, value)) in section.entries().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {value}", json_string(name));
        }
        out.push_str("}}");
        if i + 1 < snap.nodes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Quotes and escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, HistogramSnapshot, HIST_BUCKETS};

    fn sample_snapshot() -> NetworkSnapshot {
        let mut a = MetricsSection::new(0);
        a.push("up.pkts.sent", 12);
        let h = Histogram::new();
        h.record_us(2);
        h.record_us(2);
        h.record_us(900); // bucket le_1024
        h.record_us(u64::MAX); // catch-all
        a.push_histogram("hop_up_us", &h.snapshot());
        let mut b = MetricsSection::new(3);
        b.push("up.pkts.sent", 7);
        NetworkSnapshot { nodes: vec![a, b] }
    }

    #[test]
    fn prometheus_renders_scalars_with_rank_labels() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE mrnet_up_pkts_sent untyped\n"));
        assert!(text.contains("mrnet_up_pkts_sent{rank=\"0\"} 12\n"));
        assert!(text.contains("mrnet_up_pkts_sent{rank=\"3\"} 7\n"));
        // The TYPE line appears once, not per rank.
        assert_eq!(text.matches("# TYPE mrnet_up_pkts_sent").count(), 1);
    }

    #[test]
    fn prometheus_histograms_are_cumulative_with_inf() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE mrnet_hop_up_us histogram\n"));
        assert!(text.contains("mrnet_hop_up_us_bucket{rank=\"0\",le=\"2\"} 2\n"));
        assert!(text.contains("mrnet_hop_up_us_bucket{rank=\"0\",le=\"1024\"} 3\n"));
        assert!(text.contains("mrnet_hop_up_us_bucket{rank=\"0\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("mrnet_hop_up_us_count{rank=\"0\"} 4\n"));
        // The raw .count/.sum_us/.le_* entries are not re-emitted as
        // scalar series.
        assert!(
            !text.contains("mrnet_hop_up_us_count{rank=\"0\"} 4\n\nmrnet_hop_up_us_count_count")
        );
        assert!(!text.contains("mrnet_hop_up_us_le_"));
    }

    #[test]
    fn prometheus_emits_inf_bucket_even_when_catchall_empty() {
        let mut hs = HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 5,
            sum_us: 10,
        };
        hs.buckets[1] = 5;
        let mut s = MetricsSection::new(2);
        s.push_histogram("lat", &hs);
        let text = prometheus_text(&NetworkSnapshot { nodes: vec![s] });
        assert!(text.contains("mrnet_lat_bucket{rank=\"2\",le=\"+Inf\"} 5\n"));
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let text = json_text(&sample_snapshot());
        assert!(text.starts_with("{\n  \"nodes\": [\n"));
        assert!(text.contains("{\"rank\": 0, \"metrics\": {"));
        assert!(text.contains("\"up.pkts.sent\": 12"));
        assert!(text.contains("\"hop_up_us.count\": 4"));
        assert!(text.contains("{\"rank\": 3, \"metrics\": {\"up.pkts.sent\": 7}}"));
        assert!(text.trim_end().ends_with('}'));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut s = MetricsSection::new(1);
        s.push("weird\"name\\with\nstuff", 1);
        let text = json_text(&NetworkSnapshot { nodes: vec![s] });
        assert!(text.contains("\"weird\\\"name\\\\with\\nstuff\": 1"));
    }
}
