//! # mrnet-obs
//!
//! The observability layer beneath the MRNet reproduction: a
//! lock-cheap metrics registry (atomic counters, gauges, fixed-bucket
//! latency histograms), a bounded per-node packet-path trace buffer,
//! and a tiny leveled log facade controlled by the `MRNET_LOG`
//! environment variable.
//!
//! Design constraints (mirroring the paper's measurement needs, §4):
//!
//! * **Hot-path cost is one relaxed atomic add.** Counters and
//!   histogram records never take a lock; maps of per-stream and
//!   per-filter instruments are locked only on first lookup, and the
//!   returned `Arc` handles are cached by their users.
//! * **No external dependencies** beyond `std` and `parking_lot`
//!   (already in the workspace). This crate sits below every other
//!   workspace crate, so it depends on none of them; ranks and stream
//!   ids are plain `u32`s here.
//! * **Tracing is off by default** and enabled via `MRNET_TRACE=1` or
//!   [`trace::set_enabled`].
//!
//! Snapshots flatten to parallel name/value arrays
//! ([`MetricsSection`]) so they can ride the MRNet wire format itself:
//! the core crate's in-band introspection stream multicasts a "dump
//! metrics" request and reduces every node's section back through the
//! tree — observability implemented *with* MRNet, as the paper does
//! for tool data.

#![forbid(unsafe_code)]

pub mod assemble;
pub mod export;
pub mod log;
pub mod metrics;
pub mod snapshot;
pub mod trace;
pub mod tracectx;

pub use assemble::{ClockEntry, CorrectedHop, TraceAssembler, WaveTimeline};
pub use export::{json_text, prometheus_text};
pub use log::Level;
pub use metrics::{
    ConnSendStats, Counter, FilterStats, Gauge, Histogram, HistogramSnapshot, NodeMetrics,
    ShardExecStats, StreamCounters, HIST_BUCKETS,
};
pub use snapshot::{MetricsSection, NetworkSnapshot};
pub use trace::{TraceBuffer, TraceDir, TraceEvent};
pub use tracectx::{HopRecord, TraceEnvelope, TraceSampler};
