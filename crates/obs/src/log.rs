//! A tiny leveled log facade for MRNet diagnostics.
//!
//! Every process in the overlay tags its messages with a "who" (its
//! rank, or a binary name), giving uniform, rank-attributed output:
//!
//! ```text
//! mrnet[3] error: child frame error: ...
//! ```
//!
//! The threshold comes from the `MRNET_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`, `trace`; default `warn`)
//! and can be overridden programmatically with [`set_max_level`] —
//! benches and tests silence the tree with `MRNET_LOG=off`. Spawned
//! commnode processes inherit the environment, so one setting covers a
//! whole process-mode deployment.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Suppress all output.
    Off = 0,
    /// Unrecoverable or dropped-work conditions.
    Error = 1,
    /// Recoverable anomalies (a frame error the loop survives).
    Warn = 2,
    /// Lifecycle events.
    Info = 3,
    /// Per-operation detail.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    /// Parses a level name (case-insensitive); `None` if unknown.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The level's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Programmatic override; `u8::MAX` means "use the environment".
static OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);
static FROM_ENV: OnceLock<Level> = OnceLock::new();

/// The active maximum level: the [`set_max_level`] override if one was
/// installed, otherwise `MRNET_LOG` (default [`Level::Warn`]).
pub fn max_level() -> Level {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != u8::MAX {
        return Level::from_u8(o);
    }
    *FROM_ENV.get_or_init(|| {
        std::env::var("MRNET_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Warn)
    })
}

/// Overrides the maximum level for this process (takes precedence over
/// `MRNET_LOG`).
pub fn set_max_level(level: Level) {
    OVERRIDE.store(level as u8, Ordering::Relaxed);
}

/// True when a message at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Emits one line to stderr: `mrnet[<who>] <level>: <message>`. Call
/// through the [`crate::log_error!`]-family macros, which check
/// [`enabled`] first.
pub fn write(level: Level, who: impl std::fmt::Display, args: std::fmt::Arguments<'_>) {
    eprintln!("mrnet[{who}] {}: {args}", level.name());
}

/// Logs at [`Level::Error`]: `log_error!(who, "format", ..)`.
#[macro_export]
macro_rules! log_error {
    ($who:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::write($crate::Level::Error, &$who, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`]: `log_warn!(who, "format", ..)`.
#[macro_export]
macro_rules! log_warn {
    ($who:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::write($crate::Level::Warn, &$who, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`]: `log_info!(who, "format", ..)`.
#[macro_export]
macro_rules! log_info {
    ($who:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::write($crate::Level::Info, &$who, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`]: `log_debug!(who, "format", ..)`.
#[macro_export]
macro_rules! log_debug {
    ($who:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::write($crate::Level::Debug, &$who, ::core::format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn levels_order() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Trace);
    }

    #[test]
    fn override_controls_enabled() {
        set_max_level(Level::Off);
        assert!(!enabled(Level::Error));
        set_max_level(Level::Debug);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Debug));
        assert!(!enabled(Level::Trace));
        // Off is never "enabled", even under a permissive threshold.
        assert!(!enabled(Level::Off));
        set_max_level(Level::Warn);
    }

    #[test]
    fn macros_expand() {
        set_max_level(Level::Off);
        log_error!(7u32, "silenced {}", 1);
        log_warn!("tester", "also silenced");
        set_max_level(Level::Warn);
    }
}
