//! Lock-cheap metric instruments and the per-node registry.
//!
//! Three primitive instruments — [`Counter`], [`Gauge`], and
//! [`Histogram`] — all built on relaxed atomics so recording on the
//! packet hot path costs a single `fetch_add`. [`NodeMetrics`] bundles
//! the fixed per-node instruments (packets and bytes, up and down,
//! sent and received) with lazily-created per-stream and per-filter
//! instrument groups; lookups lock a `parking_lot` mutex once and the
//! returned `Arc` handles are cached by their users, keeping the maps
//! off the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::snapshot::MetricsSection;
use crate::trace::TraceBuffer;

/// Number of exponential histogram buckets: bucket `i` counts samples
/// with value `<= 2^i` microseconds (the last bucket is a catch-all),
/// spanning 1 µs to ~33 s.
pub const HIST_BUCKETS: usize = 26;

/// A monotonically increasing event count.
///
/// Increments are relaxed and wrapping: under pathological overflow the
/// count wraps rather than panicking or stalling the packet path.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on overflow).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level, e.g. a queue depth.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Maps a microsecond value to its bucket: bucket `i` holds samples
/// `<= 2^i` µs, with the final bucket catching everything larger.
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        (64 - (us - 1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// A fixed-bucket exponential latency histogram (microsecond domain).
///
/// Recording is two relaxed adds (bucket + running sum); there is no
/// allocation and no locking, so it is safe on the per-packet path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample measured in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one sample given in seconds (the node loop's clock
    /// domain); negative or non-finite values are clamped to zero.
    pub fn record_secs(&self, secs: f64) {
        let us = if secs.is_finite() && secs > 0.0 {
            (secs * 1e6) as u64
        } else {
            0
        };
        self.record_us(us);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` holds samples `<= 2^i` µs.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, in microseconds.
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (no samples).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }

    /// Folds `other` into `self` bucket-by-bucket — the reduction two
    /// node snapshots undergo when aggregating histograms across the
    /// tree. Counts and sums add with wrapping, matching [`Counter`]'s
    /// overflow posture.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.wrapping_add(*theirs);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum_us = self.sum_us.wrapping_add(other.sum_us);
    }

    /// Mean sample value in microseconds (zero when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// The upper bound (µs) of the smallest bucket whose cumulative
    /// count reaches quantile `q` in `0.0..=1.0`; zero when empty. The
    /// last bucket is unbounded, reported as `u64::MAX`.
    pub fn quantile_le_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target.max(1) {
                return if i == HIST_BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << i
                };
            }
        }
        u64::MAX
    }
}

/// Point-in-time send-side stats for one downstream connection,
/// recorded per child rank at snapshot time so a slow child is
/// identifiable from the metrics snapshot alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnSendStats {
    /// Frames queued behind this connection's writer.
    pub queue_depth: u64,
    /// Frames that shared a transmit syscall with another frame.
    pub coalesced: u64,
    /// Sends that found this connection's outbound queue at capacity.
    pub stalls: u64,
}

/// Per-stream packet counters, handed out by
/// [`NodeMetrics::stream_counters`] and cached by the stream manager.
#[derive(Debug, Default)]
pub struct StreamCounters {
    /// Upstream packets this node forwarded (or delivered, at the
    /// root) on this stream.
    pub up_pkts: Counter,
    /// Downstream packets this node forwarded (or delivered, at a
    /// leaf) on this stream.
    pub down_pkts: Counter,
}

/// Per-shard upstream-filter-executor counters, handed out by
/// [`NodeMetrics::shard_stats`] and cached by the executor's worker
/// threads.
#[derive(Debug, Default)]
pub struct ShardExecStats {
    /// Synchronized waves this shard ran through a transformation
    /// filter.
    pub waves: Counter,
    /// Wall-clock microseconds this shard spent inside transformation
    /// filters; comparing shards exposes skew from the stream-id
    /// hashing.
    pub busy_us: Counter,
}

/// Per-filter timing, handed out by [`NodeMetrics::filter_stats`].
#[derive(Debug, Default)]
pub struct FilterStats {
    /// Synchronization waves released through this filter.
    pub waves: Counter,
    /// Time from a wave's first packet arrival until the wave was
    /// released by the synchronization filter (the paper's §3.2
    /// "synchronization delay").
    pub wait_us: Histogram,
    /// Wall-clock time spent inside the transformation filter itself.
    pub exec_us: Histogram,
}

/// The per-node metrics registry: one per overlay process (front-end,
/// internal, or back-end), shared via `Arc` between the node loop,
/// stream managers, and the public API.
#[derive(Debug, Default)]
pub struct NodeMetrics {
    /// Packets this node sent toward the root (to its parent, or into
    /// local delivery at the root itself).
    pub up_pkts_sent: Counter,
    /// Packets this node received from below (from its children).
    pub up_pkts_recv: Counter,
    /// Packets this node sent away from the root (to its children, or
    /// into local delivery at a back-end).
    pub down_pkts_sent: Counter,
    /// Packets this node received from above (from its parent).
    pub down_pkts_recv: Counter,
    /// Encoded bytes of upstream packets delivered locally at the
    /// root, which has no parent connection to count them on.
    pub local_up_bytes: Counter,
    /// Current depth of this node's event inbox (commands + frames).
    pub queue_depth: Gauge,
    /// Packets per flushed batch frame (batching amortizes the §4
    /// per-frame cost).
    pub batch_pkts: Histogram,
    /// Per-hop upstream latency (child send → this node's receive),
    /// recorded only while tracing is enabled.
    pub hop_up_us: Histogram,
    /// Per-hop downstream latency (parent send → this node's receive),
    /// recorded only while tracing is enabled.
    pub hop_down_us: Histogram,
    /// Packet-path trace events, bounded ring; populated only while
    /// tracing is enabled.
    pub trace: TraceBuffer,
    /// Directly-connected peers this node confirmed dead (EOF,
    /// mid-frame loss, missed heartbeats, or garbage frames).
    pub peer_deaths: Counter,
    /// Connection attempts that needed at least one retry to succeed
    /// (the process-mode connect-back race; sums retries, not sockets).
    pub connect_retries: Counter,
    /// Stream-prune operations: streams whose membership shrank at
    /// this node because an end-point failed.
    pub pruned_streams: Counter,
    /// Topology events (rank failures) this node delivered to its
    /// local tool thread.
    pub events_delivered: Counter,
    /// Frames queued behind this node's per-connection writer threads,
    /// summed across connections at the last refresh.
    pub send_queue_depth: Gauge,
    /// Frames that shared a transmit syscall with at least one other
    /// frame (vectored-write coalescing), summed across connections.
    pub send_coalesced: Gauge,
    /// Sends that found an outbound queue at capacity, summed across
    /// connections — sustained growth means a peer reads slower than
    /// this node produces.
    pub send_stalls: Gauge,
    /// Batched data frames this node encoded when flushing toward its
    /// parent or children (introspection frames are not counted).
    pub frames_encoded: Counter,
    /// Child sends satisfied by a frame another child's flush already
    /// encoded (encode-once multicast): `frames_encoded +
    /// frames_shared` = data frames actually sent downstream.
    pub frames_shared: Counter,
    /// Data frames this node sent carrying a trace-envelope trailer.
    /// Stays at zero for untraced runs — the wire carries zero trailer
    /// bytes.
    pub trace_frames: Counter,
    /// Hop records this node stamped into passing trace envelopes.
    pub trace_hops: Counter,
    /// Packets this node forwarded (or delivered) still in their raw
    /// wire form — no payload decode, no re-encode, the outbound bytes
    /// are the inbound bytes (the lazy relay fast path).
    pub pkts_lazy_relayed: Counter,
    /// Wire-arrived packets whose payload a transformation filter on
    /// this node materialized (decoded). A pure relay keeps this at
    /// zero.
    pub pkts_decoded: Counter,
    streams: Mutex<BTreeMap<u32, Arc<StreamCounters>>>,
    filters: Mutex<BTreeMap<String, Arc<FilterStats>>>,
    conns: Mutex<BTreeMap<u32, ConnSendStats>>,
    shards: Mutex<BTreeMap<usize, Arc<ShardExecStats>>>,
}

impl NodeMetrics {
    /// Creates an empty registry.
    pub fn new() -> NodeMetrics {
        NodeMetrics::default()
    }

    /// The counters for stream `id`, created on first use. Callers
    /// cache the returned handle; only the first lookup locks.
    pub fn stream_counters(&self, id: u32) -> Arc<StreamCounters> {
        Arc::clone(
            self.streams
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(StreamCounters::default())),
        )
    }

    /// The timing stats for filter `name`, created on first use.
    pub fn filter_stats(&self, name: &str) -> Arc<FilterStats> {
        Arc::clone(
            self.filters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(FilterStats::default())),
        )
    }

    /// The counters for filter-executor shard `idx`, created on first
    /// use. The executor caches one handle per worker thread.
    pub fn shard_stats(&self, idx: usize) -> Arc<ShardExecStats> {
        Arc::clone(
            self.shards
                .lock()
                .entry(idx)
                .or_insert_with(|| Arc::new(ShardExecStats::default())),
        )
    }

    /// Records send-side connection stats for the child at `rank`,
    /// replacing the previous sample. Called at snapshot time, not on
    /// the packet path.
    pub fn set_conn_send_stats(&self, rank: u32, stats: ConnSendStats) {
        self.conns.lock().insert(rank, stats);
    }

    /// Flattens every instrument into a wire-ready [`MetricsSection`]
    /// for `rank`.
    pub fn snapshot(&self, rank: u32) -> MetricsSection {
        let mut s = MetricsSection::new(rank);
        s.push("up.pkts.sent", self.up_pkts_sent.get());
        s.push("up.pkts.recv", self.up_pkts_recv.get());
        s.push("down.pkts.sent", self.down_pkts_sent.get());
        s.push("down.pkts.recv", self.down_pkts_recv.get());
        s.push("up.bytes.local", self.local_up_bytes.get());
        s.push("queue.depth", self.queue_depth.get().max(0) as u64);
        s.push("trace.events", self.trace.recorded());
        s.push("peer.deaths", self.peer_deaths.get());
        s.push("connect.retries", self.connect_retries.get());
        s.push("streams.pruned", self.pruned_streams.get());
        s.push("events.delivered", self.events_delivered.get());
        s.push(
            "send.queue_depth",
            self.send_queue_depth.get().max(0) as u64,
        );
        s.push(
            "send.coalesced_frames",
            self.send_coalesced.get().max(0) as u64,
        );
        s.push("send.enqueue_stalls", self.send_stalls.get().max(0) as u64);
        s.push("frames.encoded", self.frames_encoded.get());
        s.push("frames.shared", self.frames_shared.get());
        s.push("trace.frames", self.trace_frames.get());
        s.push("trace.hops", self.trace_hops.get());
        s.push("pkts.lazy_relayed", self.pkts_lazy_relayed.get());
        s.push("pkts.decoded", self.pkts_decoded.get());
        s.push_histogram("batch.pkts", &self.batch_pkts.snapshot());
        s.push_histogram("hop_up_us", &self.hop_up_us.snapshot());
        s.push_histogram("hop_down_us", &self.hop_down_us.snapshot());
        for (id, c) in self.streams.lock().iter() {
            s.push(&format!("stream.{id}.up.pkts"), c.up_pkts.get());
            s.push(&format!("stream.{id}.down.pkts"), c.down_pkts.get());
        }
        for (name, f) in self.filters.lock().iter() {
            s.push(&format!("filter.{name}.waves"), f.waves.get());
            s.push_histogram(&format!("filter.{name}.wait_us"), &f.wait_us.snapshot());
            s.push_histogram(&format!("filter.{name}.exec_us"), &f.exec_us.snapshot());
        }
        for (rank, c) in self.conns.lock().iter() {
            s.push(&format!("conn.{rank}.send.queue_depth"), c.queue_depth);
            s.push(&format!("conn.{rank}.send.coalesced_frames"), c.coalesced);
            s.push(&format!("conn.{rank}.send.enqueue_stalls"), c.stalls);
        }
        for (idx, sh) in self.shards.lock().iter() {
            s.push(&format!("filter.exec.{idx}.waves"), sh.waves.get());
            s.push(&format!("filter.exec.{idx}.busy_us"), sh.busy_us.get());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        // Anything above 2^24 µs lands in the catch-all last bucket.
        assert_eq!(bucket_index(1 << 25), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record_us(1);
        h.record_us(3);
        h.record_us(3);
        h.record_us(1 << 30);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_us, 1 + 3 + 3 + (1 << 30));
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[HIST_BUCKETS - 1], 1);
        assert!((snap.mean_us() - snap.sum_us as f64 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_record_secs_clamps() {
        let h = Histogram::new();
        h.record_secs(-1.0);
        h.record_secs(f64::NAN);
        h.record_secs(0.001); // 1 ms = 1000 µs
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0], 2); // the two clamped zeros
        assert_eq!(snap.buckets[10], 1); // 1000 µs <= 1024
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        for _ in 0..9 {
            h.record_us(2); // bucket 1 (<= 2 µs)
        }
        h.record_us(1 << 20); // bucket 20
        let snap = h.snapshot();
        assert_eq!(snap.quantile_le_us(0.5), 2);
        assert_eq!(snap.quantile_le_us(1.0), 1 << 20);
        assert_eq!(HistogramSnapshot::empty().quantile_le_us(0.5), 0);
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let snap = HistogramSnapshot::empty();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.mean_us(), 0.0);
        assert_eq!(snap.quantile_le_us(0.0), 0);
        assert_eq!(snap.quantile_le_us(0.99), 0);
        assert_eq!(snap.quantile_le_us(1.0), 0);
    }

    #[test]
    fn single_bucket_histogram_quantiles() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_us(7); // all land in bucket 3 (<= 8 µs)
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets[3], 100);
        // Every quantile resolves to the one occupied bucket.
        assert_eq!(snap.quantile_le_us(0.0), 8);
        assert_eq!(snap.quantile_le_us(0.5), 8);
        assert_eq!(snap.quantile_le_us(0.95), 8);
        assert_eq!(snap.quantile_le_us(1.0), 8);
    }

    #[test]
    fn catchall_bucket_quantiles_are_unbounded() {
        let h = Histogram::new();
        h.record_us(1);
        h.record_us(u64::MAX); // catch-all
        h.record_us(1 << 40); // catch-all
        let snap = h.snapshot();
        assert_eq!(snap.buckets[HIST_BUCKETS - 1], 2);
        assert_eq!(snap.quantile_le_us(0.33), 1);
        // The upper quantiles live in the unbounded last bucket.
        assert_eq!(snap.quantile_le_us(0.95), u64::MAX);
        assert_eq!(snap.quantile_le_us(1.0), u64::MAX);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        a.record_us(2);
        a.record_us(1000);
        let b = Histogram::new();
        b.record_us(2);
        b.record_us(u64::MAX);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.buckets[1], 2); // both 2 µs samples
        assert_eq!(merged.buckets[10], 1);
        assert_eq!(merged.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(merged.sum_us, 1004u64.wrapping_add(u64::MAX));
        // Quantiles reflect the combined population.
        assert_eq!(merged.quantile_le_us(0.5), 2);
        assert_eq!(merged.quantile_le_us(1.0), u64::MAX);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        h.record_us(5);
        let orig = h.snapshot();
        let mut merged = orig.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, orig);
        let mut empty = HistogramSnapshot::empty();
        empty.merge(&orig);
        assert_eq!(empty, orig);
    }

    #[test]
    fn merging_two_node_snapshots() {
        // Two nodes report the same histogram name; the tree-level
        // aggregate is their bucketwise merge.
        let node_a = NodeMetrics::new();
        node_a.hop_up_us.record_us(3);
        node_a.hop_up_us.record_us(100);
        let node_b = NodeMetrics::new();
        node_b.hop_up_us.record_us(3);
        let mut merged = node_a.hop_up_us.snapshot();
        merged.merge(&node_b.hop_up_us.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.buckets[2], 2);
        assert_eq!(merged.sum_us, 106);
        // A section built from the merge is self-consistent.
        let mut s = MetricsSection::new(0);
        s.push_histogram("hop_up_us", &merged);
        assert_eq!(s.get("hop_up_us.count"), Some(3));
        assert_eq!(s.get("hop_up_us.le_4"), Some(2));
    }

    #[test]
    fn counter_wraps_on_overflow() {
        let c = Counter::new();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(3);
        assert_eq!(c.get(), 2); // wrapped, not panicked
    }

    #[test]
    fn gauge_tracks_level() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn node_metrics_snapshot_flattens_everything() {
        let m = NodeMetrics::new();
        m.up_pkts_sent.add(4);
        m.down_pkts_recv.add(2);
        let sc = m.stream_counters(1);
        sc.up_pkts.add(4);
        // Second lookup returns the same instrument.
        assert_eq!(m.stream_counters(1).up_pkts.get(), 4);
        let fs = m.filter_stats("sum_u32");
        fs.waves.inc();
        fs.exec_us.record_us(10);
        m.peer_deaths.inc();
        m.pruned_streams.add(2);
        m.send_coalesced.set(5);
        m.frames_encoded.add(7);
        m.frames_shared.add(3);
        m.trace_frames.add(2);
        m.trace_hops.add(6);
        m.pkts_lazy_relayed.add(40);
        m.pkts_decoded.add(9);
        let sh = m.shard_stats(1);
        sh.waves.add(5);
        sh.busy_us.add(1234);
        // Second lookup returns the same instrument.
        assert_eq!(m.shard_stats(1).waves.get(), 5);
        m.set_conn_send_stats(
            9,
            ConnSendStats {
                queue_depth: 11,
                coalesced: 4,
                stalls: 1,
            },
        );
        let s = m.snapshot(3);
        assert_eq!(s.rank, 3);
        assert_eq!(s.get("send.queue_depth"), Some(0));
        assert_eq!(s.get("send.coalesced_frames"), Some(5));
        assert_eq!(s.get("send.enqueue_stalls"), Some(0));
        assert_eq!(s.get("frames.encoded"), Some(7));
        assert_eq!(s.get("frames.shared"), Some(3));
        assert_eq!(s.get("trace.frames"), Some(2));
        assert_eq!(s.get("trace.hops"), Some(6));
        assert_eq!(s.get("conn.9.send.queue_depth"), Some(11));
        assert_eq!(s.get("conn.9.send.coalesced_frames"), Some(4));
        assert_eq!(s.get("conn.9.send.enqueue_stalls"), Some(1));
        assert_eq!(s.get("peer.deaths"), Some(1));
        assert_eq!(s.get("connect.retries"), Some(0));
        assert_eq!(s.get("streams.pruned"), Some(2));
        assert_eq!(s.get("events.delivered"), Some(0));
        assert_eq!(s.get("up.pkts.sent"), Some(4));
        assert_eq!(s.get("down.pkts.recv"), Some(2));
        assert_eq!(s.get("stream.1.up.pkts"), Some(4));
        assert_eq!(s.get("stream.1.down.pkts"), Some(0));
        assert_eq!(s.get("filter.sum_u32.waves"), Some(1));
        assert_eq!(s.get("filter.sum_u32.exec_us.count"), Some(1));
        assert_eq!(s.get("pkts.lazy_relayed"), Some(40));
        assert_eq!(s.get("pkts.decoded"), Some(9));
        assert_eq!(s.get("filter.exec.1.waves"), Some(5));
        assert_eq!(s.get("filter.exec.1.busy_us"), Some(1234));
        assert_eq!(s.get("no.such.metric"), None);
    }
}
