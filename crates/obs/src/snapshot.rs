//! Wire-ready metric snapshots.
//!
//! A [`MetricsSection`] flattens one node's instruments into parallel
//! `names`/`values` arrays — exactly the shape MRNet's packet `Value`
//! arrays carry, so the core crate's introspection stream can encode a
//! section as `(StrArray, UInt64Array)` without this crate knowing
//! anything about packets. A [`NetworkSnapshot`] is the concatenation
//! of every node's section, which is also the reduction the tree
//! performs: merging two partial snapshots is appending their
//! sections.

use crate::metrics::{HistogramSnapshot, HIST_BUCKETS};

/// One node's flattened metrics: parallel name/value arrays tagged
/// with the node's rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSection {
    /// The reporting node's rank.
    pub rank: u32,
    /// Metric names, parallel to `values`.
    pub names: Vec<String>,
    /// Metric values, parallel to `names`.
    pub values: Vec<u64>,
}

impl MetricsSection {
    /// Creates an empty section for `rank`.
    pub fn new(rank: u32) -> MetricsSection {
        MetricsSection {
            rank,
            names: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one metric.
    pub fn push(&mut self, name: &str, value: u64) {
        self.names.push(name.to_string());
        self.values.push(value);
    }

    /// Appends a histogram as `<name>.count`, `<name>.sum_us`, and one
    /// `<name>.le_<2^i>` entry per non-empty bucket (empty buckets are
    /// elided to keep sections small on the wire).
    pub fn push_histogram(&mut self, name: &str, h: &HistogramSnapshot) {
        self.push(&format!("{name}.count"), h.count);
        self.push(&format!("{name}.sum_us"), h.sum_us);
        for (i, &b) in h.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if i == HIST_BUCKETS - 1 {
                self.push(&format!("{name}.le_inf"), b);
            } else {
                self.push(&format!("{name}.le_{}", 1u64 << i), b);
            }
        }
    }

    /// The value of metric `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// Mean of a histogram pushed under `name`, in microseconds
    /// (`None` if the histogram is absent or empty).
    pub fn hist_mean_us(&self, name: &str) -> Option<f64> {
        let count = self.get(&format!("{name}.count"))?;
        if count == 0 {
            return None;
        }
        let sum = self.get(&format!("{name}.sum_us"))?;
        Some(sum as f64 / count as f64)
    }

    /// Iterates `(name, value)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
    }

    /// Number of metrics in the section.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the section holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Metrics for a whole overlay: one [`MetricsSection`] per node,
/// concatenated as the sections reduce up the tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkSnapshot {
    /// Per-node sections, in arrival order.
    pub nodes: Vec<MetricsSection>,
}

impl NetworkSnapshot {
    /// The section reported by `rank`, if present.
    pub fn node(&self, rank: u32) -> Option<&MetricsSection> {
        self.nodes.iter().find(|s| s.rank == rank)
    }

    /// Ranks that reported, sorted ascending.
    pub fn ranks(&self) -> Vec<u32> {
        let mut r: Vec<u32> = self.nodes.iter().map(|s| s.rank).collect();
        r.sort_unstable();
        r
    }

    /// Sum of metric `name` across every node that reports it.
    pub fn total(&self, name: &str) -> u64 {
        self.nodes
            .iter()
            .filter_map(|s| s.get(name))
            .fold(0u64, u64::wrapping_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_push_and_get() {
        let mut s = MetricsSection::new(2);
        assert!(s.is_empty());
        s.push("a", 1);
        s.push("b", 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("a"), Some(1));
        assert_eq!(s.get("c"), None);
        let pairs: Vec<_> = s.entries().collect();
        assert_eq!(pairs, vec![("a", 1), ("b", 2)]);
    }

    #[test]
    fn section_histogram_elides_empty_buckets() {
        let mut h = HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 3,
            sum_us: 12,
        };
        h.buckets[2] = 2;
        h.buckets[HIST_BUCKETS - 1] = 1;
        let mut s = MetricsSection::new(0);
        s.push_histogram("lat", &h);
        assert_eq!(s.get("lat.count"), Some(3));
        assert_eq!(s.get("lat.sum_us"), Some(12));
        assert_eq!(s.get("lat.le_4"), Some(2));
        assert_eq!(s.get("lat.le_inf"), Some(1));
        assert_eq!(s.get("lat.le_1"), None);
        assert_eq!(s.hist_mean_us("lat"), Some(4.0));
        assert_eq!(s.hist_mean_us("nope"), None);
    }

    #[test]
    fn network_snapshot_totals_and_ranks() {
        let mut a = MetricsSection::new(4);
        a.push("up.pkts.sent", 3);
        let mut b = MetricsSection::new(1);
        b.push("up.pkts.sent", 5);
        b.push("only.b", 7);
        let snap = NetworkSnapshot { nodes: vec![a, b] };
        assert_eq!(snap.ranks(), vec![1, 4]);
        assert_eq!(snap.total("up.pkts.sent"), 8);
        assert_eq!(snap.total("only.b"), 7);
        assert_eq!(snap.total("missing"), 0);
        assert_eq!(snap.node(4).unwrap().get("up.pkts.sent"), Some(3));
        assert!(snap.node(9).is_none());
    }
}
