//! Packet-path tracing: a process-wide enable gate and a bounded
//! per-node ring buffer of hop events.
//!
//! Tracing is **off by default**. It turns on via `MRNET_TRACE=1` (or
//! `true`/`on`) in the environment, or programmatically with
//! [`set_enabled`] — the API override wins. While off, the node loop's
//! only cost is one relaxed atomic load per packet; no events are
//! recorded and hop histograms stay empty.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

/// Default capacity of a node's trace ring, used when
/// `MRNET_TRACE_CAPACITY` is unset or unparsable.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Smallest ring the environment may configure; tinier values are
/// clamped up so a ring always holds a useful window.
pub const MIN_TRACE_CAPACITY: usize = 16;

/// Largest ring the environment may configure (per node, so a large
/// tree multiplies it); larger values are clamped down.
pub const MAX_TRACE_CAPACITY: usize = 1 << 20;

/// Parses an `MRNET_TRACE_CAPACITY` value into a ring capacity.
/// Missing, empty, or unparsable values fall back to
/// [`DEFAULT_TRACE_CAPACITY`]; parsed values are clamped into
/// `[MIN_TRACE_CAPACITY, MAX_TRACE_CAPACITY]`.
pub fn parse_capacity(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(MIN_TRACE_CAPACITY, MAX_TRACE_CAPACITY))
        .unwrap_or(DEFAULT_TRACE_CAPACITY)
}

/// The process-wide configured ring capacity: `MRNET_TRACE_CAPACITY`
/// (read once), clamped, defaulting to [`DEFAULT_TRACE_CAPACITY`].
pub fn capacity_from_env() -> usize {
    static CAPACITY: OnceLock<usize> = OnceLock::new();
    *CAPACITY.get_or_init(|| parse_capacity(std::env::var("MRNET_TRACE_CAPACITY").ok().as_deref()))
}

/// 0 = no override, 1 = forced off, 2 = forced on.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
static FROM_ENV: OnceLock<bool> = OnceLock::new();

/// True when packet-path tracing is active for this process.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *FROM_ENV.get_or_init(|| {
            std::env::var("MRNET_TRACE")
                .map(|v| {
                    let v = v.trim().to_ascii_lowercase();
                    v == "1" || v == "true" || v == "on"
                })
                .unwrap_or(false)
        }),
    }
}

/// Forces tracing on or off for this process, overriding
/// `MRNET_TRACE`.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Which way a traced packet was moving through the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDir {
    /// Toward the root (a reduction leg).
    Up,
    /// Away from the root (a multicast leg).
    Down,
}

/// One hop observation: a packet seen at this node.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the node observed the packet, in microseconds since the
    /// node's epoch.
    pub at_us: u64,
    /// Stream the packet rode.
    pub stream: u32,
    /// Application tag.
    pub tag: i32,
    /// Originating rank (the packet's `src`).
    pub origin: u32,
    /// Direction of travel.
    pub dir: TraceDir,
    /// Latency of the hop that delivered the packet here (send
    /// timestamp to local receive), when the sender's clock made that
    /// measurable; zero otherwise.
    pub hop_us: u64,
}

/// A bounded ring of [`TraceEvent`]s; when full, the oldest event is
/// overwritten. `recorded` keeps the all-time count so a snapshot can
/// report how much history the ring has shed.
#[derive(Debug)]
pub struct TraceBuffer {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::with_capacity(capacity_from_env())
    }
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                recorded: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, ev: TraceEvent) {
        let mut ring = self.inner.lock();
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(ev);
        ring.recorded += 1;
    }

    /// All events recorded since the process started, including ones
    /// the ring has since evicted.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Copies out the retained events, oldest first.
    pub fn drain_snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Clears the ring (the all-time `recorded` count is kept).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64) -> TraceEvent {
        TraceEvent {
            at_us,
            stream: 1,
            tag: 100,
            origin: 2,
            dir: TraceDir::Up,
            hop_us: 5,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let buf = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            buf.record(ev(i));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.recorded(), 5);
        let got: Vec<u64> = buf.drain_snapshot().iter().map(|e| e.at_us).collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn clear_keeps_recorded_count() {
        let buf = TraceBuffer::with_capacity(2);
        buf.record(ev(0));
        buf.record(ev(1));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.recorded(), 2);
    }

    #[test]
    fn api_override_beats_env() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn parse_capacity_defaults_and_clamps() {
        assert_eq!(parse_capacity(None), DEFAULT_TRACE_CAPACITY);
        assert_eq!(parse_capacity(Some("")), DEFAULT_TRACE_CAPACITY);
        assert_eq!(parse_capacity(Some("nope")), DEFAULT_TRACE_CAPACITY);
        assert_eq!(parse_capacity(Some("-5")), DEFAULT_TRACE_CAPACITY);
        assert_eq!(parse_capacity(Some("0")), MIN_TRACE_CAPACITY);
        assert_eq!(parse_capacity(Some("3")), MIN_TRACE_CAPACITY);
        assert_eq!(parse_capacity(Some(" 512 ")), 512);
        assert_eq!(parse_capacity(Some("999999999999")), MAX_TRACE_CAPACITY);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let buf = TraceBuffer::with_capacity(0);
        buf.record(ev(0));
        buf.record(ev(1));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.drain_snapshot()[0].at_us, 1);
    }
}
