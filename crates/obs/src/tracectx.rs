//! In-band trace context: the envelope a sampled wave carries across
//! the tree.
//!
//! When tracing is on, a sampled fraction of waves (1 in
//! `MRNET_TRACE_SAMPLE`, default 1 in [`DEFAULT_SAMPLE_EVERY`]) carry a
//! compact [`TraceEnvelope`] — a trace id plus one [`HopRecord`] per
//! node the wave has visited, appended in travel order. The envelope
//! rides the frame as an optional trailer (encoded by the `packet`
//! crate), so untraced frames pay zero bytes and the per-packet hot
//! path keeps its single relaxed atomic load.
//!
//! Hop timestamps are wall-clock microseconds ([`wall_us`]) in the
//! *recording node's* clock domain; the assembler maps them into the
//! front-end's domain using the per-rank offsets estimated by the
//! clock-sync ping handshake (see `assemble`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::trace;

/// Default sampling period: one traced wave per this many candidates.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Hard ceiling on hops an envelope may accumulate; a decoder that
/// sees more is looking at a corrupt or hostile trailer.
pub const MAX_TRACE_HOPS: usize = 256;

/// Current wall-clock time in microseconds since the UNIX epoch.
///
/// All hop stamps and ping timestamps use this domain so that
/// same-host processes (and threads of one process) agree trivially
/// and cross-host skew is a per-rank constant the assembler can
/// subtract.
pub fn wall_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// One node's observation of a traced wave: when the wave reached the
/// node and when the node forwarded it, both in the node's own clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// The observing node's rank.
    pub rank: u32,
    /// When the wave arrived at (or originated from) this node, µs.
    pub recv_us: u64,
    /// When this node forwarded the wave onward, µs.
    pub send_us: u64,
}

/// The trace context a sampled wave carries: a process-unique id, the
/// stream the wave rides, and the hop records accumulated so far, in
/// travel order (origin first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEnvelope {
    /// Unique id: origin rank in the high 32 bits, a per-origin
    /// counter in the low 32.
    pub trace_id: u64,
    /// Stream the traced wave belongs to.
    pub stream: u32,
    /// Hop records in travel order; the first entry is the origin.
    pub hops: Vec<HopRecord>,
}

impl TraceEnvelope {
    /// Creates an envelope at its origin node with a single hop record
    /// stamped `now` for both receive and send.
    pub fn originate(rank: u32, stream: u32) -> TraceEnvelope {
        let now = wall_us();
        TraceEnvelope {
            trace_id: next_trace_id(rank),
            stream,
            hops: vec![HopRecord {
                rank,
                recv_us: now,
                send_us: now,
            }],
        }
    }

    /// Appends this node's hop record (capped at [`MAX_TRACE_HOPS`];
    /// further hops are dropped rather than growing without bound).
    pub fn add_hop(&mut self, rank: u32, recv_us: u64, send_us: u64) {
        if self.hops.len() < MAX_TRACE_HOPS {
            self.hops.push(HopRecord {
                rank,
                recv_us,
                send_us,
            });
        }
    }
}

static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique trace id for an envelope originating at
/// `rank`: rank in the high 32 bits, a wrapping counter in the low 32,
/// so concurrent origins never collide without coordination.
pub fn next_trace_id(rank: u32) -> u64 {
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff;
    (u64::from(rank) << 32) | seq
}

/// Parses an `MRNET_TRACE_SAMPLE` value: the sampling period `N`
/// meaning "trace 1 in N waves". Missing, empty, or unparsable values
/// fall back to [`DEFAULT_SAMPLE_EVERY`]; `0` is clamped to 1 (trace
/// everything).
pub fn parse_sample_every(raw: Option<&str>) -> u64 {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .map(|n| n.max(1))
        .unwrap_or(DEFAULT_SAMPLE_EVERY)
}

static SAMPLE_OVERRIDE: AtomicU64 = AtomicU64::new(0);
static SAMPLE_FROM_ENV: OnceLock<u64> = OnceLock::new();

/// The process-wide sampling period: the [`set_sample_every`] override
/// when set, otherwise `MRNET_TRACE_SAMPLE` (read once), otherwise
/// [`DEFAULT_SAMPLE_EVERY`].
pub fn sample_every() -> u64 {
    match SAMPLE_OVERRIDE.load(Ordering::Relaxed) {
        0 => *SAMPLE_FROM_ENV.get_or_init(|| {
            parse_sample_every(std::env::var("MRNET_TRACE_SAMPLE").ok().as_deref())
        }),
        n => n,
    }
}

/// Forces the sampling period for this process (tests, benches),
/// overriding `MRNET_TRACE_SAMPLE`. `0` is clamped to 1.
pub fn set_sample_every(every: u64) {
    SAMPLE_OVERRIDE.store(every.max(1), Ordering::Relaxed);
}

/// A wave-sampling decision maker for one origin node: every
/// [`sample_every`]-th candidate is traced, and only while tracing is
/// enabled. The counter advances only when tracing is on, so the first
/// wave after enabling is always sampled (deterministic tests).
#[derive(Debug, Default)]
pub struct TraceSampler {
    seen: AtomicU64,
}

impl TraceSampler {
    /// Creates a sampler whose first candidate (with tracing on) is
    /// sampled.
    pub fn new() -> TraceSampler {
        TraceSampler::default()
    }

    /// True when the current wave should carry a trace envelope.
    pub fn sample(&self) -> bool {
        if !trace::enabled() {
            return false;
        }
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        n % sample_every() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sample_every_defaults_and_clamps() {
        assert_eq!(parse_sample_every(None), DEFAULT_SAMPLE_EVERY);
        assert_eq!(parse_sample_every(Some("")), DEFAULT_SAMPLE_EVERY);
        assert_eq!(parse_sample_every(Some("garbage")), DEFAULT_SAMPLE_EVERY);
        assert_eq!(parse_sample_every(Some("-3")), DEFAULT_SAMPLE_EVERY);
        assert_eq!(parse_sample_every(Some("0")), 1);
        assert_eq!(parse_sample_every(Some("1")), 1);
        assert_eq!(parse_sample_every(Some(" 128 ")), 128);
    }

    #[test]
    fn trace_ids_embed_rank_and_never_repeat() {
        let a = next_trace_id(7);
        let b = next_trace_id(7);
        assert_ne!(a, b);
        assert_eq!(a >> 32, 7);
        assert_eq!(next_trace_id(3) >> 32, 3);
    }

    #[test]
    fn envelope_originates_and_caps_hops() {
        let mut env = TraceEnvelope::originate(4, 9);
        assert_eq!(env.stream, 9);
        assert_eq!(env.hops.len(), 1);
        assert_eq!(env.hops[0].rank, 4);
        assert_eq!(env.hops[0].recv_us, env.hops[0].send_us);
        for i in 0..2 * MAX_TRACE_HOPS as u64 {
            env.add_hop(i as u32, i, i + 1);
        }
        assert_eq!(env.hops.len(), MAX_TRACE_HOPS);
    }

    #[test]
    fn sampler_respects_enable_gate_and_period() {
        // Overrides are process-global; use distinct values and restore.
        trace::set_enabled(false);
        let s = TraceSampler::new();
        assert!(!s.sample());
        trace::set_enabled(true);
        set_sample_every(3);
        assert!(s.sample()); // candidate 0
        assert!(!s.sample()); // 1
        assert!(!s.sample()); // 2
        assert!(s.sample()); // 3
        set_sample_every(1);
        assert!(s.sample());
        assert!(s.sample());
        trace::set_enabled(false);
    }

    #[test]
    fn wall_us_is_sane_and_monotonic_enough() {
        let a = wall_us();
        let b = wall_us();
        assert!(a > 1_000_000_000); // after 1970 by a wide margin
        assert!(b >= a || a - b < 1_000_000); // tolerate clock steps
    }
}
