//! Packet buffers: batching and unbatching.
//!
//! §2.3: "Data packets are batched into packet buffers, which logically
//! represent a series of communications destined for the same process,
//! to allow for fewer larger messages to be sent over busy connections,
//! reducing overall communication costs. … Incoming packet buffers must
//! first be unbatched into individual packets."
//!
//! [`Batcher`] accumulates packets headed for one neighbor and reports
//! when the batch should be flushed according to a [`BatchPolicy`];
//! [`encode_batch`]/[`decode_batch`] are the wire form.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{decode_packet_from, encode_packet_into, validate_packet_at, DecodeLimits};
use crate::error::{PacketError, Result};
use crate::packet::Packet;

/// When to flush an accumulating packet buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once the batch holds this many packets.
    pub max_packets: usize,
    /// Flush once the batch's encoded size reaches this many bytes.
    pub max_bytes: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_packets: 64,
            max_bytes: 32 * 1024,
        }
    }
}

impl BatchPolicy {
    /// A policy that batches nothing: every packet flushes immediately.
    /// Used by the batching ablation experiment.
    pub fn unbatched() -> BatchPolicy {
        BatchPolicy {
            max_packets: 1,
            max_bytes: 0,
        }
    }
}

/// Accumulates packets destined for the same neighboring process.
///
/// Packets are held by reference (cheap clones of [`Packet`] handles),
/// so batching adds no payload copies.
#[derive(Debug, Default)]
pub struct Batcher {
    policy: BatchPolicy,
    pending: Vec<Packet>,
    pending_bytes: usize,
}

impl Batcher {
    /// Creates a batcher with the given flush policy.
    pub fn new(policy: BatchPolicy) -> Batcher {
        Batcher {
            policy,
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// Adds a packet to the pending batch.
    pub fn push(&mut self, packet: Packet) {
        self.pending_bytes += packet.encoded_size_hint();
        self.pending.push(packet);
    }

    /// True if the policy says the pending batch should be sent now.
    pub fn should_flush(&self) -> bool {
        self.pending.len() >= self.policy.max_packets || self.pending_bytes >= self.policy.max_bytes
    }

    /// Number of packets currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no packets are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes and returns all pending packets.
    pub fn drain(&mut self) -> Vec<Packet> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }

    /// True when the pending batch holds exactly these packet handles
    /// (same shared buffers, via [`Packet::ptr_eq`], in the same
    /// order). Two batchers that match encode to identical bytes, so a
    /// multicast sender can encode once and share the frame.
    pub fn pending_matches(&self, packets: &[Packet]) -> bool {
        self.pending.len() == packets.len()
            && self.pending.iter().zip(packets).all(|(a, b)| a.ptr_eq(b))
    }

    /// Drains and encodes the pending packets as one wire batch, or
    /// `None` if nothing is pending.
    pub fn flush_encoded(&mut self) -> Option<Bytes> {
        if self.pending.is_empty() {
            return None;
        }
        let packets = self.drain();
        Some(encode_batch(&packets))
    }
}

/// Encodes a sequence of packets as one packet buffer:
/// `u32 count` followed by the packets back to back.
///
/// When every packet is an untouched slice of one inbound batch and
/// together they tile it exactly, that original buffer is returned
/// as-is — a relayed batch costs zero encodes and zero copies.
pub fn encode_batch(packets: &[Packet]) -> Bytes {
    if let Some(reused) = try_reuse_batch(packets) {
        return reused;
    }
    let size: usize = 4 + packets.iter().map(Packet::encoded_size_hint).sum::<usize>();
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u32_le(packets.len() as u32);
    for p in packets {
        encode_packet_into(p, &mut buf);
    }
    buf.freeze()
}

/// The original inbound batch buffer, if `packets` are exactly its
/// packets, in order, with untouched headers. Contiguity is checked
/// by address, so a reordered, filtered, or re-headered batch never
/// falsely matches.
fn try_reuse_batch(packets: &[Packet]) -> Option<Bytes> {
    let origin = packets.first()?.raw_origin()?.clone();
    if origin.len() < 4
        || u32::from_le_bytes(origin[..4].try_into().ok()?) as usize != packets.len()
    {
        return None;
    }
    let base = origin.as_ref().as_ptr() as usize;
    let mut expect = base + 4;
    for p in packets {
        let o = p.raw_origin()?;
        if o.as_ref().as_ptr() as usize != base || o.len() != origin.len() {
            return None;
        }
        let wire = p.raw_wire()?;
        if wire.as_ref().as_ptr() as usize != expect {
            return None;
        }
        expect += wire.len();
    }
    (expect == base + origin.len()).then_some(origin)
}

/// Decodes a packet buffer produced by [`encode_batch`] into lazy
/// packets: headers are parsed and every packet's wire structure is
/// validated against [`DecodeLimits::from_env`], but payloads stay as
/// zero-copy slices of `bytes` until first touched.
pub fn decode_batch_lazy(bytes: Bytes) -> Result<Vec<Packet>> {
    decode_batch_lazy_with(bytes, &DecodeLimits::from_env())
}

/// [`decode_batch_lazy`] with explicit decode limits.
pub fn decode_batch_lazy_with(bytes: Bytes, limits: &DecodeLimits) -> Result<Vec<Packet>> {
    let data: &[u8] = &bytes;
    if data.len() < 4 {
        return Err(PacketError::MalformedBatch("missing count"));
    }
    let count = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    if count as u64 > limits.max_elems {
        return Err(PacketError::MalformedBatch("count exceeds limit"));
    }
    let mut packets = Vec::with_capacity(count.min(4096));
    let mut pos = 4usize;
    for _ in 0..count {
        let (stream_id, tag, src, end) = validate_packet_at(data, pos, limits)?;
        packets.push(Packet::from_validated_wire(
            stream_id,
            tag,
            src,
            bytes.slice(pos..end),
            Some(bytes.clone()),
        ));
        pos = end;
    }
    if pos != data.len() {
        return Err(PacketError::MalformedBatch("trailing bytes after batch"));
    }
    Ok(packets)
}

/// Decodes a packet buffer produced by [`encode_batch`].
pub fn decode_batch(bytes: Bytes) -> Result<Vec<Packet>> {
    decode_batch_with(bytes, &DecodeLimits::default())
}

/// Decodes a packet buffer with explicit decode limits.
pub fn decode_batch_with(bytes: Bytes, limits: &DecodeLimits) -> Result<Vec<Packet>> {
    let mut buf = bytes;
    if buf.remaining() < 4 {
        return Err(PacketError::MalformedBatch("missing count"));
    }
    let count = buf.get_u32_le() as usize;
    if count > limits.max_elems as usize {
        return Err(PacketError::MalformedBatch("count exceeds limit"));
    }
    let mut packets = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        packets.push(decode_packet_from(&mut buf, limits)?);
    }
    if buf.has_remaining() {
        return Err(PacketError::MalformedBatch("trailing bytes after batch"));
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn pkt(n: i32) -> Packet {
        PacketBuilder::new(n as u32, n).push(n).build()
    }

    #[test]
    fn batch_round_trip() {
        let packets: Vec<_> = (0..10).map(pkt).collect();
        let decoded = decode_batch(encode_batch(&packets)).unwrap();
        assert_eq!(decoded, packets);
    }

    #[test]
    fn empty_batch_round_trip() {
        let decoded = decode_batch(encode_batch(&[])).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = BytesMut::from(&encode_batch(&[pkt(1)])[..]);
        bytes.put_u8(0);
        let err = decode_batch(bytes.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::MalformedBatch(_)));
    }

    #[test]
    fn short_batch_rejected() {
        let err = decode_batch(Bytes::from_static(&[1, 0])).unwrap_err();
        assert!(matches!(err, PacketError::MalformedBatch(_)));
    }

    #[test]
    fn lying_count_rejected() {
        // Claims 3 packets but contains 1.
        let one = encode_batch(&[pkt(1)]);
        let mut raw = BytesMut::from(&one[..]);
        raw[0] = 3;
        let err = decode_batch(raw.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::Truncated { .. }));
    }

    #[test]
    fn batcher_flushes_on_packet_count() {
        let mut b = Batcher::new(BatchPolicy {
            max_packets: 3,
            max_bytes: usize::MAX,
        });
        b.push(pkt(1));
        b.push(pkt(2));
        assert!(!b.should_flush());
        b.push(pkt(3));
        assert!(b.should_flush());
        assert_eq!(b.drain().len(), 3);
        assert!(b.is_empty());
        assert!(!b.should_flush());
    }

    #[test]
    fn batcher_flushes_on_byte_size() {
        let mut b = Batcher::new(BatchPolicy {
            max_packets: usize::MAX,
            max_bytes: 64,
        });
        b.push(PacketBuilder::new(0, 0).push(vec![0u8; 128]).build());
        assert!(b.should_flush());
    }

    #[test]
    fn unbatched_policy_flushes_every_packet() {
        let mut b = Batcher::new(BatchPolicy::unbatched());
        b.push(pkt(1));
        assert!(b.should_flush());
    }

    #[test]
    fn flush_encoded_round_trips() {
        let mut b = Batcher::new(BatchPolicy::default());
        assert!(b.flush_encoded().is_none());
        b.push(pkt(7));
        b.push(pkt(8));
        let bytes = b.flush_encoded().unwrap();
        let packets = decode_batch(bytes).unwrap();
        assert_eq!(packets, vec![pkt(7), pkt(8)]);
        assert!(b.is_empty());
    }

    #[test]
    fn pending_matches_compares_handles() {
        let a = pkt(1);
        let b = pkt(1); // equal contents, different buffers
        let mut batcher = Batcher::new(BatchPolicy::default());
        batcher.push(a.clone());
        assert!(batcher.pending_matches(&[a.clone()]));
        assert!(!batcher.pending_matches(&[b])); // handle identity, not equality
        assert!(!batcher.pending_matches(&[])); // length mismatch
        assert!(!batcher.pending_matches(&[a.clone(), a]));
    }

    #[test]
    fn lazy_batch_round_trips_and_stays_raw() {
        let packets: Vec<_> = (0..10).map(pkt).collect();
        let decoded = decode_batch_lazy(encode_batch(&packets)).unwrap();
        assert!(decoded.iter().all(Packet::is_lazy));
        assert_eq!(decoded, packets); // equality materializes
        assert!(decoded.iter().all(|p| !p.is_lazy()));
    }

    #[test]
    fn untouched_relayed_batch_reuses_the_inbound_buffer() {
        let packets: Vec<_> = (0..4).map(pkt).collect();
        let inbound = encode_batch(&packets);
        let relayed = decode_batch_lazy(inbound.clone()).unwrap();
        let outbound = encode_batch(&relayed);
        assert_eq!(outbound, inbound);
        // Pointer-identical, not just equal: the same backing buffer.
        assert_eq!(outbound.as_ref().as_ptr(), inbound.as_ref().as_ptr());
        assert!(relayed.iter().all(Packet::is_lazy), "relay must not decode");
    }

    #[test]
    fn reordered_or_partial_batch_does_not_reuse() {
        let packets: Vec<_> = (0..3).map(pkt).collect();
        let inbound = encode_batch(&packets);
        let decoded = decode_batch_lazy(inbound.clone()).unwrap();

        let partial = encode_batch(&decoded[..2]);
        assert_ne!(partial.as_ref().as_ptr(), inbound.as_ref().as_ptr());
        assert_eq!(decode_batch(partial).unwrap(), packets[..2]);

        let swapped = vec![decoded[1].clone(), decoded[0].clone(), decoded[2].clone()];
        let reordered = encode_batch(&swapped);
        assert_ne!(reordered.as_ref().as_ptr(), inbound.as_ref().as_ptr());
        assert_eq!(decode_batch(reordered).unwrap(), swapped);
    }

    #[test]
    fn retagged_packet_spoils_batch_reuse_but_encodes_correctly() {
        let packets: Vec<_> = (0..2).map(pkt).collect();
        let inbound = encode_batch(&packets);
        let decoded = decode_batch_lazy(inbound.clone()).unwrap();
        let retargeted: Vec<_> = decoded.into_iter().map(|p| p.with_stream(9)).collect();
        let outbound = encode_batch(&retargeted);
        assert_ne!(outbound.as_ref().as_ptr(), inbound.as_ref().as_ptr());
        let back = decode_batch(outbound).unwrap();
        assert!(back.iter().all(|p| p.stream_id() == 9));
    }

    #[test]
    fn lazy_decode_rejects_malformed_batches() {
        // Same hostile shapes the eager decoder rejects.
        assert!(decode_batch_lazy(Bytes::from_static(&[1, 0])).is_err());
        let mut trailing = BytesMut::from(&encode_batch(&[pkt(1)])[..]);
        trailing.put_u8(0);
        assert!(matches!(
            decode_batch_lazy(trailing.freeze()).unwrap_err(),
            PacketError::MalformedBatch(_)
        ));
        let mut lying = BytesMut::from(&encode_batch(&[pkt(1)])[..]);
        lying[0] = 3;
        assert!(matches!(
            decode_batch_lazy(lying.freeze()).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn batching_shares_payloads() {
        // Batcher holds handles, not copies.
        let p = pkt(1);
        let mut b = Batcher::new(BatchPolicy::default());
        b.push(p.clone());
        let drained = b.drain();
        assert!(drained[0].ptr_eq(&p));
    }
}
