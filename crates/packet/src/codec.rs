//! Packed binary encoding and decoding of packets.
//!
//! MRNet "transfers data within the tool system using an efficient,
//! packed binary representation" (§1). The wire form of a packet is
//! self-describing: a fixed header (stream id, tag, source rank,
//! arity) followed by one tagged value per conversion specifier. The
//! format string is reconstructed from the value tags on decode, so it
//! is never transmitted as text.
//!
//! All multi-byte quantities are little-endian. Length prefixes are
//! validated against [`DecodeLimits`] so a corrupt stream cannot force
//! enormous allocations.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{PacketError, Result};
use crate::format::FormatString;
use crate::packet::Packet;
use crate::value::{TypeCode, Value};

/// Sanity limits applied while decoding.
#[derive(Debug, Clone, Copy)]
pub struct DecodeLimits {
    /// Maximum accepted string / byte-array length, in bytes.
    pub max_bytes: u64,
    /// Maximum accepted array element count.
    pub max_elems: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits {
            max_bytes: 64 << 20,
            max_elems: 16 << 20,
        }
    }
}

fn need(buf: &impl Buf, n: usize, context: &'static str) -> Result<()> {
    if buf.remaining() < n {
        Err(PacketError::Truncated { context })
    } else {
        Ok(())
    }
}

fn get_len(buf: &mut impl Buf, limit: u64, context: &'static str) -> Result<usize> {
    need(buf, 4, context)?;
    let len = buf.get_u32_le() as u64;
    if len > limit {
        return Err(PacketError::LengthOverflow { len, limit });
    }
    Ok(len as usize)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf, limits: &DecodeLimits) -> Result<String> {
    let len = get_len(buf, limits.max_bytes, "string length")?;
    need(buf, len, "string body")?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| PacketError::InvalidUtf8)
}

/// Encodes one value (tag byte + payload) into `buf`.
fn encode_value(buf: &mut BytesMut, value: &Value) {
    buf.put_u8(value.type_code().tag());
    match value {
        Value::Char(v) => buf.put_u8(*v),
        Value::Int32(v) => buf.put_i32_le(*v),
        Value::UInt32(v) => buf.put_u32_le(*v),
        Value::Int64(v) => buf.put_i64_le(*v),
        Value::UInt64(v) => buf.put_u64_le(*v),
        Value::Float(v) => buf.put_f32_le(*v),
        Value::Double(v) => buf.put_f64_le(*v),
        Value::Str(v) => put_str(buf, v),
        Value::CharArray(v) => {
            buf.put_u32_le(v.len() as u32);
            buf.put_slice(v);
        }
        Value::Int32Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_i32_le(*e);
            }
        }
        Value::UInt32Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_u32_le(*e);
            }
        }
        Value::Int64Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_i64_le(*e);
            }
        }
        Value::UInt64Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_u64_le(*e);
            }
        }
        Value::FloatArray(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_f32_le(*e);
            }
        }
        Value::DoubleArray(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_f64_le(*e);
            }
        }
        Value::StrArray(v) => {
            buf.put_u32_le(v.len() as u32);
            for s in v {
                put_str(buf, s);
            }
        }
    }
}

/// Decodes one tagged value from `buf`.
fn decode_value(buf: &mut impl Buf, limits: &DecodeLimits) -> Result<Value> {
    need(buf, 1, "value tag")?;
    let code = TypeCode::from_tag(buf.get_u8())?;
    Ok(match code {
        TypeCode::Char => {
            need(buf, 1, "char")?;
            Value::Char(buf.get_u8())
        }
        TypeCode::Int32 => {
            need(buf, 4, "i32")?;
            Value::Int32(buf.get_i32_le())
        }
        TypeCode::UInt32 => {
            need(buf, 4, "u32")?;
            Value::UInt32(buf.get_u32_le())
        }
        TypeCode::Int64 => {
            need(buf, 8, "i64")?;
            Value::Int64(buf.get_i64_le())
        }
        TypeCode::UInt64 => {
            need(buf, 8, "u64")?;
            Value::UInt64(buf.get_u64_le())
        }
        TypeCode::Float => {
            need(buf, 4, "f32")?;
            Value::Float(buf.get_f32_le())
        }
        TypeCode::Double => {
            need(buf, 8, "f64")?;
            Value::Double(buf.get_f64_le())
        }
        TypeCode::Str => Value::Str(get_str(buf, limits)?),
        TypeCode::CharArray => {
            let len = get_len(buf, limits.max_bytes, "byte array length")?;
            need(buf, len, "byte array body")?;
            let mut v = vec![0u8; len];
            buf.copy_to_slice(&mut v);
            Value::CharArray(v)
        }
        TypeCode::Int32Array => {
            let len = get_len(buf, limits.max_elems, "i32 array length")?;
            need(buf, len * 4, "i32 array body")?;
            Value::Int32Array((0..len).map(|_| buf.get_i32_le()).collect())
        }
        TypeCode::UInt32Array => {
            let len = get_len(buf, limits.max_elems, "u32 array length")?;
            need(buf, len * 4, "u32 array body")?;
            Value::UInt32Array((0..len).map(|_| buf.get_u32_le()).collect())
        }
        TypeCode::Int64Array => {
            let len = get_len(buf, limits.max_elems, "i64 array length")?;
            need(buf, len * 8, "i64 array body")?;
            Value::Int64Array((0..len).map(|_| buf.get_i64_le()).collect())
        }
        TypeCode::UInt64Array => {
            let len = get_len(buf, limits.max_elems, "u64 array length")?;
            need(buf, len * 8, "u64 array body")?;
            Value::UInt64Array((0..len).map(|_| buf.get_u64_le()).collect())
        }
        TypeCode::FloatArray => {
            let len = get_len(buf, limits.max_elems, "f32 array length")?;
            need(buf, len * 4, "f32 array body")?;
            Value::FloatArray((0..len).map(|_| buf.get_f32_le()).collect())
        }
        TypeCode::DoubleArray => {
            let len = get_len(buf, limits.max_elems, "f64 array length")?;
            need(buf, len * 8, "f64 array body")?;
            Value::DoubleArray((0..len).map(|_| buf.get_f64_le()).collect())
        }
        TypeCode::StrArray => {
            let len = get_len(buf, limits.max_elems, "string array length")?;
            let mut v = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                v.push(get_str(buf, limits)?);
            }
            Value::StrArray(v)
        }
    })
}

/// Appends the wire form of `packet` to `buf`.
pub fn encode_packet_into(packet: &Packet, buf: &mut BytesMut) {
    buf.reserve(packet.encoded_size_hint());
    buf.put_u32_le(packet.stream_id());
    buf.put_i32_le(packet.tag());
    buf.put_u32_le(packet.src());
    buf.put_u16_le(packet.values().len() as u16);
    for value in packet.values() {
        encode_value(buf, value);
    }
}

/// Encodes `packet` into a freshly allocated buffer.
pub fn encode_packet(packet: &Packet) -> Bytes {
    let mut buf = BytesMut::with_capacity(packet.encoded_size_hint());
    encode_packet_into(packet, &mut buf);
    buf.freeze()
}

/// Decodes one packet from the front of `buf`, consuming its bytes.
pub fn decode_packet_from(buf: &mut impl Buf, limits: &DecodeLimits) -> Result<Packet> {
    need(buf, 4 + 4 + 4 + 2, "packet header")?;
    let stream_id = buf.get_u32_le();
    let tag = buf.get_i32_le();
    let src = buf.get_u32_le();
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf, limits)?);
    }
    let codes: Vec<_> = values.iter().map(Value::type_code).collect();
    let fmt = FormatString::from_codes(codes);
    Ok(Packet::new(stream_id, tag, fmt, values)
        .expect("format derived from decoded values always matches")
        .with_src(src))
}

/// Decodes one packet from an owned byte buffer.
pub fn decode_packet(bytes: Bytes) -> Result<Packet> {
    let mut buf = bytes;
    let packet = decode_packet_from(&mut buf, &DecodeLimits::default())?;
    Ok(packet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn full_packet() -> Packet {
        PacketBuilder::new(12, -5)
            .src(3)
            .push(Value::Char(b'k'))
            .push(-123i32)
            .push(456u32)
            .push(-(1i64 << 40))
            .push(1u64 << 50)
            .push(1.5f32)
            .push(-2.25f64)
            .push("héllo wörld")
            .push(vec![1u8, 2, 3])
            .push(vec![-1i32, 0, 1])
            .push(vec![7u32])
            .push(vec![i64::MIN, i64::MAX])
            .push(vec![u64::MAX])
            .push(vec![f32::MIN_POSITIVE, 0.0])
            .push(vec![std::f64::consts::PI])
            .push(vec!["a".to_string(), String::new(), "ccc".to_string()])
            .build()
    }

    #[test]
    fn round_trip_every_type() {
        let p = full_packet();
        let bytes = encode_packet(&p);
        let q = decode_packet(bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn round_trip_empty_packet() {
        let p = Packet::control(9, 42);
        let q = decode_packet(encode_packet(&p)).unwrap();
        assert_eq!(p, q);
        assert!(q.fmt().is_empty());
    }

    #[test]
    fn truncation_at_every_boundary_is_an_error() {
        let bytes = encode_packet(&full_packet());
        for cut in 0..bytes.len() {
            let slice = bytes.slice(..cut);
            let err = decode_packet(slice);
            assert!(err.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Header + a %s value claiming 4 GiB of body.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0); // stream
        buf.put_i32_le(0); // tag
        buf.put_u32_le(0); // src
        buf.put_u16_le(1); // arity
        buf.put_u8(TypeCode::Str.tag());
        buf.put_u32_le(u32::MAX);
        let err = decode_packet(buf.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::LengthOverflow { .. }));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_i32_le(0);
        buf.put_u32_le(0);
        buf.put_u16_le(1);
        buf.put_u8(0x7f);
        let err = decode_packet(buf.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::UnknownTypeTag(0x7f)));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_i32_le(0);
        buf.put_u32_le(0);
        buf.put_u16_le(1);
        buf.put_u8(TypeCode::Str.tag());
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        let err = decode_packet(buf.freeze()).unwrap_err();
        assert_eq!(err, PacketError::InvalidUtf8);
    }

    #[test]
    fn header_fields_survive() {
        let p = PacketBuilder::new(77, 1234).src(9).push(0i32).build();
        let q = decode_packet(encode_packet(&p)).unwrap();
        assert_eq!(q.stream_id(), 77);
        assert_eq!(q.tag(), 1234);
        assert_eq!(q.src(), 9);
    }

    #[test]
    fn encoding_is_compact() {
        // A single i32 packet: 14-byte header + 1 tag byte + 4 bytes.
        let p = PacketBuilder::new(0, 0).push(5i32).build();
        assert_eq!(encode_packet(&p).len(), 14 + 1 + 4);
    }

    #[test]
    fn multiple_packets_in_one_buffer_decode_sequentially() {
        let a = PacketBuilder::new(1, 1).push(1i32).build();
        let b = PacketBuilder::new(2, 2).push("two").build();
        let mut buf = BytesMut::new();
        encode_packet_into(&a, &mut buf);
        encode_packet_into(&b, &mut buf);
        let mut bytes = buf.freeze();
        let limits = DecodeLimits::default();
        let a2 = decode_packet_from(&mut bytes, &limits).unwrap();
        let b2 = decode_packet_from(&mut bytes, &limits).unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
        assert!(bytes.is_empty());
    }
}
