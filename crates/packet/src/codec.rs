//! Packed binary encoding and decoding of packets.
//!
//! MRNet "transfers data within the tool system using an efficient,
//! packed binary representation" (§1). The wire form of a packet is
//! self-describing: a fixed header (stream id, tag, source rank,
//! arity) followed by one tagged value per conversion specifier. The
//! format string is reconstructed from the value tags on decode, so it
//! is never transmitted as text.
//!
//! All multi-byte quantities are little-endian. Length prefixes are
//! validated against [`DecodeLimits`] so a corrupt stream cannot force
//! enormous allocations.

use std::sync::OnceLock;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{PacketError, Result};
use crate::format::FormatString;
use crate::packet::{Decoded, Packet};
use crate::value::{TypeCode, Value};

/// Byte length of a packet's fixed wire header:
/// stream id (4) + tag (4) + src (4) + arity (2).
pub(crate) const PACKET_HEADER_LEN: usize = 4 + 4 + 4 + 2;

/// Default string / byte-array ceiling, in bytes.
pub const DEFAULT_DECODE_MAX_BYTES: u64 = 64 << 20;

/// Default array element-count ceiling.
pub const DEFAULT_DECODE_MAX_ELEMS: u64 = 16 << 20;

/// Smallest ceiling `MRNET_DECODE_MAX` may configure; tinier values
/// are clamped up so control traffic always fits.
pub const MIN_DECODE_MAX: u64 = 1 << 10;

/// Largest ceiling `MRNET_DECODE_MAX` may configure.
pub const MAX_DECODE_MAX: u64 = 1 << 32;

/// Sanity limits applied while decoding.
#[derive(Debug, Clone, Copy)]
pub struct DecodeLimits {
    /// Maximum accepted string / byte-array length, in bytes.
    pub max_bytes: u64,
    /// Maximum accepted array element count.
    pub max_elems: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits {
            max_bytes: DEFAULT_DECODE_MAX_BYTES,
            max_elems: DEFAULT_DECODE_MAX_ELEMS,
        }
    }
}

/// Parses an `MRNET_DECODE_MAX` value into a decode ceiling. Missing,
/// empty, or unparsable values mean "no override" (`None`); parsed
/// values are clamped into `[MIN_DECODE_MAX, MAX_DECODE_MAX]`.
pub fn parse_decode_max(raw: Option<&str>) -> Option<u64> {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .map(|n| n.clamp(MIN_DECODE_MAX, MAX_DECODE_MAX))
}

impl DecodeLimits {
    /// Limits with both ceilings set to `max` (bytes for
    /// strings/byte-arrays, element count for typed arrays).
    pub fn with_max(max: u64) -> DecodeLimits {
        DecodeLimits {
            max_bytes: max,
            max_elems: max,
        }
    }

    /// The process-wide limits: `MRNET_DECODE_MAX` (read once, clamped
    /// into `[MIN_DECODE_MAX, MAX_DECODE_MAX]`) overrides both
    /// ceilings; otherwise the compiled defaults apply. This is what
    /// the network ingress uses, so hostile-frame limits are tunable
    /// without a rebuild.
    pub fn from_env() -> DecodeLimits {
        static LIMITS: OnceLock<DecodeLimits> = OnceLock::new();
        *LIMITS.get_or_init(|| {
            match parse_decode_max(std::env::var("MRNET_DECODE_MAX").ok().as_deref()) {
                Some(max) => DecodeLimits::with_max(max),
                None => DecodeLimits::default(),
            }
        })
    }
}

fn need(buf: &impl Buf, n: usize, context: &'static str) -> Result<()> {
    if buf.remaining() < n {
        Err(PacketError::Truncated { context })
    } else {
        Ok(())
    }
}

fn get_len(buf: &mut impl Buf, limit: u64, context: &'static str) -> Result<usize> {
    need(buf, 4, context)?;
    let len = buf.get_u32_le() as u64;
    if len > limit {
        return Err(PacketError::LengthOverflow { len, limit });
    }
    Ok(len as usize)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf, limits: &DecodeLimits) -> Result<String> {
    let len = get_len(buf, limits.max_bytes, "string length")?;
    need(buf, len, "string body")?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| PacketError::InvalidUtf8)
}

/// Encodes one value (tag byte + payload) into `buf`.
fn encode_value(buf: &mut BytesMut, value: &Value) {
    buf.put_u8(value.type_code().tag());
    match value {
        Value::Char(v) => buf.put_u8(*v),
        Value::Int32(v) => buf.put_i32_le(*v),
        Value::UInt32(v) => buf.put_u32_le(*v),
        Value::Int64(v) => buf.put_i64_le(*v),
        Value::UInt64(v) => buf.put_u64_le(*v),
        Value::Float(v) => buf.put_f32_le(*v),
        Value::Double(v) => buf.put_f64_le(*v),
        Value::Str(v) => put_str(buf, v),
        Value::CharArray(v) => {
            buf.put_u32_le(v.len() as u32);
            buf.put_slice(v);
        }
        Value::Int32Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_i32_le(*e);
            }
        }
        Value::UInt32Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_u32_le(*e);
            }
        }
        Value::Int64Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_i64_le(*e);
            }
        }
        Value::UInt64Array(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_u64_le(*e);
            }
        }
        Value::FloatArray(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_f32_le(*e);
            }
        }
        Value::DoubleArray(v) => {
            buf.put_u32_le(v.len() as u32);
            for e in v {
                buf.put_f64_le(*e);
            }
        }
        Value::StrArray(v) => {
            buf.put_u32_le(v.len() as u32);
            for s in v {
                put_str(buf, s);
            }
        }
    }
}

/// Decodes one tagged value from `buf`.
fn decode_value(buf: &mut impl Buf, limits: &DecodeLimits) -> Result<Value> {
    need(buf, 1, "value tag")?;
    let code = TypeCode::from_tag(buf.get_u8())?;
    Ok(match code {
        TypeCode::Char => {
            need(buf, 1, "char")?;
            Value::Char(buf.get_u8())
        }
        TypeCode::Int32 => {
            need(buf, 4, "i32")?;
            Value::Int32(buf.get_i32_le())
        }
        TypeCode::UInt32 => {
            need(buf, 4, "u32")?;
            Value::UInt32(buf.get_u32_le())
        }
        TypeCode::Int64 => {
            need(buf, 8, "i64")?;
            Value::Int64(buf.get_i64_le())
        }
        TypeCode::UInt64 => {
            need(buf, 8, "u64")?;
            Value::UInt64(buf.get_u64_le())
        }
        TypeCode::Float => {
            need(buf, 4, "f32")?;
            Value::Float(buf.get_f32_le())
        }
        TypeCode::Double => {
            need(buf, 8, "f64")?;
            Value::Double(buf.get_f64_le())
        }
        TypeCode::Str => Value::Str(get_str(buf, limits)?),
        TypeCode::CharArray => {
            let len = get_len(buf, limits.max_bytes, "byte array length")?;
            need(buf, len, "byte array body")?;
            let mut v = vec![0u8; len];
            buf.copy_to_slice(&mut v);
            Value::CharArray(v)
        }
        TypeCode::Int32Array => {
            let len = get_len(buf, limits.max_elems, "i32 array length")?;
            need(buf, len * 4, "i32 array body")?;
            Value::Int32Array((0..len).map(|_| buf.get_i32_le()).collect())
        }
        TypeCode::UInt32Array => {
            let len = get_len(buf, limits.max_elems, "u32 array length")?;
            need(buf, len * 4, "u32 array body")?;
            Value::UInt32Array((0..len).map(|_| buf.get_u32_le()).collect())
        }
        TypeCode::Int64Array => {
            let len = get_len(buf, limits.max_elems, "i64 array length")?;
            need(buf, len * 8, "i64 array body")?;
            Value::Int64Array((0..len).map(|_| buf.get_i64_le()).collect())
        }
        TypeCode::UInt64Array => {
            let len = get_len(buf, limits.max_elems, "u64 array length")?;
            need(buf, len * 8, "u64 array body")?;
            Value::UInt64Array((0..len).map(|_| buf.get_u64_le()).collect())
        }
        TypeCode::FloatArray => {
            let len = get_len(buf, limits.max_elems, "f32 array length")?;
            need(buf, len * 4, "f32 array body")?;
            Value::FloatArray((0..len).map(|_| buf.get_f32_le()).collect())
        }
        TypeCode::DoubleArray => {
            let len = get_len(buf, limits.max_elems, "f64 array length")?;
            need(buf, len * 8, "f64 array body")?;
            Value::DoubleArray((0..len).map(|_| buf.get_f64_le()).collect())
        }
        TypeCode::StrArray => {
            let len = get_len(buf, limits.max_elems, "string array length")?;
            let mut v = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                v.push(get_str(buf, limits)?);
            }
            Value::StrArray(v)
        }
    })
}

/// A cursor over a contiguous wire buffer, used by the validation
/// pass to walk a packet's structure without allocating values.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn need(&self, n: usize, context: &'static str) -> Result<()> {
        if self.data.len() - self.pos < n {
            Err(PacketError::Truncated { context })
        } else {
            Ok(())
        }
    }

    fn skip(&mut self, n: usize, context: &'static str) -> Result<()> {
        self.need(n, context)?;
        self.pos += n;
        Ok(())
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        self.need(n, context)?;
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn get_u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }

    fn get_u16_le(&mut self, context: &'static str) -> Result<u16> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn get_u32_le(&mut self, context: &'static str) -> Result<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_len(&mut self, limit: u64, context: &'static str) -> Result<usize> {
        let len = self.get_u32_le(context)? as u64;
        if len > limit {
            return Err(PacketError::LengthOverflow { len, limit });
        }
        Ok(len as usize)
    }

    fn check_str(&mut self, limits: &DecodeLimits) -> Result<()> {
        let len = self.get_len(limits.max_bytes, "string length")?;
        let body = self.take(len, "string body")?;
        std::str::from_utf8(body).map_err(|_| PacketError::InvalidUtf8)?;
        Ok(())
    }
}

/// Validates one tagged value's wire structure (type tag, length
/// prefixes against `limits`, UTF-8 of strings) without materializing
/// it, advancing the cursor past it.
fn skip_value(c: &mut Cursor<'_>, limits: &DecodeLimits) -> Result<()> {
    let code = TypeCode::from_tag(c.get_u8("value tag")?)?;
    match code {
        TypeCode::Char => c.skip(1, "char"),
        TypeCode::Int32 => c.skip(4, "i32"),
        TypeCode::UInt32 => c.skip(4, "u32"),
        TypeCode::Int64 => c.skip(8, "i64"),
        TypeCode::UInt64 => c.skip(8, "u64"),
        TypeCode::Float => c.skip(4, "f32"),
        TypeCode::Double => c.skip(8, "f64"),
        TypeCode::Str => c.check_str(limits),
        TypeCode::CharArray => {
            let len = c.get_len(limits.max_bytes, "byte array length")?;
            c.skip(len, "byte array body")
        }
        TypeCode::Int32Array => {
            let len = c.get_len(limits.max_elems, "i32 array length")?;
            c.skip(len * 4, "i32 array body")
        }
        TypeCode::UInt32Array => {
            let len = c.get_len(limits.max_elems, "u32 array length")?;
            c.skip(len * 4, "u32 array body")
        }
        TypeCode::Int64Array => {
            let len = c.get_len(limits.max_elems, "i64 array length")?;
            c.skip(len * 8, "i64 array body")
        }
        TypeCode::UInt64Array => {
            let len = c.get_len(limits.max_elems, "u64 array length")?;
            c.skip(len * 8, "u64 array body")
        }
        TypeCode::FloatArray => {
            let len = c.get_len(limits.max_elems, "f32 array length")?;
            c.skip(len * 4, "f32 array body")
        }
        TypeCode::DoubleArray => {
            let len = c.get_len(limits.max_elems, "f64 array length")?;
            c.skip(len * 8, "f64 array body")
        }
        TypeCode::StrArray => {
            let len = c.get_len(limits.max_elems, "string array length")?;
            for _ in 0..len {
                c.check_str(limits)?;
            }
            Ok(())
        }
    }
}

/// Validates the structure of one packet starting at `start` in
/// `data`: header, every value's type tag, every length prefix
/// (against `limits`), and string UTF-8 — without allocating a single
/// value. Returns the header fields and the offset one past the
/// packet's last byte.
///
/// A wire region that passes this check is safe to hand to
/// [`decode_payload_validated`], which therefore cannot fail.
pub(crate) fn validate_packet_at(
    data: &[u8],
    start: usize,
    limits: &DecodeLimits,
) -> Result<(u32, i32, u32, usize)> {
    let mut c = Cursor { data, pos: start };
    c.need(PACKET_HEADER_LEN, "packet header")?;
    let stream_id = c.get_u32_le("packet header")?;
    let tag = c.get_u32_le("packet header")? as i32;
    let src = c.get_u32_le("packet header")?;
    let arity = c.get_u16_le("packet header")? as usize;
    for _ in 0..arity {
        skip_value(&mut c, limits)?;
    }
    Ok((stream_id, tag, src, c.pos))
}

/// Materializes the typed payload of a pre-validated wire packet.
/// The `FormatString` is derived from the decoded value tags exactly
/// once, here, and cached in the packet with the values.
pub(crate) fn decode_payload_validated(wire: &Bytes) -> Decoded {
    let mut buf = wire.slice(PACKET_HEADER_LEN - 2..);
    let arity = buf.get_u16_le() as usize;
    // Structure and limits were enforced by `validate_packet_at`
    // before the lazy packet was built, so decoding is infallible and
    // ingress limits must not be re-applied (they may have tightened
    // via the env since).
    let permissive = DecodeLimits::with_max(u64::MAX);
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(&mut buf, &permissive).expect("wire was validated at decode"));
    }
    let codes: Vec<_> = values.iter().map(Value::type_code).collect();
    Decoded {
        fmt: FormatString::from_codes(codes),
        values,
    }
}

/// Appends the wire form of `packet` to `buf`. A packet that still
/// carries its original wire bytes is copied verbatim — no payload
/// re-encode.
pub fn encode_packet_into(packet: &Packet, buf: &mut BytesMut) {
    if let Some(wire) = packet.raw_wire() {
        buf.put_slice(wire);
        return;
    }
    buf.reserve(packet.encoded_size_hint());
    buf.put_u32_le(packet.stream_id());
    buf.put_i32_le(packet.tag());
    buf.put_u32_le(packet.src());
    buf.put_u16_le(packet.values().len() as u16);
    for value in packet.values() {
        encode_value(buf, value);
    }
}

/// Encodes `packet` into a freshly allocated buffer — unless the
/// packet still carries its original wire bytes, in which case that
/// buffer is returned as-is (zero copy, pointer-identical).
pub fn encode_packet(packet: &Packet) -> Bytes {
    if let Some(wire) = packet.raw_wire() {
        return wire.clone();
    }
    let mut buf = BytesMut::with_capacity(packet.encoded_size_hint());
    encode_packet_into(packet, &mut buf);
    buf.freeze()
}

/// Decodes one packet from the front of `buf`, consuming its bytes.
pub fn decode_packet_from(buf: &mut impl Buf, limits: &DecodeLimits) -> Result<Packet> {
    need(buf, 4 + 4 + 4 + 2, "packet header")?;
    let stream_id = buf.get_u32_le();
    let tag = buf.get_i32_le();
    let src = buf.get_u32_le();
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf, limits)?);
    }
    let codes: Vec<_> = values.iter().map(Value::type_code).collect();
    let fmt = FormatString::from_codes(codes);
    Ok(Packet::new(stream_id, tag, fmt, values)
        .expect("format derived from decoded values always matches")
        .with_src(src))
}

/// Decodes one packet from an owned byte buffer.
pub fn decode_packet(bytes: Bytes) -> Result<Packet> {
    let mut buf = bytes;
    let packet = decode_packet_from(&mut buf, &DecodeLimits::default())?;
    Ok(packet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn full_packet() -> Packet {
        PacketBuilder::new(12, -5)
            .src(3)
            .push(Value::Char(b'k'))
            .push(-123i32)
            .push(456u32)
            .push(-(1i64 << 40))
            .push(1u64 << 50)
            .push(1.5f32)
            .push(-2.25f64)
            .push("héllo wörld")
            .push(vec![1u8, 2, 3])
            .push(vec![-1i32, 0, 1])
            .push(vec![7u32])
            .push(vec![i64::MIN, i64::MAX])
            .push(vec![u64::MAX])
            .push(vec![f32::MIN_POSITIVE, 0.0])
            .push(vec![std::f64::consts::PI])
            .push(vec!["a".to_string(), String::new(), "ccc".to_string()])
            .build()
    }

    #[test]
    fn round_trip_every_type() {
        let p = full_packet();
        let bytes = encode_packet(&p);
        let q = decode_packet(bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn round_trip_empty_packet() {
        let p = Packet::control(9, 42);
        let q = decode_packet(encode_packet(&p)).unwrap();
        assert_eq!(p, q);
        assert!(q.fmt().is_empty());
    }

    #[test]
    fn truncation_at_every_boundary_is_an_error() {
        let bytes = encode_packet(&full_packet());
        for cut in 0..bytes.len() {
            let slice = bytes.slice(..cut);
            let err = decode_packet(slice);
            assert!(err.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Header + a %s value claiming 4 GiB of body.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0); // stream
        buf.put_i32_le(0); // tag
        buf.put_u32_le(0); // src
        buf.put_u16_le(1); // arity
        buf.put_u8(TypeCode::Str.tag());
        buf.put_u32_le(u32::MAX);
        let err = decode_packet(buf.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::LengthOverflow { .. }));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_i32_le(0);
        buf.put_u32_le(0);
        buf.put_u16_le(1);
        buf.put_u8(0x7f);
        let err = decode_packet(buf.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::UnknownTypeTag(0x7f)));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_i32_le(0);
        buf.put_u32_le(0);
        buf.put_u16_le(1);
        buf.put_u8(TypeCode::Str.tag());
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        let err = decode_packet(buf.freeze()).unwrap_err();
        assert_eq!(err, PacketError::InvalidUtf8);
    }

    #[test]
    fn header_fields_survive() {
        let p = PacketBuilder::new(77, 1234).src(9).push(0i32).build();
        let q = decode_packet(encode_packet(&p)).unwrap();
        assert_eq!(q.stream_id(), 77);
        assert_eq!(q.tag(), 1234);
        assert_eq!(q.src(), 9);
    }

    #[test]
    fn encoding_is_compact() {
        // A single i32 packet: 14-byte header + 1 tag byte + 4 bytes.
        let p = PacketBuilder::new(0, 0).push(5i32).build();
        assert_eq!(encode_packet(&p).len(), 14 + 1 + 4);
    }

    #[test]
    fn parse_decode_max_defaults_and_clamps() {
        assert_eq!(parse_decode_max(None), None);
        assert_eq!(parse_decode_max(Some("")), None);
        assert_eq!(parse_decode_max(Some("nope")), None);
        assert_eq!(parse_decode_max(Some("-5")), None);
        assert_eq!(parse_decode_max(Some("0")), Some(MIN_DECODE_MAX));
        assert_eq!(parse_decode_max(Some("100")), Some(MIN_DECODE_MAX));
        assert_eq!(parse_decode_max(Some(" 65536 ")), Some(65536));
        assert_eq!(
            parse_decode_max(Some("99999999999999999")),
            Some(MAX_DECODE_MAX)
        );
    }

    #[test]
    fn with_max_sets_both_ceilings() {
        let limits = DecodeLimits::with_max(2048);
        assert_eq!(limits.max_bytes, 2048);
        assert_eq!(limits.max_elems, 2048);
        // A 4 KiB string is over a 2 KiB ceiling.
        let p = PacketBuilder::new(0, 0).push("x".repeat(4096)).build();
        let wire = encode_packet(&p);
        let err = validate_packet_at(&wire, 0, &limits).unwrap_err();
        assert!(matches!(err, PacketError::LengthOverflow { .. }));
        assert!(validate_packet_at(&wire, 0, &DecodeLimits::default()).is_ok());
    }

    #[test]
    fn validation_pass_agrees_with_eager_decode_on_every_boundary() {
        // The skip pass and the eager decoder must accept and reject
        // exactly the same inputs, byte for byte.
        let wire = encode_packet(&full_packet());
        let limits = DecodeLimits::default();
        let (stream_id, tag, src, end) = validate_packet_at(&wire, 0, &limits).unwrap();
        assert_eq!((stream_id, tag, src), (12, -5, 3));
        assert_eq!(end, wire.len());
        for cut in 0..wire.len() {
            assert!(
                validate_packet_at(&wire[..cut], 0, &limits).is_err(),
                "validation of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn validation_rejects_what_decode_rejects() {
        // Hostile length prefix.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_i32_le(0);
        buf.put_u32_le(0);
        buf.put_u16_le(1);
        buf.put_u8(TypeCode::Str.tag());
        buf.put_u32_le(u32::MAX);
        let limits = DecodeLimits::default();
        assert!(matches!(
            validate_packet_at(&buf, 0, &limits).unwrap_err(),
            PacketError::LengthOverflow { .. }
        ));
        // Unknown type tag.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_i32_le(0);
        buf.put_u32_le(0);
        buf.put_u16_le(1);
        buf.put_u8(0x7f);
        assert!(matches!(
            validate_packet_at(&buf, 0, &limits).unwrap_err(),
            PacketError::UnknownTypeTag(0x7f)
        ));
        // Invalid UTF-8 in a string body.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_i32_le(0);
        buf.put_u32_le(0);
        buf.put_u16_le(1);
        buf.put_u8(TypeCode::Str.tag());
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(
            validate_packet_at(&buf, 0, &limits).unwrap_err(),
            PacketError::InvalidUtf8
        );
    }

    #[test]
    fn lazy_materialization_matches_eager_decode_for_every_type() {
        let p = full_packet();
        let batch = crate::batch::encode_batch(std::slice::from_ref(&p));
        let lazy = crate::batch::decode_batch_lazy(batch).unwrap().remove(0);
        let mut eager_wire = encode_packet(&p);
        let eager = decode_packet_from(&mut eager_wire, &DecodeLimits::default()).unwrap();
        assert_eq!(lazy.stream_id(), eager.stream_id());
        assert_eq!(lazy.tag(), eager.tag());
        assert_eq!(lazy.src(), eager.src());
        assert_eq!(lazy.fmt(), eager.fmt());
        assert_eq!(lazy.values(), eager.values());
    }

    #[test]
    fn format_string_is_derived_once_and_cached() {
        let p = full_packet();
        let batch = crate::batch::encode_batch(std::slice::from_ref(&p));
        let lazy = crate::batch::decode_batch_lazy(batch).unwrap().remove(0);
        // Repeated access must hand back the same cached FormatString,
        // not re-derive it from the value tags each time.
        let first: *const FormatString = lazy.fmt();
        let second: *const FormatString = lazy.fmt();
        assert_eq!(first, second);
        assert_eq!(lazy.fmt(), p.fmt());
        // Same guarantee through a cloned handle.
        let third: *const FormatString = lazy.clone().fmt();
        assert_eq!(first, third);
    }

    #[test]
    fn multiple_packets_in_one_buffer_decode_sequentially() {
        let a = PacketBuilder::new(1, 1).push(1i32).build();
        let b = PacketBuilder::new(2, 2).push("two").build();
        let mut buf = BytesMut::new();
        encode_packet_into(&a, &mut buf);
        encode_packet_into(&b, &mut buf);
        let mut bytes = buf.freeze();
        let limits = DecodeLimits::default();
        let a2 = decode_packet_from(&mut bytes, &limits).unwrap();
        let b2 = decode_packet_from(&mut bytes, &limits).unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
        assert!(bytes.is_empty());
    }
}
