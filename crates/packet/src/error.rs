//! Error types for packet construction, encoding, and decoding.

use std::fmt;

/// Errors produced while parsing format strings or encoding/decoding
/// packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// A format string contained a conversion specifier that MRNet does
    /// not understand (e.g. `%q`).
    UnknownSpecifier(String),
    /// A format string token did not begin with `%`.
    MalformedFormat(String),
    /// The number of values supplied does not match the number of
    /// conversion specifiers in the format string.
    ArityMismatch {
        /// Number of specifiers in the format string.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// A value's type does not match the conversion specifier at its
    /// position.
    TypeMismatch {
        /// Zero-based position of the offending value.
        index: usize,
        /// The specifier the format string demands.
        expected: &'static str,
        /// The type of the value actually supplied.
        actual: &'static str,
    },
    /// The byte stream ended before a complete value could be decoded.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A decoded length prefix exceeded the configurable sanity limit,
    /// indicating a corrupt or hostile stream.
    LengthOverflow {
        /// The length that was read.
        len: u64,
        /// The maximum the decoder accepts.
        limit: u64,
    },
    /// A decoded string was not valid UTF-8.
    InvalidUtf8,
    /// A type tag byte in the wire stream was not a known type code.
    UnknownTypeTag(u8),
    /// A packet buffer (batch) header was malformed.
    MalformedBatch(&'static str),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::UnknownSpecifier(s) => {
                write!(f, "unknown conversion specifier `{s}` in format string")
            }
            PacketError::MalformedFormat(s) => {
                write!(f, "malformed format token `{s}` (expected `%<spec>`)")
            }
            PacketError::ArityMismatch { expected, actual } => write!(
                f,
                "format string expects {expected} values but {actual} were supplied"
            ),
            PacketError::TypeMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "value {index} has type {actual} but the format string expects {expected}"
            ),
            PacketError::Truncated { context } => {
                write!(f, "input truncated while decoding {context}")
            }
            PacketError::LengthOverflow { len, limit } => {
                write!(f, "length prefix {len} exceeds decoder limit {limit}")
            }
            PacketError::InvalidUtf8 => write!(f, "decoded string is not valid UTF-8"),
            PacketError::UnknownTypeTag(t) => write!(f, "unknown type tag byte {t:#x}"),
            PacketError::MalformedBatch(why) => write!(f, "malformed packet buffer: {why}"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Convenient result alias for packet operations.
pub type Result<T> = std::result::Result<T, PacketError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let cases: Vec<(PacketError, &str)> = vec![
            (
                PacketError::UnknownSpecifier("%q".into()),
                "unknown conversion specifier",
            ),
            (
                PacketError::MalformedFormat("d".into()),
                "malformed format token",
            ),
            (
                PacketError::ArityMismatch {
                    expected: 2,
                    actual: 3,
                },
                "expects 2 values but 3",
            ),
            (
                PacketError::TypeMismatch {
                    index: 1,
                    expected: "%d",
                    actual: "%f",
                },
                "value 1",
            ),
            (
                PacketError::Truncated { context: "i32" },
                "truncated while decoding i32",
            ),
            (
                PacketError::LengthOverflow {
                    len: 1 << 40,
                    limit: 1 << 30,
                },
                "exceeds decoder limit",
            ),
            (PacketError::InvalidUtf8, "not valid UTF-8"),
            (PacketError::UnknownTypeTag(0xff), "0xff"),
            (PacketError::MalformedBatch("bad count"), "bad count"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "`{msg}` should contain `{needle}`");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PacketError::InvalidUtf8);
    }
}
