//! Format strings describing the typed payload of a packet.
//!
//! A format string is a whitespace-separated sequence of conversion
//! specifiers, e.g. `"%d %f %s"` for an integer, a float, and a string
//! (§2.1). [`FormatString`] parses, validates, and canonicalizes such
//! strings; filters use equality of format strings to enforce the type
//! requirement on transformation filters (§2.4).

use std::fmt;
use std::str::FromStr;

use crate::error::{PacketError, Result};
use crate::value::{TypeCode, Value};

/// A parsed, validated packet format string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FormatString {
    codes: Vec<TypeCode>,
}

impl FormatString {
    /// Parses a format string such as `"%d %f %as"`.
    ///
    /// An empty (or all-whitespace) string is a valid format describing
    /// a payload-free packet, used for pure control messages.
    pub fn parse(s: &str) -> Result<FormatString> {
        let mut codes = Vec::new();
        for token in s.split_whitespace() {
            let spec = token
                .strip_prefix('%')
                .ok_or_else(|| PacketError::MalformedFormat(token.to_owned()))?;
            codes.push(TypeCode::from_spec(spec)?);
        }
        Ok(FormatString { codes })
    }

    /// Builds a format string directly from type codes.
    pub fn from_codes(codes: impl Into<Vec<TypeCode>>) -> FormatString {
        FormatString {
            codes: codes.into(),
        }
    }

    /// The conversion specifiers, in order.
    pub fn codes(&self) -> &[TypeCode] {
        &self.codes
    }

    /// Number of conversion specifiers.
    pub fn arity(&self) -> usize {
        self.codes.len()
    }

    /// True if the format describes a payload-free packet.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Checks a value sequence against this format.
    ///
    /// Returns an error if the arity differs or any value's type does
    /// not match the specifier at its position.
    pub fn check(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.codes.len() {
            return Err(PacketError::ArityMismatch {
                expected: self.codes.len(),
                actual: values.len(),
            });
        }
        for (index, (value, &code)) in values.iter().zip(&self.codes).enumerate() {
            if value.type_code() != code {
                return Err(PacketError::TypeMismatch {
                    index,
                    expected: code.spec(),
                    actual: value.type_code().spec(),
                });
            }
        }
        Ok(())
    }

    /// The canonical textual rendering (single spaces, canonical
    /// specifier spellings).
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for FormatString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, code) in self.codes.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            f.write_str(code.spec())?;
        }
        Ok(())
    }
}

impl FromStr for FormatString {
    type Err = PacketError;

    fn from_str(s: &str) -> Result<FormatString> {
        FormatString::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        // "%d %f %s" contains an integer, float, and character string.
        let fmt = FormatString::parse("%d %f %s").unwrap();
        assert_eq!(
            fmt.codes(),
            &[TypeCode::Int32, TypeCode::Float, TypeCode::Str]
        );
        assert_eq!(fmt.arity(), 3);
    }

    #[test]
    fn parses_array_specifiers() {
        let fmt = FormatString::parse("%af %auld %as").unwrap();
        assert_eq!(
            fmt.codes(),
            &[
                TypeCode::FloatArray,
                TypeCode::UInt64Array,
                TypeCode::StrArray
            ]
        );
    }

    #[test]
    fn empty_format_is_valid() {
        let fmt = FormatString::parse("").unwrap();
        assert!(fmt.is_empty());
        assert_eq!(fmt.arity(), 0);
        let fmt = FormatString::parse("   \t ").unwrap();
        assert!(fmt.is_empty());
        fmt.check(&[]).unwrap();
    }

    #[test]
    fn rejects_missing_percent() {
        let err = FormatString::parse("%d f").unwrap_err();
        assert!(matches!(err, PacketError::MalformedFormat(t) if t == "f"));
    }

    #[test]
    fn rejects_unknown_specifier() {
        let err = FormatString::parse("%z").unwrap_err();
        assert!(matches!(err, PacketError::UnknownSpecifier(s) if s == "%z"));
    }

    #[test]
    fn whitespace_is_normalized_by_display() {
        let fmt = FormatString::parse("  %d\t%f   %s ").unwrap();
        assert_eq!(fmt.to_string(), "%d %f %s");
    }

    #[test]
    fn display_parse_round_trip() {
        let original = "%c %d %ud %ld %uld %f %lf %s %ac %ad %aud %ald %auld %af %alf %as";
        let fmt = FormatString::parse(original).unwrap();
        let rendered = fmt.to_string();
        assert_eq!(rendered, original);
        assert_eq!(FormatString::parse(&rendered).unwrap(), fmt);
    }

    #[test]
    fn aliases_canonicalize() {
        let fmt = FormatString::parse("%u %lu").unwrap();
        assert_eq!(fmt.to_string(), "%ud %uld");
    }

    #[test]
    fn check_accepts_matching_values() {
        let fmt = FormatString::parse("%d %f %s").unwrap();
        fmt.check(&[
            Value::Int32(1),
            Value::Float(2.0),
            Value::Str("three".into()),
        ])
        .unwrap();
    }

    #[test]
    fn check_rejects_arity_mismatch() {
        let fmt = FormatString::parse("%d %d").unwrap();
        let err = fmt.check(&[Value::Int32(1)]).unwrap_err();
        assert!(matches!(
            err,
            PacketError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn check_rejects_type_mismatch() {
        let fmt = FormatString::parse("%d %f").unwrap();
        let err = fmt
            .check(&[Value::Int32(1), Value::Double(2.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            PacketError::TypeMismatch {
                index: 1,
                expected: "%f",
                actual: "%lf"
            }
        ));
    }

    #[test]
    fn from_str_trait() {
        let fmt: FormatString = "%d %d".parse().unwrap();
        assert_eq!(fmt.arity(), 2);
    }

    #[test]
    fn from_codes_builder() {
        let fmt = FormatString::from_codes(vec![TypeCode::Double]);
        assert_eq!(fmt.to_string(), "%lf");
    }
}
