//! # mrnet-packet
//!
//! The data representation substrate of the MRNet reproduction: typed
//! values, printf-style format strings, the [`Packet`] type, the packed
//! binary wire codec, and packet-buffer batching.
//!
//! This corresponds to the "Data Encoding / Data Decoding" and "Packet
//! Batching/Unbatching" layers of an MRNet internal process (paper
//! Figure 3) and to the packet/format-string model of §2.1 and §2.4.
//!
//! ```
//! use mrnet_packet::{FormatString, Packet, Value, encode_packet, decode_packet};
//!
//! let fmt = FormatString::parse("%d %f %s").unwrap();
//! let pkt = Packet::new(1, 100, fmt, vec![
//!     Value::Int32(7),
//!     Value::Float(3.5),
//!     Value::Str("backend-0".into()),
//! ]).unwrap();
//! let wire = encode_packet(&pkt);
//! assert_eq!(decode_packet(wire).unwrap(), pkt);
//! ```

#![forbid(unsafe_code)]

mod batch;
mod codec;
mod error;
mod format;
mod packet;
pub mod trace;
mod unpack;
mod value;

pub use batch::{
    decode_batch, decode_batch_lazy, decode_batch_lazy_with, decode_batch_with, encode_batch,
    BatchPolicy, Batcher,
};
pub use codec::{
    decode_packet, decode_packet_from, encode_packet, encode_packet_into, parse_decode_max,
    DecodeLimits, DEFAULT_DECODE_MAX_BYTES, DEFAULT_DECODE_MAX_ELEMS, MAX_DECODE_MAX,
    MIN_DECODE_MAX,
};
pub use error::{PacketError, Result};
pub use format::FormatString;
pub use packet::{Packet, PacketBuilder, Rank, StreamId, Tag};
pub use unpack::{FromValue, Unpack, UnpackTuple};
pub use value::{TypeCode, Value};
