//! The MRNet data packet.
//!
//! Packets are the unit of communication on streams. Each carries the
//! id of the stream it belongs to (used to demultiplex at internal
//! processes, §2.3), an application-defined integer tag, the rank of
//! the originating process, and a typed payload described by a
//! [`FormatString`].
//!
//! Internal processes pass packets "by reference whenever possible …
//! to avoid unnecessary copying" (§2.3): [`Packet`] is a cheap
//! reference-counted handle, so routing a packet to multiple output
//! buffers (downstream multicast) clones only the handle, never the
//! payload.

use std::fmt;
use std::sync::Arc;

use crate::error::Result;
use crate::format::FormatString;
use crate::value::Value;

/// Identifies the logical stream a packet travels on.
pub type StreamId = u32;

/// Identifies the process (front-end, internal, or back-end) that
/// originated a packet. Rank 0 is conventionally the front-end.
pub type Rank = u32;

/// Application-defined message tag.
pub type Tag = i32;

/// The immutable interior of a packet, shared between handles.
#[derive(Debug, PartialEq)]
struct PacketInner {
    stream_id: StreamId,
    tag: Tag,
    src: Rank,
    fmt: FormatString,
    values: Vec<Value>,
}

/// A typed MRNet data packet. Cloning is O(1) (reference counted).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    inner: Arc<PacketInner>,
}

impl Packet {
    /// Creates a packet, validating `values` against `fmt`.
    pub fn new(
        stream_id: StreamId,
        tag: Tag,
        fmt: FormatString,
        values: Vec<Value>,
    ) -> Result<Packet> {
        fmt.check(&values)?;
        Ok(Packet {
            inner: Arc::new(PacketInner {
                stream_id,
                tag,
                src: 0,
                fmt,
                values,
            }),
        })
    }

    /// Creates a packet from a textual format string, validating the
    /// values against it. Mirrors `stream->send("%d", value)` from the
    /// paper's Figure 2.
    pub fn with_fmt_str(
        stream_id: StreamId,
        tag: Tag,
        fmt: &str,
        values: Vec<Value>,
    ) -> Result<Packet> {
        Packet::new(stream_id, tag, FormatString::parse(fmt)?, values)
    }

    /// Creates a payload-free control packet.
    pub fn control(stream_id: StreamId, tag: Tag) -> Packet {
        Packet::new(stream_id, tag, FormatString::default(), Vec::new())
            .expect("empty payload always matches empty format")
    }

    /// Returns a copy of this packet with the originating rank set.
    ///
    /// If this handle is the sole owner the interior is reused without
    /// copying the payload.
    pub fn with_src(self, src: Rank) -> Packet {
        if self.inner.src == src {
            return self;
        }
        match Arc::try_unwrap(self.inner) {
            Ok(mut inner) => {
                inner.src = src;
                Packet {
                    inner: Arc::new(inner),
                }
            }
            Err(shared) => Packet {
                inner: Arc::new(PacketInner {
                    stream_id: shared.stream_id,
                    tag: shared.tag,
                    src,
                    fmt: shared.fmt.clone(),
                    values: shared.values.clone(),
                }),
            },
        }
    }

    /// Returns a copy of this packet retargeted to a different stream.
    pub fn with_stream(self, stream_id: StreamId) -> Packet {
        if self.inner.stream_id == stream_id {
            return self;
        }
        match Arc::try_unwrap(self.inner) {
            Ok(mut inner) => {
                inner.stream_id = stream_id;
                Packet {
                    inner: Arc::new(inner),
                }
            }
            Err(shared) => Packet {
                inner: Arc::new(PacketInner {
                    stream_id,
                    tag: shared.tag,
                    src: shared.src,
                    fmt: shared.fmt.clone(),
                    values: shared.values.clone(),
                }),
            },
        }
    }

    /// The id of the stream this packet belongs to.
    pub fn stream_id(&self) -> StreamId {
        self.inner.stream_id
    }

    /// The application-defined tag.
    pub fn tag(&self) -> Tag {
        self.inner.tag
    }

    /// The rank of the originating process.
    pub fn src(&self) -> Rank {
        self.inner.src
    }

    /// The payload's format string.
    pub fn fmt(&self) -> &FormatString {
        &self.inner.fmt
    }

    /// The payload values.
    pub fn values(&self) -> &[Value] {
        &self.inner.values
    }

    /// The value at position `i`, if present.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.inner.values.get(i)
    }

    /// Approximate encoded size in bytes, used for batching decisions.
    pub fn encoded_size_hint(&self) -> usize {
        // header: stream id + tag + src + fmt string + count
        let header = 4 + 4 + 4 + 4 + self.inner.fmt.canonical().len() + 4;
        header
            + self
                .inner
                .values
                .iter()
                .map(Value::encoded_size_hint)
                .sum::<usize>()
    }

    /// True when two handles share the same interior allocation (used
    /// by tests to verify zero-copy routing).
    pub fn ptr_eq(&self, other: &Packet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Packet{{stream={}, tag={}, src={}, fmt=\"{}\", {} value(s)}}",
            self.inner.stream_id,
            self.inner.tag,
            self.inner.src,
            self.inner.fmt,
            self.inner.values.len()
        )
    }
}

/// Builder for assembling packets value by value.
///
/// ```
/// use mrnet_packet::{PacketBuilder, Value};
/// let pkt = PacketBuilder::new(7, 100)
///     .push(42i32)
///     .push(2.5f32)
///     .push("hello")
///     .build();
/// assert_eq!(pkt.fmt().to_string(), "%d %f %s");
/// assert_eq!(pkt.get(0), Some(&Value::Int32(42)));
/// ```
#[derive(Debug)]
pub struct PacketBuilder {
    stream_id: StreamId,
    tag: Tag,
    src: Rank,
    values: Vec<Value>,
}

impl PacketBuilder {
    /// Starts a packet for the given stream and tag.
    pub fn new(stream_id: StreamId, tag: Tag) -> PacketBuilder {
        PacketBuilder {
            stream_id,
            tag,
            src: 0,
            values: Vec::new(),
        }
    }

    /// Sets the originating rank.
    pub fn src(mut self, src: Rank) -> PacketBuilder {
        self.src = src;
        self
    }

    /// Appends a value; the format string is derived from the values.
    pub fn push(mut self, value: impl Into<Value>) -> PacketBuilder {
        self.values.push(value.into());
        self
    }

    /// Finalizes the packet. The format is derived, so this cannot fail.
    pub fn build(self) -> Packet {
        let codes: Vec<_> = self.values.iter().map(Value::type_code).collect();
        let fmt = FormatString::from_codes(codes);
        Packet::new(self.stream_id, self.tag, fmt, self.values)
            .expect("derived format always matches values")
            .with_src(self.src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PacketError;

    fn sample() -> Packet {
        Packet::with_fmt_str(
            3,
            17,
            "%d %f %s",
            vec![Value::Int32(1), Value::Float(2.0), Value::Str("x".into())],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_format() {
        let err = Packet::with_fmt_str(0, 0, "%d", vec![Value::Float(1.0)]).unwrap_err();
        assert!(matches!(err, PacketError::TypeMismatch { .. }));
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.stream_id(), 3);
        assert_eq!(p.tag(), 17);
        assert_eq!(p.src(), 0);
        assert_eq!(p.fmt().to_string(), "%d %f %s");
        assert_eq!(p.get(0), Some(&Value::Int32(1)));
        assert_eq!(p.get(3), None);
        assert_eq!(p.values().len(), 3);
    }

    #[test]
    fn clone_is_shallow() {
        let p = sample();
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        assert_eq!(p, q);
    }

    #[test]
    fn with_src_rewrites_rank() {
        let p = sample().with_src(9);
        assert_eq!(p.src(), 9);
        // Unchanged rank returns the same allocation.
        let q = p.clone().with_src(9);
        assert!(p.ptr_eq(&q));
        // Changing a shared packet copies rather than mutating the
        // other handle.
        let r = p.clone().with_src(10);
        assert_eq!(p.src(), 9);
        assert_eq!(r.src(), 10);
    }

    #[test]
    fn with_stream_retargets() {
        let p = sample().with_stream(44);
        assert_eq!(p.stream_id(), 44);
        assert_eq!(p.tag(), 17);
        let q = p.clone().with_stream(44);
        assert!(p.ptr_eq(&q));
    }

    #[test]
    fn control_packets_are_empty() {
        let p = Packet::control(5, -1);
        assert!(p.fmt().is_empty());
        assert!(p.values().is_empty());
        assert_eq!(p.tag(), -1);
    }

    #[test]
    fn builder_derives_format() {
        let p = PacketBuilder::new(1, 2)
            .src(7)
            .push(5i32)
            .push(vec![1.0f64, 2.0])
            .push("s")
            .build();
        assert_eq!(p.fmt().to_string(), "%d %alf %s");
        assert_eq!(p.src(), 7);
    }

    #[test]
    fn size_hint_tracks_payload() {
        let small = PacketBuilder::new(0, 0).push(1i32).build();
        let big = PacketBuilder::new(0, 0).push(vec![0i64; 100]).build();
        assert!(big.encoded_size_hint() > small.encoded_size_hint() + 700);
    }

    #[test]
    fn display_is_informative() {
        let msg = sample().to_string();
        assert!(msg.contains("stream=3"));
        assert!(msg.contains("%d %f %s"));
    }
}
