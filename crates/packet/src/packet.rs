//! The MRNet data packet.
//!
//! Packets are the unit of communication on streams. Each carries the
//! id of the stream it belongs to (used to demultiplex at internal
//! processes, §2.3), an application-defined integer tag, the rank of
//! the originating process, and a typed payload described by a
//! [`FormatString`].
//!
//! Internal processes pass packets "by reference whenever possible …
//! to avoid unnecessary copying" (§2.3): [`Packet`] is a cheap
//! reference-counted handle, so routing a packet to multiple output
//! buffers (downstream multicast) clones only the handle, never the
//! payload.
//!
//! ## Lazy payloads
//!
//! A packet decoded from the wire keeps its payload as the raw wire
//! bytes; the typed `FormatString` + `Vec<Value>` form is materialized
//! at most once, on first access ([`Packet::fmt`], [`Packet::values`],
//! `unpack`, …). A commnode that only relays a packet never touches
//! the payload, so the decode (and the re-encode: see
//! [`crate::encode_packet`]'s raw fast path) is skipped entirely. The
//! wire form is structurally validated *before* a lazy packet is
//! built, so materialization cannot fail and hostile frames are still
//! rejected at the network boundary.

use std::fmt;
use std::sync::{Arc, OnceLock};

use bytes::Bytes;

use crate::codec::{self, PACKET_HEADER_LEN};
use crate::error::Result;
use crate::format::FormatString;
use crate::value::Value;

/// Identifies the logical stream a packet travels on.
pub type StreamId = u32;

/// Identifies the process (front-end, internal, or back-end) that
/// originated a packet. Rank 0 is conventionally the front-end.
pub type Rank = u32;

/// Application-defined message tag.
pub type Tag = i32;

/// A materialized payload: the format string and the typed values,
/// built together at most once per packet.
#[derive(Debug, PartialEq)]
pub(crate) struct Decoded {
    pub(crate) fmt: FormatString,
    pub(crate) values: Vec<Value>,
}

/// How a packet stores its payload.
#[derive(Debug)]
enum PayloadRepr {
    /// Constructed in this process: the typed form is the only form.
    Eager(Decoded),
    /// Decoded from the wire: the raw bytes are authoritative and the
    /// typed form is materialized on demand. `wire` is the packet's
    /// full, structurally validated wire form (header included);
    /// `origin` is the batch body it was sliced from, kept so an
    /// untouched relayed batch can hand the identical buffer back.
    Raw {
        wire: Bytes,
        origin: Option<Bytes>,
        cache: OnceLock<Decoded>,
    },
}

/// The immutable interior of a packet, shared between handles.
#[derive(Debug)]
struct PacketInner {
    stream_id: StreamId,
    tag: Tag,
    src: Rank,
    payload: PayloadRepr,
}

impl PacketInner {
    /// The typed payload, materializing (and caching) it if this is
    /// the first access to a wire-decoded packet.
    fn decoded(&self) -> &Decoded {
        match &self.payload {
            PayloadRepr::Eager(d) => d,
            PayloadRepr::Raw { wire, cache, .. } => {
                cache.get_or_init(|| codec::decode_payload_validated(wire))
            }
        }
    }
}

/// A typed MRNet data packet. Cloning is O(1) (reference counted).
#[derive(Debug, Clone)]
pub struct Packet {
    inner: Arc<PacketInner>,
}

impl Packet {
    /// Creates a packet, validating `values` against `fmt`.
    pub fn new(
        stream_id: StreamId,
        tag: Tag,
        fmt: FormatString,
        values: Vec<Value>,
    ) -> Result<Packet> {
        fmt.check(&values)?;
        Ok(Packet {
            inner: Arc::new(PacketInner {
                stream_id,
                tag,
                src: 0,
                payload: PayloadRepr::Eager(Decoded { fmt, values }),
            }),
        })
    }

    /// Creates a packet from a textual format string, validating the
    /// values against it. Mirrors `stream->send("%d", value)` from the
    /// paper's Figure 2.
    pub fn with_fmt_str(
        stream_id: StreamId,
        tag: Tag,
        fmt: &str,
        values: Vec<Value>,
    ) -> Result<Packet> {
        Packet::new(stream_id, tag, FormatString::parse(fmt)?, values)
    }

    /// Creates a payload-free control packet.
    pub fn control(stream_id: StreamId, tag: Tag) -> Packet {
        Packet::new(stream_id, tag, FormatString::default(), Vec::new())
            .expect("empty payload always matches empty format")
    }

    /// Builds a packet around a structurally validated wire form
    /// (header + tagged values). The payload stays raw until first
    /// touched. Callers must have run the wire bytes through the
    /// codec's validation pass; materialization assumes they decode.
    pub(crate) fn from_validated_wire(
        stream_id: StreamId,
        tag: Tag,
        src: Rank,
        wire: Bytes,
        origin: Option<Bytes>,
    ) -> Packet {
        Packet {
            inner: Arc::new(PacketInner {
                stream_id,
                tag,
                src,
                payload: PayloadRepr::Raw {
                    wire,
                    origin,
                    cache: OnceLock::new(),
                },
            }),
        }
    }

    /// Returns a copy of this packet with the originating rank set.
    ///
    /// If this handle is the sole owner the interior is reused without
    /// copying the payload. Changing the rank of a wire-decoded packet
    /// materializes its payload (the raw bytes would carry the stale
    /// rank).
    pub fn with_src(self, src: Rank) -> Packet {
        if self.inner.src == src {
            return self;
        }
        self.rebuild(|inner| inner.src = src)
    }

    /// Returns a copy of this packet retargeted to a different stream.
    ///
    /// Like [`Packet::with_src`], retargeting a wire-decoded packet
    /// materializes its payload.
    pub fn with_stream(self, stream_id: StreamId) -> Packet {
        if self.inner.stream_id == stream_id {
            return self;
        }
        self.rebuild(|inner| inner.stream_id = stream_id)
    }

    /// Clones-on-write the interior with a header edit applied,
    /// converting any raw payload to its typed form first so the raw
    /// bytes never disagree with the header.
    fn rebuild(self, edit: impl FnOnce(&mut PacketInner)) -> Packet {
        let mut inner = match Arc::try_unwrap(self.inner) {
            Ok(inner) => PacketInner {
                stream_id: inner.stream_id,
                tag: inner.tag,
                src: inner.src,
                payload: PayloadRepr::Eager(match inner.payload {
                    PayloadRepr::Eager(d) => d,
                    PayloadRepr::Raw { wire, cache, .. } => cache
                        .into_inner()
                        .unwrap_or_else(|| codec::decode_payload_validated(&wire)),
                }),
            },
            Err(shared) => {
                let d = shared.decoded();
                PacketInner {
                    stream_id: shared.stream_id,
                    tag: shared.tag,
                    src: shared.src,
                    payload: PayloadRepr::Eager(Decoded {
                        fmt: d.fmt.clone(),
                        values: d.values.clone(),
                    }),
                }
            }
        };
        edit(&mut inner);
        Packet {
            inner: Arc::new(inner),
        }
    }

    /// The id of the stream this packet belongs to.
    pub fn stream_id(&self) -> StreamId {
        self.inner.stream_id
    }

    /// The application-defined tag.
    pub fn tag(&self) -> Tag {
        self.inner.tag
    }

    /// The rank of the originating process.
    pub fn src(&self) -> Rank {
        self.inner.src
    }

    /// The payload's format string (materializes a lazy payload).
    pub fn fmt(&self) -> &FormatString {
        &self.inner.decoded().fmt
    }

    /// The payload values (materializes a lazy payload).
    pub fn values(&self) -> &[Value] {
        &self.inner.decoded().values
    }

    /// The value at position `i`, if present (materializes a lazy
    /// payload).
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.inner.decoded().values.get(i)
    }

    /// Number of payload values, read from the wire header for a raw
    /// packet — this never materializes the payload.
    pub fn arity(&self) -> usize {
        match &self.inner.payload {
            PayloadRepr::Eager(d) => d.values.len(),
            PayloadRepr::Raw { wire, .. } => {
                u16::from_le_bytes([wire[PACKET_HEADER_LEN - 2], wire[PACKET_HEADER_LEN - 1]])
                    as usize
            }
        }
    }

    /// True while this packet's payload is still raw wire bytes —
    /// nothing has forced the `FormatString` + `Values` form yet.
    /// Relay-only nodes keep this true end to end.
    pub fn is_lazy(&self) -> bool {
        matches!(&self.inner.payload, PayloadRepr::Raw { cache, .. } if cache.get().is_none())
    }

    /// The packet's original wire form, when it was decoded from the
    /// wire and its header has not been rewritten since. Re-encoding
    /// such a packet hands these bytes back without touching the
    /// payload (materialization does not invalidate them — values are
    /// immutable, so the bytes stay authoritative).
    pub fn raw_wire(&self) -> Option<&Bytes> {
        match &self.inner.payload {
            PayloadRepr::Raw { wire, .. } => Some(wire),
            PayloadRepr::Eager(_) => None,
        }
    }

    /// The batch body this packet was sliced from, when it arrived as
    /// part of a wire batch. Used to hand an untouched relayed batch
    /// back as the identical buffer.
    pub(crate) fn raw_origin(&self) -> Option<&Bytes> {
        match &self.inner.payload {
            PayloadRepr::Raw { origin, .. } => origin.as_ref(),
            PayloadRepr::Eager(_) => None,
        }
    }

    /// Approximate encoded size in bytes, used for batching decisions.
    /// Exact for raw packets.
    pub fn encoded_size_hint(&self) -> usize {
        match &self.inner.payload {
            PayloadRepr::Raw { wire, .. } => wire.len(),
            PayloadRepr::Eager(d) => {
                // header: stream id + tag + src + fmt string + count
                let header = 4 + 4 + 4 + 4 + d.fmt.canonical().len() + 4;
                header + d.values.iter().map(Value::encoded_size_hint).sum::<usize>()
            }
        }
    }

    /// True when two handles share the same interior allocation (used
    /// by tests to verify zero-copy routing).
    pub fn ptr_eq(&self, other: &Packet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl PartialEq for Packet {
    /// Logical equality: header fields plus the typed payload.
    /// Comparing a lazy packet materializes it.
    fn eq(&self, other: &Packet) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        self.inner.stream_id == other.inner.stream_id
            && self.inner.tag == other.inner.tag
            && self.inner.src == other.inner.src
            && self.inner.decoded() == other.inner.decoded()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner.payload {
            PayloadRepr::Raw { wire, cache, .. } if cache.get().is_none() => write!(
                f,
                "Packet{{stream={}, tag={}, src={}, {} value(s), lazy ({} wire bytes)}}",
                self.inner.stream_id,
                self.inner.tag,
                self.inner.src,
                self.arity(),
                wire.len(),
            ),
            _ => {
                let d = self.inner.decoded();
                write!(
                    f,
                    "Packet{{stream={}, tag={}, src={}, fmt=\"{}\", {} value(s)}}",
                    self.inner.stream_id,
                    self.inner.tag,
                    self.inner.src,
                    d.fmt,
                    d.values.len()
                )
            }
        }
    }
}

/// Builder for assembling packets value by value.
///
/// ```
/// use mrnet_packet::{PacketBuilder, Value};
/// let pkt = PacketBuilder::new(7, 100)
///     .push(42i32)
///     .push(2.5f32)
///     .push("hello")
///     .build();
/// assert_eq!(pkt.fmt().to_string(), "%d %f %s");
/// assert_eq!(pkt.get(0), Some(&Value::Int32(42)));
/// ```
#[derive(Debug)]
pub struct PacketBuilder {
    stream_id: StreamId,
    tag: Tag,
    src: Rank,
    values: Vec<Value>,
}

impl PacketBuilder {
    /// Starts a packet for the given stream and tag.
    pub fn new(stream_id: StreamId, tag: Tag) -> PacketBuilder {
        PacketBuilder {
            stream_id,
            tag,
            src: 0,
            values: Vec::new(),
        }
    }

    /// Sets the originating rank.
    pub fn src(mut self, src: Rank) -> PacketBuilder {
        self.src = src;
        self
    }

    /// Appends a value; the format string is derived from the values.
    pub fn push(mut self, value: impl Into<Value>) -> PacketBuilder {
        self.values.push(value.into());
        self
    }

    /// Finalizes the packet. The format is derived, so this cannot fail.
    pub fn build(self) -> Packet {
        let codes: Vec<_> = self.values.iter().map(Value::type_code).collect();
        let fmt = FormatString::from_codes(codes);
        Packet::new(self.stream_id, self.tag, fmt, self.values)
            .expect("derived format always matches values")
            .with_src(self.src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_packet;
    use crate::error::PacketError;

    fn sample() -> Packet {
        Packet::with_fmt_str(
            3,
            17,
            "%d %f %s",
            vec![Value::Int32(1), Value::Float(2.0), Value::Str("x".into())],
        )
        .unwrap()
    }

    fn lazy(p: &Packet) -> Packet {
        crate::batch::decode_batch_lazy(crate::batch::encode_batch(std::slice::from_ref(p)))
            .unwrap()
            .remove(0)
    }

    #[test]
    fn construction_validates_format() {
        let err = Packet::with_fmt_str(0, 0, "%d", vec![Value::Float(1.0)]).unwrap_err();
        assert!(matches!(err, PacketError::TypeMismatch { .. }));
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.stream_id(), 3);
        assert_eq!(p.tag(), 17);
        assert_eq!(p.src(), 0);
        assert_eq!(p.fmt().to_string(), "%d %f %s");
        assert_eq!(p.get(0), Some(&Value::Int32(1)));
        assert_eq!(p.get(3), None);
        assert_eq!(p.values().len(), 3);
        assert_eq!(p.arity(), 3);
        assert!(!p.is_lazy());
        assert!(p.raw_wire().is_none());
    }

    #[test]
    fn clone_is_shallow() {
        let p = sample();
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        assert_eq!(p, q);
    }

    #[test]
    fn with_src_rewrites_rank() {
        let p = sample().with_src(9);
        assert_eq!(p.src(), 9);
        // Unchanged rank returns the same allocation.
        let q = p.clone().with_src(9);
        assert!(p.ptr_eq(&q));
        // Changing a shared packet copies rather than mutating the
        // other handle.
        let r = p.clone().with_src(10);
        assert_eq!(p.src(), 9);
        assert_eq!(r.src(), 10);
    }

    #[test]
    fn with_stream_retargets() {
        let p = sample().with_stream(44);
        assert_eq!(p.stream_id(), 44);
        assert_eq!(p.tag(), 17);
        let q = p.clone().with_stream(44);
        assert!(p.ptr_eq(&q));
    }

    #[test]
    fn control_packets_are_empty() {
        let p = Packet::control(5, -1);
        assert!(p.fmt().is_empty());
        assert!(p.values().is_empty());
        assert_eq!(p.tag(), -1);
    }

    #[test]
    fn builder_derives_format() {
        let p = PacketBuilder::new(1, 2)
            .src(7)
            .push(5i32)
            .push(vec![1.0f64, 2.0])
            .push("s")
            .build();
        assert_eq!(p.fmt().to_string(), "%d %alf %s");
        assert_eq!(p.src(), 7);
    }

    #[test]
    fn size_hint_tracks_payload() {
        let small = PacketBuilder::new(0, 0).push(1i32).build();
        let big = PacketBuilder::new(0, 0).push(vec![0i64; 100]).build();
        assert!(big.encoded_size_hint() > small.encoded_size_hint() + 700);
    }

    #[test]
    fn display_is_informative() {
        let msg = sample().to_string();
        assert!(msg.contains("stream=3"));
        assert!(msg.contains("%d %f %s"));
    }

    #[test]
    fn lazy_packet_stays_raw_until_touched() {
        let p = lazy(&sample().with_src(6));
        assert!(p.is_lazy());
        // Header accessors and arity never materialize.
        assert_eq!(p.stream_id(), 3);
        assert_eq!(p.tag(), 17);
        assert_eq!(p.src(), 6);
        assert_eq!(p.arity(), 3);
        assert_eq!(p.encoded_size_hint(), p.raw_wire().unwrap().len());
        assert!(p.is_lazy());
        // First payload touch materializes, exactly once.
        assert_eq!(p.get(0), Some(&Value::Int32(1)));
        assert!(!p.is_lazy());
        // Raw bytes remain available after materialization.
        assert!(p.raw_wire().is_some());
    }

    #[test]
    fn lazy_display_does_not_materialize() {
        let p = lazy(&sample());
        let msg = p.to_string();
        assert!(msg.contains("lazy"), "got: {msg}");
        assert!(p.is_lazy());
        p.values();
        assert!(p.to_string().contains("%d %f %s"));
    }

    #[test]
    fn header_edit_on_lazy_packet_drops_raw_bytes() {
        let p = lazy(&sample());
        let q = p.with_stream(99);
        assert_eq!(q.stream_id(), 99);
        assert!(q.raw_wire().is_none(), "stale wire header must not leak");
        assert_eq!(q.values(), sample().values());
        // Same for a shared handle (copy-on-write path).
        let p = lazy(&sample());
        let keep = p.clone();
        let q = p.with_src(31);
        assert_eq!(q.src(), 31);
        assert!(q.raw_wire().is_none());
        assert_eq!(keep.src(), 0);
    }

    #[test]
    fn unchanged_header_edit_keeps_lazy_packet_raw() {
        let p = lazy(&sample().with_src(5));
        let q = p.clone().with_src(5).with_stream(3);
        assert!(q.ptr_eq(&p));
        assert!(q.is_lazy());
    }

    #[test]
    fn lazy_and_eager_compare_equal() {
        let e = sample().with_src(2);
        let l = lazy(&e);
        assert_eq!(l, e);
        assert_eq!(e, l);
        let other = sample().with_src(3);
        assert_ne!(l, other);
    }

    #[test]
    fn reencoding_untouched_packet_is_byte_identical() {
        let p = lazy(&sample().with_src(4));
        let wire = p.raw_wire().unwrap().clone();
        let reenc = encode_packet(&p);
        assert_eq!(reenc, wire);
        assert!(p.is_lazy(), "re-encode must not materialize");
    }
}
