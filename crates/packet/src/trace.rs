//! Wire encoding of trace envelopes (the optional frame trailer).
//!
//! A sampled wave carries a [`TraceEnvelope`] — trace id, stream, and
//! per-hop `(rank, recv_us, send_us)` records — appended to its data
//! frame as a *trailer* so untraced frames stay byte-identical to the
//! plain format (zero trailer bytes). The layout is fixed-width
//! little-endian, matching the packet codec:
//!
//! ```text
//! trailer   := u16 envelope_count, envelope*
//! envelope  := u64 trace_id, u32 stream, u16 hop_count, hop*
//! hop       := u32 rank, u64 recv_us, u64 send_us
//! ```
//!
//! Counts are validated against [`MAX_TRAILER_ENVELOPES`] and
//! `mrnet_obs::tracectx::MAX_TRACE_HOPS` so a corrupt or hostile
//! trailer cannot force large allocations.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mrnet_obs::tracectx::{HopRecord, TraceEnvelope, MAX_TRACE_HOPS};

use crate::error::{PacketError, Result};

/// Most envelopes one trailer may carry (generous: even a fully
/// sampled aggregation wave carries one envelope per leaf path).
pub const MAX_TRAILER_ENVELOPES: usize = 1024;

/// Bytes one hop record occupies on the wire.
const HOP_WIRE_BYTES: usize = 4 + 8 + 8;

/// Bytes `env` will occupy on the wire.
pub fn envelope_encoded_size(env: &TraceEnvelope) -> usize {
    8 + 4 + 2 + env.hops.len() * HOP_WIRE_BYTES
}

/// Appends the wire form of `env` to `buf`.
pub fn encode_envelope_into(env: &TraceEnvelope, buf: &mut BytesMut) {
    buf.put_u64_le(env.trace_id);
    buf.put_u32_le(env.stream);
    buf.put_u16_le(env.hops.len().min(MAX_TRACE_HOPS) as u16);
    for hop in env.hops.iter().take(MAX_TRACE_HOPS) {
        buf.put_u32_le(hop.rank);
        buf.put_u64_le(hop.recv_us);
        buf.put_u64_le(hop.send_us);
    }
}

/// Encodes `env` standalone (the payload of a trace-report packet).
pub fn encode_envelope(env: &TraceEnvelope) -> Bytes {
    let mut buf = BytesMut::with_capacity(envelope_encoded_size(env));
    encode_envelope_into(env, &mut buf);
    buf.freeze()
}

/// Decodes one envelope from the front of `buf`.
pub fn decode_envelope_from(buf: &mut impl Buf) -> Result<TraceEnvelope> {
    if buf.remaining() < 8 + 4 + 2 {
        return Err(PacketError::Truncated {
            context: "trace envelope header",
        });
    }
    let trace_id = buf.get_u64_le();
    let stream = buf.get_u32_le();
    let hop_count = buf.get_u16_le() as usize;
    if hop_count > MAX_TRACE_HOPS {
        return Err(PacketError::LengthOverflow {
            len: hop_count as u64,
            limit: MAX_TRACE_HOPS as u64,
        });
    }
    if buf.remaining() < hop_count * HOP_WIRE_BYTES {
        return Err(PacketError::Truncated {
            context: "trace envelope hops",
        });
    }
    let hops = (0..hop_count)
        .map(|_| HopRecord {
            rank: buf.get_u32_le(),
            recv_us: buf.get_u64_le(),
            send_us: buf.get_u64_le(),
        })
        .collect();
    Ok(TraceEnvelope {
        trace_id,
        stream,
        hops,
    })
}

/// Decodes a standalone envelope, rejecting trailing bytes.
pub fn decode_envelope(bytes: Bytes) -> Result<TraceEnvelope> {
    let mut buf = bytes;
    let env = decode_envelope_from(&mut buf)?;
    if buf.has_remaining() {
        return Err(PacketError::MalformedBatch(
            "trailing bytes after trace envelope",
        ));
    }
    Ok(env)
}

/// Appends the trailer form of `envelopes` to `buf`.
pub fn encode_trailer_into(envelopes: &[TraceEnvelope], buf: &mut BytesMut) {
    let n = envelopes.len().min(MAX_TRAILER_ENVELOPES);
    buf.put_u16_le(n as u16);
    for env in &envelopes[..n] {
        encode_envelope_into(env, buf);
    }
}

/// Decodes a trailer (envelope list) from the front of `buf`.
pub fn decode_trailer_from(buf: &mut impl Buf) -> Result<Vec<TraceEnvelope>> {
    if buf.remaining() < 2 {
        return Err(PacketError::Truncated {
            context: "trace trailer count",
        });
    }
    let count = buf.get_u16_le() as usize;
    if count > MAX_TRAILER_ENVELOPES {
        return Err(PacketError::LengthOverflow {
            len: count as u64,
            limit: MAX_TRAILER_ENVELOPES as u64,
        });
    }
    (0..count).map(|_| decode_envelope_from(buf)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_env() -> TraceEnvelope {
        TraceEnvelope {
            trace_id: (7u64 << 32) | 3,
            stream: 5,
            hops: vec![
                HopRecord {
                    rank: 6,
                    recv_us: 1_000_001,
                    send_us: 1_000_050,
                },
                HopRecord {
                    rank: 2,
                    recv_us: 1_000_120,
                    send_us: 1_000_130,
                },
            ],
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let env = sample_env();
        let wire = encode_envelope(&env);
        assert_eq!(wire.len(), envelope_encoded_size(&env));
        assert_eq!(decode_envelope(wire).unwrap(), env);
    }

    #[test]
    fn trailer_roundtrip_multiple_envelopes() {
        let a = sample_env();
        let mut b = sample_env();
        b.trace_id += 1;
        b.hops.pop();
        let mut buf = BytesMut::new();
        encode_trailer_into(&[a.clone(), b.clone()], &mut buf);
        let mut wire = buf.freeze();
        let got = decode_trailer_from(&mut wire).unwrap();
        assert_eq!(got, vec![a, b]);
        assert!(!wire.has_remaining());
    }

    #[test]
    fn empty_trailer_is_two_bytes() {
        let mut buf = BytesMut::new();
        encode_trailer_into(&[], &mut buf);
        assert_eq!(buf.len(), 2);
        let mut wire = buf.freeze();
        assert_eq!(decode_trailer_from(&mut wire).unwrap(), vec![]);
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let env = sample_env();
        let wire = encode_envelope(&env);
        for cut in 0..wire.len() {
            let err = decode_envelope(wire.slice(..cut)).unwrap_err();
            assert!(matches!(err, PacketError::Truncated { .. }), "cut={cut}");
        }
        let err = decode_envelope({
            let mut long = BytesMut::from(&wire[..]);
            long.put_u8(0);
            long.freeze()
        })
        .unwrap_err();
        assert!(matches!(err, PacketError::MalformedBatch(_)));
    }

    #[test]
    fn hostile_counts_rejected() {
        // Envelope claiming u16::MAX hops with no bodies.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        buf.put_u16_le(u16::MAX);
        let err = decode_envelope_from(&mut buf.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::LengthOverflow { .. }));
        // Trailer claiming more envelopes than the cap.
        let mut buf = BytesMut::new();
        buf.put_u16_le((MAX_TRAILER_ENVELOPES + 1) as u16);
        let err = decode_trailer_from(&mut buf.freeze()).unwrap_err();
        assert!(matches!(err, PacketError::LengthOverflow { .. }));
    }
}
