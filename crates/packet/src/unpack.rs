//! Typed extraction from packets — the receiving-side counterpart of
//! the paper's `stream->recv("%f", result)` scanf-style interface.
//!
//! ```
//! use mrnet_packet::{PacketBuilder, Unpack};
//!
//! let pkt = PacketBuilder::new(1, 0).push(7i32).push(2.5f64).push("be0").build();
//! let (n, x, host): (i32, f64, String) = pkt.unpack().unwrap();
//! assert_eq!((n, x, host.as_str()), (7, 2.5, "be0"));
//! ```

use crate::error::{PacketError, Result};
use crate::packet::Packet;
use crate::value::{TypeCode, Value};

/// Types extractable from a single packet [`Value`].
pub trait FromValue: Sized {
    /// The conversion specifier this type corresponds to.
    const CODE: TypeCode;

    /// Extracts from a value of the matching variant.
    fn from_value(value: &Value) -> Option<Self>;
}

macro_rules! impl_from_value {
    ($($ty:ty => $code:ident, $getter:expr;)*) => {$(
        impl FromValue for $ty {
            const CODE: TypeCode = TypeCode::$code;
            fn from_value(value: &Value) -> Option<Self> {
                $getter(value)
            }
        }
    )*};
}

impl_from_value! {
    i32 => Int32, Value::as_i32;
    u32 => UInt32, Value::as_u32;
    i64 => Int64, Value::as_i64;
    u64 => UInt64, Value::as_u64;
    f32 => Float, Value::as_f32;
    f64 => Double, Value::as_f64;
    String => Str, |v: &Value| v.as_str().map(str::to_owned);
    Vec<u8> => CharArray, |v: &Value| v.as_bytes().map(<[u8]>::to_vec);
    Vec<i32> => Int32Array, |v: &Value| v.as_i32_slice().map(<[i32]>::to_vec);
    Vec<u32> => UInt32Array, |v: &Value| v.as_u32_slice().map(<[u32]>::to_vec);
    Vec<u64> => UInt64Array, |v: &Value| v.as_u64_slice().map(<[u64]>::to_vec);
    Vec<f32> => FloatArray, |v: &Value| v.as_f32_slice().map(<[f32]>::to_vec);
    Vec<f64> => DoubleArray, |v: &Value| v.as_f64_slice().map(<[f64]>::to_vec);
    Vec<String> => StrArray, |v: &Value| v.as_str_array().map(<[String]>::to_vec);
}

impl FromValue for Vec<i64> {
    const CODE: TypeCode = TypeCode::Int64Array;
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Int64Array(v) => Some(v.clone()),
            _ => None,
        }
    }
}

fn extract<T: FromValue>(packet: &Packet, index: usize) -> Result<T> {
    let value = packet.get(index).ok_or(PacketError::ArityMismatch {
        expected: index + 1,
        actual: packet.values().len(),
    })?;
    T::from_value(value).ok_or(PacketError::TypeMismatch {
        index,
        expected: T::CODE.spec(),
        actual: value.type_code().spec(),
    })
}

/// Tuple-typed extraction of a whole packet payload.
pub trait Unpack {
    /// Extracts the payload as a tuple (or scalar), checking arity and
    /// every position's type.
    fn unpack<T: UnpackTuple>(&self) -> Result<T>;

    /// Extracts the value at `index` as `T`.
    fn arg<T: FromValue>(&self, index: usize) -> Result<T>;
}

impl Unpack for Packet {
    fn unpack<T: UnpackTuple>(&self) -> Result<T> {
        T::unpack_from(self)
    }

    fn arg<T: FromValue>(&self, index: usize) -> Result<T> {
        extract(self, index)
    }
}

/// Implemented for scalars and tuples up to arity 6.
pub trait UnpackTuple: Sized {
    /// Number of values consumed.
    const ARITY: usize;

    /// Extracts from the packet, validating total arity.
    fn unpack_from(packet: &Packet) -> Result<Self>;
}

macro_rules! impl_unpack_tuple {
    ($arity:expr; $($t:ident : $idx:tt),+) => {
        impl<$($t: FromValue),+> UnpackTuple for ($($t,)+) {
            const ARITY: usize = $arity;
            fn unpack_from(packet: &Packet) -> Result<Self> {
                if packet.values().len() != $arity {
                    return Err(PacketError::ArityMismatch {
                        expected: $arity,
                        actual: packet.values().len(),
                    });
                }
                Ok(($(extract::<$t>(packet, $idx)?,)+))
            }
        }
    };
}

impl_unpack_tuple!(1; A:0);
impl_unpack_tuple!(2; A:0, B:1);
impl_unpack_tuple!(3; A:0, B:1, C:2);
impl_unpack_tuple!(4; A:0, B:1, C:2, D:3);
impl_unpack_tuple!(5; A:0, B:1, C:2, D:3, E:4);
impl_unpack_tuple!(6; A:0, B:1, C:2, D:3, E:4, F:5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    #[test]
    fn unpack_mixed_tuple() {
        let p = PacketBuilder::new(1, 0)
            .push(-3i32)
            .push(9u64)
            .push(1.25f32)
            .push("x")
            .push(vec![1u32, 2])
            .build();
        let (a, b, c, d, e): (i32, u64, f32, String, Vec<u32>) = p.unpack().unwrap();
        assert_eq!((a, b, c, d.as_str(), e), (-3, 9, 1.25, "x", vec![1, 2]));
    }

    #[test]
    fn unpack_single() {
        let p = PacketBuilder::new(1, 0).push(2.5f64).build();
        let (v,): (f64,) = p.unpack().unwrap();
        assert_eq!(v, 2.5);
    }

    #[test]
    fn arity_mismatch_detected() {
        let p = PacketBuilder::new(1, 0).push(1i32).push(2i32).build();
        let r: Result<(i32,)> = p.unpack();
        assert!(matches!(
            r,
            Err(PacketError::ArityMismatch {
                expected: 1,
                actual: 2
            })
        ));
        let r: Result<(i32, i32, i32)> = p.unpack();
        assert!(matches!(
            r,
            Err(PacketError::ArityMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn type_mismatch_reports_position_and_specs() {
        let p = PacketBuilder::new(1, 0).push(1i32).push(2i32).build();
        let r: Result<(i32, f64)> = p.unpack();
        match r {
            Err(PacketError::TypeMismatch {
                index: 1,
                expected: "%lf",
                actual: "%d",
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn arg_extracts_by_index() {
        let p = PacketBuilder::new(1, 0)
            .push("skip")
            .push(vec![1.5f64, 2.5])
            .build();
        let v: Vec<f64> = p.arg(1).unwrap();
        assert_eq!(v, vec![1.5, 2.5]);
        assert!(p.arg::<i32>(0).is_err());
        assert!(p.arg::<i32>(9).is_err());
    }

    #[test]
    fn unpack_materializes_a_lazy_packet() {
        let p = PacketBuilder::new(1, 0).push(7i32).push("be0").build();
        let batch = crate::batch::encode_batch(std::slice::from_ref(&p));
        let lazy = crate::batch::decode_batch_lazy(batch).unwrap().remove(0);
        assert!(lazy.is_lazy());
        let (n, host): (i32, String) = lazy.unpack().unwrap();
        assert_eq!((n, host.as_str()), (7, "be0"));
        assert!(!lazy.is_lazy());
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn all_array_types_extract() {
        let p = PacketBuilder::new(1, 0)
            .push(vec![1u8, 2])
            .push(vec![-1i32])
            .push(vec![-1i64])
            .push(vec![1u64])
            .push(vec![0.5f32])
            .push(vec!["s".to_string()])
            .build();
        let (a, b, c, d, e, f): (Vec<u8>, Vec<i32>, Vec<i64>, Vec<u64>, Vec<f32>, Vec<String>) =
            p.unpack().unwrap();
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, vec![-1]);
        assert_eq!(c, vec![-1]);
        assert_eq!(d, vec![1]);
        assert_eq!(e, vec![0.5]);
        assert_eq!(f, vec!["s"]);
    }
}
