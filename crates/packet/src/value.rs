//! Typed data elements carried in MRNet packets.
//!
//! The paper (§2.4) describes each packet as carrying "an array of data
//! elements, where each element consists mainly of a C union of type
//! integer, float, character, or a pointer to arrays of these types".
//! [`Value`] is the safe Rust rendering of that union, and [`TypeCode`]
//! is the set of conversion specifiers understood in format strings
//! (§2.1: "a format string similar to that used by C formatted I/O
//! primitives printf and scanf … MRNet also adds specifiers for arrays
//! of simple data types").

use crate::error::{PacketError, Result};

/// A conversion specifier from an MRNet format string.
///
/// Scalars use the familiar `printf` letters; array variants prefix the
/// scalar letter with `a` (e.g. `%af` is an array of `f32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeCode {
    /// `%c` — a single byte character.
    Char,
    /// `%d` — signed 32-bit integer.
    Int32,
    /// `%ud` — unsigned 32-bit integer.
    UInt32,
    /// `%ld` — signed 64-bit integer.
    Int64,
    /// `%uld` — unsigned 64-bit integer.
    UInt64,
    /// `%f` — 32-bit float.
    Float,
    /// `%lf` — 64-bit float.
    Double,
    /// `%s` — UTF-8 string.
    Str,
    /// `%ac` — array of bytes.
    CharArray,
    /// `%ad` — array of `i32`.
    Int32Array,
    /// `%aud` — array of `u32`.
    UInt32Array,
    /// `%ald` — array of `i64`.
    Int64Array,
    /// `%auld` — array of `u64`.
    UInt64Array,
    /// `%af` — array of `f32`.
    FloatArray,
    /// `%alf` — array of `f64`.
    DoubleArray,
    /// `%as` — array of strings.
    StrArray,
}

impl TypeCode {
    /// All type codes, in wire-tag order. The position of a code in this
    /// table is its wire tag byte.
    pub const ALL: [TypeCode; 16] = [
        TypeCode::Char,
        TypeCode::Int32,
        TypeCode::UInt32,
        TypeCode::Int64,
        TypeCode::UInt64,
        TypeCode::Float,
        TypeCode::Double,
        TypeCode::Str,
        TypeCode::CharArray,
        TypeCode::Int32Array,
        TypeCode::UInt32Array,
        TypeCode::Int64Array,
        TypeCode::UInt64Array,
        TypeCode::FloatArray,
        TypeCode::DoubleArray,
        TypeCode::StrArray,
    ];

    /// Parses the body of a conversion specifier (the part after `%`).
    pub fn from_spec(spec: &str) -> Result<TypeCode> {
        Ok(match spec {
            "c" => TypeCode::Char,
            "d" => TypeCode::Int32,
            "ud" | "u" => TypeCode::UInt32,
            "ld" => TypeCode::Int64,
            "uld" | "lu" => TypeCode::UInt64,
            "f" => TypeCode::Float,
            "lf" => TypeCode::Double,
            "s" => TypeCode::Str,
            "ac" => TypeCode::CharArray,
            "ad" => TypeCode::Int32Array,
            "aud" | "au" => TypeCode::UInt32Array,
            "ald" => TypeCode::Int64Array,
            "auld" | "alu" => TypeCode::UInt64Array,
            "af" => TypeCode::FloatArray,
            "alf" => TypeCode::DoubleArray,
            "as" => TypeCode::StrArray,
            other => return Err(PacketError::UnknownSpecifier(format!("%{other}"))),
        })
    }

    /// The canonical specifier text, including the leading `%`.
    pub fn spec(self) -> &'static str {
        match self {
            TypeCode::Char => "%c",
            TypeCode::Int32 => "%d",
            TypeCode::UInt32 => "%ud",
            TypeCode::Int64 => "%ld",
            TypeCode::UInt64 => "%uld",
            TypeCode::Float => "%f",
            TypeCode::Double => "%lf",
            TypeCode::Str => "%s",
            TypeCode::CharArray => "%ac",
            TypeCode::Int32Array => "%ad",
            TypeCode::UInt32Array => "%aud",
            TypeCode::Int64Array => "%ald",
            TypeCode::UInt64Array => "%auld",
            TypeCode::FloatArray => "%af",
            TypeCode::DoubleArray => "%alf",
            TypeCode::StrArray => "%as",
        }
    }

    /// The wire tag byte identifying this type in self-describing
    /// encodings.
    pub fn tag(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&t| t == self)
            .expect("every TypeCode is in ALL") as u8
    }

    /// Recovers a type code from its wire tag byte.
    pub fn from_tag(tag: u8) -> Result<TypeCode> {
        Self::ALL
            .get(tag as usize)
            .copied()
            .ok_or(PacketError::UnknownTypeTag(tag))
    }

    /// Whether this code denotes an array type.
    pub fn is_array(self) -> bool {
        matches!(
            self,
            TypeCode::CharArray
                | TypeCode::Int32Array
                | TypeCode::UInt32Array
                | TypeCode::Int64Array
                | TypeCode::UInt64Array
                | TypeCode::FloatArray
                | TypeCode::DoubleArray
                | TypeCode::StrArray
        )
    }

    /// The element type of an array code, or `self` for scalars.
    pub fn element_type(self) -> TypeCode {
        match self {
            TypeCode::CharArray => TypeCode::Char,
            TypeCode::Int32Array => TypeCode::Int32,
            TypeCode::UInt32Array => TypeCode::UInt32,
            TypeCode::Int64Array => TypeCode::Int64,
            TypeCode::UInt64Array => TypeCode::UInt64,
            TypeCode::FloatArray => TypeCode::Float,
            TypeCode::DoubleArray => TypeCode::Double,
            TypeCode::StrArray => TypeCode::Str,
            scalar => scalar,
        }
    }

    /// The array code whose element type is `self`; `None` for `self`
    /// already being an array (nested arrays are not supported, as in
    /// the paper).
    pub fn array_of(self) -> Option<TypeCode> {
        Some(match self {
            TypeCode::Char => TypeCode::CharArray,
            TypeCode::Int32 => TypeCode::Int32Array,
            TypeCode::UInt32 => TypeCode::UInt32Array,
            TypeCode::Int64 => TypeCode::Int64Array,
            TypeCode::UInt64 => TypeCode::UInt64Array,
            TypeCode::Float => TypeCode::FloatArray,
            TypeCode::Double => TypeCode::DoubleArray,
            TypeCode::Str => TypeCode::StrArray,
            _ => return None,
        })
    }
}

/// A single typed data element in a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single byte character (`%c`).
    Char(u8),
    /// Signed 32-bit integer (`%d`).
    Int32(i32),
    /// Unsigned 32-bit integer (`%ud`).
    UInt32(u32),
    /// Signed 64-bit integer (`%ld`).
    Int64(i64),
    /// Unsigned 64-bit integer (`%uld`).
    UInt64(u64),
    /// 32-bit float (`%f`).
    Float(f32),
    /// 64-bit float (`%lf`).
    Double(f64),
    /// UTF-8 string (`%s`).
    Str(String),
    /// Array of bytes (`%ac`).
    CharArray(Vec<u8>),
    /// Array of `i32` (`%ad`).
    Int32Array(Vec<i32>),
    /// Array of `u32` (`%aud`).
    UInt32Array(Vec<u32>),
    /// Array of `i64` (`%ald`).
    Int64Array(Vec<i64>),
    /// Array of `u64` (`%auld`).
    UInt64Array(Vec<u64>),
    /// Array of `f32` (`%af`).
    FloatArray(Vec<f32>),
    /// Array of `f64` (`%alf`).
    DoubleArray(Vec<f64>),
    /// Array of strings (`%as`).
    StrArray(Vec<String>),
}

impl Value {
    /// The type code of this value.
    pub fn type_code(&self) -> TypeCode {
        match self {
            Value::Char(_) => TypeCode::Char,
            Value::Int32(_) => TypeCode::Int32,
            Value::UInt32(_) => TypeCode::UInt32,
            Value::Int64(_) => TypeCode::Int64,
            Value::UInt64(_) => TypeCode::UInt64,
            Value::Float(_) => TypeCode::Float,
            Value::Double(_) => TypeCode::Double,
            Value::Str(_) => TypeCode::Str,
            Value::CharArray(_) => TypeCode::CharArray,
            Value::Int32Array(_) => TypeCode::Int32Array,
            Value::UInt32Array(_) => TypeCode::UInt32Array,
            Value::Int64Array(_) => TypeCode::Int64Array,
            Value::UInt64Array(_) => TypeCode::UInt64Array,
            Value::FloatArray(_) => TypeCode::FloatArray,
            Value::DoubleArray(_) => TypeCode::DoubleArray,
            Value::StrArray(_) => TypeCode::StrArray,
        }
    }

    /// Returns the contained `i32`, if this is a `%d` value.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::Int32(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained `u32`, if this is a `%ud` value.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::UInt32(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained `i64`, if this is a `%ld` value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained `u64`, if this is a `%uld` value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained `f32`, if this is a `%f` value.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained `f64`, if this is a `%lf` value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a `%s` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained `f32` slice, if this is a `%af` value.
    pub fn as_f32_slice(&self) -> Option<&[f32]> {
        match self {
            Value::FloatArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained `f64` slice, if this is a `%alf` value.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Value::DoubleArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained `i32` slice, if this is a `%ad` value.
    pub fn as_i32_slice(&self) -> Option<&[i32]> {
        match self {
            Value::Int32Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained `i64` slice, if this is a `%ald` value.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            Value::Int64Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained `u32` slice, if this is a `%aud` value.
    pub fn as_u32_slice(&self) -> Option<&[u32]> {
        match self {
            Value::UInt32Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained `u64` slice, if this is a `%auld` value.
    pub fn as_u64_slice(&self) -> Option<&[u64]> {
        match self {
            Value::UInt64Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained string array, if this is a `%as` value.
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained byte slice, if this is a `%ac` value.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::CharArray(v) => Some(v),
            _ => None,
        }
    }

    /// Number of elements: 1 for scalars, the array length for arrays.
    pub fn len(&self) -> usize {
        match self {
            Value::CharArray(v) => v.len(),
            Value::Int32Array(v) => v.len(),
            Value::UInt32Array(v) => v.len(),
            Value::Int64Array(v) => v.len(),
            Value::UInt64Array(v) => v.len(),
            Value::FloatArray(v) => v.len(),
            Value::DoubleArray(v) => v.len(),
            Value::StrArray(v) => v.len(),
            _ => 1,
        }
    }

    /// True only for empty array values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate encoded size in bytes, used for batching decisions.
    pub fn encoded_size_hint(&self) -> usize {
        match self {
            Value::Char(_) => 1,
            Value::Int32(_) | Value::UInt32(_) | Value::Float(_) => 4,
            Value::Int64(_) | Value::UInt64(_) | Value::Double(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::CharArray(v) => 4 + v.len(),
            Value::Int32Array(v) => 4 + 4 * v.len(),
            Value::UInt32Array(v) => 4 + 4 * v.len(),
            Value::Int64Array(v) => 4 + 8 * v.len(),
            Value::UInt64Array(v) => 4 + 8 * v.len(),
            Value::FloatArray(v) => 4 + 4 * v.len(),
            Value::DoubleArray(v) => 4 + 8 * v.len(),
            Value::StrArray(v) => 4 + v.iter().map(|s| 4 + s.len()).sum::<usize>(),
        }
    }
}

macro_rules! impl_from {
    ($($from:ty => $variant:ident),* $(,)?) => {
        $(impl From<$from> for Value {
            fn from(v: $from) -> Value { Value::$variant(v) }
        })*
    };
}

impl_from! {
    i32 => Int32,
    u32 => UInt32,
    i64 => Int64,
    u64 => UInt64,
    f32 => Float,
    f64 => Double,
    String => Str,
    Vec<u8> => CharArray,
    Vec<i32> => Int32Array,
    Vec<u32> => UInt32Array,
    Vec<i64> => Int64Array,
    Vec<u64> => UInt64Array,
    Vec<f32> => FloatArray,
    Vec<f64> => DoubleArray,
    Vec<String> => StrArray,
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_from_spec() {
        for code in TypeCode::ALL {
            let spec = code.spec();
            assert_eq!(TypeCode::from_spec(&spec[1..]).unwrap(), code);
        }
    }

    #[test]
    fn tag_round_trips() {
        for code in TypeCode::ALL {
            assert_eq!(TypeCode::from_tag(code.tag()).unwrap(), code);
        }
        assert!(matches!(
            TypeCode::from_tag(200),
            Err(PacketError::UnknownTypeTag(200))
        ));
    }

    #[test]
    fn from_spec_rejects_unknown() {
        assert!(TypeCode::from_spec("q").is_err());
        assert!(TypeCode::from_spec("").is_err());
        assert!(TypeCode::from_spec("dd").is_err());
    }

    #[test]
    fn from_spec_accepts_aliases() {
        assert_eq!(TypeCode::from_spec("u").unwrap(), TypeCode::UInt32);
        assert_eq!(TypeCode::from_spec("lu").unwrap(), TypeCode::UInt64);
        assert_eq!(TypeCode::from_spec("au").unwrap(), TypeCode::UInt32Array);
        assert_eq!(TypeCode::from_spec("alu").unwrap(), TypeCode::UInt64Array);
    }

    #[test]
    fn array_element_relationships() {
        for code in TypeCode::ALL {
            if code.is_array() {
                assert_eq!(code.element_type().array_of(), Some(code));
            } else {
                let arr = code.array_of().expect("every scalar has an array form");
                assert_eq!(arr.element_type(), code);
                assert!(arr.is_array());
            }
        }
    }

    #[test]
    fn value_type_codes_match_variants() {
        assert_eq!(Value::Int32(3).type_code(), TypeCode::Int32);
        assert_eq!(Value::Str("x".into()).type_code(), TypeCode::Str);
        assert_eq!(
            Value::FloatArray(vec![1.0, 2.0]).type_code(),
            TypeCode::FloatArray
        );
    }

    #[test]
    fn typed_getters() {
        assert_eq!(Value::Int32(-7).as_i32(), Some(-7));
        assert_eq!(Value::Int32(-7).as_f32(), None);
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(
            Value::FloatArray(vec![1.0]).as_f32_slice(),
            Some(&[1.0f32][..])
        );
        assert_eq!(Value::UInt64(9).as_u64(), Some(9));
    }

    #[test]
    fn lengths() {
        assert_eq!(Value::Int32(1).len(), 1);
        assert!(!Value::Int32(1).is_empty());
        assert_eq!(Value::Int32Array(vec![]).len(), 0);
        assert!(Value::Int32Array(vec![]).is_empty());
        assert_eq!(Value::StrArray(vec!["a".into(), "b".into()]).len(), 2);
    }

    #[test]
    fn conversions_from_rust_types() {
        let v: Value = 42i32.into();
        assert_eq!(v, Value::Int32(42));
        let v: Value = "abc".into();
        assert_eq!(v, Value::Str("abc".into()));
        let v: Value = vec![1.0f64, 2.0].into();
        assert_eq!(v, Value::DoubleArray(vec![1.0, 2.0]));
    }

    #[test]
    fn encoded_size_hints_reasonable() {
        assert_eq!(Value::Char(b'x').encoded_size_hint(), 1);
        assert_eq!(Value::Int32(0).encoded_size_hint(), 4);
        assert_eq!(Value::Str("abcd".into()).encoded_size_hint(), 8);
        assert_eq!(Value::Int64Array(vec![0; 3]).encoded_size_hint(), 28);
    }
}
