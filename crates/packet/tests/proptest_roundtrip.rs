//! Property-based tests: arbitrary packets survive the packed binary
//! codec and batching unchanged, and arbitrary byte soup never panics
//! the decoder.

use bytes::Bytes;
use mrnet_packet::{
    decode_batch, decode_batch_lazy, decode_packet, encode_batch, encode_packet, FormatString,
    Packet, Value,
};
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u8>().prop_map(Value::Char),
        any::<i32>().prop_map(Value::Int32),
        any::<u32>().prop_map(Value::UInt32),
        any::<i64>().prop_map(Value::Int64),
        any::<u64>().prop_map(Value::UInt64),
        any::<f32>().prop_map(Value::Float),
        any::<f64>().prop_map(Value::Double),
        ".{0,40}".prop_map(Value::Str),
    ]
}

fn arb_array() -> impl Strategy<Value = Value> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..50).prop_map(Value::CharArray),
        proptest::collection::vec(any::<i32>(), 0..50).prop_map(Value::Int32Array),
        proptest::collection::vec(any::<u32>(), 0..50).prop_map(Value::UInt32Array),
        proptest::collection::vec(any::<i64>(), 0..50).prop_map(Value::Int64Array),
        proptest::collection::vec(any::<u64>(), 0..50).prop_map(Value::UInt64Array),
        proptest::collection::vec(any::<f32>(), 0..50).prop_map(Value::FloatArray),
        proptest::collection::vec(any::<f64>(), 0..50).prop_map(Value::DoubleArray),
        proptest::collection::vec(".{0,10}".prop_map(String::from), 0..10)
            .prop_map(Value::StrArray),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![arb_scalar(), arb_array()]
}

prop_compose! {
    fn arb_packet()(
        stream_id in any::<u32>(),
        tag in any::<i32>(),
        src in any::<u32>(),
        values in proptest::collection::vec(arb_value(), 0..8),
    ) -> Packet {
        let codes: Vec<_> = values.iter().map(Value::type_code).collect();
        let fmt = FormatString::from_codes(codes);
        Packet::new(stream_id, tag, fmt, values).unwrap().with_src(src)
    }
}

// NaN-aware equality: the codec must preserve bit patterns for normal
// floats; NaN payload bits may legally differ only in representation we
// don't use, so compare via to_bits.
fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        (Value::FloatArray(x), Value::FloatArray(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (Value::DoubleArray(x), Value::DoubleArray(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        _ => a == b,
    }
}

fn packets_eq(a: &Packet, b: &Packet) -> bool {
    a.stream_id() == b.stream_id()
        && a.tag() == b.tag()
        && a.src() == b.src()
        && a.fmt() == b.fmt()
        && a.values().len() == b.values().len()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| values_eq(x, y))
}

proptest! {
    #[test]
    fn packet_codec_round_trip(packet in arb_packet()) {
        let decoded = decode_packet(encode_packet(&packet)).unwrap();
        prop_assert!(packets_eq(&packet, &decoded));
    }

    #[test]
    fn batch_codec_round_trip(packets in proptest::collection::vec(arb_packet(), 0..10)) {
        let decoded = decode_batch(encode_batch(&packets)).unwrap();
        prop_assert_eq!(decoded.len(), packets.len());
        for (a, b) in packets.iter().zip(&decoded) {
            prop_assert!(packets_eq(a, b));
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; panics/aborts are not.
        let _ = decode_packet(Bytes::from(bytes.clone()));
        let _ = decode_batch(Bytes::from(bytes));
    }

    #[test]
    fn format_string_canonical_round_trip(codes in proptest::collection::vec(0u8..16, 0..12)) {
        let codes: Vec<_> = codes
            .into_iter()
            .map(|t| mrnet_packet::TypeCode::from_tag(t).unwrap())
            .collect();
        let fmt = FormatString::from_codes(codes.clone());
        let reparsed = FormatString::parse(&fmt.to_string()).unwrap();
        prop_assert_eq!(reparsed.codes(), &codes[..]);
    }

    #[test]
    fn lazy_and_eager_decode_are_observationally_equivalent(
        packets in proptest::collection::vec(arb_packet(), 0..10),
    ) {
        // Same batch bytes through both decoders: every header field,
        // format string, and value must agree for every Value type.
        let wire = encode_batch(&packets);
        let eager = decode_batch(wire.clone()).unwrap();
        let lazy = decode_batch_lazy(wire).unwrap();
        prop_assert_eq!(lazy.len(), eager.len());
        for (l, e) in lazy.iter().zip(&eager) {
            prop_assert!(l.is_lazy());
            prop_assert!(packets_eq(l, e));
            prop_assert!(!l.is_lazy());
        }
    }

    #[test]
    fn untouched_lazy_batch_reencodes_byte_identically(
        packets in proptest::collection::vec(arb_packet(), 1..10),
    ) {
        let inbound = encode_batch(&packets);
        let relayed = decode_batch_lazy(inbound.clone()).unwrap();
        let outbound = encode_batch(&relayed);
        prop_assert_eq!(&outbound, &inbound);
        prop_assert_eq!(outbound.as_ref().as_ptr(), inbound.as_ref().as_ptr());
    }

    #[test]
    fn lazy_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_batch_lazy(Bytes::from(bytes));
    }

    #[test]
    fn lazy_and_eager_agree_on_rejection(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // The structural validation pass must accept exactly the byte
        // strings the eager decoder accepts.
        let eager = decode_batch(Bytes::from(bytes.clone()));
        let lazy = decode_batch_lazy(Bytes::from(bytes));
        prop_assert_eq!(eager.is_ok(), lazy.is_ok());
    }

    #[test]
    fn encoded_size_hint_is_close(packet in arb_packet()) {
        // The hint must be an upper bound within the header slack (the
        // hint charges the textual fmt, the wire uses per-value tags).
        let actual = encode_packet(&packet).len();
        let hint = packet.encoded_size_hint();
        prop_assert!(actual <= hint + 16, "actual {} hint {}", actual, hint);
    }
}
