//! Performance data aggregation: time-aligned (Figure 6) and ordinal
//! (Figure 5a) schemes, plus the custom MRNet filter that distributes
//! the time-aligned scheme through the tree.
//!
//! §3.2: "Paradyn's Performance Data Aggregation filter collects data
//! samples on all of its inputs, aligns the data samples, and then
//! reduces them. … the filter maintains the notion of an output sample
//! interval. … If [a sample's] arrival caused the current output
//! sample interval to be full (i.e., to have sample data from all
//! input connections over all input connections), the filter reduces
//! the aligned samples and advances its output sample interval."

use std::collections::{HashMap, VecDeque};

use mrnet_filters::{FilterContext, FilterError, Transform};
use mrnet_packet::{FormatString, Packet, Rank};

use crate::samples::Sample;

/// How aligned per-input contributions reduce into one output value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Sum across inputs (global CPU time, message volume).
    Sum,
    /// Average across inputs (global utilization).
    Avg,
    /// Minimum across inputs.
    Min,
    /// Maximum across inputs.
    Max,
}

impl AlignOp {
    fn reduce(self, contributions: &[f64]) -> f64 {
        match self {
            AlignOp::Sum => contributions.iter().sum(),
            AlignOp::Avg => contributions.iter().sum::<f64>() / contributions.len() as f64,
            AlignOp::Min => contributions.iter().copied().fold(f64::INFINITY, f64::min),
            AlignOp::Max => contributions
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// The Figure 6 time-aligned aggregator over a fixed set of inputs.
#[derive(Debug)]
pub struct TimeAlignedAggregator {
    queues: Vec<VecDeque<Sample>>,
    interval_len: f64,
    op: AlignOp,
    /// The current output sample interval `[start, start+len)`, set
    /// once every input has produced data.
    current_start: Option<f64>,
}

impl TimeAlignedAggregator {
    /// An aggregator over `num_inputs` input connections producing
    /// output samples of length `interval_len`.
    pub fn new(num_inputs: usize, interval_len: f64, op: AlignOp) -> TimeAlignedAggregator {
        assert!(num_inputs > 0, "aggregator needs at least one input");
        assert!(
            interval_len > 0.0,
            "output interval must have positive length"
        );
        TimeAlignedAggregator {
            queues: (0..num_inputs).map(|_| VecDeque::new()).collect(),
            interval_len,
            op,
            current_start: None,
        }
    }

    /// Number of input connections.
    pub fn num_inputs(&self) -> usize {
        self.queues.len()
    }

    /// Queued samples across all inputs (for diagnostics).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Accepts a sample from `input`; returns any output samples whose
    /// intervals became full (Figure 6 b–e).
    pub fn push(&mut self, input: usize, sample: Sample) -> Vec<Sample> {
        self.queues[input].push_back(sample);
        self.establish_interval();
        let mut out = Vec::new();
        while let Some(reduced) = self.try_reduce() {
            out.push(reduced);
        }
        out
    }

    /// Sets the first output interval once every input has data: it
    /// begins at the latest first-sample start, so every input can
    /// cover it (earlier partial data is clipped proportionally).
    fn establish_interval(&mut self) {
        if self.current_start.is_some() {
            return;
        }
        if self.queues.iter().any(VecDeque::is_empty) {
            return;
        }
        let start = self
            .queues
            .iter()
            .map(|q| q.front().expect("checked non-empty").start)
            .fold(f64::NEG_INFINITY, f64::max);
        self.current_start = Some(start);
    }

    /// True when `input`'s queued samples cover the current interval.
    fn covers(&self, input: usize, end: f64) -> bool {
        self.queues[input]
            .back()
            .is_some_and(|last| last.end >= end)
    }

    /// If the current interval is full, reduce it and advance.
    fn try_reduce(&mut self) -> Option<Sample> {
        let start = self.current_start?;
        let end = start + self.interval_len;
        if !(0..self.queues.len()).all(|i| self.covers(i, end)) {
            return None;
        }
        let mut contributions = Vec::with_capacity(self.queues.len());
        for queue in &mut self.queues {
            let mut acc = 0.0;
            while let Some(front) = queue.front().copied() {
                if front.end <= end {
                    // Entirely inside (or before) the interval: consume,
                    // counting only the overlapping share.
                    let share = if front.len() > 0.0 {
                        front.value * (front.overlap(start, end) / front.len())
                    } else {
                        0.0
                    };
                    acc += share;
                    queue.pop_front();
                } else {
                    // Straddles the interval end: split proportionally
                    // (Figure 6c), keep the remainder for the next
                    // interval.
                    if front.start < end {
                        let (left, right) = front.split_at(end);
                        acc += left.value * (left.overlap(start, end) / left.len());
                        *queue.front_mut().expect("non-empty") = right;
                    }
                    break;
                }
            }
            contributions.push(acc);
        }
        self.current_start = Some(end);
        Some(Sample::new(self.op.reduce(&contributions), start, end))
    }
}

/// The ordinal baseline (Figure 5a): aggregate the first sample from
/// each input, then the second, and so on, ignoring timestamps.
#[derive(Debug)]
pub struct OrdinalAggregator {
    queues: Vec<VecDeque<Sample>>,
    op: AlignOp,
}

impl OrdinalAggregator {
    /// An ordinal aggregator over `num_inputs` inputs.
    pub fn new(num_inputs: usize, op: AlignOp) -> OrdinalAggregator {
        assert!(num_inputs > 0);
        OrdinalAggregator {
            queues: (0..num_inputs).map(|_| VecDeque::new()).collect(),
            op,
        }
    }

    /// Accepts a sample from `input`; returns output samples for every
    /// complete rank of inputs.
    pub fn push(&mut self, input: usize, sample: Sample) -> Vec<Sample> {
        self.queues[input].push_back(sample);
        let mut out = Vec::new();
        while self.queues.iter().all(|q| !q.is_empty()) {
            let wave: Vec<Sample> = self
                .queues
                .iter_mut()
                .map(|q| q.pop_front().expect("checked non-empty"))
                .collect();
            let values: Vec<f64> = wave.iter().map(|s| s.value).collect();
            let start = wave.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
            let end = wave.iter().map(|s| s.end).fold(f64::NEG_INFINITY, f64::max);
            out.push(Sample::new(self.op.reduce(&values), start, end));
        }
        out
    }
}

/// The custom MRNet transformation filter wrapping
/// [`TimeAlignedAggregator`] — Paradyn's "Performance Data Aggregation
/// filter within each MRNet internal process" (§3.2).
///
/// Use with [`mrnet::SyncMode::DoNotWait`]: the filter performs its own
/// time-based alignment, so no wave synchronization is wanted. Inputs
/// are distinguished by packet source rank; outputs carry the local
/// process's rank so the next level up can distinguish *its* inputs.
pub struct TimeAlignedFilter {
    fmt: FormatString,
    interval_len: f64,
    op: AlignOp,
    state: Option<TimeAlignedAggregator>,
    input_of_src: HashMap<Rank, usize>,
}

impl TimeAlignedFilter {
    /// The registry name used by convention.
    pub const NAME: &'static str = "paradyn_time_aligned";

    /// Creates the filter; the aggregator is sized on first use from
    /// the filter context's child count.
    pub fn new(interval_len: f64, op: AlignOp) -> TimeAlignedFilter {
        TimeAlignedFilter {
            fmt: FormatString::parse(Sample::FORMAT).expect("static format"),
            interval_len,
            op,
            state: None,
            input_of_src: HashMap::new(),
        }
    }
}

impl Transform for TimeAlignedFilter {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn input_format(&self) -> Option<&FormatString> {
        Some(&self.fmt)
    }

    fn transform(
        &mut self,
        inputs: Vec<Packet>,
        ctx: &FilterContext,
    ) -> mrnet_filters::Result<Vec<Packet>> {
        let n = ctx.num_children.max(1);
        let agg = self
            .state
            .get_or_insert_with(|| TimeAlignedAggregator::new(n, self.interval_len, self.op));
        let mut out = Vec::new();
        for packet in inputs {
            let sample =
                Sample::from_packet(&packet).map_err(|e| FilterError::Custom(e.to_string()))?;
            let next_idx = self.input_of_src.len();
            let idx = *self.input_of_src.entry(packet.src()).or_insert(next_idx);
            if idx >= agg.num_inputs() {
                return Err(FilterError::Custom(format!(
                    "more distinct sources than input connections ({} >= {})",
                    idx,
                    agg.num_inputs()
                )));
            }
            for produced in agg.push(idx, sample) {
                out.push(
                    produced
                        .to_packet(packet.stream_id(), packet.tag())
                        .with_src(ctx.local_rank),
                );
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::SampleGenerator;

    #[test]
    fn aligned_sum_of_equal_rate_inputs() {
        let mut agg = TimeAlignedAggregator::new(2, 0.2, AlignOp::Sum);
        let mut g0 = SampleGenerator::new(5.0, 0.0, 0.0, 1.0, 1);
        let mut g1 = SampleGenerator::new(5.0, 0.0, 0.0, 2.0, 2);
        let mut outputs = Vec::new();
        for _ in 0..10 {
            outputs.extend(agg.push(0, g0.next_sample()));
            outputs.extend(agg.push(1, g1.next_sample()));
        }
        assert!(outputs.len() >= 9);
        for o in &outputs {
            assert!((o.value - 3.0).abs() < 1e-9, "each interval sums to 3");
            assert!((o.len() - 0.2).abs() < 1e-12);
        }
        // Output intervals are contiguous.
        for w in outputs.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
    }

    #[test]
    fn misaligned_inputs_are_split_proportionally() {
        // Input 1 is phase-shifted by half a period; total value over
        // any window must still be conserved.
        let mut agg = TimeAlignedAggregator::new(2, 0.2, AlignOp::Sum);
        let mut g0 = SampleGenerator::new(5.0, 0.0, 0.0, 1.0, 1);
        let mut g1 = SampleGenerator::new(5.0, 0.1, 0.0, 1.0, 2);
        let mut outputs = Vec::new();
        for _ in 0..50 {
            outputs.extend(agg.push(0, g0.next_sample()));
            outputs.extend(agg.push(1, g1.next_sample()));
        }
        assert!(outputs.len() > 40);
        // Steady state: every full interval carries 1.0 from each
        // input, in spite of the phase shift.
        for o in &outputs[1..] {
            assert!((o.value - 2.0).abs() < 1e-9, "interval {o:?}");
        }
        // First interval starts at the later input's first start.
        assert!((outputs[0].start - 0.1).abs() < 1e-12);
    }

    #[test]
    fn value_conservation_under_jitter() {
        // With jittery intervals, total emitted value over a long run
        // approaches total injected value within one interval's worth.
        let mut agg = TimeAlignedAggregator::new(3, 0.2, AlignOp::Sum);
        let mut gens: Vec<_> = (0..3)
            .map(|i| SampleGenerator::new(5.0, 0.02 * i as f64, 0.3, 1.0, i as u64))
            .collect();
        let mut injected = [0.0f64; 3];
        let mut emitted = 0.0f64;
        let mut last_end = 0.0f64;
        for _ in 0..500 {
            for (i, g) in gens.iter_mut().enumerate() {
                let s = g.next_sample();
                injected[i] += s.value;
                for o in agg.push(i, s) {
                    emitted += o.value;
                    last_end = o.end;
                }
            }
        }
        // Compare against value injected within the emitted window:
        // 5 samples/s at level 1.0 ⇒ 5 value-units/s per input.
        let expected = 3.0 * 5.0 * last_end;
        assert!(
            (emitted - expected).abs() / expected < 0.05,
            "emitted {emitted} vs expected {expected}"
        );
    }

    #[test]
    fn avg_min_max_ops() {
        let mk = |op| {
            let mut agg = TimeAlignedAggregator::new(2, 1.0, op);
            let mut out = Vec::new();
            out.extend(agg.push(0, Sample::new(2.0, 0.0, 1.0)));
            out.extend(agg.push(1, Sample::new(6.0, 0.0, 1.0)));
            out
        };
        assert!((mk(AlignOp::Avg)[0].value - 4.0).abs() < 1e-12);
        assert!((mk(AlignOp::Min)[0].value - 2.0).abs() < 1e-12);
        assert!((mk(AlignOp::Max)[0].value - 6.0).abs() < 1e-12);
    }

    #[test]
    fn no_output_until_all_inputs_cover() {
        let mut agg = TimeAlignedAggregator::new(2, 0.5, AlignOp::Sum);
        assert!(agg.push(0, Sample::new(1.0, 0.0, 0.5)).is_empty());
        assert!(agg.push(0, Sample::new(1.0, 0.5, 1.0)).is_empty());
        assert_eq!(agg.pending(), 2);
        let out = agg.push(1, Sample::new(4.0, 0.0, 0.5));
        assert_eq!(out.len(), 1);
        assert!((out[0].value - 5.0).abs() < 1e-12);
    }

    #[test]
    fn one_arrival_can_complete_multiple_intervals() {
        let mut agg = TimeAlignedAggregator::new(2, 0.25, AlignOp::Sum);
        // Input 0 covers a full second in four samples.
        for k in 0..4 {
            let t = 0.25 * f64::from(k);
            assert!(agg.push(0, Sample::new(1.0, t, t + 0.25)).is_empty());
        }
        // Input 1 delivers one big sample covering the same second:
        // four intervals complete at once, each getting a quarter.
        let out = agg.push(1, Sample::new(8.0, 0.0, 1.0));
        assert_eq!(out.len(), 4);
        for o in &out {
            assert!((o.value - 3.0).abs() < 1e-12); // 1.0 + 8.0/4
        }
    }

    #[test]
    fn ordinal_vs_time_aligned_on_skewed_streams() {
        // Figure 5's point: with phase-shifted inputs ordinal
        // aggregation mixes samples from different execution intervals.
        let s0 = [Sample::new(1.0, 0.0, 1.0), Sample::new(5.0, 1.0, 2.0)];
        // Input 1 is late by a full interval.
        let s1 = [Sample::new(2.0, 1.0, 2.0), Sample::new(6.0, 2.0, 3.0)];
        let mut ord = OrdinalAggregator::new(2, AlignOp::Sum);
        let mut out = Vec::new();
        for i in 0..2 {
            out.extend(ord.push(0, s0[i]));
            out.extend(ord.push(1, s1[i]));
        }
        // Ordinal pairs (1.0 with 2.0) although they cover different
        // intervals — its first output spans [0,2).
        assert!((out[0].value - 3.0).abs() < 1e-12);
        assert!((out[0].start - 0.0).abs() < 1e-12);
        assert!((out[0].end - 2.0).abs() < 1e-12);

        // Time-aligned instead pairs the overlapping intervals.
        let mut ta = TimeAlignedAggregator::new(2, 1.0, AlignOp::Sum);
        let mut out = Vec::new();
        for i in 0..2 {
            out.extend(ta.push(0, s0[i]));
            out.extend(ta.push(1, s1[i]));
        }
        assert!(!out.is_empty());
        // First aligned interval is [1,2): 5.0 + 2.0.
        assert!((out[0].value - 7.0).abs() < 1e-12);
        assert!((out[0].start - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filter_composes_through_two_levels() {
        use mrnet_packet::PacketBuilder;
        // Distinct local ranks: the two leaf processes' outputs must
        // be distinguishable as inputs at the root.
        let ctx_leaf_a = FilterContext::new(9, 100, 2);
        let ctx_leaf_b = FilterContext::new(9, 101, 2);
        let ctx_root = FilterContext::new(9, 0, 2);
        let mut leaf_a = TimeAlignedFilter::new(0.2, AlignOp::Sum);
        let mut leaf_b = TimeAlignedFilter::new(0.2, AlignOp::Sum);
        let mut root = TimeAlignedFilter::new(0.2, AlignOp::Sum);
        let mut gens: Vec<_> = (0..4)
            .map(|i| SampleGenerator::new(5.0, 0.0, 0.0, 1.0, i as u64))
            .collect();
        let mut final_out = Vec::new();
        for _ in 0..10 {
            for (i, g) in gens.iter_mut().enumerate() {
                let s = g.next_sample();
                let pkt = s.to_packet(9, 1).with_src(200 + i as u32);
                let (leaf, ctx_l) = if i < 2 {
                    (&mut leaf_a, &ctx_leaf_a)
                } else {
                    (&mut leaf_b, &ctx_leaf_b)
                };
                let mid = leaf.transform(vec![pkt], ctx_l).unwrap();
                if !mid.is_empty() {
                    final_out.extend(root.transform(mid, &ctx_root).unwrap());
                }
            }
        }
        assert!(final_out.len() >= 8);
        for p in &final_out {
            let s = Sample::from_packet(p).unwrap();
            assert!((s.value - 4.0).abs() < 1e-9, "4 inputs at level 1.0: {s:?}");
            assert_eq!(p.src(), 0, "outputs carry the local rank");
        }
        let _ = PacketBuilder::new(0, 0); // keep import used
    }

    #[test]
    fn filter_rejects_wrong_format() {
        use mrnet_packet::PacketBuilder;
        let mut f = TimeAlignedFilter::new(0.2, AlignOp::Sum);
        let ctx = FilterContext::new(1, 0, 2);
        let bad = PacketBuilder::new(1, 0).push(1i32).build();
        assert!(f.transform(vec![bad], &ctx).is_err());
    }

    #[test]
    fn filter_rejects_too_many_sources() {
        let mut f = TimeAlignedFilter::new(0.2, AlignOp::Sum);
        let ctx = FilterContext::new(1, 0, 1);
        let a = Sample::new(1.0, 0.0, 0.2).to_packet(1, 0).with_src(10);
        let b = Sample::new(1.0, 0.0, 0.2).to_packet(1, 0).with_src(11);
        assert!(f.transform(vec![a], &ctx).is_ok());
        assert!(f.transform(vec![b], &ctx).is_err());
    }
}
