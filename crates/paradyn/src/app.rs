//! The synthetic application model.
//!
//! Stands in for `smg2000`, the parallel semicoarsening-multigrid
//! solver the paper monitors: "The smg2000 executable is relatively
//! small, containing approximately 434 functions in a 290 KB
//! executable" (§4.2.1). The model gives every daemon the same
//! executable image (so checksums collide into one equivalence class
//! on homogeneous clusters, exactly the case Paradyn's start-up
//! protocol optimizes) plus a deterministic static call graph.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One function in the application image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Start address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u32,
}

/// One module (compilation unit) in the application image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module (source file) name.
    pub name: String,
    /// Functions defined in the module.
    pub functions: Vec<Function>,
}

/// A call-graph edge: caller index → callee index (global function
/// indices).
pub type CallEdge = (u32, u32);

/// An application executable as a Paradyn daemon sees it after the
/// "Parse Executable" start-up activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executable {
    /// Executable name.
    pub name: String,
    /// Modules, each with its functions.
    pub modules: Vec<Module>,
    /// The static call graph.
    pub call_graph: Vec<CallEdge>,
}

impl Executable {
    /// Builds the synthetic `smg2000`-like image: ~434 functions over
    /// a handful of modules, with a deterministic random DAG call
    /// graph. Same `seed` ⇒ bit-identical image (homogeneous cluster).
    pub fn synthetic_smg2000(seed: u64) -> Executable {
        Executable::synthetic("smg2000", 434, 12, seed)
    }

    /// Builds a synthetic image with the given shape.
    pub fn synthetic(name: &str, functions: usize, modules: usize, seed: u64) -> Executable {
        assert!(modules >= 1 && functions >= modules);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut mods = Vec::with_capacity(modules);
        let base = functions / modules;
        let extra = functions % modules;
        let mut addr: u64 = 0x1000_0000;
        let mut global = 0usize;
        for m in 0..modules {
            let count = base + usize::from(m < extra);
            let mut funcs = Vec::with_capacity(count);
            for _ in 0..count {
                let size = rng.gen_range(64..2048u32);
                funcs.push(Function {
                    name: format!("{name}_m{m}_f{global}"),
                    addr,
                    size,
                });
                addr += u64::from(size) + u64::from(rng.gen_range(0..64u32));
                global += 1;
            }
            mods.push(Module {
                name: format!("{name}_mod{m}.c"),
                functions: funcs,
            });
        }
        // A random DAG: edges only from lower to higher indices, so the
        // "call graph" is acyclic (recursion elided, as Paradyn's
        // static graphs effectively are for display purposes).
        let n = functions as u32;
        let mut call_graph = Vec::new();
        for caller in 0..n {
            let fanout = rng.gen_range(0..4u32);
            for _ in 0..fanout {
                if caller + 1 < n {
                    let callee = rng.gen_range(caller + 1..n);
                    call_graph.push((caller, callee));
                }
            }
        }
        call_graph.sort_unstable();
        call_graph.dedup();
        Executable {
            name: name.to_owned(),
            modules: mods,
            call_graph,
        }
    }

    /// Total function count.
    pub fn num_functions(&self) -> usize {
        self.modules.iter().map(|m| m.functions.len()).sum()
    }

    /// All function names, in address order.
    pub fn function_names(&self) -> Vec<&str> {
        self.modules
            .iter()
            .flat_map(|m| m.functions.iter().map(|f| f.name.as_str()))
            .collect()
    }

    /// A stable checksum over the function/module structure — what a
    /// daemon reports for equivalence-class partitioning (§3.1: "each
    /// Paradyn daemon first computes a summary of the data (i.e., a
    /// checksum)"). FNV-1a over names and addresses.
    pub fn code_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for m in &self.modules {
            mix(m.name.as_bytes());
            for f in &m.functions {
                mix(f.name.as_bytes());
                mix(&f.addr.to_le_bytes());
                mix(&f.size.to_le_bytes());
            }
        }
        h
    }

    /// A stable checksum over the static call graph, for the
    /// "Report Callgraph Eq Classes" activity.
    pub fn callgraph_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (a, b) in &self.call_graph {
            for &byte in a.to_le_bytes().iter().chain(b.to_le_bytes().iter()) {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smg2000_shape_matches_paper() {
        let exe = Executable::synthetic_smg2000(1);
        assert_eq!(exe.num_functions(), 434);
        assert_eq!(exe.modules.len(), 12);
        assert_eq!(exe.function_names().len(), 434);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Executable::synthetic_smg2000(9);
        let b = Executable::synthetic_smg2000(9);
        assert_eq!(a, b);
        assert_eq!(a.code_checksum(), b.code_checksum());
        assert_eq!(a.callgraph_checksum(), b.callgraph_checksum());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Executable::synthetic_smg2000(1);
        let b = Executable::synthetic_smg2000(2);
        assert_ne!(a.code_checksum(), b.code_checksum());
    }

    #[test]
    fn call_graph_is_acyclic_by_construction() {
        let exe = Executable::synthetic_smg2000(3);
        for &(caller, callee) in &exe.call_graph {
            assert!(caller < callee);
            assert!((callee as usize) < exe.num_functions());
        }
        assert!(!exe.call_graph.is_empty());
    }

    #[test]
    fn addresses_strictly_increase() {
        let exe = Executable::synthetic_smg2000(4);
        let mut last = 0u64;
        for m in &exe.modules {
            for f in &m.functions {
                assert!(f.addr > last || last == 0);
                last = f.addr;
            }
        }
    }

    #[test]
    fn custom_shapes() {
        let exe = Executable::synthetic("app", 10, 3, 5);
        assert_eq!(exe.num_functions(), 10);
        assert_eq!(exe.modules.len(), 3);
        // 10 = 4 + 3 + 3
        assert_eq!(exe.modules[0].functions.len(), 4);
    }
}
