//! `paradyn_commnode` — an MRNet internal-process binary carrying
//! Paradyn's custom filters (equivalence-class binning and time-aligned
//! performance data aggregation) in addition to the built-ins.
//!
//! Deploying the full Paradyn tool across real processes requires the
//! internal processes to know these filters — the process-mode
//! analogue of §2.4's "shared object file that contains the filter
//! function" being installed on every host.
//!
//! Usage: `paradyn_commnode --parent HOST:PORT --rank N`

use std::process::ExitCode;

use mrnet::commnode;
use mrnet_obs::log_error;
use paradyn::paradyn_registry;

fn main() -> ExitCode {
    let result = commnode::parse_args(std::env::args().skip(1)).and_then(|(parent, rank)| {
        let exe = std::env::current_exe().map_err(|e| e.to_string())?;
        commnode::run(&parent, rank, paradyn_registry(), &exe)
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            log_error!("paradyn-commnode", "{msg}");
            ExitCode::FAILURE
        }
    }
}
