//! The Paradyn daemon (tool back-end).
//!
//! A daemon owns one MRNet [`Backend`] handle and the application
//! process(es) it monitors. During start-up it answers the front-end's
//! protocol requests (§3.1); afterwards it samples performance data at
//! a fixed rate (§4.2.2).

use std::time::{Duration, Instant};

use mrnet::{Backend, MrnetError, Value};
use mrnet_packet::StreamId;

use crate::app::Executable;
use crate::eqclass::{encode_classes, EqClass};
use crate::error::{ParadynError, Result};
use crate::mdl;
use crate::proto::tags;
use crate::resources::{code_resources, machine_resources};
use crate::samples::SampleGenerator;

/// A running Paradyn daemon.
pub struct Daemon {
    backend: Backend,
    exe: Executable,
    host: String,
    pid: u32,
    epoch: Instant,
}

/// A checksum over the metric names a daemon supports, used for the
/// Report Metrics equivalence classes.
fn metric_set_checksum(names: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for name in names {
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Daemon {
    /// Creates a daemon around an attached back-end.
    pub fn new(backend: Backend, exe: Executable, host: impl Into<String>, pid: u32) -> Daemon {
        Daemon {
            backend,
            exe,
            host: host.into(),
            pid,
            epoch: Instant::now(),
        }
    }

    /// This daemon's MRNet rank.
    pub fn rank(&self) -> u32 {
        self.backend.rank()
    }

    /// Borrow the underlying back-end.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn handle_startup_request(
        &self,
        sid: StreamId,
        tag: i32,
        payload: &mrnet::Packet,
    ) -> Result<bool> {
        let rank = self.backend.rank();
        match tag {
            tags::REPORT_SELF => {
                // Basic characteristics: "such as the host on which it
                // is running".
                self.backend.send(
                    sid,
                    tag,
                    "%s",
                    vec![Value::Str(format!("{}:{}:{}", rank, self.host, self.pid))],
                )?;
            }
            tags::REPORT_METRICS => {
                // Parse the broadcast MDL, then report the supported
                // metric set via the equivalence-class algorithm
                // ("including internal metrics not specified in the
                // MDL data").
                let doc = payload
                    .get(0)
                    .and_then(Value::as_str)
                    .ok_or(ParadynError::Malformed("MDL broadcast"))?;
                let mut names: Vec<String> =
                    mdl::parse_mdl(doc)?.into_iter().map(|d| d.name).collect();
                names.push("internal_sampling".to_owned());
                names.push("internal_observed_cost".to_owned());
                let class = EqClass::singleton(metric_set_checksum(&names), rank);
                self.backend
                    .send_packet(encode_classes(sid, tag, &[class]))?;
            }
            tags::SKEW_PROBE => {
                // Answer with (rank, local clock sample) as an %alf
                // pair so concatenation can collect all daemons.
                self.backend.send(
                    sid,
                    tag,
                    "%alf",
                    vec![Value::DoubleArray(vec![f64::from(rank), self.now()])],
                )?;
            }
            tags::REPORT_PROCESS => {
                self.backend.send(
                    sid,
                    tag,
                    "%s",
                    vec![Value::Str(format!(
                        "pid={} host={} created=true resume=true",
                        self.pid, self.host
                    ))],
                )?;
            }
            tags::REPORT_MACHINE => {
                let paths: Vec<String> = machine_resources(&self.host, self.pid)
                    .iter()
                    .map(|r| r.canonical())
                    .collect();
                self.backend
                    .send(sid, tag, "%as", vec![Value::StrArray(paths)])?;
            }
            tags::CODE_EQCLASS => {
                // "Parse Executable" precedes this report; the checksum
                // covers the parsed function/module structure.
                let class = EqClass::singleton(self.exe.code_checksum(), rank);
                self.backend
                    .send_packet(encode_classes(sid, tag, &[class]))?;
            }
            tags::CODE_RESOURCES => {
                // Only class representatives are in this stream's
                // communicator; send the complete resource list.
                let paths: Vec<String> = code_resources(&self.exe)
                    .iter()
                    .map(|r| r.canonical())
                    .collect();
                self.backend
                    .send(sid, tag, "%as", vec![Value::StrArray(paths)])?;
            }
            tags::CALLGRAPH_EQCLASS => {
                let class = EqClass::singleton(self.exe.callgraph_checksum(), rank);
                self.backend
                    .send_packet(encode_classes(sid, tag, &[class]))?;
            }
            tags::CALLGRAPH => {
                let flat: Vec<u32> = self
                    .exe
                    .call_graph
                    .iter()
                    .flat_map(|&(a, b)| [a, b])
                    .collect();
                self.backend
                    .send(sid, tag, "%aud", vec![Value::UInt32Array(flat)])?;
            }
            tags::REPORT_DONE => {
                self.backend.send(sid, tag, "%d", vec![Value::Int32(1)])?;
                return Ok(true);
            }
            other => {
                return Err(ParadynError::Protocol(format!(
                    "unexpected start-up tag {other}"
                )))
            }
        }
        Ok(false)
    }

    /// Serves the complete start-up protocol: answers requests until
    /// the Report Done round finishes.
    pub fn serve_startup(&self) -> Result<()> {
        loop {
            let (pkt, sid) = self.backend.recv()?;
            if self.handle_startup_request(sid, pkt.tag(), &pkt)? {
                return Ok(());
            }
        }
    }

    /// Serves the performance-data phase (§4.2.2): waits for
    /// `SAMPLE_DATA` requests (one per metric stream), then generates
    /// samples at `rate` per second per metric for `duration`,
    /// interleaving all metric streams. Returns the number of samples
    /// sent.
    ///
    /// The daemon stops early if it sees `STOP_SAMPLING` or the
    /// network goes down.
    pub fn serve_sampling(
        &self,
        num_metrics: usize,
        rate: f64,
        duration: Duration,
    ) -> Result<usize> {
        // Collect the per-metric stream ids (one SAMPLE_DATA request
        // per metric, carrying the metric index).
        let mut streams: Vec<Option<StreamId>> = vec![None; num_metrics];
        let mut received = 0;
        while received < num_metrics {
            let (pkt, sid) = self.backend.recv()?;
            match pkt.tag() {
                tags::SAMPLE_DATA => {
                    let idx = pkt
                        .get(0)
                        .and_then(Value::as_u32)
                        .ok_or(ParadynError::Malformed("sample request"))?
                        as usize;
                    if idx >= num_metrics {
                        return Err(ParadynError::Protocol(format!(
                            "metric index {idx} out of range"
                        )));
                    }
                    if streams[idx].replace(sid).is_none() {
                        received += 1;
                    }
                }
                tags::STOP_SAMPLING => return Ok(0),
                _ => {}
            }
        }
        let streams: Vec<StreamId> = streams.into_iter().map(Option::unwrap).collect();

        // Fixed-rate sampling loop, phase-locked to wall time.
        let rank = self.backend.rank();
        let mut gens: Vec<SampleGenerator> = (0..num_metrics)
            .map(|m| SampleGenerator::new(rate, 0.0, 0.05, 1.0, u64::from(rank) * 1000 + m as u64))
            .collect();
        let start = Instant::now();
        let mut sent = 0usize;
        let period = Duration::from_secs_f64(1.0 / rate);
        let mut tick = 0u32;
        while start.elapsed() < duration {
            for (m, generator) in gens.iter_mut().enumerate() {
                let sample = generator.next_sample();
                let packet = sample.to_packet(streams[m], tags::SAMPLE_DATA);
                match self.backend.send_packet(packet) {
                    Ok(()) => sent += 1,
                    Err(MrnetError::Shutdown) => return Ok(sent),
                    Err(e) => return Err(e.into()),
                }
            }
            // Drain any stop request without blocking the schedule.
            if let Ok(Some((pkt, _))) = self.backend.recv_timeout(Duration::ZERO) {
                if pkt.tag() == tags::STOP_SAMPLING {
                    return Ok(sent);
                }
            }
            tick += 1;
            let next = start + period * tick;
            let now = Instant::now();
            if next > now {
                std::thread::sleep(next - now);
            }
        }
        Ok(sent)
    }

    /// One-shot convenience for tests: serve start-up then sampling.
    pub fn serve(&self, num_metrics: usize, rate: f64, sampling: Duration) -> Result<usize> {
        self.serve_startup()?;
        self.serve_sampling(num_metrics, rate, sampling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_checksum_is_order_sensitive_and_stable() {
        let a = metric_set_checksum(&["cpu".into(), "io".into()]);
        let b = metric_set_checksum(&["cpu".into(), "io".into()]);
        let c = metric_set_checksum(&["io".into(), "cpu".into()]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
