//! Checksum equivalence classes and the custom binning filter.
//!
//! §3.1: "each Paradyn daemon first computes a summary of the data
//! (i.e., a checksum). Next, the daemons write the checksums to an
//! MRNet stream created to use a custom binning filter. This filter
//! partitions the daemons into equivalence classes based on their
//! checksum values. When the front-end receives the final set of
//! equivalence classes, it requests complete function resource
//! information only for each class' representative process."

use std::collections::BTreeMap;

use mrnet_filters::{FilterContext, FilterError, Transform};
use mrnet_packet::{FormatString, Packet, PacketBuilder, Rank, StreamId, Value};

use crate::error::{ParadynError, Result};

/// One equivalence class: the daemons whose data hashes to `checksum`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqClass {
    /// The shared checksum.
    pub checksum: u64,
    /// Member daemon ranks, sorted.
    pub members: Vec<Rank>,
}

impl EqClass {
    /// A singleton class (a daemon's own contribution).
    pub fn singleton(checksum: u64, rank: Rank) -> EqClass {
        EqClass {
            checksum,
            members: vec![rank],
        }
    }

    /// The representative member the front-end queries for full data
    /// (lowest rank, deterministically).
    pub fn representative(&self) -> Rank {
        *self.members.first().expect("classes are never empty")
    }
}

/// The wire format of a class-set packet:
/// checksums, per-class sizes, flattened members.
pub const CLASSES_FORMAT: &str = "%auld %aud %aud";

/// Encodes a class set into one packet.
pub fn encode_classes(stream: StreamId, tag: i32, classes: &[EqClass]) -> Packet {
    let checksums: Vec<u64> = classes.iter().map(|c| c.checksum).collect();
    let sizes: Vec<u32> = classes.iter().map(|c| c.members.len() as u32).collect();
    let members: Vec<u32> = classes
        .iter()
        .flat_map(|c| c.members.iter().copied())
        .collect();
    PacketBuilder::new(stream, tag)
        .push(checksums)
        .push(sizes)
        .push(members)
        .build()
}

/// Decodes a class-set packet.
pub fn decode_classes(packet: &Packet) -> Result<Vec<EqClass>> {
    let checksums = packet
        .get(0)
        .and_then(Value::as_u64_slice)
        .ok_or(ParadynError::Malformed("class checksums"))?;
    let sizes = packet
        .get(1)
        .and_then(Value::as_u32_slice)
        .ok_or(ParadynError::Malformed("class sizes"))?;
    let members = packet
        .get(2)
        .and_then(Value::as_u32_slice)
        .ok_or(ParadynError::Malformed("class members"))?;
    if checksums.len() != sizes.len() {
        return Err(ParadynError::Malformed("class arity"));
    }
    let total: usize = sizes.iter().map(|&s| s as usize).sum();
    if total != members.len() {
        return Err(ParadynError::Malformed("class member count"));
    }
    let mut classes = Vec::with_capacity(checksums.len());
    let mut offset = 0usize;
    for (i, &checksum) in checksums.iter().enumerate() {
        let size = sizes[i] as usize;
        if size == 0 {
            return Err(ParadynError::Malformed("empty class"));
        }
        classes.push(EqClass {
            checksum,
            members: members[offset..offset + size].to_vec(),
        });
        offset += size;
    }
    Ok(classes)
}

/// Merges class sets: classes with equal checksums union their
/// members. Output is sorted by checksum, members sorted within each
/// class.
pub fn merge_classes(sets: impl IntoIterator<Item = EqClass>) -> Vec<EqClass> {
    let mut by_sum: BTreeMap<u64, Vec<Rank>> = BTreeMap::new();
    for class in sets {
        by_sum
            .entry(class.checksum)
            .or_default()
            .extend(class.members);
    }
    by_sum
        .into_iter()
        .map(|(checksum, mut members)| {
            members.sort_unstable();
            members.dedup();
            EqClass { checksum, members }
        })
        .collect()
}

/// The custom binning transformation filter: merges the class sets of
/// one synchronized wave into a single class-set packet. Use with
/// [`mrnet::SyncMode::WaitForAll`] so every child contributes to each
/// wave.
pub struct EqClassFilter {
    fmt: FormatString,
}

impl EqClassFilter {
    /// The registry name used by convention.
    pub const NAME: &'static str = "paradyn_eqclass";

    /// Creates the filter.
    pub fn new() -> EqClassFilter {
        EqClassFilter {
            fmt: FormatString::parse(CLASSES_FORMAT).expect("static format"),
        }
    }
}

impl Default for EqClassFilter {
    fn default() -> Self {
        EqClassFilter::new()
    }
}

impl Transform for EqClassFilter {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn input_format(&self) -> Option<&FormatString> {
        Some(&self.fmt)
    }

    fn transform(
        &mut self,
        inputs: Vec<Packet>,
        ctx: &FilterContext,
    ) -> mrnet_filters::Result<Vec<Packet>> {
        if inputs.is_empty() {
            return Err(FilterError::EmptyWave);
        }
        let mut all = Vec::new();
        for packet in &inputs {
            all.extend(decode_classes(packet).map_err(|e| FilterError::Custom(e.to_string()))?);
        }
        let merged = merge_classes(all);
        let first = &inputs[0];
        Ok(vec![encode_classes(
            first.stream_id(),
            first.tag(),
            &merged,
        )
        .with_src(ctx.local_rank)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let classes = vec![
            EqClass {
                checksum: 10,
                members: vec![1, 3, 5],
            },
            EqClass {
                checksum: 99,
                members: vec![2],
            },
        ];
        let p = encode_classes(4, 7, &classes);
        assert_eq!(p.fmt().to_string(), CLASSES_FORMAT);
        assert_eq!(decode_classes(&p).unwrap(), classes);
    }

    #[test]
    fn decode_rejects_malformed() {
        // Arity mismatch between sizes and member count.
        let p = PacketBuilder::new(0, 0)
            .push(vec![1u64])
            .push(vec![3u32])
            .push(vec![1u32, 2])
            .build();
        assert!(decode_classes(&p).is_err());
        // Wrong value types entirely.
        let p = PacketBuilder::new(0, 0).push(1i32).build();
        assert!(decode_classes(&p).is_err());
        // Empty class.
        let p = PacketBuilder::new(0, 0)
            .push(vec![1u64])
            .push(vec![0u32])
            .push(Vec::<u32>::new())
            .build();
        assert!(decode_classes(&p).is_err());
    }

    #[test]
    fn merge_unions_members() {
        let merged = merge_classes([
            EqClass::singleton(7, 3),
            EqClass::singleton(7, 1),
            EqClass::singleton(8, 2),
            EqClass {
                checksum: 7,
                members: vec![5, 1],
            },
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].checksum, 7);
        assert_eq!(merged[0].members, vec![1, 3, 5]);
        assert_eq!(merged[0].representative(), 1);
        assert_eq!(merged[1].members, vec![2]);
    }

    #[test]
    fn filter_merges_wave() {
        let mut f = EqClassFilter::new();
        let ctx = FilterContext::new(3, 42, 2);
        let a = encode_classes(3, 0, &[EqClass::singleton(100, 1)]);
        let b = encode_classes(
            3,
            0,
            &[EqClass::singleton(100, 2), EqClass::singleton(200, 3)],
        );
        let out = f.transform(vec![a, b], &ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src(), 42);
        let classes = decode_classes(&out[0]).unwrap();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].members, vec![1, 2]);
        assert_eq!(classes[1].members, vec![3]);
    }

    #[test]
    fn homogeneous_cluster_collapses_to_one_class() {
        // 64 daemons, identical executables: one class, one
        // representative — the start-up optimization the paper relies
        // on.
        let mut f = EqClassFilter::new();
        let ctx = FilterContext::new(1, 0, 64);
        let wave: Vec<Packet> = (0..64)
            .map(|r| encode_classes(1, 0, &[EqClass::singleton(0xABCD, r)]))
            .collect();
        let out = f.transform(wave, &ctx).unwrap();
        let classes = decode_classes(&out[0]).unwrap();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members.len(), 64);
        assert_eq!(classes[0].representative(), 0);
    }

    #[test]
    fn filter_composes_hierarchically() {
        let ctx = FilterContext::new(1, 9, 2);
        let mut leaf_a = EqClassFilter::new();
        let mut leaf_b = EqClassFilter::new();
        let mut root = EqClassFilter::new();
        let a = leaf_a
            .transform(
                vec![
                    encode_classes(1, 0, &[EqClass::singleton(5, 10)]),
                    encode_classes(1, 0, &[EqClass::singleton(6, 11)]),
                ],
                &ctx,
            )
            .unwrap();
        let b = leaf_b
            .transform(
                vec![
                    encode_classes(1, 0, &[EqClass::singleton(5, 12)]),
                    encode_classes(1, 0, &[EqClass::singleton(5, 13)]),
                ],
                &ctx,
            )
            .unwrap();
        let out = root
            .transform(vec![a[0].clone(), b[0].clone()], &ctx)
            .unwrap();
        let classes = decode_classes(&out[0]).unwrap();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].members, vec![10, 12, 13]);
        assert_eq!(classes[1].members, vec![11]);
    }

    #[test]
    fn filter_rejects_empty_wave() {
        let mut f = EqClassFilter::new();
        let ctx = FilterContext::new(1, 0, 2);
        assert!(matches!(
            f.transform(vec![], &ctx),
            Err(FilterError::EmptyWave)
        ));
    }
}
