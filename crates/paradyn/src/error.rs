//! Error types for the Paradyn tool layer.

use std::fmt;

use mrnet::MrnetError;

/// Errors produced by the Paradyn tool layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ParadynError {
    /// An MRNet-layer failure.
    Mrnet(MrnetError),
    /// An MDL parse error.
    Mdl {
        /// 1-based line of the offending token.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A protocol step received an unexpected message.
    Protocol(String),
    /// A start-up activity timed out.
    Timeout(&'static str),
    /// Malformed encoded tool data (equivalence classes, samples…).
    Malformed(&'static str),
}

impl fmt::Display for ParadynError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParadynError::Mrnet(e) => write!(f, "MRNet error: {e}"),
            ParadynError::Mdl { line, message } => {
                write!(f, "MDL parse error at line {line}: {message}")
            }
            ParadynError::Protocol(m) => write!(f, "tool protocol violation: {m}"),
            ParadynError::Timeout(what) => write!(f, "timed out during {what}"),
            ParadynError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for ParadynError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParadynError::Mrnet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MrnetError> for ParadynError {
    fn from(e: MrnetError) -> Self {
        ParadynError::Mrnet(e)
    }
}

impl From<mrnet_filters::FilterError> for ParadynError {
    fn from(e: mrnet_filters::FilterError) -> Self {
        ParadynError::Mrnet(MrnetError::Filter(e))
    }
}

impl From<mrnet_packet::PacketError> for ParadynError {
    fn from(e: mrnet_packet::PacketError) -> Self {
        ParadynError::Mrnet(MrnetError::Packet(e))
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, ParadynError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ParadynError::Timeout("skew").to_string().contains("skew"));
        assert!(ParadynError::Mdl {
            line: 2,
            message: "bad".into()
        }
        .to_string()
        .contains("line 2"));
        let e: ParadynError = MrnetError::Timeout.into();
        assert!(e.to_string().contains("MRNet"));
    }
}
