//! The Paradyn front-end: start-up orchestration and performance-data
//! consumption over a live MRNet network.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use mrnet::{
    Communicator, FilterRegistry, MrnetError, Network, NetworkSnapshot, Stream, SyncMode, Value,
};
use mrnet_packet::Rank;

use crate::aggregation::{AlignOp, TimeAlignedFilter};
use crate::eqclass::{decode_classes, EqClass, EqClassFilter};
use crate::error::{ParadynError, Result};
use crate::proto::{tags, Activity};
use crate::samples::Sample;

/// Default output-sample interval (5 samples/second, Paradyn's default
/// initial sampling rate).
pub const DEFAULT_INTERVAL: f64 = 0.2;

/// A filter registry with Paradyn's custom filters registered on top
/// of the MRNet built-ins: the equivalence-class binning filter and
/// the time-aligned Performance Data Aggregation filter (§3).
pub fn paradyn_registry() -> FilterRegistry {
    let reg = FilterRegistry::with_builtins();
    reg.register(EqClassFilter::NAME, || Box::new(EqClassFilter::new()))
        .expect("fresh registry");
    reg.register(TimeAlignedFilter::NAME, || {
        Box::new(TimeAlignedFilter::new(DEFAULT_INTERVAL, AlignOp::Sum))
    })
    .expect("fresh registry");
    reg
}

/// Everything the front-end learned during start-up, plus per-activity
/// latencies (the Figure 8b measurement).
#[derive(Debug)]
pub struct StartupOutcome {
    /// Per-activity wall-clock latency, in protocol order.
    pub timings: Vec<(Activity, Duration)>,
    /// Raw self-reports, one per daemon.
    pub daemon_info: Vec<String>,
    /// Metric-set equivalence classes.
    pub metric_classes: Vec<EqClass>,
    /// Estimated clock skew per daemon rank (seconds).
    pub skews: HashMap<Rank, f64>,
    /// Process reports, one per daemon.
    pub process_info: Vec<String>,
    /// Machine resource paths across all daemons.
    pub machine_resources: Vec<String>,
    /// Code-checksum equivalence classes.
    pub code_classes: Vec<EqClass>,
    /// Full code resource paths from each class representative.
    pub code_resources: Vec<String>,
    /// Call-graph equivalence classes.
    pub callgraph_classes: Vec<EqClass>,
    /// Call-graph edges from each representative (flattened pairs).
    pub callgraph_edges: usize,
}

impl StartupOutcome {
    /// Total start-up latency.
    pub fn total(&self) -> Duration {
        self.timings.iter().map(|(_, d)| *d).sum()
    }
}

const RECV_TIMEOUT: Duration = Duration::from_secs(30);

fn timed<T>(
    timings: &mut Vec<(Activity, Duration)>,
    activity: Activity,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    let start = Instant::now();
    let out = f()?;
    timings.push((activity, start.elapsed()));
    Ok(out)
}

/// One concatenation round: broadcast a request, receive the
/// concatenated string array.
fn concat_round(net: &Network, comm: &Communicator, tag: i32) -> Result<Vec<String>> {
    let concat = net.registry().id_of("concat_s")?;
    let stream = net.new_stream(comm, concat, SyncMode::WaitForAll)?;
    stream.send(tag, "%d", vec![Value::Int32(0)])?;
    let reply = stream.recv_timeout(RECV_TIMEOUT)?;
    let out = reply
        .get(0)
        .and_then(Value::as_str_array)
        .ok_or(ParadynError::Malformed("concatenation reply"))?
        .to_vec();
    stream.close()?;
    Ok(out)
}

/// One equivalence-class round: broadcast a request (with optional
/// string payload), receive the merged class set.
fn eqclass_round(
    net: &Network,
    comm: &Communicator,
    tag: i32,
    payload: Option<&str>,
) -> Result<Vec<EqClass>> {
    let filter = net.registry().id_of(EqClassFilter::NAME)?;
    let stream = net.new_stream(comm, filter, SyncMode::WaitForAll)?;
    match payload {
        Some(doc) => stream.send(tag, "%s", vec![Value::Str(doc.to_owned())])?,
        None => stream.send(tag, "%d", vec![Value::Int32(0)])?,
    }
    let reply = stream.recv_timeout(RECV_TIMEOUT)?;
    let classes = decode_classes(&reply)?;
    stream.close()?;
    Ok(classes)
}

/// The MRNet-based clock-skew rounds: repeated broadcast/reduction
/// pairs; each round concatenates `(rank, clock sample)` pairs from
/// all daemons, and the minimum-round-trip round provides each
/// daemon's estimate.
fn skew_rounds(net: &Network, comm: &Communicator, rounds: usize) -> Result<HashMap<Rank, f64>> {
    let concat = net.registry().id_of("concat_lf")?;
    let stream = net.new_stream(comm, concat, SyncMode::WaitForAll)?;
    let epoch = Instant::now();
    let mut best: Option<(f64, HashMap<Rank, f64>)> = None;
    for _ in 0..rounds {
        let t0 = epoch.elapsed().as_secs_f64();
        stream.send(tags::SKEW_PROBE, "%d", vec![Value::Int32(0)])?;
        let reply = stream.recv_timeout(RECV_TIMEOUT)?;
        let t1 = epoch.elapsed().as_secs_f64();
        let rtt = t1 - t0;
        let flat = reply
            .get(0)
            .and_then(Value::as_f64_slice)
            .ok_or(ParadynError::Malformed("skew reply"))?;
        if flat.len() % 2 != 0 {
            return Err(ParadynError::Malformed("skew pair array"));
        }
        let mut estimates = HashMap::new();
        for pair in flat.chunks_exact(2) {
            let rank = pair[0] as Rank;
            let sample = pair[1];
            // NTP-style: daemon clock minus assumed midpoint.
            estimates.insert(rank, sample - (t0 + rtt / 2.0));
        }
        if best.as_ref().is_none_or(|(r, _)| rtt < *r) {
            best = Some((rtt, estimates));
        }
    }
    stream.close()?;
    Ok(best.map(|(_, e)| e).unwrap_or_default())
}

/// Requests full data from each class representative over subset
/// streams; returns the replies' string arrays flattened.
fn representative_round(net: &Network, classes: &[EqClass], tag: i32) -> Result<Vec<Vec<String>>> {
    let null = net.registry().id_of("null")?;
    let mut replies = Vec::new();
    for class in classes {
        let comm = net.communicator([class.representative()])?;
        let stream = net.new_stream(&comm, null, SyncMode::DoNotWait)?;
        stream.send(tag, "%d", vec![Value::Int32(0)])?;
        let reply = stream.recv_timeout(RECV_TIMEOUT)?;
        replies.push(
            reply
                .get(0)
                .and_then(Value::as_str_array)
                .map(<[String]>::to_vec)
                .unwrap_or_default(),
        );
        stream.close()?;
    }
    Ok(replies)
}

/// Like [`representative_round`] but for `%aud` payloads (call-graph
/// edges); returns total edge count received.
fn callgraph_round(net: &Network, classes: &[EqClass], tag: i32) -> Result<usize> {
    let null = net.registry().id_of("null")?;
    let mut edges = 0usize;
    for class in classes {
        let comm = net.communicator([class.representative()])?;
        let stream = net.new_stream(&comm, null, SyncMode::DoNotWait)?;
        stream.send(tag, "%d", vec![Value::Int32(0)])?;
        let reply = stream.recv_timeout(RECV_TIMEOUT)?;
        edges += reply
            .get(0)
            .and_then(Value::as_u32_slice)
            .map_or(0, |s| s.len() / 2);
        stream.close()?;
    }
    Ok(edges)
}

/// Runs the complete §3.1 start-up protocol against live daemons,
/// timing each Figure 8b activity.
pub fn run_startup(
    net: &Network,
    mdl_doc: &str,
    skew_probe_rounds: usize,
) -> Result<StartupOutcome> {
    let comm = net.broadcast_communicator();
    let n = comm.len();
    let mut timings = Vec::new();

    let daemon_info = timed(&mut timings, Activity::ReportSelf, || {
        concat_round(net, &comm, tags::REPORT_SELF)
    })?;
    let metric_classes = timed(&mut timings, Activity::ReportMetrics, || {
        eqclass_round(net, &comm, tags::REPORT_METRICS, Some(mdl_doc))
    })?;
    let skews = timed(&mut timings, Activity::FindClockSkew, || {
        skew_rounds(net, &comm, skew_probe_rounds)
    })?;
    // Parse Executable is daemon-local work overlapped with the code
    // equivalence-class round in this implementation; it is reported
    // as a zero-cost activity here and modeled explicitly in the
    // simulated start-up (`model::startup`).
    timings.push((Activity::ParseExecutable, Duration::ZERO));
    let process_info = timed(&mut timings, Activity::ReportProcess, || {
        concat_round(net, &comm, tags::REPORT_PROCESS)
    })?;
    let machine_resources = timed(&mut timings, Activity::ReportMachineResources, || {
        concat_round(net, &comm, tags::REPORT_MACHINE)
    })?;
    let code_classes = timed(&mut timings, Activity::ReportCodeEqClasses, || {
        eqclass_round(net, &comm, tags::CODE_EQCLASS, None)
    })?;
    let code_resources = timed(&mut timings, Activity::ReportCodeResources, || {
        representative_round(net, &code_classes, tags::CODE_RESOURCES)
    })?
    .into_iter()
    .flatten()
    .collect();
    let callgraph_classes = timed(&mut timings, Activity::ReportCallgraphEqClasses, || {
        eqclass_round(net, &comm, tags::CALLGRAPH_EQCLASS, None)
    })?;
    let callgraph_edges = timed(&mut timings, Activity::ReportCallgraph, || {
        callgraph_round(net, &callgraph_classes, tags::CALLGRAPH)
    })?;
    timed(&mut timings, Activity::ReportDone, || {
        let sum = net.registry().id_of("d_sum")?;
        let stream = net.new_stream(&comm, sum, SyncMode::WaitForAll)?;
        stream.send(tags::REPORT_DONE, "%d", vec![Value::Int32(0)])?;
        let reply = stream.recv_timeout(RECV_TIMEOUT)?;
        let count = reply.get(0).and_then(Value::as_i32).unwrap_or(0);
        if count != n as i32 {
            return Err(ParadynError::Protocol(format!(
                "Report Done counted {count} of {n} daemons"
            )));
        }
        stream.close()?;
        Ok(())
    })?;

    Ok(StartupOutcome {
        timings,
        daemon_info,
        metric_classes,
        skews,
        process_info,
        machine_resources,
        code_classes,
        code_resources,
        callgraph_classes,
        callgraph_edges,
    })
}

/// A condensed view of the overlay's internal health, distilled from
/// an in-band metrics snapshot — what a Paradyn operator checks when
/// sampling stalls: is every node alive, is data flowing, is anything
/// backed up.
#[derive(Debug, Clone)]
pub struct OverlayHealth {
    /// Nodes that answered the introspection request (front-end,
    /// internal processes, and back-ends).
    pub nodes: usize,
    /// Total packets forwarded upstream across all nodes.
    pub up_pkts: u64,
    /// Total packets forwarded downstream across all nodes.
    pub down_pkts: u64,
    /// Total inbox backlog across all nodes at snapshot time.
    pub queued: u64,
    /// Ranks the front-end has confirmed failed (cumulative). A
    /// non-empty set explains missing `nodes` without waiting for a
    /// snapshot timeout.
    pub failed_ranks: Vec<mrnet::Rank>,
    /// Sampled waves the front-end has reassembled into timelines
    /// (zero when tracing is off).
    pub traced_waves: u64,
    /// The rank with the worst p95 per-hop dwell among traced waves,
    /// with that dwell in microseconds — the first place to look when
    /// sampling slows down. `None` until a traced wave assembles.
    pub slowest_hop: Option<(mrnet::Rank, u64)>,
    /// The full per-node snapshot for deeper inspection.
    pub snapshot: NetworkSnapshot,
}

/// Collects an [`OverlayHealth`] summary via the in-band introspection
/// stream. `timeout` bounds how long slow subtrees are waited for;
/// nodes past the deadline are missing from `nodes`, which is itself
/// the health signal.
pub fn overlay_health(net: &Network, timeout: Duration) -> Result<OverlayHealth> {
    let snapshot = net.metrics_snapshot(timeout)?;
    let assembler = net.trace_assembler();
    let slowest_hop = assembler
        .hop_histograms()
        .into_iter()
        .map(|(rank, h)| (rank, h.snapshot().quantile_le_us(0.95)))
        .max_by_key(|&(_, p95)| p95);
    Ok(OverlayHealth {
        nodes: snapshot.nodes.len(),
        up_pkts: snapshot.total("up.pkts.sent"),
        down_pkts: snapshot.total("down.pkts.sent"),
        queued: snapshot.total("queue.depth"),
        failed_ranks: net.failed_ranks(),
        traced_waves: assembler.assembled.get(),
        slowest_hop,
        snapshot,
    })
}

/// Statistics from a performance-data collection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingStats {
    /// Aggregated samples received by the front-end.
    pub received: usize,
    /// Sum of received sample values (should approach daemons × level
    /// × seconds for Sum aggregation).
    pub value_sum: f64,
    /// Wall-clock duration of the collection phase.
    pub elapsed: Duration,
}

/// Runs the §4.2.2 performance-data phase: creates one time-aligned
/// aggregation stream per metric, asks the daemons to start sampling,
/// and consumes aggregated samples for `duration` (plus drain slack).
pub fn run_sampling(
    net: &Network,
    num_metrics: usize,
    duration: Duration,
) -> Result<(SamplingStats, Vec<Stream>)> {
    let comm = net.broadcast_communicator();
    let filter = net.registry().id_of(TimeAlignedFilter::NAME)?;
    let mut streams = Vec::with_capacity(num_metrics);
    for m in 0..num_metrics {
        let stream = net.new_stream(&comm, filter, SyncMode::DoNotWait)?;
        stream.send(tags::SAMPLE_DATA, "%ud", vec![Value::UInt32(m as u32)])?;
        streams.push(stream);
    }
    let start = Instant::now();
    let mut received = 0usize;
    let mut value_sum = 0.0f64;
    let deadline = start + duration + Duration::from_secs(2);
    while Instant::now() < deadline {
        match net.recv_any_timeout(Duration::from_millis(200)) {
            Ok((pkt, _stream)) => {
                if pkt.tag() == tags::SAMPLE_DATA {
                    if let Ok(sample) = Sample::from_packet(&pkt) {
                        received += 1;
                        value_sum += sample.value;
                    }
                }
            }
            Err(MrnetError::Timeout) => {
                if start.elapsed() > duration + Duration::from_secs(1) {
                    break;
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok((
        SamplingStats {
            received,
            value_sum,
            elapsed: start.elapsed(),
        },
        streams,
    ))
}
