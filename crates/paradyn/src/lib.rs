//! # paradyn
//!
//! A Paradyn-style parallel performance tool built on the MRNet
//! reproduction — the "real-world tool example" of the paper's §3/§4.2.
//!
//! The crate provides the tool substrate (synthetic application model,
//! resources, an MDL subset), the two custom MRNet filters the paper
//! describes (checksum equivalence-class binning and time-aligned
//! performance data aggregation), both clock-skew detection schemes,
//! the complete eleven-activity start-up protocol running over live
//! MRNet trees, and calibrated models that regenerate the paper's
//! Figure 8 and Figure 9 at full scale on the simulated substrate.

#![forbid(unsafe_code)]

pub mod aggregation;
pub mod app;
mod daemon;
pub mod eqclass;
mod error;
mod frontend;
pub mod mdl;
pub mod model;
pub mod proto;
pub mod resources;
pub mod samples;
pub mod skew;
pub mod stacktree;

pub use daemon::Daemon;
pub use error::{ParadynError, Result};
pub use frontend::{
    overlay_health, paradyn_registry, run_sampling, run_startup, OverlayHealth, SamplingStats,
    StartupOutcome, DEFAULT_INTERVAL,
};
pub use proto::Activity;
