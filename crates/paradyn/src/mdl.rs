//! A subset of Paradyn's Metric Definition Language (MDL).
//!
//! "In Paradyn, metric definitions describing how to instrument
//! processes to collect metric performance data are provided to the
//! front end in a configuration file written in the Paradyn Metric
//! Definition Language. The front-end uses simple broadcast operations
//! to deliver the metric definitions to all tool back-ends" (§3.1).
//!
//! The subset implemented here covers what the start-up protocol
//! needs: named metrics with units, an aggregation operator, and a
//! style, in the block syntax
//!
//! ```text
//! metric cpu_time {
//!     units: seconds;
//!     aggregate: sum;
//!     style: sampled;
//! }
//! ```

use crate::error::{ParadynError, Result};

/// How samples of a metric combine across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricAgg {
    /// Values add (CPU time, message bytes).
    Sum,
    /// Values average (utilization fractions).
    Avg,
    /// Take the minimum.
    Min,
    /// Take the maximum.
    Max,
}

impl MetricAgg {
    fn parse(s: &str) -> Option<MetricAgg> {
        Some(match s {
            "sum" => MetricAgg::Sum,
            "avg" => MetricAgg::Avg,
            "min" => MetricAgg::Min,
            "max" => MetricAgg::Max,
            _ => return None,
        })
    }

    /// Canonical keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            MetricAgg::Sum => "sum",
            MetricAgg::Avg => "avg",
            MetricAgg::Min => "min",
            MetricAgg::Max => "max",
        }
    }
}

/// How a metric is collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricStyle {
    /// Periodically sampled value (e.g. CPU utilization).
    Sampled,
    /// Event counter (e.g. message count).
    EventCounter,
}

impl MetricStyle {
    fn parse(s: &str) -> Option<MetricStyle> {
        Some(match s {
            "sampled" => MetricStyle::Sampled,
            "event_counter" => MetricStyle::EventCounter,
            _ => return None,
        })
    }

    /// Canonical keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            MetricStyle::Sampled => "sampled",
            MetricStyle::EventCounter => "event_counter",
        }
    }
}

/// One metric definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDef {
    /// Metric name (e.g. `cpu_time`).
    pub name: String,
    /// Unit label (free-form).
    pub units: String,
    /// Cross-process aggregation operator.
    pub aggregate: MetricAgg,
    /// Collection style.
    pub style: MetricStyle,
}

impl MetricDef {
    /// Renders this definition in MDL syntax.
    pub fn to_mdl(&self) -> String {
        format!(
            "metric {} {{\n    units: {};\n    aggregate: {};\n    style: {};\n}}\n",
            self.name,
            self.units,
            self.aggregate.keyword(),
            self.style.keyword()
        )
    }
}

/// Parses an MDL document into metric definitions.
pub fn parse_mdl(input: &str) -> Result<Vec<MetricDef>> {
    #[derive(Default)]
    struct Partial {
        name: String,
        units: Option<String>,
        aggregate: Option<MetricAgg>,
        style: Option<MetricStyle>,
        line: usize,
    }
    let err = |line: usize, message: String| ParadynError::Mdl { line, message };

    let mut defs = Vec::new();
    let mut current: Option<Partial> = None;
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix("metric ") {
            if current.is_some() {
                return Err(err(line, "nested metric block".into()));
            }
            let name = rest.trim_end_matches('{').trim();
            if name.is_empty() || !rest.trim_end().ends_with('{') {
                return Err(err(
                    line,
                    format!("expected `metric <name> {{`, got `{text}`"),
                ));
            }
            current = Some(Partial {
                name: name.to_owned(),
                line,
                ..Partial::default()
            });
        } else if text == "}" {
            let p = current
                .take()
                .ok_or_else(|| err(line, "`}` outside a metric block".into()))?;
            defs.push(MetricDef {
                units: p
                    .units
                    .ok_or_else(|| err(p.line, format!("metric {} missing units", p.name)))?,
                aggregate: p
                    .aggregate
                    .ok_or_else(|| err(p.line, format!("metric {} missing aggregate", p.name)))?,
                style: p
                    .style
                    .ok_or_else(|| err(p.line, format!("metric {} missing style", p.name)))?,
                name: p.name,
            });
        } else if let Some((key, value)) = text.split_once(':') {
            let p = current
                .as_mut()
                .ok_or_else(|| err(line, "property outside a metric block".into()))?;
            let value = value.trim().trim_end_matches(';').trim();
            match key.trim() {
                "units" => p.units = Some(value.to_owned()),
                "aggregate" => {
                    p.aggregate = Some(
                        MetricAgg::parse(value)
                            .ok_or_else(|| err(line, format!("unknown aggregate `{value}`")))?,
                    )
                }
                "style" => {
                    p.style = Some(
                        MetricStyle::parse(value)
                            .ok_or_else(|| err(line, format!("unknown style `{value}`")))?,
                    )
                }
                other => return Err(err(line, format!("unknown property `{other}`"))),
            }
        } else {
            return Err(err(line, format!("unparseable line `{text}`")));
        }
    }
    if current.is_some() {
        return Err(err(
            input.lines().count(),
            "unterminated metric block".into(),
        ));
    }
    Ok(defs)
}

/// The standard metric set used by the experiments: the first `n` of
/// Paradyn's familiar metrics (padded with synthetic counters past the
/// named ones). Supports the paper's sweeps up to 32 metrics.
pub fn standard_metrics(n: usize) -> Vec<MetricDef> {
    const NAMED: &[(&str, &str, MetricAgg, MetricStyle)] = &[
        ("cpu", "CPUs", MetricAgg::Sum, MetricStyle::Sampled),
        (
            "cpu_inclusive",
            "CPUs",
            MetricAgg::Sum,
            MetricStyle::Sampled,
        ),
        ("exec_time", "seconds", MetricAgg::Sum, MetricStyle::Sampled),
        ("io_wait", "seconds", MetricAgg::Sum, MetricStyle::Sampled),
        (
            "io_bytes",
            "bytes",
            MetricAgg::Sum,
            MetricStyle::EventCounter,
        ),
        (
            "msgs",
            "operations",
            MetricAgg::Sum,
            MetricStyle::EventCounter,
        ),
        (
            "msg_bytes",
            "bytes",
            MetricAgg::Sum,
            MetricStyle::EventCounter,
        ),
        (
            "msg_bytes_sent",
            "bytes",
            MetricAgg::Sum,
            MetricStyle::EventCounter,
        ),
        (
            "msg_bytes_recv",
            "bytes",
            MetricAgg::Sum,
            MetricStyle::EventCounter,
        ),
        (
            "sync_ops",
            "operations",
            MetricAgg::Sum,
            MetricStyle::EventCounter,
        ),
        ("sync_wait", "seconds", MetricAgg::Sum, MetricStyle::Sampled),
        (
            "active_processes",
            "processes",
            MetricAgg::Sum,
            MetricStyle::Sampled,
        ),
        (
            "procedure_calls",
            "operations",
            MetricAgg::Sum,
            MetricStyle::EventCounter,
        ),
        (
            "pause_time",
            "seconds",
            MetricAgg::Sum,
            MetricStyle::Sampled,
        ),
        (
            "observed_cost",
            "CPUs",
            MetricAgg::Sum,
            MetricStyle::Sampled,
        ),
        ("mem_usage", "bytes", MetricAgg::Max, MetricStyle::Sampled),
    ];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if let Some(&(name, units, agg, style)) = NAMED.get(i) {
            out.push(MetricDef {
                name: name.to_owned(),
                units: units.to_owned(),
                aggregate: agg,
                style,
            });
        } else {
            out.push(MetricDef {
                name: format!("counter_{i}"),
                units: "operations".to_owned(),
                aggregate: MetricAgg::Sum,
                style: MetricStyle::EventCounter,
            });
        }
    }
    out
}

/// Renders a metric set as one MDL document.
pub fn to_mdl(defs: &[MetricDef]) -> String {
    defs.iter().map(MetricDef::to_mdl).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Paradyn metric definitions
metric cpu_time {
    units: seconds;
    aggregate: sum;
    style: sampled;
}

metric msgs {
    units: operations;   # per process
    aggregate: sum;
    style: event_counter;
}
";

    #[test]
    fn parses_sample() {
        let defs = parse_mdl(SAMPLE).unwrap();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "cpu_time");
        assert_eq!(defs[0].aggregate, MetricAgg::Sum);
        assert_eq!(defs[1].style, MetricStyle::EventCounter);
    }

    #[test]
    fn render_parse_round_trip() {
        let defs = standard_metrics(32);
        let doc = to_mdl(&defs);
        let reparsed = parse_mdl(&doc).unwrap();
        assert_eq!(reparsed, defs);
    }

    #[test]
    fn standard_metrics_count_and_names() {
        let defs = standard_metrics(32);
        assert_eq!(defs.len(), 32);
        assert_eq!(defs[0].name, "cpu");
        assert_eq!(defs[31].name, "counter_31");
        // Unique names.
        let mut names: Vec<_> = defs.iter().map(|d| d.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn errors_located_by_line() {
        let err = parse_mdl("metric x {\n  units: s;\n  aggregate: q;\n}").unwrap_err();
        assert!(matches!(err, ParadynError::Mdl { line: 3, .. }));
    }

    #[test]
    fn missing_property_rejected() {
        let err = parse_mdl("metric x {\n  units: s;\n  aggregate: sum;\n}").unwrap_err();
        assert!(err.to_string().contains("missing style"));
    }

    #[test]
    fn structural_errors_rejected() {
        assert!(parse_mdl("}").is_err());
        assert!(parse_mdl("units: s;").is_err());
        assert!(parse_mdl("metric x {").is_err());
        assert!(parse_mdl("metric x {\nmetric y {\n}\n}").is_err());
        assert!(parse_mdl("blah blah").is_err());
    }
}
