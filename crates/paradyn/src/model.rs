//! Paper-scale performance models of the Paradyn experiments.
//!
//! The threaded tool in this crate runs for real at laptop scale; this
//! module evaluates the same protocols on the simulated Blue Pacific
//! substrate so the harness can regenerate Figure 8 (start-up at 512
//! daemons) and Figure 9 (data-processing load up to 256 daemons × 32
//! metrics). All constants are calibration against the paper's
//! reported magnitudes; the *mechanisms* (serialized front-end message
//! handling, tree pipelining, per-input alignment cost) are the ones
//! the paper describes.

use mrnet_sim::{Cpu, LogGpParams, NetModel};
use mrnet_topology::{NodeId, Topology};

use crate::proto::Activity;

/// Cost parameters for the simulated start-up protocol (Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct StartupModel {
    /// Network costs.
    pub logp: LogGpParams,
    /// Daemon-local executable parsing time (seconds) — pure parallel
    /// work, identical with and without MRNet.
    pub parse_time: f64,
    /// Broadcast/reduction rounds in the clock-skew phase.
    pub skew_rounds: usize,
    /// Per-*message* front-end overhead for each activity's replies
    /// (seconds): receive handling, dispatch, reply bookkeeping. MRNet
    /// eliminates almost all of this by shrinking 512 messages to a
    /// handful of aggregated ones.
    pub fe_msg_self: f64,
    /// Per-*daemon item* front-end processing cost (seconds): the data
    /// of every daemon must still be examined by the front-end even
    /// when it arrives concatenated, which is why the paper's overall
    /// speedup is 3.4× and not unbounded.
    pub fe_item_self: f64,
    /// See `fe_msg_self`.
    pub fe_msg_metrics: f64,
    /// See `fe_item_self`.
    pub fe_item_metrics: f64,
    /// See `fe_msg_self`.
    pub fe_msg_process: f64,
    /// See `fe_item_self`.
    pub fe_item_process: f64,
    /// See `fe_msg_self`.
    pub fe_msg_machine: f64,
    /// See `fe_item_self`.
    pub fe_item_machine: f64,
    /// Per-message cost for equivalence-class replies; classes merge in
    /// the tree, so there is no per-daemon term with MRNet.
    pub fe_msg_eqclass: f64,
    /// See `fe_msg_self`.
    pub fe_msg_done: f64,
    /// Internal-process filter cost per inbound message (seconds).
    pub internal_cost: f64,
    /// Bytes: downstream request (small control packet).
    pub request_bytes: usize,
    /// Bytes: MDL document broadcast.
    pub mdl_bytes: usize,
    /// Bytes: one daemon's self/process/machine report.
    pub report_bytes: usize,
    /// Bytes: one equivalence-class contribution.
    pub eqclass_bytes: usize,
    /// Bytes: a representative's full code-resource report.
    pub code_resources_bytes: usize,
    /// Bytes: a representative's call graph.
    pub callgraph_bytes: usize,
}

impl Default for StartupModel {
    fn default() -> StartupModel {
        StartupModel {
            logp: LogGpParams::blue_pacific(),
            parse_time: 2.6,
            skew_rounds: 10,
            fe_msg_self: 0.003,
            fe_item_self: 0.001_5,
            fe_msg_metrics: 0.028,
            fe_item_metrics: 0.012,
            fe_msg_process: 0.006,
            fe_item_process: 0.003,
            fe_msg_machine: 0.008,
            fe_item_machine: 0.003_5,
            fe_msg_eqclass: 0.004,
            fe_msg_done: 0.000_5,
            internal_cost: 0.000_25,
            request_bytes: 32,
            mdl_bytes: 2_048,
            report_bytes: 96,
            eqclass_bytes: 48,
            code_resources_bytes: 15_000,
            callgraph_bytes: 6_500,
        }
    }
}

/// One broadcast (request) followed by one reduction (replies), with
/// per-message costs at internal processes and at the front-end.
/// Returns the completion time given a fresh network.
#[allow(clippy::too_many_arguments)]
fn collective_round(
    topology: &Topology,
    net: &mut NetModel,
    start: f64,
    down_bytes: usize,
    up_bytes: usize,
    fe_per_msg: f64,
    fe_per_item: f64,
    internal_cost: f64,
) -> f64 {
    // Downstream broadcast.
    let mut arrival = vec![start; topology.len()];
    for id in topology.bfs() {
        let t = arrival[id.0];
        for &child in topology.children(id) {
            arrival[child.0] = net.transfer(id.0, child.0, t, down_bytes);
        }
    }
    // Upstream reduction with processing costs. Returns (done time,
    // daemon items carried) for the subtree.
    #[allow(clippy::too_many_arguments)]
    fn up(
        topology: &Topology,
        node: NodeId,
        net: &mut NetModel,
        arrival: &[f64],
        up_bytes: usize,
        fe_per_msg: f64,
        fe_per_item: f64,
        internal_cost: f64,
    ) -> (f64, usize) {
        let children = topology.children(node);
        if children.is_empty() {
            return (arrival[node.0], 1);
        }
        let is_root = topology.parent(node).is_none();
        let mut last = 0.0f64;
        let mut items = 0usize;
        for &child in children {
            let (child_done, child_items) = up(
                topology,
                child,
                net,
                arrival,
                up_bytes,
                fe_per_msg,
                fe_per_item,
                internal_cost,
            );
            // Aggregated replies grow with the daemons they carry.
            let bytes = up_bytes * child_items;
            let received = net.transfer(child.0, node.0, child_done, bytes);
            // Serialized processing of this message at the receiver:
            // internal processes pay a small filter cost; the front-end
            // pays per-message overhead plus per-daemon data handling.
            let cost = if is_root {
                fe_per_msg + fe_per_item * child_items as f64
            } else {
                internal_cost
            };
            let done = received + cost;
            net.occupy(node.0, done);
            last = last.max(done);
            items += child_items;
        }
        (last, items)
    }
    up(
        topology,
        topology.root(),
        net,
        &arrival,
        up_bytes,
        fe_per_msg,
        fe_per_item,
        internal_cost,
    )
    .0
}

/// Simulated per-activity start-up latencies (Figure 8b) for a given
/// topology. A flat topology is the "No MRNet" baseline. Activities
/// run sequentially, each on a quiesced network, as in Paradyn.
pub fn startup_latencies(topology: &Topology, model: &StartupModel) -> Vec<(Activity, f64)> {
    let mut out = Vec::with_capacity(Activity::ALL.len());
    let mut net = NetModel::new(topology.len(), model.logp);
    let num_classes = 1; // homogeneous cluster: one code/callgraph class
    for activity in Activity::ALL {
        net.reset();
        let latency = match activity {
            Activity::ReportSelf => collective_round(
                topology,
                &mut net,
                0.0,
                model.request_bytes,
                model.report_bytes,
                model.fe_msg_self,
                model.fe_item_self,
                model.internal_cost,
            ),
            Activity::ReportMetrics => collective_round(
                topology,
                &mut net,
                0.0,
                model.mdl_bytes,
                model.eqclass_bytes,
                model.fe_msg_metrics,
                model.fe_item_metrics,
                model.internal_cost,
            ),
            Activity::FindClockSkew => {
                let mut t = 0.0;
                for _ in 0..model.skew_rounds {
                    t = collective_round(
                        topology,
                        &mut net,
                        t,
                        model.request_bytes,
                        model.report_bytes,
                        model.fe_msg_self,
                        model.fe_item_self * 0.5,
                        model.internal_cost,
                    );
                }
                t
            }
            Activity::ParseExecutable => model.parse_time,
            Activity::ReportProcess => collective_round(
                topology,
                &mut net,
                0.0,
                model.request_bytes,
                model.report_bytes,
                model.fe_msg_process,
                model.fe_item_process,
                model.internal_cost,
            ),
            Activity::ReportMachineResources => collective_round(
                topology,
                &mut net,
                0.0,
                model.request_bytes,
                model.report_bytes,
                model.fe_msg_machine,
                model.fe_item_machine,
                model.internal_cost,
            ),
            Activity::ReportCodeEqClasses | Activity::ReportCallgraphEqClasses => collective_round(
                topology,
                &mut net,
                0.0,
                model.request_bytes,
                model.eqclass_bytes,
                model.fe_msg_eqclass,
                0.0,
                model.internal_cost,
            ),
            Activity::ReportCodeResources => {
                // Point-to-point from each class representative; "the
                // additional overhead of passing through intermediate
                // MRNet processes was observed to be negligible".
                num_classes as f64
                    * (model.logp.wire_time(model.code_resources_bytes)
                        + model.fe_msg_metrics
                        + 1.2)
            }
            Activity::ReportCallgraph => {
                num_classes as f64
                    * (model.logp.wire_time(model.callgraph_bytes) + model.fe_msg_metrics + 0.9)
            }
            Activity::ReportDone => collective_round(
                topology,
                &mut net,
                0.0,
                model.request_bytes,
                model.request_bytes,
                model.fe_msg_done,
                0.0,
                model.internal_cost,
            ),
        };
        out.push((activity, latency));
    }
    out
}

/// Total simulated start-up latency (Figure 8a).
pub fn startup_total(topology: &Topology, model: &StartupModel) -> f64 {
    startup_latencies(topology, model)
        .iter()
        .map(|(_, l)| l)
        .sum()
}

/// Cost parameters for the Figure 9 data-processing model.
#[derive(Debug, Clone, Copy)]
pub struct LoadModel {
    /// Samples per second per metric per daemon (Paradyn default: 5).
    pub sample_rate: f64,
    /// Base front-end cost to align + reduce one sample (seconds).
    pub align_base: f64,
    /// Additional per-sample cost per input connection the aligner
    /// tracks — centralized aggregation scans one queue per daemon,
    /// which is what makes its per-sample cost grow with D.
    pub align_per_input: f64,
    /// Per-message receive/dispatch cost (seconds); daemons batch all
    /// their metrics into one message per sample period, "Paradyn
    /// increases the size of its messages … rather than the number".
    pub per_message: f64,
    /// Front-end CPU capacity (work-seconds per second).
    pub capacity: f64,
}

impl Default for LoadModel {
    fn default() -> LoadModel {
        LoadModel {
            sample_rate: 5.0,
            align_base: 20e-6,
            align_per_input: 2.2e-6,
            per_message: 0.5e-3,
            capacity: 1.0,
        }
    }
}

impl LoadModel {
    /// Offered front-end work (CPU-s/s) when aggregating `inputs`
    /// input connections each delivering `metrics` metric streams.
    fn fe_work(&self, inputs: usize, metrics: usize) -> f64 {
        let sample_rate = self.sample_rate * inputs as f64 * metrics as f64;
        let msg_rate = self.sample_rate * inputs as f64;
        let per_sample = self.align_base + self.align_per_input * inputs as f64;
        sample_rate * per_sample + msg_rate * self.per_message
    }

    /// Fraction of the offered performance-data load the front-end
    /// services (a Figure 9 data point). `fanout = None` is the
    /// centralized, no-MRNet configuration; `Some(f)` puts MRNet
    /// internal processes with the given fan-out below the front-end,
    /// so the front-end aggregates only `f` pre-aggregated inputs.
    pub fn fraction_of_offered_load(
        &self,
        daemons: usize,
        metrics: usize,
        fanout: Option<usize>,
    ) -> f64 {
        let inputs = match fanout {
            None => daemons,
            Some(f) => f.min(daemons),
        };
        let work = self.fe_work(inputs, metrics);
        Cpu::with_capacity(self.capacity).serviced_fraction(work)
    }

    /// Ablation: what if the aggregation filter ran *only* in the
    /// top-most internal process instead of at every level? The tree
    /// still batches messages, but the top process must align every
    /// daemon's stream itself, so it inherits the centralized
    /// scheme's per-sample cost growth — quantifying why MRNet places
    /// filters at every internal process.
    pub fn fraction_with_root_only_aggregation(
        &self,
        daemons: usize,
        metrics: usize,
        fanout: usize,
    ) -> f64 {
        let sample_rate = self.sample_rate * daemons as f64 * metrics as f64;
        // Children forward batched subtree traffic: one message per
        // child per sample period.
        let msg_rate = self.sample_rate * fanout.min(daemons) as f64;
        let per_sample = self.align_base + self.align_per_input * daemons as f64;
        let work = sample_rate * per_sample + msg_rate * self.per_message;
        Cpu::with_capacity(self.capacity).serviced_fraction(work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_topology::{generator, HostPool};

    fn flat(n: usize) -> Topology {
        generator::flat(n, &mut HostPool::synthetic(1024)).unwrap()
    }

    fn tree(f: usize, n: usize) -> Topology {
        generator::balanced_for(f, n, &mut HostPool::synthetic(1024)).unwrap()
    }

    #[test]
    fn fig8a_magnitudes() {
        let m = StartupModel::default();
        let no_mrnet = startup_total(&flat(512), &m);
        let mrnet8 = startup_total(&tree(8, 512), &m);
        // Paper: ~70 s without MRNet at 512 daemons; "3.4 times faster"
        // with the 8-way tree.
        assert!(
            (50.0..95.0).contains(&no_mrnet),
            "no-MRNet total {no_mrnet}"
        );
        let speedup = no_mrnet / mrnet8;
        assert!(
            (2.5..4.5).contains(&speedup),
            "speedup {speedup} (no-MRNet {no_mrnet}, 8-way {mrnet8})"
        );
    }

    #[test]
    fn fig8a_growth_shapes() {
        let m = StartupModel::default();
        // Flat grows ~linearly in D with a large slope; the tree grows
        // slowly.
        let f128 = startup_total(&flat(128), &m);
        let f512 = startup_total(&flat(512), &m);
        assert!(f512 > 3.0 * f128, "flat should grow steeply");
        // The paper's MRNet curves are "much flatter and growth is
        // nearly linear"; per-daemon front-end data handling gives the
        // linear component.
        let t128 = startup_total(&tree(8, 128), &m);
        let t512 = startup_total(&tree(8, 512), &m);
        assert!(t512 < 4.2 * t128, "tree growth should be at most linear");
        assert!(t512 < f512 / 2.5, "tree stays far below flat");
    }

    #[test]
    fn fig8b_activity_breakdown() {
        let m = StartupModel::default();
        let no: std::collections::HashMap<_, _> =
            startup_latencies(&flat(512), &m).into_iter().collect();
        let yes: std::collections::HashMap<_, _> =
            startup_latencies(&tree(8, 512), &m).into_iter().collect();
        // Aggregation-using activities improve a lot.
        for act in Activity::ALL {
            if act.uses_aggregation() {
                assert!(
                    yes[&act] < no[&act] / 3.0,
                    "{} should improve: {} vs {}",
                    act.name(),
                    yes[&act],
                    no[&act]
                );
            } else {
                // Local / point-to-point activities are ~unchanged.
                assert!(
                    (yes[&act] - no[&act]).abs() < 0.3,
                    "{} should be ~unchanged",
                    act.name()
                );
            }
        }
        // Report Metrics is the biggest no-MRNet activity; clock skew
        // also large (repeated collectives).
        assert!(no[&Activity::ReportMetrics] > 15.0);
        assert!(no[&Activity::FindClockSkew] > 5.0);
    }

    #[test]
    fn fig9_flat_degrades_with_daemons_and_metrics() {
        let m = LoadModel::default();
        // D=64, M=32 without MRNet: "only about 60% of the rate".
        let f = m.fraction_of_offered_load(64, 32, None);
        assert!((0.4..0.75).contains(&f), "64x32 flat fraction {f}");
        // D=256, M=32: "less than 5%… [well,] a rate of less than 5%"
        // — the paper says <5%; accept a hair above.
        let f = m.fraction_of_offered_load(256, 32, None);
        assert!(f < 0.07, "256x32 flat fraction {f}");
        // Monotone decline in both D and M.
        let mut prev = 1.1;
        for d in [4, 16, 64, 128, 256] {
            let f = m.fraction_of_offered_load(d, 32, None);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
        assert!(
            m.fraction_of_offered_load(256, 8, None) > m.fraction_of_offered_load(256, 32, None)
        );
    }

    #[test]
    fn fig9_mrnet_keeps_up_everywhere() {
        let m = LoadModel::default();
        for fanout in [4usize, 8, 16] {
            for d in [4usize, 16, 64, 128, 256] {
                for metrics in [1usize, 8, 16, 32] {
                    let f = m.fraction_of_offered_load(d, metrics, Some(fanout));
                    assert!(
                        (f - 1.0).abs() < 1e-9,
                        "fanout {fanout}, D={d}, M={metrics}: {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn ablation_root_only_aggregation_inherits_flat_scaling() {
        let m = LoadModel::default();
        // Distributed filters keep up; a single top-level aggregator
        // degrades almost exactly like the centralized scheme at scale
        // (message batching saves a little, alignment dominates).
        let distributed = m.fraction_of_offered_load(256, 32, Some(8));
        let root_only = m.fraction_with_root_only_aggregation(256, 32, 8);
        let flat = m.fraction_of_offered_load(256, 32, None);
        assert_eq!(distributed, 1.0);
        assert!(root_only < 0.1, "root-only {root_only}");
        assert!((root_only - flat).abs() < 0.05);
        assert!(root_only >= flat, "batching only helps");
    }

    #[test]
    fn fig9_small_flat_configs_keep_up() {
        let m = LoadModel::default();
        assert_eq!(m.fraction_of_offered_load(4, 1, None), 1.0);
        assert_eq!(m.fraction_of_offered_load(16, 1, None), 1.0);
    }

    #[test]
    fn collective_round_pipelines_in_trees() {
        let m = StartupModel::default();
        let mut net = NetModel::new(1024, m.logp);
        let flat_t = collective_round(
            &flat(256),
            &mut net,
            0.0,
            64,
            64,
            0.005,
            0.0,
            m.internal_cost,
        );
        let mut net2 = NetModel::new(1024, m.logp);
        let tree_t = collective_round(
            &tree(4, 256),
            &mut net2,
            0.0,
            64,
            64,
            0.005,
            0.0,
            m.internal_cost,
        );
        assert!(flat_t > 5.0 * tree_t, "flat {flat_t} vs tree {tree_t}");
    }
}
