//! Tags and stream conventions of the Paradyn start-up protocol
//! (§3.1, the eleven activities of Figure 8b).

/// Message tags used between the Paradyn front-end and its daemons.
pub mod tags {
    /// Each daemon reports basic characteristics (concatenation).
    pub const REPORT_SELF: i32 = 100;
    /// MDL broadcast downstream; supported-metric equivalence classes
    /// upstream.
    pub const REPORT_METRICS: i32 = 101;
    /// Clock-skew probe round (broadcast/reduction pairs).
    pub const SKEW_PROBE: i32 = 102;
    /// Process data report (concatenation).
    pub const REPORT_PROCESS: i32 = 103;
    /// Machine resource definitions (concatenation).
    pub const REPORT_MACHINE: i32 = 104;
    /// Code checksum equivalence classes (binning filter).
    pub const CODE_EQCLASS: i32 = 105;
    /// Full code resources from class representatives.
    pub const CODE_RESOURCES: i32 = 106;
    /// Call-graph checksum equivalence classes (binning filter).
    pub const CALLGRAPH_EQCLASS: i32 = 107;
    /// Full call graph from class representatives.
    pub const CALLGRAPH: i32 = 108;
    /// End of the start-up phase (sum reduction).
    pub const REPORT_DONE: i32 = 109;
    /// Performance-data sampling request (metric index in payload).
    pub const SAMPLE_DATA: i32 = 200;
    /// Stop sampling.
    pub const STOP_SAMPLING: i32 = 201;
}

/// The Figure 8b start-up activities, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// "Report Self".
    ReportSelf,
    /// "Report Metrics".
    ReportMetrics,
    /// "Find Clock Skew".
    FindClockSkew,
    /// "Parse Executable" (daemon-local work).
    ParseExecutable,
    /// "Report Process".
    ReportProcess,
    /// "Report Machine Resources".
    ReportMachineResources,
    /// "Report Code Eq Classes".
    ReportCodeEqClasses,
    /// "Report Code Resources".
    ReportCodeResources,
    /// "Report Callgraph Eq Classes".
    ReportCallgraphEqClasses,
    /// "Report Callgraph".
    ReportCallgraph,
    /// "Report Done".
    ReportDone,
}

impl Activity {
    /// All activities in protocol order.
    pub const ALL: [Activity; 11] = [
        Activity::ReportSelf,
        Activity::ReportMetrics,
        Activity::FindClockSkew,
        Activity::ParseExecutable,
        Activity::ReportProcess,
        Activity::ReportMachineResources,
        Activity::ReportCodeEqClasses,
        Activity::ReportCodeResources,
        Activity::ReportCallgraphEqClasses,
        Activity::ReportCallgraph,
        Activity::ReportDone,
    ];

    /// The display name used in Figure 8b.
    pub fn name(self) -> &'static str {
        match self {
            Activity::ReportSelf => "Report Self",
            Activity::ReportMetrics => "Report Metrics",
            Activity::FindClockSkew => "Find Clock Skew",
            Activity::ParseExecutable => "Parse Executable",
            Activity::ReportProcess => "Report Process",
            Activity::ReportMachineResources => "Report Machine Resources",
            Activity::ReportCodeEqClasses => "Report Code Eq Classes",
            Activity::ReportCodeResources => "Report Code Resources",
            Activity::ReportCallgraphEqClasses => "Report Callgraph Eq Classes",
            Activity::ReportCallgraph => "Report Callgraph",
            Activity::ReportDone => "Report Done",
        }
    }

    /// Whether the activity uses MRNet aggregation/concatenation for
    /// some part of its work (bold names in Figure 8b). The others are
    /// daemon-local work or point-to-point transfers.
    pub fn uses_aggregation(self) -> bool {
        !matches!(
            self,
            Activity::ParseExecutable | Activity::ReportCodeResources | Activity::ReportCallgraph
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_activities_in_order() {
        assert_eq!(Activity::ALL.len(), 11);
        assert_eq!(Activity::ALL[0].name(), "Report Self");
        assert_eq!(Activity::ALL[10].name(), "Report Done");
    }

    #[test]
    fn aggregation_flags_match_figure_8b() {
        assert!(Activity::ReportSelf.uses_aggregation());
        assert!(Activity::ReportMetrics.uses_aggregation());
        assert!(Activity::FindClockSkew.uses_aggregation());
        assert!(!Activity::ParseExecutable.uses_aggregation());
        assert!(!Activity::ReportCodeResources.uses_aggregation());
        assert!(!Activity::ReportCallgraph.uses_aggregation());
        assert!(Activity::ReportDone.uses_aggregation());
    }

    #[test]
    fn tags_distinct() {
        let all = [
            tags::REPORT_SELF,
            tags::REPORT_METRICS,
            tags::SKEW_PROBE,
            tags::REPORT_PROCESS,
            tags::REPORT_MACHINE,
            tags::CODE_EQCLASS,
            tags::CODE_RESOURCES,
            tags::CALLGRAPH_EQCLASS,
            tags::CALLGRAPH,
            tags::REPORT_DONE,
            tags::SAMPLE_DATA,
            tags::STOP_SAMPLING,
        ];
        let mut dedup = all.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
