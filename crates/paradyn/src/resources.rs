//! Paradyn resources.
//!
//! "At tool start-up, the Paradyn back-ends examine application
//! processes to identify the relevant parts of the program, such as
//! modules, functions, and process ids. Such items are called
//! *resources* in Paradyn terminology" (§3.1). Resources form a
//! hierarchy rooted at `/Code` (program structure) and `/Machine`
//! (hosts, processes, threads).

use crate::app::Executable;

/// The top-level resource hierarchies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Program structure: modules and functions.
    Code,
    /// Execution structure: hosts, processes, threads.
    Machine,
}

/// One resource: a path in a hierarchy, e.g.
/// `/Code/smg2000_mod3.c/smg2000_m3_f120` or
/// `/Machine/node007/pid4242/thr0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Resource {
    /// Which hierarchy the path belongs to.
    pub kind: ResourceKind,
    /// Path components below the hierarchy root.
    pub path: Vec<String>,
}

impl Resource {
    /// Builds a code resource.
    pub fn code(path: impl IntoIterator<Item = impl Into<String>>) -> Resource {
        Resource {
            kind: ResourceKind::Code,
            path: path.into_iter().map(Into::into).collect(),
        }
    }

    /// Builds a machine resource.
    pub fn machine(path: impl IntoIterator<Item = impl Into<String>>) -> Resource {
        Resource {
            kind: ResourceKind::Machine,
            path: path.into_iter().map(Into::into).collect(),
        }
    }

    /// Canonical textual form (`/Code/...` or `/Machine/...`).
    pub fn canonical(&self) -> String {
        let root = match self.kind {
            ResourceKind::Code => "/Code",
            ResourceKind::Machine => "/Machine",
        };
        let mut s = String::from(root);
        for part in &self.path {
            s.push('/');
            s.push_str(part);
        }
        s
    }

    /// Parses the canonical form.
    pub fn parse(s: &str) -> Option<Resource> {
        let rest = s.strip_prefix('/')?;
        let mut parts = rest.split('/');
        let kind = match parts.next()? {
            "Code" => ResourceKind::Code,
            "Machine" => ResourceKind::Machine,
            _ => return None,
        };
        Ok::<(), ()>(()).ok()?;
        Some(Resource {
            kind,
            path: parts.map(str::to_owned).collect(),
        })
    }
}

/// The code resources a daemon defines after parsing `exe`: one per
/// module plus one per function ("the daemons define resources for all
/// functions and modules in the application executable", §4.2.1).
pub fn code_resources(exe: &Executable) -> Vec<Resource> {
    let mut out = Vec::with_capacity(exe.num_functions() + exe.modules.len());
    for module in &exe.modules {
        out.push(Resource::code([module.name.clone()]));
        for f in &module.functions {
            out.push(Resource::code([module.name.clone(), f.name.clone()]));
        }
    }
    out
}

/// The machine resources one daemon defines for its application
/// process: host, process, and initial thread (§4.2.1 "Report Machine
/// Resources").
pub fn machine_resources(host: &str, pid: u32) -> Vec<Resource> {
    vec![
        Resource::machine([host.to_owned()]),
        Resource::machine([host.to_owned(), format!("pid{pid}")]),
        Resource::machine([host.to_owned(), format!("pid{pid}"), "thr0".to_owned()]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_and_parse_round_trip() {
        let r = Resource::code(["mod.c", "func"]);
        assert_eq!(r.canonical(), "/Code/mod.c/func");
        assert_eq!(Resource::parse("/Code/mod.c/func"), Some(r));
        let m = Resource::machine(["node1", "pid9", "thr0"]);
        assert_eq!(Resource::parse(&m.canonical()), Some(m));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Resource::parse("Code/x"), None);
        assert_eq!(Resource::parse("/Proc/x"), None);
        assert_eq!(Resource::parse(""), None);
    }

    #[test]
    fn code_resources_cover_modules_and_functions() {
        let exe = Executable::synthetic("a", 10, 2, 1);
        let rs = code_resources(&exe);
        assert_eq!(rs.len(), 12);
        assert!(rs.iter().any(|r| r.path.len() == 1));
        assert_eq!(rs.iter().filter(|r| r.path.len() == 2).count(), 10);
    }

    #[test]
    fn machine_resources_three_levels() {
        let rs = machine_resources("node3", 1234);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[2].canonical(), "/Machine/node3/pid1234/thr0");
    }
}
