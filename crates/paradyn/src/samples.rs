//! Performance data samples.
//!
//! §3.2: "Paradyn represents a data sample as {v, i}, where v is the
//! sample's value and i is the time interval to which the value
//! applies." Back-ends collect samples asynchronously, so interval
//! timestamps — not just arrival order — drive aggregation.

use mrnet_packet::{Packet, PacketBuilder, StreamId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::{ParadynError, Result};

/// One performance data sample: a value over a time interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The sample's value.
    pub value: f64,
    /// Interval start timestamp, seconds.
    pub start: f64,
    /// Interval end timestamp, seconds (exclusive; `end > start`).
    pub end: f64,
}

impl Sample {
    /// Builds a sample; panics if the interval is empty or inverted.
    pub fn new(value: f64, start: f64, end: f64) -> Sample {
        assert!(end > start, "sample interval must have positive length");
        Sample { value, start, end }
    }

    /// Interval length.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// Never true — intervals have positive length by construction —
    /// but provided for API symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Length of overlap with `[start, end)`.
    pub fn overlap(&self, start: f64, end: f64) -> f64 {
        (self.end.min(end) - self.start.max(start)).max(0.0)
    }

    /// Splits this sample at `t`, attributing value proportionally to
    /// the two parts (§3.2: "because the sample's value is attributed
    /// proportionally … there is no lost performance data due to
    /// round-off issues"). Returns `(left, right)`; `t` must lie
    /// strictly inside the interval.
    pub fn split_at(&self, t: f64) -> (Sample, Sample) {
        assert!(
            t > self.start && t < self.end,
            "split point outside interval"
        );
        let frac = (t - self.start) / self.len();
        (
            Sample::new(self.value * frac, self.start, t),
            Sample::new(self.value * (1.0 - frac), t, self.end),
        )
    }

    /// The MRNet wire format for samples: `(value, start, end)`.
    pub const FORMAT: &'static str = "%lf %lf %lf";

    /// Encodes as a packet on `stream` with `tag`.
    pub fn to_packet(&self, stream: StreamId, tag: i32) -> Packet {
        PacketBuilder::new(stream, tag)
            .push(self.value)
            .push(self.start)
            .push(self.end)
            .build()
    }

    /// Decodes from a packet produced by [`Sample::to_packet`].
    pub fn from_packet(packet: &Packet) -> Result<Sample> {
        let get = |i: usize| {
            packet
                .get(i)
                .and_then(Value::as_f64)
                .ok_or(ParadynError::Malformed("sample packet"))
        };
        let (value, start, end) = (get(0)?, get(1)?, get(2)?);
        if end <= start {
            return Err(ParadynError::Malformed("sample interval"));
        }
        Ok(Sample { value, start, end })
    }
}

/// Generates a daemon's sample sequence for one metric: fixed-rate
/// sampling with bounded timing jitter, the §4.2.2 workload ("we fixed
/// each daemon's sampling rate to Paradyn's default initial rate of
/// five samples per second per metric").
#[derive(Debug, Clone)]
pub struct SampleGenerator {
    rng: SmallRng,
    period: f64,
    jitter: f64,
    /// End timestamp of the last generated sample.
    cursor: f64,
    /// Mean sample value.
    level: f64,
}

impl SampleGenerator {
    /// A generator emitting `rate` samples/second with start offset
    /// `phase`, ±`jitter` fractional interval-length jitter, and mean
    /// value `level`.
    pub fn new(rate: f64, phase: f64, jitter: f64, level: f64, seed: u64) -> SampleGenerator {
        assert!(rate > 0.0);
        SampleGenerator {
            rng: SmallRng::seed_from_u64(seed),
            period: 1.0 / rate,
            jitter,
            cursor: phase,
            level,
        }
    }

    /// The next sample in the sequence.
    pub fn next_sample(&mut self) -> Sample {
        let len = if self.jitter > 0.0 {
            self.period * self.rng.gen_range(1.0 - self.jitter..1.0 + self.jitter)
        } else {
            self.period
        };
        let value = self.level * (len / self.period);
        let s = Sample::new(value, self.cursor, self.cursor + len);
        self.cursor = s.end;
        s
    }

    /// Generates samples until `until` (exclusive by start time).
    pub fn take_until(&mut self, until: f64) -> Vec<Sample> {
        let mut out = Vec::new();
        while self.cursor < until {
            out.push(self.next_sample());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_math() {
        let s = Sample::new(10.0, 1.0, 2.0);
        assert_eq!(s.overlap(0.0, 3.0), 1.0);
        assert_eq!(s.overlap(1.5, 3.0), 0.5);
        assert_eq!(s.overlap(0.0, 1.0), 0.0);
        assert_eq!(s.overlap(2.0, 3.0), 0.0);
        assert!((s.len() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_split_conserves_value() {
        let s = Sample::new(12.0, 0.0, 3.0);
        let (l, r) = s.split_at(1.0);
        assert!((l.value - 4.0).abs() < 1e-12);
        assert!((r.value - 8.0).abs() < 1e-12);
        assert_eq!(l.end, 1.0);
        assert_eq!(r.start, 1.0);
        assert!((l.value + r.value - s.value).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "split point")]
    fn split_outside_panics() {
        Sample::new(1.0, 0.0, 1.0).split_at(2.0);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_interval_rejected() {
        Sample::new(1.0, 2.0, 2.0);
    }

    #[test]
    fn packet_round_trip() {
        let s = Sample::new(3.25, 10.0, 10.2);
        let p = s.to_packet(7, 99);
        assert_eq!(p.fmt().to_string(), Sample::FORMAT);
        assert_eq!(Sample::from_packet(&p).unwrap(), s);
    }

    #[test]
    fn malformed_packets_rejected() {
        let p = PacketBuilder::new(0, 0).push(1.0f64).build();
        assert!(Sample::from_packet(&p).is_err());
        // Inverted interval.
        let p = PacketBuilder::new(0, 0)
            .push(1.0f64)
            .push(5.0f64)
            .push(4.0f64)
            .build();
        assert!(Sample::from_packet(&p).is_err());
    }

    #[test]
    fn generator_rate_and_continuity() {
        let mut g = SampleGenerator::new(5.0, 0.0, 0.0, 1.0, 1);
        let samples = g.take_until(1.9);
        assert_eq!(samples.len(), 10);
        for w in samples.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12, "contiguous");
        }
        assert!((samples[0].len() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn generator_jitter_bounded_and_contiguous() {
        let mut g = SampleGenerator::new(5.0, 0.25, 0.2, 1.0, 7);
        let samples = g.take_until(10.0);
        for w in samples.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
        for s in &samples {
            assert!(s.len() >= 0.2 * 0.8 - 1e-9 && s.len() <= 0.2 * 1.2 + 1e-9);
        }
        assert_eq!(samples[0].start, 0.25);
    }

    #[test]
    fn generator_deterministic() {
        let mut a = SampleGenerator::new(5.0, 0.0, 0.3, 2.0, 9);
        let mut b = SampleGenerator::new(5.0, 0.0, 0.3, 2.0, 9);
        for _ in 0..50 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }
}
