//! Clock-skew detection (§3.1, evaluated in §4.2.1).
//!
//! Two schemes are implemented over the simulated clock substrate:
//!
//! * **MRNet-based**: phase 1 measures "local" skew between each
//!   process and each direct child with repeated probe exchanges;
//!   phase 2 accumulates the local skews along tree paths, so "when
//!   the algorithm finishes the Paradyn front-end holds the skews
//!   between its clock and the clocks of each tool back-end".
//! * **Direct-communication** (the comparison scheme): the front-end
//!   probes each daemon directly; each probe estimates skew from the
//!   round-trip latency, and "the front-end measured the skew … 100
//!   times and used the observed skew with the smallest absolute value
//!   as the actual clock skew".
//!
//! Ground truth comes from the simulator's global virtual time — the
//! stand-in for Blue Pacific's globally-synchronous SP switch clock.

use mrnet_sim::{ClockWorld, LogGpParams};
use mrnet_topology::{Role, Topology};

/// Parameters of a skew-detection experiment.
#[derive(Debug, Clone, Copy)]
pub struct SkewParams {
    /// Max absolute clock offset, seconds.
    pub max_offset: f64,
    /// Max absolute fractional drift.
    pub max_drift: f64,
    /// Mean one-way exponential message jitter, seconds.
    pub jitter_mean: f64,
    /// Probe exchanges per tree link in the MRNet scheme's phase 1
    /// (the paper's "repeated broadcast/reduction pairs").
    pub link_probes: usize,
    /// Probes per daemon in the direct scheme (the paper used 100).
    pub direct_probes: usize,
    /// Base network costs.
    pub logp: LogGpParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkewParams {
    fn default() -> Self {
        SkewParams {
            max_offset: 0.020,
            max_drift: 5e-6,
            jitter_mean: 0.000_8,
            link_probes: 10,
            direct_probes: 100,
            logp: LogGpParams::blue_pacific(),
            seed: 1,
        }
    }
}

/// One probe exchange `parent -> child -> parent` starting at global
/// time `t`. Returns `(estimated child-minus-parent skew, rtt)` as the
/// parent computes them from its own clock.
fn probe(world: &mut ClockWorld, parent: usize, child: usize, t: f64, base: f64) -> (f64, f64) {
    let d1 = base + world.sample_jitter();
    let child_reads = world.clock(child).read(t + d1);
    let d2 = base + world.sample_jitter();
    let t_back = t + d1 + d2;
    let p0 = world.clock(parent).read(t);
    let p1 = world.clock(parent).read(t_back);
    let rtt = p1 - p0;
    // NTP-style estimate: the child's clock read minus the assumed
    // midpoint of the round trip.
    let est = child_reads - (p0 + rtt / 2.0);
    (est, rtt)
}

/// Measures the local skew of `child` relative to `parent` with
/// `probes` exchanges, averaging the per-probe estimates (what the
/// repeated broadcast/reduction pairs of §3.1 amount to). Probes are
/// spaced `spacing` apart starting at `t0`; returns (estimate, time
/// after the last probe).
fn measure_local_skew(
    world: &mut ClockWorld,
    parent: usize,
    child: usize,
    t0: f64,
    probes: usize,
    base: f64,
    spacing: f64,
) -> (f64, f64) {
    let mut sum = 0.0;
    let mut t = t0;
    for _ in 0..probes {
        let (est, _rtt) = probe(world, parent, child, t, base);
        sum += est;
        t += spacing;
    }
    (sum / probes as f64, t)
}

/// Results of one scheme: per-daemon `(estimated, true)` skews.
#[derive(Debug, Clone)]
pub struct SkewEstimates {
    /// `(daemon rank, estimated skew, true skew)` triples.
    pub rows: Vec<(u32, f64, f64)>,
}

impl SkewEstimates {
    /// Mean of per-daemon relative errors `|est-true|/|true|`, as a
    /// percentage — the paper's "average error" metric.
    pub fn average_error_percent(&self) -> f64 {
        let sum: f64 = self
            .rows
            .iter()
            .map(|(_, est, truth)| (est - truth).abs() / truth.abs().max(1e-12))
            .sum();
        100.0 * sum / self.rows.len() as f64
    }

    /// Standard deviation of the per-daemon relative errors (percent).
    pub fn error_stddev_percent(&self) -> f64 {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .map(|(_, est, truth)| 100.0 * (est - truth).abs() / truth.abs().max(1e-12))
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let var = errs.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / errs.len() as f64;
        var.sqrt()
    }

    /// Mean absolute error in seconds.
    pub fn mean_abs_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|(_, est, truth)| (est - truth).abs())
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

/// Runs the MRNet-based cumulative skew-detection algorithm over
/// `topology` (node index = simulated process index; the root is the
/// front-end).
pub fn mrnet_skew(topology: &Topology, params: &SkewParams) -> SkewEstimates {
    let mut world = ClockWorld::new(
        topology.len(),
        params.max_offset,
        params.max_drift,
        params.seed,
    );
    world.jitter_mean = params.jitter_mean;
    let base = params.logp.overhead + params.logp.latency + params.logp.overhead;
    let spacing = (params.logp.gap * 2.0).max(base);

    // Phase 1: local skew per tree edge. Edges are probed in BFS
    // order; different subtrees would run concurrently in the real
    // system, but estimate quality is time-independent here.
    let mut local = vec![0.0f64; topology.len()];
    let mut t = 0.0;
    for id in topology.bfs() {
        for &child in topology.children(id) {
            let (est, t_next) = measure_local_skew(
                &mut world,
                id.0,
                child.0,
                t,
                params.link_probes,
                base,
                spacing,
            );
            local[child.0] = est;
            t = t_next;
        }
    }

    // Phase 2: cumulative skew — each daemon's skew against the
    // front-end is the sum of local skews along its path.
    let eval_time = t;
    let mut rows = Vec::new();
    for id in topology.bfs() {
        if topology.role(id) != Role::BackEnd {
            continue;
        }
        let mut acc = 0.0;
        let mut cur = id;
        while let Some(parent) = topology.parent(cur) {
            acc += local[cur.0];
            cur = parent;
        }
        let truth = world.true_skew(id.0, topology.root().0, eval_time);
        rows.push((id.0 as u32, acc, truth));
    }
    SkewEstimates { rows }
}

/// Runs the direct-communication scheme: the front-end probes every
/// daemon, keeping per daemon "the observed skew with the smallest
/// absolute value" over `probes` exchanges (§4.2.1).
pub fn direct_skew(topology: &Topology, params: &SkewParams) -> SkewEstimates {
    let mut world = ClockWorld::new(
        topology.len(),
        params.max_offset,
        params.max_drift,
        params.seed,
    );
    world.jitter_mean = params.jitter_mean;
    let base = params.logp.overhead + params.logp.latency + params.logp.overhead;
    let spacing = (params.logp.gap * 2.0).max(base);

    let root = topology.root().0;
    let mut t = 0.0;
    let mut rows = Vec::new();
    for id in topology.bfs() {
        if topology.role(id) != Role::BackEnd {
            continue;
        }
        let mut best = f64::INFINITY;
        for _ in 0..params.direct_probes {
            let (est, _rtt) = probe(&mut world, root, id.0, t, base);
            if est.abs() < best.abs() {
                best = est;
            }
            t += spacing;
        }
        let truth = world.true_skew(id.0, root, t);
        rows.push((id.0 as u32, best, truth));
    }
    SkewEstimates { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrnet_topology::{generator, HostPool};

    fn topo_64_4way() -> Topology {
        generator::balanced(4, 3, &mut HostPool::synthetic(256)).unwrap()
    }

    #[test]
    fn probe_without_jitter_is_exact_for_symmetric_paths() {
        let mut world = ClockWorld::new(2, 0.05, 0.0, 3);
        world.jitter_mean = 0.0;
        let (est, rtt) = probe(&mut world, 0, 1, 10.0, 0.001);
        let truth = world.true_skew(1, 0, 10.0);
        assert!((est - truth).abs() < 1e-9, "est {est} vs true {truth}");
        assert!((rtt - 0.002).abs() < 1e-9);
    }

    #[test]
    fn averaged_estimate_converges() {
        let mut world = ClockWorld::new(2, 0.05, 0.0, 5);
        world.jitter_mean = 0.001;
        let truth = world.true_skew(1, 0, 0.0);
        let (est_many, _) = measure_local_skew(&mut world, 0, 1, 0.0, 400, 0.001, 0.005);
        assert!(
            (est_many - truth).abs() < 0.0005,
            "averaged estimate off by {}",
            (est_many - truth).abs()
        );
    }

    #[test]
    fn mrnet_skew_64_daemons_reasonable_errors() {
        let topo = topo_64_4way();
        assert_eq!(topo.num_backends(), 64);
        let est = mrnet_skew(&topo, &SkewParams::default());
        assert_eq!(est.rows.len(), 64);
        let avg = est.average_error_percent();
        // Paper: 10.5% average error for this configuration; accept a
        // generous band around it.
        assert!(avg < 60.0, "average error {avg}%");
    }

    #[test]
    fn direct_skew_runs_and_is_worse_or_similar() {
        let topo = topo_64_4way();
        let params = SkewParams::default();
        let m = mrnet_skew(&topo, &params);
        let d = direct_skew(&topo, &params);
        assert_eq!(d.rows.len(), 64);
        // The paper found the MRNet scheme's average error lower
        // (10.5% vs 17.5%); require we reproduce the ordering.
        assert!(
            m.average_error_percent() <= d.average_error_percent() * 1.2,
            "mrnet {:.1}% vs direct {:.1}%",
            m.average_error_percent(),
            d.average_error_percent()
        );
    }

    #[test]
    fn estimates_deterministic_by_seed() {
        let topo = topo_64_4way();
        let a = mrnet_skew(&topo, &SkewParams::default());
        let b = mrnet_skew(&topo, &SkewParams::default());
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn error_statistics() {
        let est = SkewEstimates {
            rows: vec![(1, 1.1, 1.0), (2, 0.9, 1.0)],
        };
        assert!((est.average_error_percent() - 10.0).abs() < 1e-9);
        assert!(est.error_stddev_percent() < 1e-9);
        assert!((est.mean_abs_error() - 0.1).abs() < 1e-12);
    }
}
