//! Call-stack prefix-tree merging — the STAT-style use of MRNet.
//!
//! The paper positions MRNet as general infrastructure for scalable
//! tools; its best-known later adopter is STAT (the Stack Trace
//! Analysis Tool), which merges stack traces from every process of a
//! huge MPI job into one prefix tree as they flow up an MRNet tree,
//! grouping processes into equivalence classes by behavior. This
//! module provides that aggregation: a [`StackTree`] that merges call
//! stacks (recording which ranks are at which leaf), a wire encoding,
//! and [`StackMergeFilter`], a custom transformation filter usable on
//! any MRNet stream.

use mrnet_filters::{FilterContext, FilterError, Transform};
use mrnet_packet::{FormatString, Packet, PacketBuilder, Rank, StreamId, Value};

use crate::error::{ParadynError, Result};

/// The wire format of an encoded stack tree:
/// frames, parent indices, per-node suspended-rank lists (offsets +
/// flattened ranks).
pub const STACKTREE_FORMAT: &str = "%as %aud %aud %aud";

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    frame: String,
    /// Index of the parent node (`u32::MAX` for the synthetic root).
    parent: u32,
    /// Ranks whose innermost frame is this node.
    ranks: Vec<Rank>,
}

/// A merged prefix tree of call stacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackTree {
    /// Node 0 is the synthetic root (empty frame).
    nodes: Vec<Node>,
}

impl Default for StackTree {
    fn default() -> Self {
        StackTree::new()
    }
}

impl StackTree {
    /// An empty tree.
    pub fn new() -> StackTree {
        StackTree {
            nodes: vec![Node {
                frame: String::new(),
                parent: u32::MAX,
                ranks: Vec::new(),
            }],
        }
    }

    /// Number of nodes, excluding the synthetic root.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True when no stacks have been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].ranks.is_empty()
    }

    fn child_of(&self, parent: u32, frame: &str) -> Option<u32> {
        self.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.parent == parent && n.frame == frame)
            .map(|(i, _)| i as u32)
    }

    fn get_or_add_child(&mut self, parent: u32, frame: &str) -> u32 {
        if let Some(i) = self.child_of(parent, frame) {
            return i;
        }
        self.nodes.push(Node {
            frame: frame.to_owned(),
            parent,
            ranks: Vec::new(),
        });
        (self.nodes.len() - 1) as u32
    }

    /// Inserts one process's call stack (outermost frame first); the
    /// process `rank` is recorded at the innermost frame.
    pub fn insert(&mut self, stack: &[impl AsRef<str>], rank: Rank) {
        let mut cur = 0u32;
        for frame in stack {
            cur = self.get_or_add_child(cur, frame.as_ref());
        }
        let node = &mut self.nodes[cur as usize];
        if !node.ranks.contains(&rank) {
            node.ranks.push(rank);
            node.ranks.sort_unstable();
        }
    }

    /// Merges another tree into this one.
    pub fn merge(&mut self, other: &StackTree) {
        // Map other-node-index -> my-node-index, walking in index
        // order (parents precede children by construction).
        let mut map = vec![0u32; other.nodes.len()];
        for (i, node) in other.nodes.iter().enumerate().skip(1) {
            let my_parent = map[node.parent as usize];
            let mine = self.get_or_add_child(my_parent, &node.frame);
            map[i] = mine;
            for &r in &node.ranks {
                let m = &mut self.nodes[mine as usize];
                if !m.ranks.contains(&r) {
                    m.ranks.push(r);
                    m.ranks.sort_unstable();
                }
            }
        }
        for &r in &other.nodes[0].ranks {
            let m = &mut self.nodes[0];
            if !m.ranks.contains(&r) {
                m.ranks.push(r);
                m.ranks.sort_unstable();
            }
        }
    }

    /// All ranks represented anywhere in the tree, sorted.
    pub fn all_ranks(&self) -> Vec<Rank> {
        let mut v: Vec<Rank> = self
            .nodes
            .iter()
            .flat_map(|n| n.ranks.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The behavioral equivalence classes: one per node that has
    /// suspended ranks, as `(stack path, ranks)`.
    pub fn classes(&self) -> Vec<(Vec<String>, Vec<Rank>)> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.ranks.is_empty() {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = i as u32;
            while cur != 0 && cur != u32::MAX {
                path.push(self.nodes[cur as usize].frame.clone());
                cur = self.nodes[cur as usize].parent;
            }
            path.reverse();
            out.push((path, node.ranks.clone()));
        }
        out.sort();
        out
    }

    /// Renders the tree as an indented text outline (for tool UIs).
    pub fn render(&self) -> String {
        fn walk(tree: &StackTree, node: u32, depth: usize, out: &mut String) {
            let n = &tree.nodes[node as usize];
            if node != 0 {
                out.push_str(&"  ".repeat(depth - 1));
                out.push_str(&n.frame);
                if !n.ranks.is_empty() {
                    out.push_str(&format!("  [{} rank(s)]", n.ranks.len()));
                }
                out.push('\n');
            }
            // Children in index order (stable across merges of the
            // same insertion order).
            for (i, c) in tree.nodes.iter().enumerate() {
                if c.parent == node {
                    walk(tree, i as u32, depth + 1, out);
                }
            }
        }
        let mut out = String::new();
        walk(self, 0, 0, &mut out);
        out
    }

    /// Encodes the tree into one packet.
    pub fn to_packet(&self, stream: StreamId, tag: i32) -> Packet {
        let frames: Vec<String> = self.nodes.iter().skip(1).map(|n| n.frame.clone()).collect();
        let parents: Vec<u32> = self.nodes.iter().skip(1).map(|n| n.parent).collect();
        // Rank lists flattened with per-node offsets (root included at
        // offset position 0).
        let mut offsets = Vec::with_capacity(self.nodes.len());
        let mut ranks = Vec::new();
        for node in &self.nodes {
            offsets.push(ranks.len() as u32);
            ranks.extend(node.ranks.iter().copied());
        }
        PacketBuilder::new(stream, tag)
            .push(frames)
            .push(parents)
            .push(offsets)
            .push(ranks)
            .build()
    }

    /// Decodes a packet produced by [`StackTree::to_packet`].
    pub fn from_packet(packet: &Packet) -> Result<StackTree> {
        let frames = packet
            .get(0)
            .and_then(Value::as_str_array)
            .ok_or(ParadynError::Malformed("stack tree frames"))?;
        let parents = packet
            .get(1)
            .and_then(Value::as_u32_slice)
            .ok_or(ParadynError::Malformed("stack tree parents"))?;
        let offsets = packet
            .get(2)
            .and_then(Value::as_u32_slice)
            .ok_or(ParadynError::Malformed("stack tree offsets"))?;
        let flat_ranks = packet
            .get(3)
            .and_then(Value::as_u32_slice)
            .ok_or(ParadynError::Malformed("stack tree ranks"))?;
        if frames.len() != parents.len() || offsets.len() != frames.len() + 1 {
            return Err(ParadynError::Malformed("stack tree arity"));
        }
        let n = frames.len() + 1;
        let rank_slice = |i: usize| -> Result<Vec<Rank>> {
            let lo = offsets[i] as usize;
            let hi = if i + 1 < n {
                offsets[i + 1] as usize
            } else {
                flat_ranks.len()
            };
            if lo > hi || hi > flat_ranks.len() {
                return Err(ParadynError::Malformed("stack tree offsets"));
            }
            Ok(flat_ranks[lo..hi].to_vec())
        };
        let mut nodes = vec![Node {
            frame: String::new(),
            parent: u32::MAX,
            ranks: rank_slice(0)?,
        }];
        for (i, frame) in frames.iter().enumerate() {
            let parent = parents[i];
            // Parent must reference an earlier node (acyclic, ordered).
            if parent as usize > i {
                return Err(ParadynError::Malformed("stack tree parent order"));
            }
            nodes.push(Node {
                frame: frame.clone(),
                parent,
                ranks: rank_slice(i + 1)?,
            });
        }
        Ok(StackTree { nodes })
    }
}

/// The custom MRNet filter: merges the stack trees of one synchronized
/// wave into a single tree packet. Use with
/// [`mrnet::SyncMode::WaitForAll`].
pub struct StackMergeFilter {
    fmt: FormatString,
}

impl StackMergeFilter {
    /// The registry name used by convention.
    pub const NAME: &'static str = "stat_stack_merge";

    /// Creates the filter.
    pub fn new() -> StackMergeFilter {
        StackMergeFilter {
            fmt: FormatString::parse(STACKTREE_FORMAT).expect("static format"),
        }
    }
}

impl Default for StackMergeFilter {
    fn default() -> Self {
        StackMergeFilter::new()
    }
}

impl Transform for StackMergeFilter {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn input_format(&self) -> Option<&FormatString> {
        Some(&self.fmt)
    }

    fn transform(
        &mut self,
        inputs: Vec<Packet>,
        ctx: &FilterContext,
    ) -> mrnet_filters::Result<Vec<Packet>> {
        if inputs.is_empty() {
            return Err(FilterError::EmptyWave);
        }
        let mut merged = StackTree::new();
        for p in &inputs {
            let tree = StackTree::from_packet(p).map_err(|e| FilterError::Custom(e.to_string()))?;
            merged.merge(&tree);
        }
        let first = &inputs[0];
        Ok(vec![merged
            .to_packet(first.stream_id(), first.tag())
            .with_src(ctx.local_rank)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(frames: &[&str]) -> Vec<String> {
        frames.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn insert_builds_shared_prefixes() {
        let mut t = StackTree::new();
        t.insert(&stack(&["main", "solve", "mpi_wait"]), 0);
        t.insert(&stack(&["main", "solve", "mpi_wait"]), 1);
        t.insert(&stack(&["main", "io", "write"]), 2);
        // main, solve, mpi_wait, io, write = 5 nodes.
        assert_eq!(t.len(), 5);
        let classes = t.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].0, stack(&["main", "io", "write"]));
        assert_eq!(classes[0].1, vec![2]);
        assert_eq!(classes[1].1, vec![0, 1]);
    }

    #[test]
    fn duplicate_rank_insertions_are_idempotent() {
        let mut t = StackTree::new();
        t.insert(&stack(&["main", "f"]), 3);
        t.insert(&stack(&["main", "f"]), 3);
        assert_eq!(t.classes()[0].1, vec![3]);
    }

    #[test]
    fn empty_stack_records_rank_at_root() {
        let mut t = StackTree::new();
        t.insert(&Vec::<String>::new(), 9);
        assert_eq!(t.all_ranks(), vec![9]);
        assert_eq!(t.classes()[0].0, Vec::<String>::new());
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let stacks: Vec<(Vec<String>, Rank)> = vec![
            (stack(&["main", "a", "x"]), 0),
            (stack(&["main", "a", "y"]), 1),
            (stack(&["main", "b"]), 2),
            (stack(&["main", "a", "x"]), 3),
        ];
        let mut bulk = StackTree::new();
        for (s, r) in &stacks {
            bulk.insert(s, *r);
        }
        // Split across two subtrees, then merge.
        let mut left = StackTree::new();
        let mut right = StackTree::new();
        for (i, (s, r)) in stacks.iter().enumerate() {
            if i % 2 == 0 {
                left.insert(s, *r);
            } else {
                right.insert(s, *r);
            }
        }
        let mut merged = StackTree::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged.classes(), bulk.classes());
        assert_eq!(merged.all_ranks(), bulk.all_ranks());
    }

    #[test]
    fn packet_round_trip() {
        let mut t = StackTree::new();
        t.insert(&stack(&["main", "solve", "mpi_wait"]), 0);
        t.insert(&stack(&["main", "io"]), 7);
        let p = t.to_packet(4, 2);
        assert_eq!(p.fmt().to_string(), STACKTREE_FORMAT);
        let back = StackTree::from_packet(&p).unwrap();
        assert_eq!(back.classes(), t.classes());
    }

    #[test]
    fn malformed_packets_rejected() {
        let p = PacketBuilder::new(0, 0).push(1i32).build();
        assert!(StackTree::from_packet(&p).is_err());
        // Parent referencing a later node.
        let p = PacketBuilder::new(0, 0)
            .push(vec!["a".to_string(), "b".to_string()])
            .push(vec![2u32, 0])
            .push(vec![0u32, 0, 0])
            .push(Vec::<u32>::new())
            .build();
        assert!(StackTree::from_packet(&p).is_err());
    }

    #[test]
    fn filter_merges_hierarchically() {
        let ctx = FilterContext::new(1, 42, 2);
        let mut leaf_a = StackMergeFilter::new();
        let mut root = StackMergeFilter::new();
        let mk = |frames: &[&str], rank: Rank| {
            let mut t = StackTree::new();
            t.insert(&stack(frames), rank);
            t.to_packet(1, 0)
        };
        let a = leaf_a
            .transform(
                vec![
                    mk(&["main", "solve", "mpi_wait"], 0),
                    mk(&["main", "solve", "mpi_wait"], 1),
                ],
                &ctx,
            )
            .unwrap();
        let out = root
            .transform(vec![a[0].clone(), mk(&["main", "crash"], 2)], &ctx)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src(), 42);
        let t = StackTree::from_packet(&out[0]).unwrap();
        let classes = t.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(t.all_ranks(), vec![0, 1, 2]);
        // The waiting pair forms one behavioral class.
        let wait_class = classes
            .iter()
            .find(|(p, _)| p.last().map(String::as_str) == Some("mpi_wait"))
            .unwrap();
        assert_eq!(wait_class.1, vec![0, 1]);
    }

    #[test]
    fn render_shows_counts() {
        let mut t = StackTree::new();
        t.insert(&stack(&["main", "f"]), 0);
        t.insert(&stack(&["main", "f"]), 1);
        let text = t.render();
        assert!(text.contains("main"));
        assert!(text.contains("f  [2 rank(s)]"));
    }
}
