//! The complete Paradyn tool running over a tree of *real OS
//! processes* (`paradyn_commnode` binaries carrying the custom
//! filters), TCP all the way: start-up protocol plus time-aligned
//! performance-data aggregation.

use std::path::PathBuf;
use std::time::Duration;

use mrnet::{launch_processes_with_registry, Backend};
use mrnet_topology::{generator, HostPool};
use paradyn::{app::Executable, mdl, paradyn_registry, run_sampling, run_startup, Daemon};

fn commnode_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_paradyn_commnode"))
}

const TIMEOUT: Duration = Duration::from_secs(30);

#[test]
fn paradyn_over_real_processes() {
    let topo = generator::balanced(2, 2, &mut HostPool::synthetic(16)).unwrap();
    let n = topo.num_backends();
    let pending =
        launch_processes_with_registry(topo, &commnode_exe(), paradyn_registry()).unwrap();
    let points = pending.collect_attach_points(TIMEOUT).unwrap();
    assert_eq!(points.len(), n);

    let exe = Executable::synthetic_smg2000(11);
    let metrics = 2usize;
    let daemons: Vec<_> = points
        .into_iter()
        .map(|ap| {
            let exe = exe.clone();
            std::thread::spawn(move || {
                let be = Backend::attach_tcp(&ap.endpoint, ap.rank).unwrap();
                let d = Daemon::new(be, exe, format!("proc-host-{}", ap.rank), ap.rank);
                d.serve(metrics, 5.0, Duration::from_secs(2))
            })
        })
        .collect();

    let net = pending.wait(TIMEOUT).unwrap();
    assert_eq!(net.num_backends(), n);

    let doc = mdl::to_mdl(&mdl::standard_metrics(metrics));
    let outcome = run_startup(&net, &doc, 3).unwrap();
    // Custom equivalence-class filter ran inside real commnode
    // processes: one class across identical executables.
    assert_eq!(outcome.code_classes.len(), 1);
    assert_eq!(outcome.code_classes[0].members.len(), n);
    assert_eq!(outcome.code_resources.len(), 434 + 12);

    // Custom time-aligned aggregation filter across processes.
    let (stats, _streams) = run_sampling(&net, metrics, Duration::from_secs(2)).unwrap();
    assert!(
        stats.received > 5,
        "aggregated samples over processes: {}",
        stats.received
    );

    net.shutdown();
    for d in daemons {
        let sent = d.join().unwrap().unwrap();
        assert!(sent > 0);
    }
}
