//! Property-based tests for the Paradyn substrates: time-aligned
//! aggregation conservation, equivalence-class merging, sample
//! splitting, and MDL round-trips.

use paradyn::aggregation::{AlignOp, TimeAlignedAggregator};
use paradyn::eqclass::{decode_classes, encode_classes, merge_classes, EqClass};
use paradyn::mdl::{parse_mdl, standard_metrics, to_mdl};
use paradyn::samples::{Sample, SampleGenerator};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sample_split_conserves_value_everywhere(
        value in -1e9f64..1e9,
        start in -1e3f64..1e3,
        len in 0.001f64..100.0,
        frac in 0.01f64..0.99,
    ) {
        let s = Sample::new(value, start, start + len);
        let t = start + len * frac;
        if t > s.start && t < s.end {
            let (l, r) = s.split_at(t);
            prop_assert!((l.value + r.value - value).abs() <= 1e-9 * value.abs().max(1.0));
            prop_assert_eq!(l.start, s.start);
            prop_assert_eq!(r.end, s.end);
            prop_assert_eq!(l.end, r.start);
        }
    }

    #[test]
    fn aligned_aggregation_conserves_total_value(
        inputs in 1usize..6,
        rates in 3.0f64..8.0,
        jitter in 0.0f64..0.4,
        seed in 0u64..1000,
        rounds in 50usize..200,
    ) {
        // Total value emitted ≈ total value injected over the emitted
        // window, for any input count, rate, and jitter.
        let interval = 0.25;
        let mut agg = TimeAlignedAggregator::new(inputs, interval, AlignOp::Sum);
        let mut gens: Vec<SampleGenerator> = (0..inputs)
            .map(|i| SampleGenerator::new(rates, 0.03 * i as f64, jitter, 1.0, seed + i as u64))
            .collect();
        let mut emitted = 0.0;
        let mut last_end: Option<f64> = None;
        let mut first_start: Option<f64> = None;
        for _ in 0..rounds {
            for (i, g) in gens.iter_mut().enumerate() {
                for out in agg.push(i, g.next_sample()) {
                    emitted += out.value;
                    if first_start.is_none() {
                        first_start = Some(out.start);
                    }
                    last_end = Some(out.end);
                }
            }
        }
        if let (Some(first), Some(last)) = (first_start, last_end) {
            // Each input injects `rates` value-units per second
            // (level 1.0 samples at `rates`/s).
            let expected = inputs as f64 * rates * (last - first);
            prop_assert!(
                (emitted - expected).abs() <= expected * 0.02 + 1.0,
                "emitted {emitted} vs expected {expected}"
            );
        }
    }

    #[test]
    fn aligned_outputs_are_contiguous_fixed_intervals(
        inputs in 1usize..5,
        seed in 0u64..100,
    ) {
        let interval = 0.2;
        let mut agg = TimeAlignedAggregator::new(inputs, interval, AlignOp::Sum);
        let mut gens: Vec<SampleGenerator> = (0..inputs)
            .map(|i| SampleGenerator::new(5.0, 0.01 * i as f64, 0.3, 2.0, seed * 7 + i as u64))
            .collect();
        let mut outs = Vec::new();
        for _ in 0..150 {
            for (i, g) in gens.iter_mut().enumerate() {
                outs.extend(agg.push(i, g.next_sample()));
            }
        }
        for w in outs.windows(2) {
            prop_assert!((w[0].end - w[1].start).abs() < 1e-9);
        }
        for o in &outs {
            prop_assert!((o.len() - interval).abs() < 1e-9);
        }
    }

    #[test]
    fn eqclass_merge_is_idempotent_and_order_insensitive(
        pairs in proptest::collection::vec((0u64..6, 0u32..64), 1..60)
    ) {
        let singletons: Vec<EqClass> = pairs
            .iter()
            .map(|&(sum, rank)| EqClass::singleton(sum, rank))
            .collect();
        let merged = merge_classes(singletons.clone());
        // Merging again is a no-op.
        prop_assert_eq!(merge_classes(merged.clone()), merged.clone());
        // Reversed input order gives the same result.
        let mut rev = singletons.clone();
        rev.reverse();
        prop_assert_eq!(merge_classes(rev), merged.clone());
        // Membership is conserved (deduplicated).
        let mut expected: Vec<(u64, u32)> = pairs.clone();
        expected.sort_unstable();
        expected.dedup();
        let total: usize = merged.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(total, expected.len());
        // Every member is in the class of its checksum.
        for (sum, rank) in expected {
            let class = merged.iter().find(|c| c.checksum == sum).unwrap();
            prop_assert!(class.members.contains(&rank));
        }
    }

    #[test]
    fn eqclass_wire_round_trip(
        pairs in proptest::collection::vec((0u64..10, 0u32..128), 1..40)
    ) {
        let classes = merge_classes(
            pairs.into_iter().map(|(s, r)| EqClass::singleton(s, r)),
        );
        let packet = encode_classes(5, 9, &classes);
        prop_assert_eq!(decode_classes(&packet).unwrap(), classes);
    }

    #[test]
    fn mdl_round_trips_for_any_standard_subset(n in 1usize..40) {
        let defs = standard_metrics(n);
        prop_assert_eq!(parse_mdl(&to_mdl(&defs)).unwrap(), defs);
    }
}

mod stacktree_props {
    use paradyn::stacktree::StackTree;
    use proptest::prelude::*;

    fn arb_stack() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec("[a-f]{1,3}", 0..5)
    }

    proptest! {
        #[test]
        fn merge_is_order_insensitive(
            stacks in proptest::collection::vec(arb_stack(), 1..20)
        ) {
            let mut forward = StackTree::new();
            let mut backward = StackTree::new();
            for (i, s) in stacks.iter().enumerate() {
                forward.insert(s, i as u32);
            }
            for (i, s) in stacks.iter().enumerate().rev() {
                backward.insert(s, i as u32);
            }
            prop_assert_eq!(forward.classes(), backward.classes());
            prop_assert_eq!(forward.all_ranks(), backward.all_ranks());
        }

        #[test]
        fn split_merge_equals_bulk(
            stacks in proptest::collection::vec(arb_stack(), 1..20),
            split in 0usize..20
        ) {
            let split = split.min(stacks.len());
            let mut bulk = StackTree::new();
            for (i, s) in stacks.iter().enumerate() {
                bulk.insert(s, i as u32);
            }
            let mut a = StackTree::new();
            let mut b = StackTree::new();
            for (i, s) in stacks.iter().enumerate() {
                if i < split { a.insert(s, i as u32) } else { b.insert(s, i as u32) }
            }
            let mut merged = StackTree::new();
            merged.merge(&a);
            merged.merge(&b);
            prop_assert_eq!(merged.classes(), bulk.classes());
        }

        #[test]
        fn wire_round_trip_preserves_classes(
            stacks in proptest::collection::vec(arb_stack(), 1..15)
        ) {
            let mut t = StackTree::new();
            for (i, s) in stacks.iter().enumerate() {
                t.insert(s, i as u32);
            }
            let back = StackTree::from_packet(&t.to_packet(1, 0)).unwrap();
            prop_assert_eq!(back.classes(), t.classes());
            prop_assert_eq!(back.len(), t.len());
        }

        #[test]
        fn rank_count_conserved(
            stacks in proptest::collection::vec(arb_stack(), 1..25)
        ) {
            let mut t = StackTree::new();
            for (i, s) in stacks.iter().enumerate() {
                t.insert(s, i as u32);
            }
            prop_assert_eq!(t.all_ranks().len(), stacks.len());
            let class_total: usize = t.classes().iter().map(|(_, r)| r.len()).sum();
            prop_assert_eq!(class_total, stacks.len());
        }
    }
}
