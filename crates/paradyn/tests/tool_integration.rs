//! End-to-end Paradyn-over-MRNet tests: the complete §3.1 start-up
//! protocol and the §3.2/§4.2.2 performance-data pipeline running on a
//! live tree of threads.

use std::time::Duration;

use mrnet::NetworkBuilder;
use mrnet_topology::{generator, HostPool};
use paradyn::{
    app::Executable, mdl, paradyn_registry, run_sampling, run_startup, Activity, Daemon,
};

fn launch_tool(
    fanout: usize,
    depth: usize,
) -> (mrnet::Network, Vec<std::thread::JoinHandle<usize>>, usize) {
    let topo = generator::balanced(fanout, depth, &mut HostPool::synthetic(512)).unwrap();
    let n = topo.num_backends();
    let dep = NetworkBuilder::new(topo)
        .registry(paradyn_registry())
        .launch()
        .unwrap();
    let exe = Executable::synthetic_smg2000(42);
    let daemons: Vec<_> = dep
        .backends
        .into_iter()
        .enumerate()
        .map(|(i, be)| {
            let exe = exe.clone();
            std::thread::spawn(move || {
                let daemon = Daemon::new(be, exe, format!("node{i:03}"), 4000 + i as u32);
                daemon
                    .serve(4, 5.0, Duration::from_secs(2))
                    .unwrap_or(usize::MAX)
            })
        })
        .collect();
    (dep.network, daemons, n)
}

#[test]
fn full_startup_protocol_over_live_tree() {
    let (net, daemons, n) = launch_tool(4, 2); // 16 daemons
    let doc = mdl::to_mdl(&mdl::standard_metrics(8));
    let outcome = run_startup(&net, &doc, 5).unwrap();

    // Every activity timed, in order.
    assert_eq!(outcome.timings.len(), Activity::ALL.len());
    for ((a, _), expected) in outcome.timings.iter().zip(Activity::ALL) {
        assert_eq!(*a, expected);
    }

    // Report Self: one line per daemon.
    assert_eq!(outcome.daemon_info.len(), n);
    assert!(outcome.daemon_info.iter().any(|s| s.contains("node")));

    // Homogeneous metric sets: one equivalence class with all daemons.
    assert_eq!(outcome.metric_classes.len(), 1);
    assert_eq!(outcome.metric_classes[0].members.len(), n);

    // Clock skews estimated for every daemon; same-process clocks are
    // nearly aligned, so estimates must be small.
    assert_eq!(outcome.skews.len(), n);
    for (&rank, &skew) in &outcome.skews {
        assert!(
            skew.abs() < 0.5,
            "daemon {rank} skew {skew} unexpectedly large"
        );
    }

    // Process and machine reports from every daemon.
    assert_eq!(outcome.process_info.len(), n);
    assert_eq!(outcome.machine_resources.len(), 3 * n);

    // Identical executables: one code class; full resources requested
    // only from the representative (434 functions + 12 modules).
    assert_eq!(outcome.code_classes.len(), 1);
    assert_eq!(outcome.code_classes[0].members.len(), n);
    assert_eq!(outcome.code_resources.len(), 434 + 12);

    // One call-graph class; edges received from the representative.
    assert_eq!(outcome.callgraph_classes.len(), 1);
    assert!(outcome.callgraph_edges > 100);

    assert!(outcome.total() > Duration::ZERO);

    // Sampling phase: 4 metrics at 5 samples/s for ~2 s.
    let (stats, _streams) = run_sampling(&net, 4, Duration::from_secs(2)).unwrap();
    assert!(
        stats.received > 10,
        "front-end should receive aggregated samples, got {}",
        stats.received
    );

    net.shutdown();
    let sent: Vec<usize> = daemons.into_iter().map(|d| d.join().unwrap()).collect();
    // Every daemon completed start-up and sent samples.
    for s in &sent {
        assert_ne!(*s, usize::MAX, "daemon failed");
        assert!(*s > 0, "daemon sent no samples");
    }
}

#[test]
fn startup_with_heterogeneous_executables_yields_two_classes() {
    let topo = generator::balanced(2, 2, &mut HostPool::synthetic(64)).unwrap();
    let dep = NetworkBuilder::new(topo)
        .registry(paradyn_registry())
        .launch()
        .unwrap();
    let net = dep.network.clone();
    let daemons: Vec<_> = dep
        .backends
        .into_iter()
        .enumerate()
        .map(|(i, be)| {
            // Two different executables across the daemons.
            let exe = Executable::synthetic("app", 50, 4, (i % 2) as u64);
            std::thread::spawn(move || {
                let daemon = Daemon::new(be, exe, format!("host{i}"), 100 + i as u32);
                daemon.serve_startup()
            })
        })
        .collect();
    let doc = mdl::to_mdl(&mdl::standard_metrics(4));
    let outcome = run_startup(&net, &doc, 2).unwrap();
    assert_eq!(outcome.code_classes.len(), 2);
    let total_members: usize = outcome.code_classes.iter().map(|c| c.members.len()).sum();
    assert_eq!(total_members, 4);
    // Full code resources fetched once per class: 2 × (50 + 4).
    assert_eq!(outcome.code_resources.len(), 2 * 54);
    net.shutdown();
    for d in daemons {
        d.join().unwrap().unwrap();
    }
}

#[test]
fn sampling_aggregates_sum_across_daemons() {
    // 4 daemons, 1 metric: the front-end's aggregated samples should
    // sum ~4 value-units per 0.2 s interval (each daemon contributes
    // level 1.0 ⇒ ~1.0 per interval).
    let topo = generator::flat(4, &mut HostPool::synthetic(16)).unwrap();
    let dep = NetworkBuilder::new(topo)
        .registry(paradyn_registry())
        .launch()
        .unwrap();
    let net = dep.network.clone();
    let exe = Executable::synthetic("tiny", 10, 2, 0);
    let daemons: Vec<_> = dep
        .backends
        .into_iter()
        .enumerate()
        .map(|(i, be)| {
            let exe = exe.clone();
            std::thread::spawn(move || {
                let daemon = Daemon::new(be, exe, format!("h{i}"), i as u32);
                daemon.serve_startup()?;
                daemon.serve_sampling(1, 5.0, Duration::from_secs(2))
            })
        })
        .collect();
    let doc = mdl::to_mdl(&mdl::standard_metrics(1));
    run_startup(&net, &doc, 2).unwrap();
    let (stats, _streams) = run_sampling(&net, 1, Duration::from_secs(2)).unwrap();
    assert!(stats.received >= 5, "received {}", stats.received);
    let mean = stats.value_sum / stats.received as f64;
    assert!(
        (mean - 4.0).abs() < 1.0,
        "mean aggregated value {mean}, expected ~4.0"
    );
    net.shutdown();
    for d in daemons {
        let _ = d.join().unwrap();
    }
}
