//! Processor capacity model for data-processing experiments.
//!
//! Figure 9 reports "the ratio of the rate at which the Paradyn
//! front-end processed performance data samples to the rate at which
//! the daemons generated the samples" — i.e. what fraction of the
//! offered load a saturated front-end keeps up with. [`Cpu`] models a
//! processor as a budget of work-seconds per second: offered work
//! below 1.0 is fully serviced (ratio 1.0), beyond that the serviced
//! fraction is `capacity / offered`, exactly the steady-state behavior
//! of an overloaded consumer with a bounded input queue.

/// A processor with a fixed work budget (1.0 = one fully-available
/// CPU-second per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cpu {
    /// Work-seconds this processor can execute per second.
    pub capacity: f64,
}

impl Cpu {
    /// A fully-available single CPU.
    pub fn one() -> Cpu {
        Cpu { capacity: 1.0 }
    }

    /// A CPU with part of its time reserved (e.g. for the tool's GUI
    /// and control work).
    pub fn with_capacity(capacity: f64) -> Cpu {
        assert!(capacity > 0.0, "capacity must be positive");
        Cpu { capacity }
    }

    /// Utilization caused by `offered` work-seconds per second
    /// (may exceed 1.0 when overloaded).
    pub fn utilization(&self, offered: f64) -> f64 {
        offered / self.capacity
    }

    /// Steady-state fraction of offered load actually serviced.
    pub fn serviced_fraction(&self, offered: f64) -> f64 {
        if offered <= self.capacity {
            1.0
        } else {
            self.capacity / offered
        }
    }
}

/// Work accounting for a processing stage: a per-item cost plus a
/// per-batch (message) cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCost {
    /// CPU-seconds per data item processed.
    pub per_item: f64,
    /// CPU-seconds per arriving message (header handling, demux).
    pub per_message: f64,
}

impl StageCost {
    /// Offered work (CPU-seconds/second) for `item_rate` items/s
    /// arriving in `message_rate` messages/s.
    pub fn offered_work(&self, item_rate: f64, message_rate: f64) -> f64 {
        self.per_item * item_rate + self.per_message * message_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_load_everything_serviced() {
        let cpu = Cpu::one();
        assert_eq!(cpu.serviced_fraction(0.5), 1.0);
        assert_eq!(cpu.serviced_fraction(1.0), 1.0);
    }

    #[test]
    fn over_load_fraction_is_capacity_ratio() {
        let cpu = Cpu::one();
        assert!((cpu.serviced_fraction(2.0) - 0.5).abs() < 1e-12);
        assert!((cpu.serviced_fraction(20.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn partial_capacity() {
        let cpu = Cpu::with_capacity(0.5);
        assert_eq!(cpu.serviced_fraction(0.4), 1.0);
        assert!((cpu.serviced_fraction(1.0) - 0.5).abs() < 1e-12);
        assert!((cpu.utilization(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Cpu::with_capacity(0.0);
    }

    #[test]
    fn stage_cost_combines_item_and_message_work() {
        let cost = StageCost {
            per_item: 1e-4,
            per_message: 1e-3,
        };
        let offered = cost.offered_work(1000.0, 10.0);
        assert!((offered - (0.1 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn fraction_monotone_in_offered_load() {
        let cpu = Cpu::one();
        let mut prev = 1.0;
        for i in 1..100 {
            let f = cpu.serviced_fraction(i as f64 * 0.1);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }
}
