//! Simulated host clocks with skew and drift, plus network jitter.
//!
//! The Paradyn clock-skew experiment (§4.2.1) compares skews computed
//! by the MRNet cumulative algorithm and by a direct round-trip scheme
//! against ground truth from Blue Pacific's globally-synchronous SP
//! switch clock. The simulator provides that ground truth for free
//! (virtual time is global); [`SkewedClock`] gives each process its
//! own offset + drift, and [`JitterModel`] injects the asymmetric
//! message delays that make both estimation schemes err.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A per-process clock: `local = global·(1 + drift) + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewedClock {
    /// Constant offset from global time, in seconds.
    pub offset: f64,
    /// Fractional frequency error (e.g. `50e-6` = 50 ppm fast).
    pub drift: f64,
}

impl SkewedClock {
    /// A perfect clock.
    pub fn perfect() -> SkewedClock {
        SkewedClock {
            offset: 0.0,
            drift: 0.0,
        }
    }

    /// Reads this clock at global (virtual) time `global`.
    pub fn read(&self, global: f64) -> f64 {
        global * (1.0 + self.drift) + self.offset
    }

    /// The true skew of this clock relative to `other` at global time
    /// `global`: `self.read(t) - other.read(t)`.
    pub fn skew_against(&self, other: &SkewedClock, global: f64) -> f64 {
        self.read(global) - other.read(global)
    }
}

/// Generates a population of skewed clocks and message jitter samples,
/// deterministically from a seed.
#[derive(Debug, Clone)]
pub struct ClockWorld {
    clocks: Vec<SkewedClock>,
    rng: SmallRng,
    /// Mean one-way extra delay added to each message, in seconds.
    pub jitter_mean: f64,
}

impl ClockWorld {
    /// Builds `n` clocks with offsets uniform in `±max_offset` seconds
    /// and drifts uniform in `±max_drift` (fractional). Process 0 (the
    /// front-end) keeps a perfect clock so "skew of daemon d" is
    /// well-defined against it.
    pub fn new(n: usize, max_offset: f64, max_drift: f64, seed: u64) -> ClockWorld {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut clocks = Vec::with_capacity(n);
        clocks.push(SkewedClock::perfect());
        for _ in 1..n {
            clocks.push(SkewedClock {
                offset: if max_offset > 0.0 {
                    rng.gen_range(-max_offset..max_offset)
                } else {
                    0.0
                },
                drift: if max_drift > 0.0 {
                    rng.gen_range(-max_drift..max_drift)
                } else {
                    0.0
                },
            });
        }
        ClockWorld {
            clocks,
            rng,
            jitter_mean: 0.0,
        }
    }

    /// The clock of process `i`.
    pub fn clock(&self, i: usize) -> &SkewedClock {
        &self.clocks[i]
    }

    /// Number of clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True when the world is empty.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// True skew of process `i` relative to process `j` at `global`.
    pub fn true_skew(&self, i: usize, j: usize, global: f64) -> f64 {
        self.clocks[i].skew_against(&self.clocks[j], global)
    }

    /// Samples an extra one-way message delay: exponentially
    /// distributed with mean [`ClockWorld::jitter_mean`]. Exponential
    /// (not symmetric) delays are what bias round-trip-based skew
    /// estimates, as observed in the paper's error measurements.
    pub fn sample_jitter(&mut self) -> f64 {
        if self.jitter_mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -self.jitter_mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_global() {
        let c = SkewedClock::perfect();
        assert_eq!(c.read(123.456), 123.456);
    }

    #[test]
    fn offset_and_drift_apply() {
        let c = SkewedClock {
            offset: 0.5,
            drift: 1e-3,
        };
        let t = 100.0;
        assert!((c.read(t) - (100.0 * 1.001 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn skew_against_is_antisymmetric() {
        let a = SkewedClock {
            offset: 0.2,
            drift: 0.0,
        };
        let b = SkewedClock {
            offset: -0.1,
            drift: 0.0,
        };
        assert!((a.skew_against(&b, 10.0) + b.skew_against(&a, 10.0)).abs() < 1e-12);
        assert!((a.skew_against(&b, 10.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn world_front_end_is_perfect() {
        let w = ClockWorld::new(8, 0.1, 1e-5, 99);
        assert_eq!(*w.clock(0), SkewedClock::perfect());
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn world_offsets_bounded() {
        let w = ClockWorld::new(100, 0.05, 1e-5, 3);
        for i in 1..100 {
            assert!(w.clock(i).offset.abs() <= 0.05);
            assert!(w.clock(i).drift.abs() <= 1e-5);
        }
    }

    #[test]
    fn world_deterministic_by_seed() {
        let a = ClockWorld::new(16, 0.1, 1e-6, 5);
        let b = ClockWorld::new(16, 0.1, 1e-6, 5);
        for i in 0..16 {
            assert_eq!(a.clock(i), b.clock(i));
        }
    }

    #[test]
    fn true_skew_matches_reads() {
        let w = ClockWorld::new(4, 0.1, 0.0, 11);
        let t = 42.0;
        let direct = w.clock(2).read(t) - w.clock(0).read(t);
        assert!((w.true_skew(2, 0, t) - direct).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_nonnegative_with_requested_mean() {
        let mut w = ClockWorld::new(2, 0.0, 0.0, 7);
        w.jitter_mean = 0.001;
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let j = w.sample_jitter();
            assert!(j >= 0.0);
            sum += j;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.001).abs() < 0.0002, "mean {mean}");
    }

    #[test]
    fn zero_jitter_mean_gives_zero() {
        let mut w = ClockWorld::new(2, 0.0, 0.0, 7);
        assert_eq!(w.sample_jitter(), 0.0);
    }
}
