//! The discrete-event simulation engine.
//!
//! A minimal, deterministic event-driven simulator: events are boxed
//! closures ordered by virtual time (ties broken by insertion order,
//! so runs are reproducible). The world state `W` is owned by the
//! [`Sim`]; handlers receive `(&mut W, &mut Scheduler<W>)` so they can
//! mutate the world and schedule further events.
//!
//! This substitutes for the paper's physical testbed (ASCI Blue
//! Pacific): the benchmark harness runs the real MRNet protocol logic
//! against virtual clocks instead of a 280-node machine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time, in seconds.
pub type SimTime = f64;

type Handler<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Event<W> {
    at: SimTime,
    seq: u64,
    handler: Handler<W>,
}

impl<W> PartialEq for Event<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Event<W> {}
impl<W> PartialOrd for Event<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Event<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first,
        // with insertion order breaking ties.
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The scheduling half of the simulator, handed to event handlers.
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<W>>,
}

impl<W> Scheduler<W> {
    fn new() -> Scheduler<W> {
        Scheduler {
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `handler` to run at absolute virtual time `at`.
    /// Scheduling into the past clamps to "now".
    pub fn at(&mut self, at: SimTime, handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event {
            at,
            seq,
            handler: Box::new(handler),
        });
    }

    /// Schedules `handler` to run `delay` seconds from now.
    pub fn after(
        &mut self,
        delay: SimTime,
        handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        debug_assert!(delay >= 0.0, "negative delay");
        self.at(self.now + delay.max(0.0), handler);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A deterministic discrete-event simulation over world state `W`.
pub struct Sim<W> {
    /// The simulated world, mutated by event handlers.
    pub world: W,
    sched: Scheduler<W>,
}

impl<W> Sim<W> {
    /// Creates a simulation at virtual time zero.
    pub fn new(world: W) -> Sim<W> {
        Sim {
            world,
            sched: Scheduler::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Schedules an initial event (see [`Scheduler::at`]).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.sched.at(at, handler);
    }

    /// Schedules an initial event `delay` seconds from now.
    pub fn schedule_after(
        &mut self,
        delay: SimTime,
        handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.sched.after(delay, handler);
    }

    /// Runs one event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.sched.now, "time went backwards");
                self.sched.now = ev.at;
                (ev.handler)(&mut self.world, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until no events remain; returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.sched.now
    }

    /// Runs until no events remain or virtual time would pass
    /// `deadline`; events after the deadline stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(ev) = self.sched.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        self.sched.now = self
            .sched
            .now
            .max(deadline.min(self.sched.now.max(deadline)));
        self.sched.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(3.0, |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(1.0, |w, _| w.push(1));
        sim.schedule_at(2.0, |w, _| w.push(2));
        let end = sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert!((end - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..10 {
            sim.schedule_at(1.0, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run();
        assert_eq!(sim.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Sim::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 5 {
                s.after(1.0, tick);
            }
        }
        sim.schedule_at(0.0, tick);
        let end = sim.run();
        assert_eq!(sim.world, 5);
        assert!((end - 4.0).abs() < 1e-12);
    }

    #[test]
    fn now_advances_with_events() {
        let mut sim = Sim::new(Vec::<SimTime>::new());
        sim.schedule_at(2.5, |_, s| assert!((s.now() - 2.5).abs() < 1e-12));
        sim.schedule_at(5.0, |w: &mut Vec<SimTime>, s| w.push(s.now()));
        sim.run();
        assert_eq!(sim.world, vec![5.0]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Sim::new(Vec::<SimTime>::new());
        sim.schedule_at(10.0, |_, s| {
            s.at(1.0, |w: &mut Vec<SimTime>, s| w.push(s.now()));
        });
        sim.run();
        assert_eq!(sim.world, vec![10.0]);
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(1.0, |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(100.0, |w, _| w.push(100));
        sim.run_until(10.0);
        assert_eq!(sim.world, vec![1]);
        sim.run();
        assert_eq!(sim.world, vec![1, 100]);
    }

    #[test]
    fn step_returns_false_when_drained() {
        let mut sim = Sim::new(());
        assert!(!sim.step());
        sim.schedule_at(0.0, |_, _| {});
        assert!(sim.step());
        assert!(!sim.step());
    }

    #[test]
    fn pending_counts() {
        let mut sim = Sim::new(());
        sim.schedule_at(1.0, |_, s| {
            assert_eq!(s.pending(), 1); // the 2.0 event
            s.after(0.5, |_, _| {});
            assert_eq!(s.pending(), 2);
        });
        sim.schedule_at(2.0, |_, _| {});
        sim.run();
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<u32> {
            let mut sim = Sim::new(Vec::new());
            for i in 0..50u32 {
                let t = f64::from(i % 7);
                sim.schedule_at(t, move |w: &mut Vec<u32>, s| {
                    w.push(i);
                    if i % 3 == 0 {
                        s.after(0.25, move |w: &mut Vec<u32>, _| w.push(1000 + i));
                    }
                });
            }
            sim.run();
            sim.world
        }
        assert_eq!(run_once(), run_once());
    }
}
