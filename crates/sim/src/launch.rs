//! Process-creation cost model.
//!
//! §2.5 / §4.1: MRNet instantiates its tree with `rsh`/`ssh`; each
//! parent creates its children *sequentially*, while subtrees in
//! different branches are created concurrently. On Blue Pacific the
//! serialized `rsh` cost dominates flat-topology instantiation
//! (Figure 7a: ~800 s for 512 back-ends ⇒ ≈1.5 s per process).
//!
//! [`LaunchModel`] charges a parent a serial occupancy per launch and
//! the child a readiness delay; the connection handshake that follows
//! uses the LogP network model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cost parameters for remotely creating one process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchParams {
    /// Time the parent is busy per launch (rsh client, fork/exec,
    /// authentication) before it can start the next launch.
    pub parent_serial: f64,
    /// Additional time after launch initiation before the child is
    /// running and has connected back to its parent.
    pub child_ready: f64,
    /// Multiplicative jitter bound: each cost is scaled by a factor
    /// uniform in `[1-jitter, 1+jitter]`.
    pub jitter: f64,
}

impl LaunchParams {
    /// Calibrated to Blue Pacific: Figure 7a's flat topology reaches
    /// ≈800 s at 512 back-ends ⇒ ≈1.55 s serialized per rsh.
    pub fn blue_pacific() -> LaunchParams {
        LaunchParams {
            parent_serial: 1.55,
            child_ready: 0.40,
            jitter: 0.05,
        }
    }

    /// Deterministic unit costs for tests.
    pub fn unit() -> LaunchParams {
        LaunchParams {
            parent_serial: 1.0,
            child_ready: 1.0,
            jitter: 0.0,
        }
    }
}

/// Stateful launch-cost sampler (deterministic for a given seed).
#[derive(Debug, Clone)]
pub struct LaunchModel {
    params: LaunchParams,
    rng: SmallRng,
}

/// The cost of one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchCost {
    /// How long the parent is occupied before it may launch again.
    pub parent_busy: f64,
    /// Delay from launch initiation until the child is ready.
    pub child_ready: f64,
}

impl LaunchModel {
    /// Creates a model with the given parameters and RNG seed.
    pub fn new(params: LaunchParams, seed: u64) -> LaunchModel {
        LaunchModel {
            params,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &LaunchParams {
        &self.params
    }

    fn jittered(&mut self, base: f64) -> f64 {
        if self.params.jitter == 0.0 {
            return base;
        }
        let lo = 1.0 - self.params.jitter;
        let hi = 1.0 + self.params.jitter;
        base * self.rng.gen_range(lo..hi)
    }

    /// Samples the cost of one process launch.
    pub fn sample(&mut self) -> LaunchCost {
        LaunchCost {
            parent_busy: self.jittered(self.params.parent_serial),
            child_ready: self.jittered(self.params.child_ready),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_params_are_deterministic() {
        let mut m = LaunchModel::new(LaunchParams::unit(), 1);
        for _ in 0..10 {
            let c = m.sample();
            assert_eq!(c.parent_busy, 1.0);
            assert_eq!(c.child_ready, 1.0);
        }
    }

    #[test]
    fn jitter_stays_bounded() {
        let mut m = LaunchModel::new(LaunchParams::blue_pacific(), 42);
        for _ in 0..1000 {
            let c = m.sample();
            assert!(c.parent_busy >= 1.55 * 0.95 && c.parent_busy <= 1.55 * 1.05);
            assert!(c.child_ready >= 0.40 * 0.95 && c.child_ready <= 0.40 * 1.05);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = LaunchModel::new(LaunchParams::blue_pacific(), 7);
        let mut b = LaunchModel::new(LaunchParams::blue_pacific(), 7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LaunchModel::new(LaunchParams::blue_pacific(), 1);
        let mut b = LaunchModel::new(LaunchParams::blue_pacific(), 2);
        let same = (0..100).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 100);
    }

    #[test]
    fn flat_512_magnitude_matches_figure_7a() {
        // Serialized launches from one parent: ~512 × 1.55 ≈ 794 s.
        let mut m = LaunchModel::new(LaunchParams::blue_pacific(), 3);
        let total: f64 = (0..512).map(|_| m.sample().parent_busy).sum();
        assert!(
            (700.0..900.0).contains(&total),
            "flat-512 serialized launch time {total}"
        );
    }
}
