//! # mrnet-sim
//!
//! The simulated machine substrate for the MRNet reproduction: a
//! deterministic discrete-event engine, a LogP/LogGP network cost
//! model with per-process send serialization, an `rsh` process-launch
//! cost model, skewed host clocks with message jitter, and processor
//! capacity accounting.
//!
//! Together these stand in for the paper's ASCI Blue Pacific testbed
//! (280 nodes, IBM SP switch, rsh-based launch) — see DESIGN.md §3 for
//! the substitution argument. The protocol logic exercised on top of
//! this substrate is the real MRNet library; the simulator only
//! decides when messages arrive and what clocks read.

#![forbid(unsafe_code)]

mod capacity;
mod clock;
mod engine;
mod launch;
mod logp;

pub use capacity::{Cpu, StageCost};
pub use clock::{ClockWorld, SkewedClock};
pub use engine::{Scheduler, Sim, SimTime};
pub use launch::{LaunchCost, LaunchModel, LaunchParams};
pub use logp::{LogGpParams, NetModel};
