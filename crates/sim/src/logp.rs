//! The LogP/LogGP network cost model used by the simulator.
//!
//! §2.6 reasons about MRNet topologies under LogP: latency `L`,
//! per-send/per-receive overhead `o`, inter-send gap `g`, plus the
//! LogGP per-byte gap `G` for long messages. [`NetModel`] tracks when
//! each simulated process's network interface is next free, so
//! successive sends from one process serialize exactly as the model
//! (and a real NIC) demands — this serialization is what makes flat
//! topologies collapse in Figures 7–9.

/// LogGP parameters, in seconds (and seconds/byte for `big_gap`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGpParams {
    /// Wire latency `L` for a small message.
    pub latency: f64,
    /// Per-send and per-receive processor overhead `o`.
    pub overhead: f64,
    /// Minimum gap `g` between successive sends from one process.
    pub gap: f64,
    /// Per-byte gap `G` (LogGP long-message extension).
    pub big_gap: f64,
}

impl LogGpParams {
    /// Parameters calibrated so simulated magnitudes land near the
    /// paper's ASCI Blue Pacific measurements (332 MHz PowerPC 604e
    /// nodes on an IBM SP switch, user-space tool traffic over rsh-
    /// launched sockets):
    ///
    /// * flat 512-back-end broadcast+reduction round trip ≈ 1.4 s
    ///   (Figure 7b) → per-message serialized cost ≈ 1.3 ms;
    /// * 8-way tree reduction throughput ≈ 70 ops/s (Figure 7c) →
    ///   interval ≈ `8·g + overheads` ≈ 14 ms.
    pub fn blue_pacific() -> LogGpParams {
        LogGpParams {
            latency: 0.000_35,
            overhead: 0.000_15,
            gap: 0.001_3,
            big_gap: 0.000_000_01,
        }
    }

    /// Unit parameters for symbolic tests.
    pub fn unit() -> LogGpParams {
        LogGpParams {
            latency: 1.0,
            overhead: 1.0,
            gap: 1.0,
            big_gap: 0.0,
        }
    }

    /// Pure wire time of one message of `bytes` bytes (no send-side
    /// serialization): `o + L + (bytes-1)·G + o`.
    pub fn wire_time(&self, bytes: usize) -> f64 {
        self.overhead + self.latency + self.big_gap * bytes.saturating_sub(1) as f64 + self.overhead
    }
}

/// Tracks per-process network state for a population of simulated
/// processes addressed `0..n`.
#[derive(Debug, Clone)]
pub struct NetModel {
    params: LogGpParams,
    /// Virtual time at which each process's interface is next free to
    /// initiate a message operation. LogP's gap `g` is a per-processor
    /// budget shared by sends *and* receives — a front-end that has
    /// just multicast 512 messages cannot simultaneously have drained
    /// 512 replies, which is exactly why the paper's flat round trip
    /// (Figure 7b) costs roughly twice its one-way broadcast.
    busy_until: Vec<f64>,
}

impl NetModel {
    /// A model over `n` processes.
    pub fn new(n: usize, params: LogGpParams) -> NetModel {
        NetModel {
            params,
            busy_until: vec![0.0; n],
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &LogGpParams {
        &self.params
    }

    /// Number of modeled processes.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// True if the model covers no processes.
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Grows the model to cover at least `n` processes.
    pub fn ensure(&mut self, n: usize) {
        if self.busy_until.len() < n {
            self.busy_until.resize(n, 0.0);
        }
    }

    /// Simulates `from` sending a `bytes`-byte message at virtual time
    /// `now`. Returns the arrival time at the receiver (when the
    /// receive overhead has been paid).
    ///
    /// The send begins when both `now` has arrived and the sender's
    /// interface is free; the interface then stays busy for
    /// `g + bytes·G`, serializing subsequent sends.
    pub fn send(&mut self, from: usize, now: f64, bytes: usize) -> f64 {
        let start = now.max(self.busy_until[from]);
        let occupancy = self.params.gap + self.params.big_gap * bytes as f64;
        self.busy_until[from] = start + occupancy;
        start + self.params.wire_time(bytes)
    }

    /// When `from`'s interface is next free (for tests/diagnostics).
    pub fn next_free(&self, from: usize) -> f64 {
        self.busy_until[from]
    }

    /// Resets all interfaces to free-at-zero.
    pub fn reset(&mut self) {
        self.busy_until.fill(0.0);
    }

    /// Occupies process `p` until at least `until` — models serialized
    /// CPU work (e.g. a front-end processing an inbound report) that
    /// delays the process's next message operation.
    pub fn occupy(&mut self, p: usize, until: f64) {
        if until > self.busy_until[p] {
            self.busy_until[p] = until;
        }
    }

    /// Simulates `from` sending a `bytes`-byte message to `to` at
    /// virtual time `now`, accounting for serialization at *both*
    /// interfaces. Returns the time the message has been fully
    /// received (receive overhead paid) at `to`.
    pub fn transfer(&mut self, from: usize, to: usize, now: f64, bytes: usize) -> f64 {
        let start = now.max(self.busy_until[from]);
        let occupancy = self.params.gap + self.params.big_gap * bytes as f64;
        self.busy_until[from] = start + occupancy;
        // On the wire: send overhead + latency + long-message cost.
        let wire_arrival = start
            + self.params.overhead
            + self.params.latency
            + self.params.big_gap * bytes.saturating_sub(1) as f64;
        // Receiver accepts when its interface frees up, then pays o.
        let accept = wire_arrival.max(self.busy_until[to]);
        self.busy_until[to] = accept + occupancy;
        accept + self.params.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_send_costs_wire_time() {
        let mut net = NetModel::new(2, LogGpParams::unit());
        let arrival = net.send(0, 0.0, 1);
        // o + L + o = 3 with unit parameters.
        assert!((arrival - 3.0).abs() < 1e-12);
    }

    #[test]
    fn successive_sends_serialize_by_gap() {
        let mut net = NetModel::new(4, LogGpParams::unit());
        let a1 = net.send(0, 0.0, 1);
        let a2 = net.send(0, 0.0, 1);
        let a3 = net.send(0, 0.0, 1);
        assert!((a2 - a1 - 1.0).abs() < 1e-12, "gap g between sends");
        assert!((a3 - a2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_senders_do_not_serialize() {
        let mut net = NetModel::new(4, LogGpParams::unit());
        let a = net.send(0, 0.0, 1);
        let b = net.send(1, 0.0, 1);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn long_messages_pay_per_byte() {
        let params = LogGpParams {
            latency: 1.0,
            overhead: 0.0,
            gap: 0.0,
            big_gap: 0.01,
        };
        let mut net = NetModel::new(2, params);
        let small = net.send(0, 0.0, 1);
        net.reset();
        let big = net.send(0, 0.0, 1001);
        assert!((big - small - 10.0).abs() < 1e-9);
    }

    #[test]
    fn idle_interface_sends_immediately_later() {
        let mut net = NetModel::new(2, LogGpParams::unit());
        net.send(0, 0.0, 1);
        // After the gap has passed, a send at t=10 starts at t=10.
        let arrival = net.send(0, 10.0, 1);
        assert!((arrival - 13.0).abs() < 1e-12);
    }

    #[test]
    fn flat_fanout_last_arrival_grows_linearly() {
        let mut net = NetModel::new(513, LogGpParams::blue_pacific());
        let mut last = 0.0f64;
        for _ in 0..512 {
            last = last.max(net.send(0, 0.0, 64));
        }
        // 512 serialized sends at ~1.3 ms gap ≈ 0.67 s one way.
        assert!(last > 0.5 && last < 1.0, "last arrival {last}");
    }

    #[test]
    fn ensure_grows() {
        let mut net = NetModel::new(1, LogGpParams::unit());
        net.ensure(10);
        assert_eq!(net.len(), 10);
        let _ = net.send(9, 0.0, 1);
    }
}
