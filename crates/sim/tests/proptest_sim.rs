//! Property-based tests for the simulation substrate: the network
//! model's causality and serialization invariants, the event engine's
//! ordering guarantees, and clock arithmetic.

use mrnet_sim::{ClockWorld, LogGpParams, NetModel, Sim};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = LogGpParams> {
    (
        0.0001f64..1.0,
        0.0001f64..1.0,
        0.0001f64..1.0,
        0.0f64..0.001,
    )
        .prop_map(|(l, o, g, big)| LogGpParams {
            latency: l,
            overhead: o,
            gap: g,
            big_gap: big,
        })
}

proptest! {
    #[test]
    fn transfers_respect_causality_and_serialize(
        params in arb_params(),
        sends in proptest::collection::vec((0usize..4, 4usize..8, 0.0f64..10.0, 1usize..4096), 1..40)
    ) {
        let mut net = NetModel::new(8, params);
        let mut last_arrival_from: [f64; 4] = [0.0; 4];
        for (from, to, now, bytes) in sends {
            let arrival = net.transfer(from, to, now, bytes);
            // A message can never arrive before it was sent plus the
            // minimum wire time.
            prop_assert!(arrival >= now + params.wire_time(bytes) - 1e-12);
            // Messages from one sender arrive in causal order when
            // issued at non-decreasing times... they are issued at
            // arbitrary times here, so only assert the interface
            // serialization: successive transfers from the same sender
            // are spaced at least one gap apart in start time, which
            // shows up as non-decreasing next_free.
            prop_assert!(net.next_free(from) >= last_arrival_from[from] - 1e-12);
            last_arrival_from[from] = net.next_free(from);
        }
    }

    #[test]
    fn back_to_back_sends_are_gap_spaced(params in arb_params(), n in 2usize..20) {
        let mut net = NetModel::new(4, params);
        let mut arrivals = Vec::new();
        for _ in 0..n {
            arrivals.push(net.transfer(0, 1, 0.0, 1));
        }
        for w in arrivals.windows(2) {
            // Receiver sees consecutive messages at least one
            // occupancy apart (same sender, same receiver).
            prop_assert!(w[1] >= w[0] + params.gap - 1e-9);
        }
    }

    #[test]
    fn event_engine_runs_in_time_order(
        times in proptest::collection::vec(0.0f64..100.0, 1..100)
    ) {
        let mut sim = Sim::new(Vec::<f64>::new());
        for &t in &times {
            sim.schedule_at(t, move |w: &mut Vec<f64>, s| w.push(s.now()));
        }
        let end = sim.run();
        // Observed times are sorted and match the schedule multiset.
        let mut expected = times.clone();
        expected.sort_by(f64::total_cmp);
        prop_assert_eq!(sim.world.len(), expected.len());
        for (got, want) in sim.world.iter().zip(&expected) {
            prop_assert!((got - want).abs() < 1e-12);
        }
        prop_assert!((end - expected.last().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn clock_skew_is_linear_in_time(
        offset in -1.0f64..1.0,
        drift in -1e-4f64..1e-4,
        t1 in 0.0f64..1e4,
        t2 in 0.0f64..1e4,
    ) {
        let c = mrnet_sim::SkewedClock { offset, drift };
        let base = mrnet_sim::SkewedClock::perfect();
        let s1 = c.skew_against(&base, t1);
        let s2 = c.skew_against(&base, t2);
        // skew(t) = offset + drift·t exactly.
        prop_assert!((s1 - (offset + drift * t1)).abs() < 1e-9);
        prop_assert!((s2 - s1 - drift * (t2 - t1)).abs() < 1e-9);
    }

    #[test]
    fn clock_world_jitter_is_nonnegative_and_deterministic(
        seed in 0u64..500,
        mean in 0.0001f64..0.01,
        n in 1usize..50,
    ) {
        let mut a = ClockWorld::new(4, 0.01, 1e-5, seed);
        let mut b = ClockWorld::new(4, 0.01, 1e-5, seed);
        a.jitter_mean = mean;
        b.jitter_mean = mean;
        for _ in 0..n {
            let ja = a.sample_jitter();
            let jb = b.sample_jitter();
            prop_assert!(ja >= 0.0);
            prop_assert_eq!(ja, jb);
        }
    }
}
