//! LogP cost analysis of MRNet topologies.
//!
//! §2.6 analyzes topology trade-offs under the LogP model: "Assuming a
//! LogP model with a minimum gap g between successive send operations
//! in a process, an overhead o for each send and receive, and a message
//! transfer latency L, the time required to complete a broadcast
//! operation to all sixteen back-ends using the balanced tree topology
//! … is 8g + 4o + 2L, but the tool can start a new broadcast each 4g
//! cycles."
//!
//! Under that accounting a node with `k` children spends `k·g` issuing
//! sends, the last message costs one send overhead `o`, travels for
//! `L`, and costs one receive overhead `o` — so the per-level cost is
//! `k·g + 2o + L`, and a child in send position `i` (1-based) receives
//! at `i·g + 2o + L` after its parent starts. This module evaluates
//! that model on arbitrary trees, giving single-operation latency and
//! the pipelined inter-operation interval used to compare Figure 4's
//! balanced and unbalanced topologies.

use serde::{Deserialize, Serialize};

use crate::spec::{NodeId, Topology};

/// LogP machine parameters, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogP {
    /// Wire latency `L` for a small message.
    pub latency: f64,
    /// Per-send / per-receive processor overhead `o`.
    pub overhead: f64,
    /// Minimum gap `g` between successive sends from one process.
    pub gap: f64,
    /// Per-byte gap `G` for long messages (the LogGP extension); used
    /// when message sizes are supplied.
    pub gap_per_byte: f64,
}

impl LogP {
    /// Unit parameters (L = o = g = 1, G = 0) for symbolic checks such
    /// as verifying the paper's `8g + 4o + 2L` expression.
    pub fn unit() -> LogP {
        LogP {
            latency: 1.0,
            overhead: 1.0,
            gap: 1.0,
            gap_per_byte: 0.0,
        }
    }

    /// Cost of transferring one `bytes`-sized message (LogGP): the
    /// sender is busy `o`, the wire adds `L + (bytes-1)·G`, the
    /// receiver adds `o`.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.overhead
            + self.latency
            + self.gap_per_byte * bytes.saturating_sub(1) as f64
            + self.overhead
    }
}

/// Structural statistics of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Total processes.
    pub processes: usize,
    /// Back-end (leaf) count.
    pub backends: usize,
    /// Internal (non-root, non-leaf) count.
    pub internals: usize,
    /// Tree depth (flat topology = 1).
    pub depth: usize,
    /// Maximum fan-out over all nodes.
    pub max_fanout: usize,
    /// Fan-out at the root.
    pub root_fanout: usize,
}

impl TreeStats {
    /// Computes statistics for a topology.
    pub fn of(topology: &Topology) -> TreeStats {
        TreeStats {
            processes: topology.len(),
            backends: topology.num_backends(),
            internals: topology.num_internals(),
            depth: topology.depth(),
            max_fanout: topology.max_fanout(),
            root_fanout: topology.root_fanout(),
        }
    }
}

/// Per-node completion times for one collective operation.
fn downstream_arrival_times(topology: &Topology, params: &LogP) -> Vec<f64> {
    // arrival[i] = time node i has fully received the broadcast message
    // (root at t=0 by definition).
    let mut arrival = vec![0.0f64; topology.len()];
    for id in topology.bfs() {
        let start = arrival[id.0];
        for (i, &child) in topology.children(id).iter().enumerate() {
            let position = (i + 1) as f64;
            arrival[child.0] =
                start + position * params.gap + 2.0 * params.overhead + params.latency;
        }
    }
    arrival
}

/// Latency of a single broadcast from the front-end to the last
/// back-end, under the paper's LogP accounting.
pub fn broadcast_latency(topology: &Topology, params: &LogP) -> f64 {
    let arrival = downstream_arrival_times(topology, params);
    topology
        .backends()
        .into_iter()
        .map(|id| arrival[id.0])
        .fold(0.0, f64::max)
}

/// Latency of a single reduction from all back-ends to the front-end.
///
/// The model is the mirror image of broadcast: a parent with `k`
/// children spends `k·g` draining its inbound connections, pays `2o +
/// L` for the last message, and cannot forward upstream until its
/// slowest child has forwarded. All back-ends start at t = 0.
pub fn reduction_latency(topology: &Topology, params: &LogP) -> f64 {
    fn done(topology: &Topology, id: NodeId, params: &LogP) -> f64 {
        let children = topology.children(id);
        if children.is_empty() {
            return 0.0;
        }
        let slowest = children
            .iter()
            .map(|&c| done(topology, c, params))
            .fold(0.0, f64::max);
        slowest + children.len() as f64 * params.gap + 2.0 * params.overhead + params.latency
    }
    done(topology, topology.root(), params)
}

/// Latency of one broadcast immediately followed by one reduction (the
/// Figure 7b micro-benchmark's round trip).
pub fn roundtrip_latency(topology: &Topology, params: &LogP) -> f64 {
    broadcast_latency(topology, params) + reduction_latency(topology, params)
}

/// Minimum interval between successive collective operations when they
/// are pipelined through the tree.
///
/// Each node needs `k·g` per operation to service its `k` connections;
/// the busiest node is the pipeline bottleneck. For Figure 4a (4-way
/// balanced) this is `4g`; for Figure 4b's six-way root it is `6g`.
pub fn pipeline_interval(topology: &Topology, params: &LogP) -> f64 {
    let max_fanout = topology.max_fanout() as f64;
    max_fanout * params.gap
}

/// Sustained throughput (operations/second) of pipelined collective
/// operations: the reciprocal of [`pipeline_interval`].
pub fn pipeline_throughput(topology: &Topology, params: &LogP) -> f64 {
    1.0 / pipeline_interval(topology, params)
}

/// The Figure 4 comparison for a pair of topologies: single-operation
/// latency and pipelined interval for each.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Broadcast latency of the balanced topology.
    pub balanced_latency: f64,
    /// Pipelined interval of the balanced topology.
    pub balanced_interval: f64,
    /// Broadcast latency of the unbalanced topology.
    pub unbalanced_latency: f64,
    /// Pipelined interval of the unbalanced topology.
    pub unbalanced_interval: f64,
}

/// Evaluates both Figure 4 topologies under the given parameters.
pub fn fig4_comparison(params: &LogP) -> Fig4Row {
    let mut pool_a = crate::hosts::HostPool::synthetic(32);
    let mut pool_b = crate::hosts::HostPool::synthetic(32);
    let balanced = crate::generator::fig4_balanced(&mut pool_a).expect("static shape");
    let unbalanced = crate::generator::fig4_unbalanced(&mut pool_b).expect("static shape");
    Fig4Row {
        balanced_latency: broadcast_latency(&balanced, params),
        balanced_interval: pipeline_interval(&balanced, params),
        unbalanced_latency: broadcast_latency(&unbalanced, params),
        unbalanced_interval: pipeline_interval(&unbalanced, params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{balanced, fig4_balanced, fig4_unbalanced, flat};
    use crate::hosts::HostPool;

    fn pool() -> HostPool {
        HostPool::synthetic(64)
    }

    #[test]
    fn paper_expression_for_balanced_fig4a() {
        // 8g + 4o + 2L for the 4-ary depth-2 tree.
        let t = fig4_balanced(&mut pool()).unwrap();
        let p = LogP {
            latency: 13.0,
            overhead: 3.0,
            gap: 5.0,
            gap_per_byte: 0.0,
        };
        let expected = 8.0 * p.gap + 4.0 * p.overhead + 2.0 * p.latency;
        assert!((broadcast_latency(&t, &p) - expected).abs() < 1e-9);
        // "the tool can start a new broadcast each 4g cycles"
        assert!((pipeline_interval(&t, &p) - 4.0 * p.gap).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_root_needs_6g() {
        let t = fig4_unbalanced(&mut pool()).unwrap();
        let p = LogP::unit();
        assert!((pipeline_interval(&t, &p) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_single_broadcast_can_beat_balanced() {
        // "Depending on the relative values of g, o, and L, a single
        // broadcast operation using this topology may complete before
        // the balanced tree's broadcast" — true when g dominates L,
        // because the binomial shape amortizes send serialization.
        let p = LogP {
            latency: 1.0,
            overhead: 1.0,
            gap: 100.0,
            gap_per_byte: 0.0,
        };
        let row = fig4_comparison(&p);
        assert!(
            row.unbalanced_latency < row.balanced_latency,
            "unbalanced {} vs balanced {}",
            row.unbalanced_latency,
            row.balanced_latency
        );
        // But its pipelined interval is worse.
        assert!(row.unbalanced_interval > row.balanced_interval);
    }

    #[test]
    fn flat_latency_grows_linearly() {
        let p = LogP::unit();
        let l64 = broadcast_latency(&flat(64, &mut pool()).unwrap(), &p);
        let l128 = broadcast_latency(&flat(128, &mut HostPool::synthetic(256)).unwrap(), &p);
        // Dominated by N·g serialization.
        assert!(l128 > 1.9 * l64 - 10.0);
    }

    #[test]
    fn tree_latency_grows_logarithmically() {
        let p = LogP::unit();
        let mut pool = HostPool::synthetic(2048);
        let d2 = broadcast_latency(&balanced(8, 2, &mut pool).unwrap(), &p); // 64 BEs
        let d3 = broadcast_latency(&balanced(8, 3, &mut pool).unwrap(), &p); // 512 BEs
                                                                             // One extra level adds one level cost, not 8x.
        let level_cost = 8.0 * p.gap + 2.0 * p.overhead + p.latency;
        assert!((d3 - d2 - level_cost).abs() < 1e-9);
    }

    #[test]
    fn reduction_mirrors_broadcast_on_symmetric_trees() {
        let p = LogP {
            latency: 2.0,
            overhead: 0.5,
            gap: 1.5,
            gap_per_byte: 0.0,
        };
        let t = balanced(4, 3, &mut HostPool::synthetic(256)).unwrap();
        let b = broadcast_latency(&t, &p);
        let r = reduction_latency(&t, &p);
        assert!((b - r).abs() < 1e-9, "broadcast {b} vs reduction {r}");
    }

    #[test]
    fn roundtrip_is_sum() {
        let p = LogP::unit();
        let t = balanced(4, 2, &mut pool()).unwrap();
        assert!(
            (roundtrip_latency(&t, &p) - broadcast_latency(&t, &p) - reduction_latency(&t, &p))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn throughput_is_reciprocal_interval() {
        let p = LogP {
            latency: 1.0,
            overhead: 1.0,
            gap: 0.25,
            gap_per_byte: 0.0,
        };
        let t = balanced(8, 2, &mut pool()).unwrap();
        let thr = pipeline_throughput(&t, &p);
        assert!((thr - 1.0 / (8.0 * 0.25)).abs() < 1e-9);
    }

    #[test]
    fn flat_throughput_collapses_with_scale() {
        let p = LogP::unit();
        let flat512 = flat(512, &mut HostPool::synthetic(600)).unwrap();
        let tree512 = balanced(8, 3, &mut HostPool::synthetic(600)).unwrap();
        assert!(pipeline_throughput(&tree512, &p) > 50.0 * pipeline_throughput(&flat512, &p));
    }

    #[test]
    fn loggp_message_time() {
        let p = LogP {
            latency: 10.0,
            overhead: 1.0,
            gap: 1.0,
            gap_per_byte: 0.5,
        };
        assert!((p.message_time(1) - 12.0).abs() < 1e-9);
        assert!((p.message_time(101) - 62.0).abs() < 1e-9);
    }

    #[test]
    fn tree_stats() {
        let t = balanced(4, 2, &mut pool()).unwrap();
        let s = TreeStats::of(&t);
        assert_eq!(s.processes, 21);
        assert_eq!(s.backends, 16);
        assert_eq!(s.internals, 4);
        assert_eq!(s.depth, 2);
        assert_eq!(s.max_fanout, 4);
        assert_eq!(s.root_fanout, 4);
    }
}
