//! `topgen` — the automatic topology configuration generator.
//!
//! §4.1: "we determined the partition nodes' host names and used an
//! automatic configuration generator program to build an MRNet
//! configuration file with the desired topology within the partition."
//!
//! Usage:
//! ```text
//! topgen --backends N [--fanout K | --flat | --shape AxBxC]
//!        [--hosts h1,h2,... | --synthetic-hosts M]
//!        [--stats]
//! ```
//!
//! Prints the configuration file on stdout; `--stats` adds a `#`
//! commented summary (depth, internal processes, LogP latency under
//! Blue-Pacific-like parameters).

use std::process::ExitCode;

use mrnet_obs::log_error;
use mrnet_topology::{
    broadcast_latency, generator, pipeline_throughput, write_config, HostPool, LogP, Topology,
    TreeStats,
};

struct Args {
    backends: usize,
    mode: Mode,
    hosts: Option<Vec<String>>,
    synthetic_hosts: usize,
    stats: bool,
}

enum Mode {
    Flat,
    Fanout(usize),
    Shape(String),
}

fn parse_args() -> Result<Args, String> {
    let mut backends = None;
    let mut mode = None;
    let mut hosts = None;
    let mut synthetic_hosts = 0usize;
    let mut stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--backends" => {
                backends = Some(
                    args.next()
                        .ok_or("--backends needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --backends: {e}"))?,
                )
            }
            "--fanout" => {
                mode = Some(Mode::Fanout(
                    args.next()
                        .ok_or("--fanout needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --fanout: {e}"))?,
                ))
            }
            "--flat" => mode = Some(Mode::Flat),
            "--shape" => mode = Some(Mode::Shape(args.next().ok_or("--shape needs AxBxC")?)),
            "--hosts" => {
                hosts = Some(
                    args.next()
                        .ok_or("--hosts needs h1,h2,...")?
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect::<Vec<_>>(),
                )
            }
            "--synthetic-hosts" => {
                synthetic_hosts = args
                    .next()
                    .ok_or("--synthetic-hosts needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --synthetic-hosts: {e}"))?
            }
            "--stats" => stats = true,
            "--help" | "-h" => {
                return Err(
                    "usage: topgen --backends N [--fanout K | --flat | --shape AxBxC] \
                            [--hosts h1,h2,... | --synthetic-hosts M] [--stats]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(Args {
        backends: backends.ok_or("missing --backends N")?,
        mode: mode.unwrap_or(Mode::Fanout(8)),
        hosts,
        synthetic_hosts,
        stats,
    })
}

fn build(args: &Args) -> Result<Topology, String> {
    let mut pool = match (&args.hosts, args.synthetic_hosts) {
        (Some(hosts), _) if !hosts.is_empty() => HostPool::named(hosts.clone()),
        (_, n) if n > 0 => HostPool::synthetic(n),
        _ => HostPool::synthetic((args.backends * 2).max(8)),
    };
    let topo = match &args.mode {
        Mode::Flat => generator::flat(args.backends, &mut pool),
        Mode::Fanout(k) => generator::balanced_for(*k, args.backends, &mut pool),
        Mode::Shape(shape) => generator::from_shorthand(shape, &mut pool),
    }
    .map_err(|e| e.to_string())?;
    if matches!(args.mode, Mode::Shape(_)) && topo.num_backends() != args.backends {
        return Err(format!(
            "shape produces {} back-ends but --backends {} was requested",
            topo.num_backends(),
            args.backends
        ));
    }
    Ok(topo)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            log_error!("topgen", "{msg}");
            return ExitCode::FAILURE;
        }
    };
    let topo = match build(&args) {
        Ok(t) => t,
        Err(msg) => {
            log_error!("topgen", "{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.stats {
        let s = TreeStats::of(&topo);
        let logp = LogP {
            latency: 0.000_35,
            overhead: 0.000_15,
            gap: 0.001_3,
            gap_per_byte: 0.0,
        };
        println!("# back-ends: {}", s.backends);
        println!("# internal processes: {}", s.internals);
        println!("# depth: {}  max fan-out: {}", s.depth, s.max_fanout);
        println!(
            "# modeled broadcast latency: {:.4} s; pipelined throughput: {:.1} ops/s",
            broadcast_latency(&topo, &logp),
            pipeline_throughput(&topo, &logp)
        );
    }
    print!("{}", write_config(&topo));
    ExitCode::SUCCESS
}
