//! Error types for topology parsing and validation.

use std::fmt;

/// Errors produced while parsing or validating topology specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A syntax error in a configuration file.
    Parse {
        /// 1-based line number of the offending token.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The configuration declares a process as a child of two parents.
    MultipleParents(String),
    /// The configuration has no root (every declared process has a
    /// parent) or more than one root.
    BadRoot {
        /// Number of parentless processes found.
        roots: usize,
    },
    /// A parent/child edge references a process by an unknown name.
    UnknownProcess(String),
    /// The configuration contains a cycle.
    Cycle(String),
    /// A generator was asked for an impossible shape.
    InvalidShape(String),
    /// The topology is structurally unusable for a tool (e.g. the root
    /// has no children, so there are no back-ends).
    NoBackEnds,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Parse { line, message } => {
                write!(f, "config parse error at line {line}: {message}")
            }
            TopologyError::MultipleParents(p) => {
                write!(f, "process {p} is declared as a child of multiple parents")
            }
            TopologyError::BadRoot { roots } => {
                write!(f, "topology must have exactly one root, found {roots}")
            }
            TopologyError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            TopologyError::Cycle(p) => write!(f, "cycle detected involving process {p}"),
            TopologyError::InvalidShape(m) => write!(f, "invalid topology shape: {m}"),
            TopologyError::NoBackEnds => write!(f, "topology has no back-end processes"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Convenient result alias for topology operations.
pub type Result<T> = std::result::Result<T, TopologyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(TopologyError::Parse {
            line: 3,
            message: "x".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(TopologyError::BadRoot { roots: 0 }
            .to_string()
            .contains("0"));
        assert!(TopologyError::NoBackEnds.to_string().contains("back-end"));
    }
}
