//! Topology generators.
//!
//! "MRNet can generate a variety of standard topologies" (§2.1): flat
//! (single-level, the architecture of most existing tools), balanced
//! k-ary trees (the paper's experimental configurations), k-nomial
//! (binomial when k=2) trees, custom level-by-level fan-out lists, and
//! the specific unbalanced topology of Figure 4b.

use crate::error::{Result, TopologyError};
use crate::hosts::{HostPool, PlacementPolicy};
use crate::spec::{NodeId, Topology, TopologyBuilder};

/// A flat, single-level topology: the front-end directly connected to
/// `n_backends` back-ends. "Closely approximates the architecture of
/// many parallel tools" (§4.1) — the paper's baseline.
pub fn flat(n_backends: usize, pool: &mut HostPool) -> Result<Topology> {
    if n_backends == 0 {
        return Err(TopologyError::InvalidShape("0 back-ends".into()));
    }
    let mut b = TopologyBuilder::new();
    let root = b.root(pool.next_placement());
    for _ in 0..n_backends {
        b.child(root, pool.next_placement());
    }
    b.build()
}

/// A fully-populated balanced tree with the given fan-out at every node
/// and `depth` levels below the root: `fanout^depth` back-ends.
pub fn balanced(fanout: usize, depth: usize, pool: &mut HostPool) -> Result<Topology> {
    if fanout < 1 || depth < 1 {
        return Err(TopologyError::InvalidShape(format!(
            "balanced tree needs fanout>=1 and depth>=1, got {fanout}x{depth}"
        )));
    }
    let mut b = TopologyBuilder::new();
    let root = b.root(pool.next_placement());
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for parent in frontier {
            for _ in 0..fanout {
                next.push(b.child(parent, pool.next_placement()));
            }
        }
        frontier = next;
    }
    b.build()
}

/// A balanced tree with interior fan-out `fanout` and exactly
/// `n_backends` leaves.
///
/// Depth is the smallest `d` with `fanout.pow(d) >= n_backends`; leaves
/// are distributed as evenly as possible, so when `n_backends` is an
/// exact power the result is fully populated. This matches the paper's
/// "fully-populated balanced tree" configurations (e.g. 8-way fan-out
/// with 512 = 8³ back-ends) while still supporting sweeps over
/// non-power counts.
pub fn balanced_for(fanout: usize, n_backends: usize, pool: &mut HostPool) -> Result<Topology> {
    if fanout < 2 {
        return Err(TopologyError::InvalidShape(
            "balanced_for needs fanout >= 2".into(),
        ));
    }
    if n_backends == 0 {
        return Err(TopologyError::InvalidShape("0 back-ends".into()));
    }
    if n_backends == 1 {
        return flat(1, pool);
    }
    let mut depth = 1usize;
    let mut capacity = fanout;
    while capacity < n_backends {
        depth += 1;
        capacity = capacity.saturating_mul(fanout);
    }
    let mut b = TopologyBuilder::new();
    let root = b.root(pool.next_placement());
    // Recursively hand each child a near-equal share of the leaves.
    fn grow(
        b: &mut TopologyBuilder,
        parent: NodeId,
        leaves: usize,
        fanout: usize,
        levels_left: usize,
        pool: &mut HostPool,
    ) {
        if levels_left == 1 {
            for _ in 0..leaves {
                b.child(parent, pool.next_placement());
            }
            return;
        }
        // Number of children actually needed to hold `leaves` leaves.
        let per_child_cap = fanout.pow(levels_left as u32 - 1);
        let children = leaves.div_ceil(per_child_cap).min(fanout);
        let base = leaves / children;
        let extra = leaves % children;
        for i in 0..children {
            let share = base + usize::from(i < extra);
            if share == 0 {
                continue;
            }
            let child = b.child(parent, pool.next_placement());
            grow(b, child, share, fanout, levels_left - 1, pool);
        }
    }
    grow(&mut b, root, n_backends, fanout, depth, pool);
    b.build()
}

/// A k-nomial tree over `n_internal` interior nodes (k=2 gives the
/// classic binomial tree), with `leaf_fanout` back-ends attached to
/// every interior node.
///
/// With `k=2`, `n_internal=4`, `leaf_fanout=4` this is exactly the
/// unbalanced topology of Figure 4b.
pub fn knomial_with_leaves(
    k: usize,
    n_internal: usize,
    leaf_fanout: usize,
    pool: &mut HostPool,
) -> Result<Topology> {
    if k < 2 || n_internal == 0 || leaf_fanout == 0 {
        return Err(TopologyError::InvalidShape(format!(
            "knomial needs k>=2, n_internal>=1, leaf_fanout>=1; got k={k}, n={n_internal}, l={leaf_fanout}"
        )));
    }
    let mut b = TopologyBuilder::new();
    let root = b.root(pool.next_placement());
    // Standard k-nomial construction: in each round every existing
    // interior node spawns up to (k-1) new interior children, until
    // n_internal interior nodes exist. The root counts as interior.
    let mut interior = vec![root];
    while interior.len() < n_internal {
        let snapshot = interior.clone();
        'outer: for node in snapshot {
            for _ in 0..(k - 1) {
                if interior.len() >= n_internal {
                    break 'outer;
                }
                let child = b.child(node, pool.next_placement());
                interior.push(child);
            }
        }
    }
    for node in interior {
        for _ in 0..leaf_fanout {
            b.child(node, pool.next_placement());
        }
    }
    b.build()
}

/// The unbalanced topology of Figure 4b: a binomial tree of four
/// interior nodes, each with four back-ends attached, reaching sixteen
/// back-ends with a six-way fan-out at the root.
pub fn fig4_unbalanced(pool: &mut HostPool) -> Result<Topology> {
    knomial_with_leaves(2, 4, 4, pool)
}

/// The balanced topology of Figure 4a: a 4-ary tree of depth 2
/// reaching sixteen back-ends.
pub fn fig4_balanced(pool: &mut HostPool) -> Result<Topology> {
    balanced(4, 2, pool)
}

/// A custom topology from per-level fan-outs: `&[a, b, c]` gives a root
/// with `a` children, each with `b` children, each with `c` children
/// (the leaves). Mirrors MRNet's `AxBxC` topology shorthand.
pub fn from_level_fanouts(fanouts: &[usize], pool: &mut HostPool) -> Result<Topology> {
    if fanouts.is_empty() || fanouts.contains(&0) {
        return Err(TopologyError::InvalidShape(
            "level fan-outs must be non-empty and positive".into(),
        ));
    }
    let mut b = TopologyBuilder::new();
    let root = b.root(pool.next_placement());
    let mut frontier = vec![root];
    for &f in fanouts {
        let mut next = Vec::with_capacity(frontier.len() * f);
        for parent in frontier {
            for _ in 0..f {
                next.push(b.child(parent, pool.next_placement()));
            }
        }
        frontier = next;
    }
    b.build()
}

/// Builds a balanced tree with exactly `n_backends` leaves over an
/// explicit host list, honoring a §2.6 placement policy:
///
/// * [`PlacementPolicy::Dedicated`] — internal processes (and the
///   front-end) get hosts from the front of the list; back-ends get
///   the rest. "We recommend that MRNet's internal processes be
///   located on resources distinct from those running the application
///   processes."
/// * [`PlacementPolicy::CoLocated`] — internal processes share the
///   back-end hosts round-robin (the configuration the paper argues
///   against, provided for comparison).
pub fn balanced_with_policy(
    fanout: usize,
    n_backends: usize,
    hosts: &[String],
    policy: PlacementPolicy,
) -> Result<Topology> {
    if hosts.is_empty() {
        return Err(TopologyError::InvalidShape("empty host list".into()));
    }
    // Shape first (with a throwaway pool), then re-assign placements.
    let mut shape_pool = HostPool::synthetic(2 * n_backends.max(4));
    let shape = balanced_for(fanout, n_backends, &mut shape_pool)?;
    let n_interior = 1 + shape.num_internals();
    let mut builder = TopologyBuilder::new();
    // Per-policy host pools. Co-location shares ONE pool so local
    // ranks stay unique per host.
    enum Pools {
        Split(HostPool, HostPool),
        Shared(HostPool),
    }
    let mut pools = match policy {
        PlacementPolicy::Dedicated => {
            if hosts.len() < 2 {
                return Err(TopologyError::InvalidShape(
                    "dedicated placement needs at least 2 hosts".into(),
                ));
            }
            let split = n_interior.min(hosts.len() - 1).max(1);
            Pools::Split(
                HostPool::named(hosts[..split].to_vec()),
                HostPool::named(hosts[split..].to_vec()),
            )
        }
        PlacementPolicy::CoLocated => Pools::Shared(HostPool::named(hosts.to_vec())),
    };
    // Rebuild the shape with policy-driven placements, preserving BFS
    // structure (children of node i in the shape become children of
    // the i-th created node).
    let order = shape.bfs();
    let mut new_ids = std::collections::HashMap::new();
    for id in order {
        let is_backend = shape.role(id) == crate::spec::Role::BackEnd;
        let placement = match &mut pools {
            Pools::Shared(pool) => pool.next_placement(),
            Pools::Split(interior, backend) => {
                if is_backend {
                    backend.next_placement()
                } else {
                    interior.next_placement()
                }
            }
        };
        let new_id = match shape.parent(id) {
            None => builder.root(placement),
            Some(p) => builder.child(new_ids[&p], placement),
        };
        new_ids.insert(id, new_id);
    }
    builder.build()
}

/// Parses the `AxBxC` shorthand (e.g. `"4x4x4"`) into a topology.
pub fn from_shorthand(spec: &str, pool: &mut HostPool) -> Result<Topology> {
    let fanouts: Result<Vec<usize>> = spec
        .split('x')
        .map(|tok| {
            tok.trim().parse::<usize>().map_err(|_| {
                TopologyError::InvalidShape(format!("bad fan-out `{tok}` in `{spec}`"))
            })
        })
        .collect();
    from_level_fanouts(&fanouts?, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Role;

    fn pool() -> HostPool {
        HostPool::synthetic(64)
    }

    #[test]
    fn flat_shape() {
        let t = flat(10, &mut pool()).unwrap();
        assert_eq!(t.num_backends(), 10);
        assert_eq!(t.num_internals(), 0);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.root_fanout(), 10);
    }

    #[test]
    fn flat_rejects_zero() {
        assert!(flat(0, &mut pool()).is_err());
    }

    #[test]
    fn balanced_shape() {
        let t = balanced(4, 2, &mut pool()).unwrap();
        assert_eq!(t.num_backends(), 16);
        assert_eq!(t.num_internals(), 4);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.max_fanout(), 4);
        // Every interior node has exactly fanout children.
        for id in t.internals() {
            assert_eq!(t.children(id).len(), 4);
        }
    }

    #[test]
    fn balanced_rejects_degenerate() {
        assert!(balanced(0, 2, &mut pool()).is_err());
        assert!(balanced(4, 0, &mut pool()).is_err());
    }

    #[test]
    fn balanced_for_exact_powers_fully_populated() {
        let t = balanced_for(8, 512, &mut HostPool::synthetic(1024)).unwrap();
        assert_eq!(t.num_backends(), 512);
        assert_eq!(t.depth(), 3);
        for id in t.internals() {
            assert_eq!(t.children(id).len(), 8);
        }
        assert_eq!(t.root_fanout(), 8);
    }

    #[test]
    fn balanced_for_non_powers() {
        for n in [3, 5, 17, 100, 300, 512] {
            let t = balanced_for(4, n, &mut HostPool::synthetic(1024)).unwrap();
            assert_eq!(t.num_backends(), n, "n={n}");
            assert!(t.max_fanout() <= 4, "n={n} fanout {}", t.max_fanout());
        }
    }

    #[test]
    fn balanced_for_single_backend() {
        let t = balanced_for(4, 1, &mut pool()).unwrap();
        assert_eq!(t.num_backends(), 1);
    }

    #[test]
    fn fig4_balanced_matches_paper() {
        let t = fig4_balanced(&mut pool()).unwrap();
        assert_eq!(t.num_backends(), 16);
        assert_eq!(t.root_fanout(), 4);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn fig4_unbalanced_matches_paper() {
        let t = fig4_unbalanced(&mut pool()).unwrap();
        // Sixteen back-ends, four interior nodes, six-way root fan-out
        // (two interior children + four back-ends).
        assert_eq!(t.num_backends(), 16);
        assert_eq!(t.num_internals(), 3); // root is the front-end
        assert_eq!(t.root_fanout(), 6);
    }

    #[test]
    fn level_fanouts() {
        let t = from_level_fanouts(&[2, 3, 4], &mut pool()).unwrap();
        assert_eq!(t.num_backends(), 24);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn shorthand() {
        let t = from_shorthand("4x4", &mut pool()).unwrap();
        assert_eq!(t.num_backends(), 16);
        assert!(from_shorthand("4xq", &mut pool()).is_err());
        assert!(from_shorthand("", &mut pool()).is_err());
    }

    #[test]
    fn knomial_interior_count() {
        let t = knomial_with_leaves(2, 8, 2, &mut HostPool::synthetic(128)).unwrap();
        assert_eq!(t.num_backends(), 16);
        assert_eq!(t.num_internals() + 1, 8); // + root
    }

    #[test]
    fn roles_assigned() {
        let t = balanced(2, 3, &mut pool()).unwrap();
        assert_eq!(t.role(t.root()), Role::FrontEnd);
        assert_eq!(t.backends().len(), 8);
        assert!(t.backends().iter().all(|&b| t.role(b) == Role::BackEnd));
    }

    #[test]
    fn dedicated_policy_separates_hosts() {
        let hosts: Vec<String> = (0..24).map(|i| format!("h{i:02}")).collect();
        let t = balanced_with_policy(4, 16, &hosts, PlacementPolicy::Dedicated).unwrap();
        assert_eq!(t.num_backends(), 16);
        // No host runs both an interior process and a back-end.
        use std::collections::HashSet;
        let interior_hosts: HashSet<_> = t
            .bfs()
            .into_iter()
            .filter(|&id| t.role(id) != Role::BackEnd)
            .map(|id| t.placement(id).host.clone())
            .collect();
        let backend_hosts: HashSet<_> = t
            .backends()
            .into_iter()
            .map(|id| t.placement(id).host.clone())
            .collect();
        assert!(interior_hosts.is_disjoint(&backend_hosts));
    }

    #[test]
    fn colocated_policy_shares_hosts() {
        let hosts: Vec<String> = (0..4).map(|i| format!("h{i}")).collect();
        let t = balanced_with_policy(4, 16, &hosts, PlacementPolicy::CoLocated).unwrap();
        assert_eq!(t.num_backends(), 16);
        use std::collections::HashSet;
        let interior_hosts: HashSet<_> = t
            .internals()
            .into_iter()
            .map(|id| t.placement(id).host.clone())
            .collect();
        let backend_hosts: HashSet<_> = t
            .backends()
            .into_iter()
            .map(|id| t.placement(id).host.clone())
            .collect();
        // With only four hosts, sharing is unavoidable and intended.
        assert!(!interior_hosts.is_disjoint(&backend_hosts));
        // Local ranks disambiguate processes sharing a host.
        let mut labels: Vec<String> = t.bfs().into_iter().map(|id| t.label(id)).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before, "labels must stay unique");
    }

    #[test]
    fn dedicated_policy_needs_two_hosts() {
        let hosts = vec!["only".to_string()];
        assert!(balanced_with_policy(2, 4, &hosts, PlacementPolicy::Dedicated).is_err());
    }

    #[test]
    fn generated_configs_round_trip_through_parser() {
        let t = balanced(4, 2, &mut pool()).unwrap();
        let cfg = crate::parser::write_config(&t);
        let t2 = crate::parser::parse_config(&cfg).unwrap();
        assert_eq!(t.num_backends(), t2.num_backends());
        assert_eq!(t.depth(), t2.depth());
    }
}
