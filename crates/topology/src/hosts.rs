//! Host pools and process placement policies.
//!
//! The paper's experiments used an "automatic configuration generator
//! program" that, given the batch partition's host names, builds an
//! MRNet configuration with the desired topology (§4.1). [`HostPool`]
//! plays that role: it hands out [`Placement`]s over a set of hosts,
//! tracking per-host local ranks so several processes can share a host.
//!
//! §2.6 recommends that internal processes be located on resources
//! distinct from the application's; [`PlacementPolicy`] captures both
//! options.

use std::collections::HashMap;

use crate::spec::Placement;

/// Whether MRNet internal processes share hosts with back-ends or get
/// dedicated hosts (§2.6 recommends dedicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Internal processes are placed on hosts not used by back-ends.
    #[default]
    Dedicated,
    /// Internal processes are co-located round-robin with back-ends.
    CoLocated,
}

/// A pool of hosts from which placements are allocated round-robin.
#[derive(Debug, Clone)]
pub struct HostPool {
    hosts: Vec<String>,
    next_rank: HashMap<String, u32>,
    cursor: usize,
}

impl HostPool {
    /// A pool over explicit host names.
    pub fn named(hosts: impl IntoIterator<Item = impl Into<String>>) -> HostPool {
        let hosts: Vec<String> = hosts.into_iter().map(Into::into).collect();
        assert!(!hosts.is_empty(), "host pool must not be empty");
        HostPool {
            hosts,
            next_rank: HashMap::new(),
            cursor: 0,
        }
    }

    /// A synthetic pool of `n` hosts named `node000`, `node001`, …
    /// mirroring a Blue Pacific-style partition.
    pub fn synthetic(n: usize) -> HostPool {
        assert!(n > 0, "host pool must not be empty");
        HostPool::named((0..n).map(|i| format!("node{i:03}")))
    }

    /// Number of distinct hosts in the pool.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True if the pool has no hosts (never constructible).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Allocates the next placement round-robin across hosts, assigning
    /// a fresh local rank on the chosen host.
    pub fn next_placement(&mut self) -> Placement {
        let host = self.hosts[self.cursor % self.hosts.len()].clone();
        self.cursor += 1;
        self.place_on_host(&host)
    }

    /// Allocates a placement on a specific host (by pool index).
    pub fn place_on(&mut self, host_idx: usize) -> Placement {
        let host = self.hosts[host_idx % self.hosts.len()].clone();
        self.place_on_host(&host)
    }

    fn place_on_host(&mut self, host: &str) -> Placement {
        let rank = self.next_rank.entry(host.to_owned()).or_insert(0);
        let placement = Placement::new(host, *rank);
        *rank += 1;
        placement
    }

    /// Splits the pool into two disjoint pools: the first `n` hosts and
    /// the rest. Used to give internal processes dedicated hosts.
    pub fn split(self, n: usize) -> (HostPool, HostPool) {
        assert!(
            n > 0 && n < self.hosts.len(),
            "split must leave both pools non-empty"
        );
        let (a, b) = {
            let (a, b) = self.hosts.split_at(n);
            (a.to_vec(), b.to_vec())
        };
        (HostPool::named(a), HostPool::named(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_names() {
        let mut pool = HostPool::synthetic(3);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.next_placement().host, "node000");
        assert_eq!(pool.next_placement().host, "node001");
        assert_eq!(pool.next_placement().host, "node002");
        // Wraps and bumps local rank.
        let p = pool.next_placement();
        assert_eq!(p.host, "node000");
        assert_eq!(p.local_rank, 1);
    }

    #[test]
    fn local_ranks_are_per_host() {
        let mut pool = HostPool::named(["a", "b"]);
        assert_eq!(pool.place_on(0).local_rank, 0);
        assert_eq!(pool.place_on(0).local_rank, 1);
        assert_eq!(pool.place_on(1).local_rank, 0);
    }

    #[test]
    fn split_is_disjoint() {
        let pool = HostPool::synthetic(5);
        let (mut a, mut b) = pool.split(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(a.next_placement().host, "node000");
        assert_eq!(b.next_placement().host, "node002");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn split_rejects_degenerate() {
        let _ = HostPool::synthetic(2).split(2);
    }

    #[test]
    fn default_policy_is_dedicated() {
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::Dedicated);
    }
}
