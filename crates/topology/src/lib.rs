//! # mrnet-topology
//!
//! MRNet process-tree topologies: specification, configuration-file
//! parsing, standard-topology generators, host pools, and LogP cost
//! analysis (paper §2.1, §2.6, Figure 4).
//!
//! ```
//! use mrnet_topology::{generator, HostPool, TreeStats};
//!
//! let mut pool = HostPool::synthetic(128);
//! let topo = generator::balanced(4, 2, &mut pool).unwrap();
//! let stats = TreeStats::of(&topo);
//! assert_eq!(stats.backends, 16);
//!
//! // Round-trip through the configuration-file format.
//! let cfg = mrnet_topology::write_config(&topo);
//! let reparsed = mrnet_topology::parse_config(&cfg).unwrap();
//! assert_eq!(reparsed.num_backends(), 16);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
mod error;
pub mod generator;
mod hosts;
mod parser;
mod spec;

pub use analysis::{
    broadcast_latency, fig4_comparison, pipeline_interval, pipeline_throughput, reduction_latency,
    roundtrip_latency, Fig4Row, LogP, TreeStats,
};
pub use error::{Result, TopologyError};
pub use hosts::{HostPool, PlacementPolicy};
pub use parser::{parse_config, write_config};
pub use spec::{NodeId, Placement, Role, Topology, TopologyBuilder};
