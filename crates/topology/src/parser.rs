//! Parser and writer for MRNet topology configuration files.
//!
//! The format is the classic MRNet one: each statement declares a
//! parent and its children, terminated by a semicolon. `host:rank`
//! names one process slot; `#` starts a comment.
//!
//! ```text
//! # front-end on fe0, two internal processes, four back-ends
//! fe0:0 => int0:0 int1:0 ;
//! int0:0 => be0:0 be1:0 ;
//! int1:0 => be2:0 be3:0 ;
//! ```
//!
//! The root is the process that never appears on the right-hand side.

use std::collections::HashMap;

use crate::error::{Result, TopologyError};
use crate::spec::{Placement, Topology};

fn parse_placement(token: &str, line: usize) -> Result<Placement> {
    let (host, rank) = token.rsplit_once(':').ok_or_else(|| TopologyError::Parse {
        line,
        message: format!("expected host:rank, got `{token}`"),
    })?;
    if host.is_empty() {
        return Err(TopologyError::Parse {
            line,
            message: format!("empty host name in `{token}`"),
        });
    }
    let local_rank = rank.parse::<u32>().map_err(|_| TopologyError::Parse {
        line,
        message: format!("invalid rank `{rank}` in `{token}`"),
    })?;
    Ok(Placement::new(host, local_rank))
}

/// Parses a topology configuration file's contents.
pub fn parse_config(input: &str) -> Result<Topology> {
    // First pass: tokenize statements of the form `parent => kids... ;`.
    // A statement may span lines; `;` terminates it.
    struct Statement {
        parent: String,
        children: Vec<String>,
        line: usize,
    }

    let mut statements: Vec<Statement> = Vec::new();
    let mut current: Option<Statement> = None;
    let mut pending_tokens: Vec<(String, usize)> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("");
        for token in text.split_whitespace() {
            // `;` may be glued to the last child token.
            let (token, terminated) = match token.strip_suffix(';') {
                Some(t) => (t, true),
                None => (token, false),
            };
            if !token.is_empty() {
                if token == "=>" {
                    // Everything before `=>` must be exactly one token:
                    // the parent of a new statement.
                    if current.is_some() {
                        return Err(TopologyError::Parse {
                            line,
                            message: "`=>` inside an unterminated statement".into(),
                        });
                    }
                    if pending_tokens.len() != 1 {
                        return Err(TopologyError::Parse {
                            line,
                            message: format!(
                                "expected one parent before `=>`, got {}",
                                pending_tokens.len()
                            ),
                        });
                    }
                    let (parent, pline) = pending_tokens.pop().unwrap();
                    current = Some(Statement {
                        parent,
                        children: Vec::new(),
                        line: pline,
                    });
                } else if let Some(stmt) = current.as_mut() {
                    stmt.children.push(token.to_owned());
                } else {
                    pending_tokens.push((token.to_owned(), line));
                }
            }
            if terminated {
                match current.take() {
                    Some(stmt) => statements.push(stmt),
                    None => {
                        return Err(TopologyError::Parse {
                            line,
                            message: "`;` without a statement".into(),
                        })
                    }
                }
            }
        }
    }
    if current.is_some() {
        return Err(TopologyError::Parse {
            line: input.lines().count(),
            message: "unterminated statement (missing `;`)".into(),
        });
    }
    if !pending_tokens.is_empty() {
        let (tok, line) = &pending_tokens[0];
        return Err(TopologyError::Parse {
            line: *line,
            message: format!("dangling token `{tok}` outside any statement"),
        });
    }
    if statements.is_empty() {
        return Err(TopologyError::Parse {
            line: 0,
            message: "empty configuration".into(),
        });
    }

    // Second pass: intern placements and build parent links.
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut placements: Vec<Placement> = Vec::new();
    let mut parents: Vec<Option<usize>> = Vec::new();
    let mut intern = |label: &str,
                      line: usize,
                      placements: &mut Vec<Placement>,
                      parents: &mut Vec<Option<usize>>|
     -> Result<usize> {
        if let Some(&i) = index.get(label) {
            return Ok(i);
        }
        let p = parse_placement(label, line)?;
        let i = placements.len();
        placements.push(p);
        parents.push(None);
        index.insert(label.to_owned(), i);
        Ok(i)
    };

    for stmt in &statements {
        let parent_idx = intern(&stmt.parent, stmt.line, &mut placements, &mut parents)?;
        if stmt.children.is_empty() {
            return Err(TopologyError::Parse {
                line: stmt.line,
                message: format!("parent `{}` declares no children", stmt.parent),
            });
        }
        for child in &stmt.children {
            let child_idx = intern(child, stmt.line, &mut placements, &mut parents)?;
            if parents[child_idx].is_some() {
                return Err(TopologyError::MultipleParents(child.clone()));
            }
            if child_idx == parent_idx {
                return Err(TopologyError::Cycle(child.clone()));
            }
            parents[child_idx] = Some(parent_idx);
        }
    }

    Topology::from_parts(placements, parents)
}

/// Renders a topology back into the configuration-file format parsed by
/// [`parse_config`]. Statements are emitted in BFS order.
pub fn write_config(topology: &Topology) -> String {
    let mut out = String::new();
    for id in topology.bfs() {
        let children = topology.children(id);
        if children.is_empty() {
            continue;
        }
        out.push_str(&topology.label(id));
        out.push_str(" =>");
        for &child in children {
            out.push(' ');
            out.push_str(&topology.label(child));
        }
        out.push_str(" ;\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Role;

    const SAMPLE: &str = "\
# comment line
fe0:0 => int0:0 int1:0 ; # trailing comment
int0:0 => be0:0 be1:0 ;
int1:0 =>
    be2:0
    be3:0 ;
";

    #[test]
    fn parses_sample() {
        let t = parse_config(SAMPLE).unwrap();
        assert_eq!(t.len(), 7);
        assert_eq!(t.num_backends(), 4);
        assert_eq!(t.num_internals(), 2);
        assert_eq!(t.placement(t.root()).host, "fe0");
        assert_eq!(t.role(t.root()), Role::FrontEnd);
    }

    #[test]
    fn flat_single_statement() {
        let t = parse_config("fe:0 => a:0 b:0 c:0 ;").unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.num_backends(), 3);
    }

    #[test]
    fn glued_semicolon() {
        let t = parse_config("fe:0 => a:0 b:0;").unwrap();
        assert_eq!(t.num_backends(), 2);
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_config("fe:0 => a:0 b:0").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { .. }));
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn rejects_bad_rank() {
        let err = parse_config("fe:x => a:0 ;").unwrap_err();
        assert!(err.to_string().contains("invalid rank"));
    }

    #[test]
    fn rejects_missing_rank() {
        let err = parse_config("fe => a:0 ;").unwrap_err();
        assert!(err.to_string().contains("host:rank"));
    }

    #[test]
    fn rejects_childless_statement() {
        let err = parse_config("fe:0 => ;").unwrap_err();
        assert!(err.to_string().contains("no children"));
    }

    #[test]
    fn rejects_multiple_parents() {
        let err = parse_config("fe:0 => a:0 b:0 ;\na:0 => b:0 ;").unwrap_err();
        assert_eq!(err, TopologyError::MultipleParents("b:0".into()));
    }

    #[test]
    fn rejects_self_child() {
        let err = parse_config("fe:0 => fe:0 ;").unwrap_err();
        assert!(matches!(err, TopologyError::Cycle(_)));
    }

    #[test]
    fn rejects_two_roots() {
        let err = parse_config("a:0 => b:0 ;\nc:0 => d:0 ;").unwrap_err();
        assert_eq!(err, TopologyError::BadRoot { roots: 2 });
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_config("").is_err());
        assert!(parse_config("# only comments\n").is_err());
    }

    #[test]
    fn rejects_dangling_token() {
        let err = parse_config("fe:0 => a:0 ;\nstray:0\n").unwrap_err();
        assert!(err.to_string().contains("dangling"));
    }

    #[test]
    fn ipv6_like_host_uses_last_colon() {
        let t = parse_config("fe:0 => weird:host:1 ;").unwrap();
        let be = t.backends()[0];
        assert_eq!(t.placement(be).host, "weird:host");
        assert_eq!(t.placement(be).local_rank, 1);
    }

    #[test]
    fn write_parse_round_trip() {
        let t = parse_config(SAMPLE).unwrap();
        let rendered = write_config(&t);
        let t2 = parse_config(&rendered).unwrap();
        assert_eq!(t.len(), t2.len());
        assert_eq!(t.num_backends(), t2.num_backends());
        assert_eq!(t.depth(), t2.depth());
        // Same labels in same BFS order.
        let labels = |t: &Topology| t.bfs().into_iter().map(|i| t.label(i)).collect::<Vec<_>>();
        assert_eq!(labels(&t), labels(&t2));
    }
}
