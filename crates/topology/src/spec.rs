//! The topology specification: a tree of process placements.
//!
//! "The connection topology and host assignment of these processes is
//! determined by a configuration file, thus the geometry of MRNet's
//! process tree can be customized to suit the physical topology of the
//! underlying hardware" (§2.1). The root of the tree is the tool
//! front-end, leaves are tool back-ends, and interior nodes are MRNet
//! internal (`mrnet_commnode`) processes.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TopologyError};

/// Index of a process node within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// The role a process plays in the tool system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The tool front-end at the root of the tree.
    FrontEnd,
    /// An `mrnet_commnode` internal process.
    Internal,
    /// A tool back-end (daemon) at a leaf.
    BackEnd,
}

/// One process placement: which host it runs on and its local rank on
/// that host (hosts may run several MRNet processes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Host name, e.g. `node013`.
    pub host: String,
    /// Distinguishes multiple processes on the same host.
    pub local_rank: u32,
}

impl Placement {
    /// Creates a placement.
    pub fn new(host: impl Into<String>, local_rank: u32) -> Placement {
        Placement {
            host: host.into(),
            local_rank,
        }
    }

    /// The `host:rank` notation used in configuration files.
    pub fn label(&self) -> String {
        format!("{}:{}", self.host, self.local_rank)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Node {
    placement: Placement,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A validated MRNet process-tree topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    root: NodeId,
}

/// Incrementally assembles a [`Topology`]; used by the parser and the
/// generators.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Adds the root process; must be called exactly once, first.
    pub fn root(&mut self, placement: Placement) -> NodeId {
        assert!(self.nodes.is_empty(), "root must be added first");
        self.nodes.push(Node {
            placement,
            parent: None,
            children: Vec::new(),
        });
        NodeId(0)
    }

    /// Adds a child process under `parent` and returns its id.
    pub fn child(&mut self, parent: NodeId, placement: Placement) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            placement,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Finalizes and validates the topology.
    pub fn build(self) -> Result<Topology> {
        if self.nodes.is_empty() {
            return Err(TopologyError::BadRoot { roots: 0 });
        }
        let topo = Topology {
            nodes: self.nodes,
            root: NodeId(0),
        };
        topo.validate()?;
        Ok(topo)
    }
}

impl Topology {
    /// Builds a topology from raw parts (used by the parser).
    /// `parents[i]` is the parent of node `i`, or `None` for the root.
    pub fn from_parts(placements: Vec<Placement>, parents: Vec<Option<usize>>) -> Result<Topology> {
        if placements.len() != parents.len() {
            return Err(TopologyError::InvalidShape(
                "placements/parents length mismatch".into(),
            ));
        }
        let mut roots = Vec::new();
        let mut nodes: Vec<Node> = placements
            .into_iter()
            .map(|placement| Node {
                placement,
                parent: None,
                children: Vec::new(),
            })
            .collect();
        for (i, parent) in parents.iter().enumerate() {
            match parent {
                None => roots.push(i),
                Some(p) => {
                    if *p >= nodes.len() {
                        return Err(TopologyError::UnknownProcess(format!("#{p}")));
                    }
                    nodes[i].parent = Some(NodeId(*p));
                    let child = NodeId(i);
                    nodes[*p].children.push(child);
                }
            }
        }
        if roots.len() != 1 {
            return Err(TopologyError::BadRoot { roots: roots.len() });
        }
        let root = NodeId(roots[0]);
        let topo = Topology { nodes, root };
        topo.validate()?;
        Ok(topo)
    }

    fn validate(&self) -> Result<()> {
        // Reachability + cycle check via DFS from the root.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if seen[id.0] {
                return Err(TopologyError::Cycle(self.label(id)));
            }
            seen[id.0] = true;
            stack.extend(self.nodes[id.0].children.iter().copied());
        }
        if let Some(unreached) = seen.iter().position(|&s| !s) {
            return Err(TopologyError::Cycle(self.label(NodeId(unreached))));
        }
        if self.nodes[self.root.0].children.is_empty() && self.nodes.len() > 1 {
            return Err(TopologyError::NoBackEnds);
        }
        Ok(())
    }

    /// The root (front-end) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of processes (front-end + internal + back-ends).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a degenerate, empty topology (never produced by the
    /// builder, which requires a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The placement of a node.
    pub fn placement(&self, id: NodeId) -> &Placement {
        &self.nodes[id.0].placement
    }

    /// The `host:rank` label of a node.
    pub fn label(&self, id: NodeId) -> String {
        self.nodes[id.0].placement.label()
    }

    /// The children of a node, in declaration order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].children
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// The role of a node: root is the front-end, leaves are back-ends,
    /// everything else is an internal process.
    ///
    /// In the degenerate single-node topology the root is a front-end.
    pub fn role(&self, id: NodeId) -> Role {
        if id == self.root {
            Role::FrontEnd
        } else if self.nodes[id.0].children.is_empty() {
            Role::BackEnd
        } else {
            Role::Internal
        }
    }

    /// All node ids in breadth-first order from the root.
    pub fn bfs(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            queue.extend(self.nodes[id.0].children.iter().copied());
        }
        order
    }

    /// The back-end (leaf) nodes in breadth-first order.
    pub fn backends(&self) -> Vec<NodeId> {
        self.bfs()
            .into_iter()
            .filter(|&id| self.role(id) == Role::BackEnd)
            .collect()
    }

    /// The internal (non-root, non-leaf) nodes in breadth-first order.
    pub fn internals(&self) -> Vec<NodeId> {
        self.bfs()
            .into_iter()
            .filter(|&id| self.role(id) == Role::Internal)
            .collect()
    }

    /// Number of back-ends.
    pub fn num_backends(&self) -> usize {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| n.children.is_empty() && NodeId(*i) != self.root)
            .count()
    }

    /// Number of internal processes.
    pub fn num_internals(&self) -> usize {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| !n.children.is_empty() && NodeId(*i) != self.root)
            .count()
    }

    /// Depth of a node (root is depth 0).
    pub fn depth_of(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.nodes[cur.0].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Depth of the tree: maximum node depth (root-only tree has depth
    /// 0; flat topology has depth 1).
    pub fn depth(&self) -> usize {
        (0..self.nodes.len())
            .map(|i| self.depth_of(NodeId(i)))
            .max()
            .unwrap_or(0)
    }

    /// Maximum fan-out over all nodes.
    pub fn max_fanout(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Fan-out of the root.
    pub fn root_fanout(&self) -> usize {
        self.nodes[self.root.0].children.len()
    }

    /// The back-ends reachable through each node (the "end-points
    /// accessible via that sub-tree" of the §2.5 subtree reports).
    pub fn reachable_backends(&self, id: NodeId) -> Vec<NodeId> {
        let mut result = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if self.role(cur) == Role::BackEnd {
                result.push(cur);
            }
            stack.extend(self.nodes[cur.0].children.iter().copied());
        }
        result.sort();
        result
    }

    /// Extracts the subtree rooted at `id` as a standalone topology.
    ///
    /// This is the "portion of the configuration relevant to that
    /// child" a parent sends during instantiation (§2.5). Node ids are
    /// renumbered; the returned mapping gives, for each new node, the
    /// id it had in `self`.
    pub fn subtree(&self, id: NodeId) -> (Topology, Vec<NodeId>) {
        let mut mapping = Vec::new();
        let mut builder = TopologyBuilder::new();
        let new_root = builder.root(self.nodes[id.0].placement.clone());
        mapping.push(id);
        // (old node, new parent) work list.
        let mut work: Vec<(NodeId, NodeId)> = self.nodes[id.0]
            .children
            .iter()
            .map(|&c| (c, new_root))
            .collect();
        // Process in BFS order to keep sibling order stable.
        work.reverse();
        while let Some((old, new_parent)) = work.pop() {
            let new_id = builder.child(new_parent, self.nodes[old.0].placement.clone());
            mapping.push(old);
            let mut kids: Vec<(NodeId, NodeId)> = self.nodes[old.0]
                .children
                .iter()
                .map(|&c| (c, new_id))
                .collect();
            kids.reverse();
            work.extend(kids);
        }
        let topo = builder.build().expect("subtree of a valid tree is valid");
        (topo, mapping)
    }

    /// Nodes grouped by depth: `levels()[d]` lists the nodes at depth
    /// `d`, shallowest first.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels: Vec<Vec<NodeId>> = Vec::new();
        for id in self.bfs() {
            let d = self.depth_of(id);
            if levels.len() <= d {
                levels.resize_with(d + 1, Vec::new);
            }
            levels[d].push(id);
        }
        levels
    }

    /// Distinct host names in the topology, in first-seen (BFS) order.
    pub fn hosts(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for id in self.bfs() {
            let host = self.nodes[id.0].placement.host.as_str();
            if seen.insert(host) {
                out.push(host);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// front-end -> {a, b}; a -> {a0, a1}; b -> {b0}
    fn sample() -> Topology {
        let mut b = TopologyBuilder::new();
        let root = b.root(Placement::new("fe", 0));
        let a = b.child(root, Placement::new("hosta", 0));
        let bb = b.child(root, Placement::new("hostb", 0));
        b.child(a, Placement::new("hosta", 1));
        b.child(a, Placement::new("hosta", 2));
        b.child(bb, Placement::new("hostb", 1));
        b.build().unwrap()
    }

    #[test]
    fn roles() {
        let t = sample();
        assert_eq!(t.role(t.root()), Role::FrontEnd);
        let kids = t.children(t.root());
        assert_eq!(t.role(kids[0]), Role::Internal);
        assert_eq!(t.num_backends(), 3);
        assert_eq!(t.num_internals(), 2);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn depth_and_fanout() {
        let t = sample();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.max_fanout(), 2);
        assert_eq!(t.root_fanout(), 2);
        assert_eq!(t.depth_of(t.root()), 0);
    }

    #[test]
    fn bfs_orders_by_level() {
        let t = sample();
        let order = t.bfs();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], t.root());
        let depths: Vec<_> = order.iter().map(|&i| t.depth_of(i)).collect();
        let mut sorted = depths.clone();
        sorted.sort();
        assert_eq!(depths, sorted);
    }

    #[test]
    fn reachable_backends_per_subtree() {
        let t = sample();
        let kids = t.children(t.root()).to_vec();
        assert_eq!(t.reachable_backends(kids[0]).len(), 2);
        assert_eq!(t.reachable_backends(kids[1]).len(), 1);
        assert_eq!(t.reachable_backends(t.root()).len(), 3);
    }

    #[test]
    fn subtree_extraction() {
        let t = sample();
        let a = t.children(t.root())[0];
        let (sub, mapping) = t.subtree(a);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.num_backends(), 2);
        assert_eq!(mapping.len(), 3);
        assert_eq!(mapping[0], a);
        assert_eq!(sub.placement(sub.root()).host, "hosta");
        // The mapping points back at nodes with identical placements.
        for (new_idx, old) in mapping.iter().enumerate() {
            assert_eq!(sub.placement(NodeId(new_idx)), t.placement(*old));
        }
    }

    #[test]
    fn levels_partition_nodes() {
        let t = sample();
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 1);
        assert_eq!(levels[1].len(), 2);
        assert_eq!(levels[2].len(), 3);
    }

    #[test]
    fn hosts_deduplicated() {
        let t = sample();
        assert_eq!(t.hosts(), vec!["fe", "hosta", "hostb"]);
    }

    #[test]
    fn from_parts_roundtrip() {
        let t = Topology::from_parts(
            vec![
                Placement::new("fe", 0),
                Placement::new("x", 0),
                Placement::new("y", 0),
            ],
            vec![None, Some(0), Some(0)],
        )
        .unwrap();
        assert_eq!(t.num_backends(), 2);
    }

    #[test]
    fn from_parts_rejects_two_roots() {
        let err = Topology::from_parts(
            vec![Placement::new("a", 0), Placement::new("b", 0)],
            vec![None, None],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::BadRoot { roots: 2 });
    }

    #[test]
    fn from_parts_rejects_cycle() {
        // 0 is root; 1 and 2 form a cycle unreachable from the root.
        let err = Topology::from_parts(
            vec![
                Placement::new("a", 0),
                Placement::new("b", 0),
                Placement::new("c", 0),
            ],
            vec![None, Some(2), Some(1)],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TopologyError::Cycle(_) | TopologyError::NoBackEnds
        ));
    }

    #[test]
    fn from_parts_rejects_out_of_range_parent() {
        let err = Topology::from_parts(
            vec![Placement::new("a", 0), Placement::new("b", 0)],
            vec![None, Some(7)],
        )
        .unwrap_err();
        assert!(matches!(err, TopologyError::UnknownProcess(_)));
    }

    #[test]
    fn root_only_tree_rejected_when_multi_node() {
        // Two nodes where the second is disconnected -> error.
        let r = Topology::from_parts(
            vec![Placement::new("a", 0), Placement::new("b", 0)],
            vec![None, Some(1)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn placement_label() {
        assert_eq!(Placement::new("n01", 3).label(), "n01:3");
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json_like(&t);
        assert!(json.contains("hosta"));
    }

    // serde_json is not a workspace dependency; smoke-test Serialize via
    // the derived Debug of a serialized-ish rendering instead.
    fn serde_json_like(t: &Topology) -> String {
        format!("{t:?}")
    }
}
