//! Property-based tests for topology generation, parsing, and the
//! LogP analysis.

use mrnet_topology::{
    broadcast_latency, generator, parse_config, pipeline_interval, reduction_latency, write_config,
    HostPool, LogP, Topology, TreeStats,
};
use proptest::prelude::*;

fn arb_logp() -> impl Strategy<Value = LogP> {
    (0.01f64..10.0, 0.01f64..10.0, 0.01f64..10.0).prop_map(|(l, o, g)| LogP {
        latency: l,
        overhead: o,
        gap: g,
        gap_per_byte: 0.0,
    })
}

fn arb_tree() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..200).prop_map(|n| { generator::flat(n, &mut HostPool::synthetic(512)).unwrap() }),
        (2usize..9, 1usize..4).prop_map(|(f, d)| {
            generator::balanced(f, d, &mut HostPool::synthetic(2048)).unwrap()
        }),
        (2usize..9, 2usize..300).prop_map(|(f, n)| {
            generator::balanced_for(f, n, &mut HostPool::synthetic(2048)).unwrap()
        }),
        proptest::collection::vec(1usize..5, 1..4).prop_map(|fanouts| {
            generator::from_level_fanouts(&fanouts, &mut HostPool::synthetic(2048)).unwrap()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_topologies_are_structurally_sound(topo in arb_tree()) {
        let stats = TreeStats::of(&topo);
        // Node accounting: front-end + internals + back-ends.
        prop_assert_eq!(stats.processes, 1 + stats.internals + stats.backends);
        prop_assert!(stats.backends >= 1);
        // BFS covers every node exactly once.
        let bfs = topo.bfs();
        prop_assert_eq!(bfs.len(), topo.len());
        // Every non-root has its parent before it in BFS order.
        for (i, &id) in bfs.iter().enumerate() {
            if let Some(parent) = topo.parent(id) {
                let pos = bfs.iter().position(|&x| x == parent).unwrap();
                prop_assert!(pos < i);
            }
        }
        // reachable_backends at the root equals the backend set.
        prop_assert_eq!(
            topo.reachable_backends(topo.root()),
            topo.backends().into_iter().collect::<std::collections::BTreeSet<_>>()
                .into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn config_round_trip_preserves_structure(topo in arb_tree()) {
        let text = write_config(&topo);
        let reparsed = parse_config(&text).unwrap();
        prop_assert_eq!(reparsed.len(), topo.len());
        prop_assert_eq!(reparsed.num_backends(), topo.num_backends());
        prop_assert_eq!(reparsed.depth(), topo.depth());
        prop_assert_eq!(reparsed.max_fanout(), topo.max_fanout());
        // Labels match in BFS order (structure-preserving renumbering).
        let a: Vec<String> = topo.bfs().into_iter().map(|i| topo.label(i)).collect();
        let b: Vec<String> = reparsed.bfs().into_iter().map(|i| reparsed.label(i)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn subtree_extraction_conserves_backends(topo in arb_tree()) {
        let kids = topo.children(topo.root()).to_vec();
        let total: usize = kids
            .iter()
            .map(|&c| topo.subtree(c).0.num_backends().max(
                // A leaf child extracts as a single-node topology with
                // zero "backends" (its root is the front-end of the
                // slice), so count it as one end-point.
                usize::from(topo.children(c).is_empty())))
            .sum();
        prop_assert_eq!(total, topo.num_backends());
    }

    #[test]
    fn logp_latencies_positive_and_monotone_in_params(topo in arb_tree(), p in arb_logp()) {
        let b = broadcast_latency(&topo, &p);
        let r = reduction_latency(&topo, &p);
        prop_assert!(b > 0.0 && r > 0.0);
        // Scaling every parameter up scales latency up.
        let p2 = LogP {
            latency: p.latency * 2.0,
            overhead: p.overhead * 2.0,
            gap: p.gap * 2.0,
            gap_per_byte: 0.0,
        };
        prop_assert!(broadcast_latency(&topo, &p2) > b);
        // Doubling all parameters exactly doubles both (the model is
        // homogeneous of degree 1 in (L, o, g)).
        prop_assert!((broadcast_latency(&topo, &p2) - 2.0 * b).abs() < 1e-6 * b.max(1.0));
        prop_assert!((reduction_latency(&topo, &p2) - 2.0 * r).abs() < 1e-6 * r.max(1.0));
        // Reduction never beats the cost of the single deepest path.
        let floor = topo.depth() as f64 * (2.0 * p.overhead + p.latency + p.gap);
        prop_assert!(r >= floor - 1e-9);
    }

    #[test]
    fn pipeline_interval_bounded_by_root_and_max_fanout(topo in arb_tree(), p in arb_logp()) {
        let interval = pipeline_interval(&topo, &p);
        let max_fanout = topo.max_fanout() as f64;
        prop_assert!((interval - max_fanout * p.gap).abs() < 1e-9);
        prop_assert!(interval >= topo.root_fanout() as f64 * p.gap - 1e-9);
    }

    #[test]
    fn deeper_trees_trade_latency_for_throughput(n in 64usize..256) {
        // For a fixed back-end count, a flat topology has minimal depth
        // but its pipeline interval dwarfs any tree's.
        let p = LogP { latency: 1.0, overhead: 1.0, gap: 1.0, gap_per_byte: 0.0 };
        let flat = generator::flat(n, &mut HostPool::synthetic(1024)).unwrap();
        let tree = generator::balanced_for(4, n, &mut HostPool::synthetic(1024)).unwrap();
        prop_assert!(pipeline_interval(&flat, &p) > pipeline_interval(&tree, &p));
    }
}
