//! CLI tests for `topgen`, the automatic configuration generator
//! (§4.1).

use std::process::Command;

use mrnet_topology::parse_config;

fn topgen(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_topgen"))
        .args(args)
        .output()
        .expect("run topgen");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn generates_parseable_balanced_config() {
    let (ok, stdout, _) = topgen(&["--backends", "64", "--fanout", "4"]);
    assert!(ok);
    let topo = parse_config(&stdout).unwrap();
    assert_eq!(topo.num_backends(), 64);
    assert!(topo.max_fanout() <= 4);
}

#[test]
fn generates_flat_config_with_named_hosts() {
    let (ok, stdout, _) = topgen(&["--backends", "3", "--flat", "--hosts", "fe,a,b,c"]);
    assert!(ok);
    let topo = parse_config(&stdout).unwrap();
    assert_eq!(topo.num_backends(), 3);
    assert_eq!(topo.depth(), 1);
    assert!(stdout.contains("fe:0"));
    assert!(stdout.contains("a:0"));
}

#[test]
fn shape_shorthand_works() {
    let (ok, stdout, _) = topgen(&["--backends", "16", "--shape", "4x4"]);
    assert!(
        ok,
        "stderr: {}",
        topgen(&["--backends", "16", "--shape", "4x4"]).2
    );
    let topo = parse_config(&stdout).unwrap();
    assert_eq!(topo.num_backends(), 16);
    assert_eq!(topo.depth(), 2);
}

#[test]
fn shape_backend_mismatch_rejected() {
    let (ok, _, stderr) = topgen(&["--backends", "10", "--shape", "4x4"]);
    assert!(!ok);
    assert!(stderr.contains("16 back-ends"));
}

#[test]
fn stats_are_commented_so_output_still_parses() {
    let (ok, stdout, _) = topgen(&["--backends", "8", "--fanout", "2", "--stats"]);
    assert!(ok);
    assert!(stdout.contains("# back-ends: 8"));
    let topo = parse_config(&stdout).unwrap();
    assert_eq!(topo.num_backends(), 8);
}

#[test]
fn bad_flags_fail_with_usage() {
    let (ok, _, stderr) = topgen(&["--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
    let (ok, _, stderr) = topgen(&["--fanout", "4"]);
    assert!(!ok);
    assert!(stderr.contains("--backends"));
}
