//! Clock-offset estimation for connection endpoints.
//!
//! Tree nodes stamp trace records with their own wall clocks; to line
//! the stamps up, each parent runs a small NTP-style ping handshake
//! over its child connections at connect time:
//!
//! ```text
//! parent --- ping(t0) -------------> child      t1 = child recv stamp
//! parent <-- pong(t0, t1, t2) ------ child      t2 = child send stamp
//! t3 = parent recv stamp
//! ```
//!
//! From one exchange, `offset = ((t1 - t0) + (t2 - t3)) / 2` estimates
//! the child's clock minus the parent's, and
//! `rtt = (t3 - t0) - (t2 - t1)` the pure network round trip. The
//! estimate's error is bounded by `rtt / 2` plus path asymmetry, so
//! callers ping several times and keep the minimum-RTT sample.
//!
//! All stamps are wall-clock microseconds (any epoch shared within a
//! process); the arithmetic is done in `i64` so a child clock behind
//! the parent's produces a negative offset rather than wrapping.

/// One resolved offset/RTT estimate from a ping exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockEstimate {
    /// The remote (child) clock minus the local (parent) clock, µs.
    pub offset_us: i64,
    /// Estimated network round-trip time, excluding the child's
    /// processing time between receive and reply, µs.
    pub rtt_us: u64,
}

impl ClockEstimate {
    /// Computes the estimate from one ping exchange's four stamps:
    /// `t0` local send, `t1` remote receive, `t2` remote send, `t3`
    /// local receive. Degenerate stamp orderings (clock steps,
    /// reordered replies) clamp the RTT at zero rather than wrapping.
    pub fn from_ping(t0: u64, t1: u64, t2: u64, t3: u64) -> ClockEstimate {
        let (t0, t1, t2, t3) = (t0 as i64, t1 as i64, t2 as i64, t3 as i64);
        let offset_us = ((t1 - t0) + (t2 - t3)) / 2;
        let rtt_us = ((t3 - t0) - (t2 - t1)).max(0) as u64;
        ClockEstimate { offset_us, rtt_us }
    }

    /// True when `self` is the better (lower-RTT, hence
    /// lower-uncertainty) estimate of the two.
    pub fn better_than(&self, other: &ClockEstimate) -> bool {
        self.rtt_us < other.rtt_us
    }

    /// Chains this estimate (child relative to us) with `descendant`
    /// (a deeper rank relative to the child), yielding the descendant
    /// relative to us: offsets add, and the RTTs add as a conservative
    /// uncertainty bound for the longer path.
    pub fn chain(&self, descendant: &ClockEstimate) -> ClockEstimate {
        ClockEstimate {
            offset_us: self.offset_us.saturating_add(descendant.offset_us),
            rtt_us: self.rtt_us.saturating_add(descendant.rtt_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_path_recovers_exact_offset() {
        // Child clock runs 500 µs ahead; 100 µs each way on the wire;
        // child takes 30 µs to turn the ping around.
        let t0 = 10_000;
        let t1 = t0 + 100 + 500;
        let t2 = t1 + 30;
        let t3 = t0 + 100 + 30 + 100;
        let est = ClockEstimate::from_ping(t0, t1, t2, t3);
        assert_eq!(est.offset_us, 500);
        assert_eq!(est.rtt_us, 200);
    }

    #[test]
    fn negative_offset_when_child_behind() {
        // Child clock 2 ms behind, 50 µs each way, instant turnaround.
        let t0 = 100_000;
        let t1 = t0 + 50 - 2_000;
        let t2 = t1;
        let t3 = t0 + 100;
        let est = ClockEstimate::from_ping(t0, t1, t2, t3);
        assert_eq!(est.offset_us, -2_000);
        assert_eq!(est.rtt_us, 100);
    }

    #[test]
    fn same_clock_zero_delay_is_zero() {
        let est = ClockEstimate::from_ping(42, 42, 42, 42);
        assert_eq!(est, ClockEstimate::default());
    }

    #[test]
    fn asymmetry_error_bounded_by_half_rtt() {
        // All 300 µs of delay on the downstream leg: the estimate is
        // wrong by exactly rtt/2, the theoretical bound.
        let t0 = 0;
        let t1 = 300; // same clock, but slow leg down
        let t2 = 300;
        let t3 = 300; // instant leg up
        let est = ClockEstimate::from_ping(t0, t1, t2, t3);
        assert_eq!(est.rtt_us, 300);
        assert_eq!(est.offset_us.unsigned_abs(), est.rtt_us / 2);
    }

    #[test]
    fn degenerate_orderings_clamp_rtt() {
        // Remote processing stamps wider than the whole exchange
        // (clock step mid-ping): RTT clamps to zero, no wrap.
        let est = ClockEstimate::from_ping(100, 50, 900, 200);
        assert_eq!(est.rtt_us, 0);
    }

    #[test]
    fn min_rtt_selection_and_chaining() {
        let coarse = ClockEstimate {
            offset_us: 480,
            rtt_us: 900,
        };
        let fine = ClockEstimate {
            offset_us: 501,
            rtt_us: 80,
        };
        assert!(fine.better_than(&coarse));
        assert!(!coarse.better_than(&fine));
        let deeper = ClockEstimate {
            offset_us: -1_200,
            rtt_us: 150,
        };
        let chained = fine.chain(&deeper);
        assert_eq!(chained.offset_us, 501 - 1_200);
        assert_eq!(chained.rtt_us, 230);
    }
}
